"""Edge-case tests for the VLIW machine and its program form."""

import pytest

from repro.core.exceptions import ScheduleViolation
from repro.isa.parser import parse_instruction as P
from repro.machine import Bundle, VLIWMachine, VLIWProgram
from repro.machine.config import MachineConfig, base_machine
from repro.machine.program import RegionSpan
from repro.sim.memory import Memory


def program(bundle_specs, labels, regions):
    return VLIWProgram(
        bundles=[Bundle(tuple(P(text) for text in spec)) for spec in bundle_specs],
        labels=labels,
        regions=[RegionSpan(*span) for span in regions],
    )


class TestProgramValidation:
    def test_regions_must_cover_program(self):
        prog = program([["nop"], ["halt"]], {"R0": 0}, [("R0", 0, 1)])
        with pytest.raises(ValueError, match="cover"):
            prog.validate()

    def test_regions_must_not_overlap(self):
        prog = program(
            [["nop"], ["halt"]],
            {"R0": 0, "R1": 0},
            [("R0", 0, 2), ("R1", 0, 1)],
        )
        with pytest.raises(ValueError, match="overlap"):
            prog.validate()

    def test_label_must_match_region_start(self):
        prog = program(
            [["nop"], ["halt"]], {"R0": 1}, [("R0", 0, 2)]
        )
        with pytest.raises(ValueError, match="mismatch"):
            prog.validate()

    def test_undefined_jump_target(self):
        prog = program([["jmp nowhere"], ["halt"]], {"R0": 0}, [("R0", 0, 2)])
        with pytest.raises(ValueError, match="nowhere"):
            prog.validate()

    def test_format_lists_labels_and_bundles(self):
        prog = program(
            [["li r1, 1", "li r2, 2"], ["halt"]], {"R0": 0}, [("R0", 0, 2)]
        )
        text = prog.format()
        assert "R0:" in text and "li r1, 1 ; li r2, 2" in text


class TestMachineEdges:
    def test_empty_bundles_cost_a_cycle(self):
        prog = VLIWProgram(
            bundles=[Bundle((P("li r1, 7"),)), Bundle(()), Bundle((P("out r1"), P("halt")))],
            labels={"R0": 0},
            regions=[RegionSpan("R0", 0, 3)],
        )
        result = VLIWMachine(prog, base_machine(), Memory()).run()
        assert result.output == [7]
        assert result.cycles == 3

    def test_store_buffer_stall(self):
        """A full store buffer with an unresolved speculative head stalls
        issue until the head resolves."""
        config = MachineConfig(store_buffer_capacity=1)
        prog = program(
            [
                ["li r1, 100", "li r2, 5"],
                ["[c0] st r2, r1, 0"],  # fills the 1-entry buffer
                ["ceqi c0, r2, 5"],  # resolves c0 (true)
                ["st r2, r1, 1"],  # must stall until the head retires
                ["nop"],
                ["halt"],
            ],
            {"R0": 0},
            [("R0", 0, 6)],
        )
        memory = Memory()
        result = VLIWMachine(prog, config, memory).run()
        assert memory.load(100) == 5 and memory.load(101) == 5
        assert result.cycles >= 6

    def test_store_buffer_deadlock_detected(self):
        """An unresolvable speculative head with a full buffer deadlocks,
        which the machine reports as a schedule violation."""
        config = MachineConfig(store_buffer_capacity=1)
        prog = program(
            [
                ["li r1, 100", "li r2, 5"],
                ["[c0] st r2, r1, 0"],  # c0 never set
                ["st r2, r1, 1"],
                ["halt"],
            ],
            {"R0": 0},
            [("R0", 0, 4)],
        )
        with pytest.raises(ScheduleViolation, match="deadlock"):
            VLIWMachine(prog, config, Memory()).run()

    def test_branch_on_specified_condition(self):
        """The machine also executes plain conditional branches (used by
        hand-written predicated code)."""
        prog = program(
            [
                ["li r1, 3"],
                ["clti c0, r1, 5"],
                ["nop"],
                ["br c0, TAKEN"],
                ["halt"],
                ["out r1", "halt"],  # TAKEN
            ],
            {"R0": 0, "TAKEN": 5},
            [("R0", 0, 5), ("TAKEN", 5, 6)],
        )
        result = VLIWMachine(prog, base_machine(), Memory()).run()
        assert result.output == [3]

    def test_branch_on_unspecified_condition_rejected(self):
        prog = program(
            [["br c0, R0"], ["halt"]], {"R0": 0}, [("R0", 0, 2)]
        )
        with pytest.raises(ScheduleViolation, match="unspecified"):
            VLIWMachine(prog, base_machine(), Memory()).run()

    def test_two_true_jumps_in_one_bundle_rejected(self):
        prog = program(
            [["jmp A", "jmp A"], ["halt"]],
            {"R0": 0, "A": 1},
            [("R0", 0, 1), ("A", 1, 2)],
        )
        with pytest.raises(ScheduleViolation, match="two taken"):
            VLIWMachine(prog, base_machine(), Memory()).run()

    def test_max_cycles_guard(self):
        prog = program(
            [["jmp R0"]], {"R0": 0}, [("R0", 0, 1)]
        )
        with pytest.raises(RuntimeError, match="exceeded"):
            VLIWMachine(prog, base_machine(), Memory(), max_cycles=50).run()

    def test_division_by_zero_nonspeculative_unhandled(self):
        from repro.core.exceptions import UnhandledFault

        prog = program(
            [["li r1, 1", "li r2, 0"], ["div r3, r1, r2"], ["halt"]],
            {"R0": 0},
            [("R0", 0, 3)],
        )
        with pytest.raises(UnhandledFault):
            VLIWMachine(prog, base_machine(), Memory()).run()

    def test_division_by_zero_speculative_squashed(self):
        prog = program(
            [
                ["li r1, 1", "li r2, 0"],
                ["[c0] div r3, r1, r2"],  # faults speculatively
                ["cnei c0, r1, 1"],  # c0 = false: squash the exception
                ["nop"],
                ["out r1", "halt"],
            ],
            {"R0": 0},
            [("R0", 0, 5)],
        )
        result = VLIWMachine(prog, base_machine(), Memory()).run()
        assert result.output == [1]
        assert result.recoveries == 0


class TestConfigValidation:
    def test_issue_width_positive(self):
        with pytest.raises(ValueError):
            MachineConfig(issue_width=0)

    def test_ccr_entries_positive(self):
        with pytest.raises(ValueError):
            MachineConfig(ccr_entries=0)

    def test_speculation_depth_bounded(self):
        with pytest.raises(ValueError):
            MachineConfig(ccr_entries=4, max_speculation_depth=5)

    def test_speculation_depth_defaults_to_ccr(self):
        assert MachineConfig(ccr_entries=4).speculation_depth == 4
        assert MachineConfig(
            ccr_entries=4, max_speculation_depth=2
        ).speculation_depth == 2
