"""Sequential and re-buffered speculative exceptions.

Section 3.5's recovery machinery must also compose: a program can commit
several independent speculative exceptions (each triggering its own
roll-back), and a fault re-raised during recovery whose predicate is
still unspecified under the future condition must be buffered *again*
and recovered on a later commit.
"""

from repro.core.exceptions import FaultKind
from repro.isa.parser import parse_instruction as P
from repro.machine import Bundle, VLIWMachine, VLIWProgram
from repro.machine.config import base_machine
from repro.machine.program import RegionSpan
from repro.sim.memory import Memory


def paging_handler(backing):
    def handler(fault, machine):
        if fault.kind is FaultKind.MEMORY and fault.address in backing:
            machine.memory.map(fault.address, backing[fault.address])
            return True
        return False

    return handler


def build_two_region_program():
    """Two consecutive regions, each with its own committed speculative
    fault on an unmapped word."""
    bundles = [
        # Region A: speculative load of word 600 under c0 (commits true).
        Bundle((P("li r1, 600"), P("li r2, 1"))),
        Bundle((P("[c0] ld r3, r1, 0"),)),
        Bundle((P("ceqi c0, r2, 1"),)),
        Bundle((P("nop"),)),
        Bundle((P("[c0] jmp RB"), P("[!c0] jmp RB"))),
        # Region B: same pattern on word 700.
        Bundle((P("li r4, 700"),)),
        Bundle((P("[c0] ld r5, r4, 0"),)),
        Bundle((P("ceqi c0, r2, 1"),)),
        Bundle((P("nop"),)),
        Bundle((P("[c0] jmp OUT"), P("[!c0] jmp OUT"))),
        Bundle((P("out r3"),)),
        Bundle((P("out r5"), P("halt"))),
    ]
    return VLIWProgram(
        bundles=bundles,
        labels={"RA": 0, "RB": 5, "OUT": 10},
        regions=[
            RegionSpan("RA", 0, 5),
            RegionSpan("RB", 5, 10),
            RegionSpan("OUT", 10, 12),
        ],
    )


def test_two_independent_recoveries():
    backing = {600: 41, 700: 43}
    memory = Memory(mapped_only=True)
    machine = VLIWMachine(
        build_two_region_program(),
        base_machine(),
        memory,
        fault_handler=paging_handler(backing),
    )
    result = machine.run()
    assert result.output == [41, 43]
    assert result.recoveries == 2
    assert result.handled_faults == 2


def test_rebuffered_exception_recovers_on_second_commit():
    """A fault whose predicate is deeper than the first commit point is
    re-buffered during the first recovery and handled by a second one."""
    backing = {600: 9, 700: 11}
    bundles = [
        Bundle((P("li r1, 600"), P("li r2, 1"), P("li r4, 700"))),
        # Two speculative loads with different depths.
        Bundle((P("[c0] ld r3, r1, 0"), P("[c0&c1] ld r5, r4, 0"))),
        Bundle((P("ceqi c0, r2, 1"),)),  # commits the c0 fault first
        Bundle((P("nop"),)),
        Bundle((P("ceqi c1, r2, 1"),)),  # later commits the c0&c1 fault
        Bundle((P("nop"),)),
        Bundle((P("[c0&c1] jmp OUT"), P("[!c0] jmp OUT"), P("[c0&!c1] jmp OUT"))),
        Bundle((P("out r3"),)),
        Bundle((P("out r5"), P("halt"))),
    ]
    prog = VLIWProgram(
        bundles=bundles,
        labels={"RA": 0, "OUT": 7},
        regions=[RegionSpan("RA", 0, 7), RegionSpan("OUT", 7, 9)],
    )
    memory = Memory(mapped_only=True)
    machine = VLIWMachine(
        prog, base_machine(), memory, fault_handler=paging_handler(backing)
    )
    result = machine.run()
    assert result.output == [9, 11]
    assert result.recoveries == 2
    assert result.handled_faults == 2
