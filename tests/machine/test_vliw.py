"""Cycle-level machine tests, including the paper's Table 1 walkthrough."""

import pytest

from repro.core.exceptions import ScheduleViolation, UnhandledFault
from repro.isa.parser import parse_instruction as P
from repro.machine import Bundle, VLIWMachine, VLIWProgram
from repro.machine.config import MachineConfig, base_machine, full_issue_machine
from repro.machine.program import RegionSpan
from repro.sim.memory import Memory


def program(bundle_specs, labels, regions):
    return VLIWProgram(
        bundles=[Bundle(tuple(P(text) for text in spec)) for spec in bundle_specs],
        labels=labels,
        regions=[RegionSpan(*span) for span in regions],
    )


def run(prog, config=None, memory=None, **kwargs):
    machine = VLIWMachine(
        prog, config or base_machine(), memory or Memory(), **kwargs
    )
    return machine.run(), machine


class TestBasics:
    def test_straightline(self):
        prog = program(
            [["li r1, 6", "li r2, 7"], ["mul r3, r1, r2"], ["out r3"], ["halt"]],
            {"R0": 0},
            [("R0", 0, 4)],
        )
        result, _ = run(prog)
        assert result.output == [42]
        assert result.cycles == 4

    def test_load_latency_two(self):
        memory = Memory()
        memory.write_block(100, [9])
        prog = program(
            [
                ["li r1, 100"],
                ["ld r2, r1, 0"],
                ["nop"],  # result not ready in this cycle
                ["out r2"],
                ["halt"],
            ],
            {"R0": 0},
            [("R0", 0, 5)],
        )
        result, _ = run(prog, memory=memory)
        assert result.output == [9]

    def test_commit_and_squash(self):
        prog = program(
            [
                ["li r1, 5", "li r2, 7"],
                ["clt c0, r1, r2", "[c0] addi r3, r1, 10", "[!c0] addi r4, r1, 20"],
                ["jmp R1"],
                ["out r3"],
                ["out r4", "halt"],
            ],
            {"R0": 0, "R1": 3},
            [("R0", 0, 3), ("R1", 3, 5)],
        )
        result, _ = run(prog)
        assert result.output == [15, 0]
        assert result.speculative_ops == 2
        assert result.squashed_ops == 0

    def test_region_transfer_resets_ccr(self):
        prog = program(
            [
                ["li r1, 1"],
                ["ceqi c0, r1, 1"],
                ["jmp R1"],
                # Next region: c0 must be unspecified again, so a predicated
                # op stays speculative until c0 is re-set.
                ["[c0] li r2, 9"],
                ["cnei c0, r1, 1"],  # c0 = False now
                ["nop"],
                ["jmp R2"],
                ["out r2", "halt"],
            ],
            {"R0": 0, "R1": 3, "R2": 7},
            [("R0", 0, 3), ("R1", 3, 7), ("R2", 7, 8)],
        )
        result, _ = run(prog)
        assert result.output == [0]  # squashed: r2 never committed

    def test_store_buffer_forwarding(self):
        prog = program(
            [
                ["li r1, 100", "li r2, 5"],
                ["st r2, r1, 0"],
                ["ld r3, r1, 0"],  # must see the buffered/retired store
                ["nop"],  # load latency
                ["out r3"],
                ["halt"],
            ],
            {"R0": 0},
            [("R0", 0, 6)],
        )
        result, _ = run(prog)
        assert result.output == [5]

    def test_speculative_store_squashed_never_reaches_memory(self):
        memory = Memory()
        prog = program(
            [
                ["li r1, 100", "li r2, 5"],
                ["[c0] st r2, r1, 0"],
                ["cnei c0, r2, 5"],  # c0 = False
                ["nop"],
                ["jmp R1"],
                ["halt"],
            ],
            {"R0": 0, "R1": 5},
            [("R0", 0, 5), ("R1", 5, 6)],
        )
        run(prog, memory=memory)
        assert memory.load(100) == 0

    def test_shadow_read_with_fallback(self):
        """A .s read uses the shadow while valid, sequential after commit."""
        prog = program(
            [
                ["li r1, 3"],
                ["[c0] addi r2, r1, 100"],
                ["out r2"],  # speculative r2 not committed: sequential 0
                ["ceqi c0, r1, 3"],
                ["nop"],
                ["add r3, r2.s, r1"],  # after commit: shadow invalid -> 103
                ["out r3"],
                ["halt"],
            ],
            {"R0": 0},
            [("R0", 0, 8)],
        )
        result, _ = run(prog)
        assert result.output == [0, 106]


class TestScheduleViolations:
    def test_issue_width_enforced(self):
        prog = program(
            [["nop", "nop", "nop"], ["halt"]], {"R0": 0}, [("R0", 0, 2)]
        )
        with pytest.raises(ScheduleViolation):
            run(prog, config=MachineConfig(issue_width=2))

    def test_fu_oversubscription(self):
        prog = program(
            [["ld r1, r0, 100", "ld r2, r0, 101", "ld r3, r0, 102"], ["halt"]],
            {"R0": 0},
            [("R0", 0, 2)],
        )
        with pytest.raises(ScheduleViolation):
            run(prog)  # base machine has 2 load units

    def test_jump_with_unspecified_predicate(self):
        prog = program(
            [["[c0] jmp R0"], ["halt"]], {"R0": 0}, [("R0", 0, 2)]
        )
        with pytest.raises(ScheduleViolation):
            run(prog)

    def test_running_off_the_end(self):
        prog = program([["nop"]], {"R0": 0}, [("R0", 0, 1)])
        with pytest.raises(ScheduleViolation):
            run(prog)

    def test_full_issue_machine_allows_wide_bundles(self):
        prog = program(
            [
                ["ld r1, r0, 100", "ld r2, r0, 101", "ld r3, r0, 102"],
                ["halt"],
            ],
            {"R0": 0},
            [("R0", 0, 2)],
        )
        result, _ = run(prog, config=full_issue_machine(8, 4))
        assert result.cycles == 2


class TestPaperTable1:
    """Figure 4's schedule replayed instruction for instruction.

    The original addresses are shifted into our valid address range, and
    `load array` is modelled as a load from a fixed array address, but the
    predicate structure, issue cycles, and latencies match the paper, so
    the machine must reproduce Table 1's writes/commits/squashes.
    """

    def build(self):
        # Initial state: r2=100 (pointer), mem[100]=5 (so r1=5, r3=6),
        # r4=10 (c0 = 6<10 = T), r5=50, mem[106]=99 (r6, c1 = 50<99 = T),
        # r7=300, c2 = (100<0) = F. Path taken: c0&c1 -> exit i17 to L8.
        memory = Memory()
        memory.write_block(100, [5])
        memory.write_block(106, [99])
        memory.write_block(200, [7])  # the "array"
        bundles = [
            # (1) i1: alw r1 = load(r2)        | i15: c0&c1 r2.s = r2 - 1
            ["ld r1, r2, 0", "[c0&c1] addi r2, r2, -1"],
            # (2) i10: !c0 r5.s = load array   | i14: c0&c1 store(r7) = r5
            ["[!c0] ld r5, r0, 200", "[c0&c1] st r5, r7, 0"],
            # (3) i2: alw r3 = r1 + 1          | i16: c0&c1 r7.s = r2.s << 1
            ["addi r3, r1, 1", "[c0&c1] slli r7, r2.s, 1"],
            # (4) i6: c0 r6 = load(r3)         | i3: alw c0 = r3 < r4
            ["[c0] ld r6, r3, 100", "clt c0, r3, r4"],
            # (5) i11: alw c2 = r2 < 0         | nop
            ["clt c2, r2, r0"],
            # (6) i7: alw c1 = r5 < r6         | i12: !c0&c2 j L6
            ["clt c1, r5, r6", "[!c0&c2] jmp L6"],
            # (7) i9: c0&!c1 j L5              | i17: c0&c1 j L8
            ["[c0&!c1] jmp L5", "[c0&c1] jmp L8"],
            # (8) i13: !c0&!c2 j L7
            ["[!c0&!c2] jmp L7"],
            # L5/L6/L7/L8 continuation regions:
            ["halt"],  # L5
            ["halt"],  # L6
            ["halt"],  # L7
            ["out r2"],  # L8 (one store unit: one out per cycle)
            ["out r7"],
            ["halt"],
        ]
        prog = program(
            bundles,
            {"R0": 0, "L5": 8, "L6": 9, "L7": 10, "L8": 11},
            [
                ("R0", 0, 8),
                ("L5", 8, 9),
                ("L6", 9, 10),
                ("L7", 10, 11),
                ("L8", 11, 14),
            ],
        )
        return prog, memory

    def setup_machine(self):
        prog, memory = self.build()
        machine = VLIWMachine(
            prog, base_machine(), memory, record_events=True
        )
        machine.regfile.write_sequential(2, 100)
        machine.regfile.write_sequential(4, 10)
        machine.regfile.write_sequential(5, 50)
        machine.regfile.write_sequential(7, 300)
        return machine

    def test_final_state(self):
        machine = self.setup_machine()
        result = machine.run()
        assert result.output == [99, 198]  # committed r2 = 99, r7 = 99<<1
        assert result.memory.load(300) == 50  # committed store(r7)=r5
        assert result.registers[1] == 5  # r1 = mem[100]
        assert result.registers[3] == 6  # r3 = r1+1
        assert result.registers[6] == 99  # r6 committed during execution
        assert result.registers[5] == 50  # r5 speculative load squashed

    def test_cycle_by_cycle_transitions(self):
        machine = self.setup_machine()
        machine.run()
        by_cycle = {e.cycle: e for e in machine.events}

        # Cycle 1: i15 buffers r2 speculatively under c0&c1.
        assert ("r2", "c0&c1") in by_cycle[1].speculative_writes
        # Cycle 2: i1's load lands in sequential r1; i14 appends sb entry.
        assert 1 in by_cycle[2].sequential_writes
        assert any(n.startswith("sb") for n, _ in by_cycle[2].speculative_writes)
        # Cycle 3: r3 sequential; r5 (i10 load) and r7 speculative.
        assert 3 in by_cycle[3].sequential_writes
        assert ("r5", "!c0") in by_cycle[3].speculative_writes
        assert ("r7", "c0&c1") in by_cycle[3].speculative_writes
        # Cycle 4: i3 sets c0 = True.
        assert (0, True) in by_cycle[4].ccr_sets
        # Cycle 5: r6 committed during execution (sequential write);
        # r5 squashed; i11 sets c2 = False.
        assert 6 in by_cycle[5].sequential_writes
        assert "r5" in by_cycle[5].squashed
        assert (2, False) in by_cycle[5].ccr_sets
        # Cycle 6: i7 sets c1 = True.
        assert (1, True) in by_cycle[6].ccr_sets
        # Cycle 7: r2, r7 and the store buffer entry commit; transfer to L8.
        assert set(by_cycle[7].committed) >= {"r2", "r7"}
        assert any(n.startswith("sb") for n in by_cycle[7].committed)

    def test_timing_matches_paper(self):
        machine = self.setup_machine()
        result = machine.run()
        # Region exits at cycle 7 via i17; L8 takes 3 more cycles.
        assert result.cycles == 7 + 3
        # i9 and i12 squashed at issue; i13 never issues (exit at cycle 7).
        assert result.squashed_ops == 2
        # Speculative issues: i15, i10, i14, i16, i6.
        assert result.speculative_ops == 5
