"""Tests for the branch target buffer model."""

import dataclasses

import pytest

from repro.compiler import evaluate_model
from repro.machine.btb import BranchTargetBuffer
from repro.machine.config import base_machine
from repro.workloads import get_workload


class TestBtb:
    def test_first_access_misses_then_hits(self):
        btb = BranchTargetBuffer(16)
        assert btb.access("loop") is False
        assert btb.access("loop") is True
        assert btb.hits == 1 and btb.misses == 1

    def test_conflict_eviction(self):
        btb = BranchTargetBuffer(1)
        assert btb.access("a") is False
        assert btb.access("b") is False  # evicts a
        assert btb.access("a") is False  # evicted

    def test_hit_rate(self):
        btb = BranchTargetBuffer(8)
        assert btb.hit_rate == 1.0
        btb.access("x")
        for _ in range(9):
            btb.access("x")
        assert btb.hit_rate == 0.9

    def test_validation(self):
        with pytest.raises(ValueError):
            BranchTargetBuffer(0)


class TestMachineIntegration:
    def test_finite_btb_costs_a_little(self):
        workload = get_workload("grep")
        results = {}
        for label, config in (
            ("optimistic", base_machine()),
            ("finite", dataclasses.replace(base_machine(), btb_entries=64)),
            ("tiny", dataclasses.replace(base_machine(), btb_entries=1)),
        ):
            evaluation = evaluate_model(
                workload.program, "region_pred", config,
                train_memory=workload.train_memory(),
                eval_memory=workload.eval_memory(),
            )
            results[label] = evaluation.machine.cycles
        assert results["optimistic"] <= results["finite"] <= results["tiny"]
        # Steady-state loops: a big BTB costs only compulsory misses.
        assert results["finite"] <= results["optimistic"] * 1.05
        # A one-entry BTB thrashes between the loop back edge and exits.
        assert results["tiny"] > results["finite"]
