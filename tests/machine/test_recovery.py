"""Speculative-exception recovery tests (Section 3.5 / Figure 5)."""

import pytest

from repro.core.exceptions import FaultKind, UnhandledFault
from repro.isa.parser import parse_instruction as P
from repro.machine import Bundle, VLIWMachine, VLIWProgram
from repro.machine.config import base_machine
from repro.machine.program import RegionSpan
from repro.sim.memory import Memory


def paging_handler(fault, machine):
    """Demand-page handler: map the faulting word with a sentinel value."""
    if fault.kind is FaultKind.MEMORY and fault.address is not None:
        try:
            machine.memory.map(fault.address, 777)
            return True
        except Exception:
            return False
    return False


def build(cmp_op):
    """A region with a speculative unsafe load under c0.

    ``cmp_op`` decides c0: 'cgt' makes the faulting path commit, 'clt'
    makes it squash.
    """
    bundles = [
        Bundle((P("li r1, 100"), P("li r2, 3"))),
        Bundle((P("[c0] ld r3, r1, 0"),)),  # unsafe speculative load
        Bundle((P(f"{cmp_op} c0, r2, r0"),)),  # commit point for c0
        Bundle((P("[c0] addi r4, r3.s, 1"), P("[!c0] li r4, 5"))),
        Bundle((P("nop"),)),
        Bundle((P("[c0] jmp OUT"),)),
        Bundle((P("[!c0] jmp OUT"),)),
        Bundle((P("out r4"),)),
        Bundle((P("halt"),)),
    ]
    return VLIWProgram(
        bundles=bundles,
        labels={"R0": 0, "OUT": 7},
        regions=[RegionSpan("R0", 0, 7), RegionSpan("OUT", 7, 9)],
    )


class TestRecovery:
    def test_committed_exception_recovers(self):
        """c0 commits true: recovery re-executes, handler repairs, and the
        dependent speculative instruction regenerates its value."""
        machine = VLIWMachine(
            build("cgt"),
            base_machine(),
            Memory(mapped_only=True),
            fault_handler=paging_handler,
        )
        result = machine.run()
        assert result.output == [778]  # 777 (paged value) + 1
        assert result.recoveries == 1
        assert result.handled_faults == 1

    def test_squashed_exception_is_free(self):
        """c0 commits false: the buffered exception squashes silently."""
        machine = VLIWMachine(
            build("clt"),
            base_machine(),
            Memory(mapped_only=True),
            fault_handler=paging_handler,
        )
        result = machine.run()
        assert result.output == [5]
        assert result.recoveries == 0
        assert result.handled_faults == 0

    def test_unhandled_committed_exception_raises(self):
        machine = VLIWMachine(
            build("cgt"), base_machine(), Memory(mapped_only=True)
        )
        with pytest.raises(UnhandledFault):
            machine.run()

    def test_nonspeculative_fault_traps_immediately(self):
        bundles = [
            Bundle((P("li r1, 500"),)),
            Bundle((P("ld r2, r1, 0"),)),  # alw unsafe load, unmapped
            Bundle((P("nop"),)),
            Bundle((P("out r2"),)),
            Bundle((P("halt"),)),
        ]
        prog = VLIWProgram(
            bundles=bundles, labels={"R0": 0}, regions=[RegionSpan("R0", 0, 5)]
        )
        machine = VLIWMachine(
            prog,
            base_machine(),
            Memory(mapped_only=True),
            fault_handler=paging_handler,
        )
        result = machine.run()
        assert result.output == [777]
        assert result.recoveries == 0  # no rollback: handled at issue
        assert result.handled_faults == 1


class TestFigure5Scenario:
    """The paper's Figure 5 walkthrough: two speculative unsafe loads on
    opposite arms (c0&c1 and c0&!c1); only the committed one is handled."""

    def build(self, c1_true: bool):
        set_c1 = "cgt c1, r2, r8" if c1_true else "clt c1, r2, r8"
        bundles = [
            Bundle((P("li r6, 600"), P("li r4, 400"))),
            Bundle((P("li r8, 0"), P("li r2, 5"))),
            Bundle((P("cgei c0, r2, 0"),)),  # i2: c0 = true
            Bundle((P("[c0&c1] ld r3, r4, 0"),)),  # i4: faults (unmapped)
            Bundle((P("[c0&!c1] ld r5, r6, 0"),)),  # i5: faults (unmapped)
            Bundle((P("[c0&c1] add r7, r7, r3.s"),)),  # i6: consumes r3.s
            Bundle((P(set_c1),)),  # i7: commit point for c1
            Bundle((P("nop"),)),
            Bundle((P("[c1] jmp OUT"),)),
            Bundle((P("[!c1] jmp OUT"),)),
            Bundle((P("out r7"), P("halt"))),
        ]
        return VLIWProgram(
            bundles=bundles,
            labels={"R0": 0, "OUT": 10},
            regions=[RegionSpan("R0", 0, 10), RegionSpan("OUT", 10, 11)],
        )

    def test_only_committed_exception_handled(self):
        machine = VLIWMachine(
            self.build(c1_true=True),
            base_machine(),
            Memory(mapped_only=True),
            fault_handler=paging_handler,
        )
        result = machine.run()
        # i4 handled (777 paged in), i5's exception squashed: exactly one
        # handler invocation, one recovery.
        assert result.handled_faults == 1
        assert result.recoveries == 1
        assert result.output == [777]  # r7 = 0 + repaired r3

    def test_opposite_arm(self):
        machine = VLIWMachine(
            self.build(c1_true=False),
            base_machine(),
            Memory(mapped_only=True),
            fault_handler=paging_handler,
        )
        result = machine.run()
        # Now c1 is false: i4's exception squashes... but i5's commits.
        assert result.handled_faults == 1
        assert result.recoveries == 1
        assert result.output == [0]  # r7 unchanged on the !c1 arm
