"""The hand-scheduled VLIW text format (``parse_vliw``).

The format exists so gadgets and shrunk security cases serialize as
plain text; the contract is a lossless round trip with
``VLIWProgram.format()`` and loud errors on malformed input (ddmin
leans on the latter to reject structurally invalid reductions).
"""

import pytest

from repro.machine.text import parse_vliw
from repro.isa.parser import ParseError


GADGET = (
    "entry:\n"
    "  addi r1, r0, 20\n"
    "  [c0] ld r2, r1, 100 ; addi r4, r0, 1\n"
    "  nop\n"
    "  clti c0, r1, 8\n"
    "  halt\n"
)


class TestParse:
    def test_bundles_labels_region(self):
        program = parse_vliw(GADGET)
        assert len(program.bundles) == 5
        assert len(program.bundles[1]) == 2
        assert program.labels["entry"] == 0
        (region,) = program.regions
        assert (region.start, region.end) == (0, len(program.bundles))

    def test_bare_nop_is_an_empty_bundle(self):
        program = parse_vliw("entry:\n  nop\n  halt\n")
        assert len(program.bundles[0]) == 0

    def test_entry_label_injected_when_absent(self):
        program = parse_vliw("  addi r1, r0, 1\n  halt\n")
        assert program.labels["entry"] == 0

    def test_comments_and_blank_lines_ignored(self):
        program = parse_vliw(
            "# a gadget\nentry:\n\n  addi r1, r0, 1  # set up\n  halt\n"
        )
        assert len(program.bundles) == 2

    def test_numeric_index_prefixes_stripped(self):
        # format() emits "  NNNN: op ; op" lines; parse accepts them.
        program = parse_vliw("entry:\n  0003: addi r1, r0, 1\n  halt\n")
        assert len(program.bundles) == 2


class TestRoundTrip:
    def test_format_parse_format_is_stable(self):
        program = parse_vliw(GADGET)
        text = program.format()
        again = parse_vliw(text)
        assert again.format() == text
        assert [len(b) for b in again.bundles] == [
            len(b) for b in program.bundles
        ]


class TestErrors:
    def test_empty_input_rejected(self):
        with pytest.raises(ParseError):
            parse_vliw("# nothing here\n")

    def test_duplicate_label_rejected(self):
        with pytest.raises(ParseError):
            parse_vliw("a:\n  halt\na:\n  halt\n")

    def test_garbage_op_rejected(self):
        with pytest.raises(ParseError):
            parse_vliw("entry:\n  frobnicate r1\n")
