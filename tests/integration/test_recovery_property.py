"""Property test: future-condition recovery under random page faults.

Random structured programs run over a demand-paged memory with a random
subset of data words not resident.  Speculatively hoisted loads will hit
unmapped words; depending on how control resolves, the buffered exception
is either squashed for free or committed, triggering roll-back, recovery
re-execution, and a pager invocation decided against the future condition.

Oracle: the scalar interpreter with the *same* pager.  Whatever mixture of
squashes and recoveries the machine goes through, the observable output
must match the scalar run exactly.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.compiler import evaluate_model
from repro.core.exceptions import FaultKind
from repro.machine.config import base_machine
from repro.sim.memory import Memory
from repro.workloads.synthetic import generate


def paged_memory(synthetic, unmap_fraction: float, seed: int):
    """The synthetic image as demand-paged memory with holes."""
    backing: dict[int, int] = {}
    for base, values in synthetic.memory_image.items():
        for offset, value in enumerate(values):
            backing[base + offset] = value
    rng = random.Random(seed)
    resident = Memory(mapped_only=True)
    for address, value in backing.items():
        if rng.random() >= unmap_fraction:
            resident.map(address, value)
    return resident, backing


def make_pager(backing):
    stats = {"calls": 0}

    def pager(fault, machine):
        if fault.kind is FaultKind.MEMORY and fault.address in backing:
            machine.memory.map(fault.address, backing[fault.address])
            stats["calls"] += 1
            return True
        return False

    return pager, stats


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 50_000),
    unmap=st.sampled_from([0.1, 0.3, 0.6]),
)
def test_recovery_preserves_semantics_under_page_faults(seed, unmap):
    synthetic = generate(seed, predictability=0.6, size=4)
    resident, backing = paged_memory(synthetic, unmap, seed ^ 0xFA)
    pager, _ = make_pager(backing)
    # evaluate_model compares the machine's output against the scalar
    # interpreter run with the same pager and raises on any divergence.
    evaluation = evaluate_model(
        synthetic.program,
        "region_pred",
        base_machine(),
        train_memory=resident.clone(),
        eval_memory=resident,
        fault_handler=pager,
    )
    assert evaluation.machine is not None
    assert evaluation.machine.handled_faults >= 0


def test_recoveries_actually_happen():
    """Across a batch of seeds, at least some runs must take the full
    recovery path (otherwise the property above proves nothing)."""
    total_recoveries = 0
    total_handled = 0
    for seed in range(30):
        synthetic = generate(seed, predictability=0.6, size=4)
        resident, backing = paged_memory(synthetic, 0.4, seed)
        pager, _ = make_pager(backing)
        evaluation = evaluate_model(
            synthetic.program,
            "region_pred",
            base_machine(),
            train_memory=resident.clone(),
            eval_memory=resident,
            fault_handler=pager,
        )
        assert evaluation.machine is not None
        total_recoveries += evaluation.machine.recoveries
        total_handled += evaluation.machine.handled_faults
    assert total_recoveries > 0, "no run ever entered recovery mode"
    assert total_handled > 0
