"""The central correctness property of the whole reproduction.

For arbitrary generated programs, the region- and trace-predicating
compilers must emit VLIW code that the cycle-level predicating machine
executes to *exactly* the scalar interpreter's observable output -- with
all the machinery engaged: both-arms speculation, predicated state
buffering, store-buffer forwarding, shadow-operand reads with sequential
fallback, and region transfers.

A second property cross-checks the trace-driven analytic cycle counter
against the machine's measured cycles: on fault-free runs they must agree
exactly, which pins the analytic counter (used for the restricted
baselines and the big sweeps) to the executable truth.
"""

from hypothesis import given, settings, strategies as st

from repro.compiler import evaluate_model
from repro.machine.config import MachineConfig, base_machine, full_issue_machine
from repro.workloads.synthetic import generate

SETTINGS = dict(max_examples=25, deadline=None)


@settings(**SETTINGS)
@given(
    seed=st.integers(0, 100_000),
    level=st.sampled_from([0.5, 0.75, 0.95]),
)
def test_region_predicating_preserves_semantics(seed, level):
    synthetic = generate(seed, predictability=level, size=4)
    # evaluate_model raises AssertionError on any architectural divergence.
    evaluation = evaluate_model(
        synthetic.program,
        "region_pred",
        base_machine(),
        train_memory=synthetic.make_memory(),
        eval_memory=synthetic.make_memory(),
    )
    assert evaluation.machine is not None
    assert evaluation.speedup > 0


@settings(**SETTINGS)
@given(seed=st.integers(0, 100_000))
def test_trace_predicating_preserves_semantics(seed):
    synthetic = generate(seed, predictability=0.7, size=4)
    evaluation = evaluate_model(
        synthetic.program,
        "trace_pred",
        base_machine(),
        train_memory=synthetic.make_memory(),
        eval_memory=synthetic.make_memory(),
    )
    assert evaluation.machine is not None


@settings(**SETTINGS)
@given(seed=st.integers(0, 100_000))
def test_analytic_counter_matches_machine(seed):
    synthetic = generate(seed, predictability=0.7, size=4)
    evaluation = evaluate_model(
        synthetic.program,
        "region_pred",
        base_machine(),
        train_memory=synthetic.make_memory(),
        eval_memory=synthetic.make_memory(),
    )
    assert evaluation.machine is not None
    assert evaluation.machine.recoveries == 0
    assert evaluation.analytic.cycles == evaluation.machine.cycles


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(0, 100_000),
    width=st.sampled_from([2, 8]),
    depth=st.sampled_from([1, 4]),
)
def test_semantics_across_machine_shapes(seed, width, depth):
    synthetic = generate(seed, predictability=0.6, size=3)
    evaluation = evaluate_model(
        synthetic.program,
        "region_pred",
        full_issue_machine(width, depth),
        train_memory=synthetic.make_memory(),
        eval_memory=synthetic.make_memory(),
    )
    assert evaluation.machine is not None


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 100_000))
def test_infinite_shadow_preserves_semantics(seed):
    synthetic = generate(seed, predictability=0.6, size=3)
    config = MachineConfig(shadow_capacity=None)
    evaluation = evaluate_model(
        synthetic.program,
        "region_pred",
        config,
        train_memory=synthetic.make_memory(),
        eval_memory=synthetic.make_memory(),
    )
    assert evaluation.machine is not None
