"""Tests for the list scheduler and the rename-hoist transform."""

from repro.analysis.branch_prediction import StaticPredictor
from repro.compiler.dependence import build_dependence
from repro.compiler.list_scheduler import list_schedule
from repro.compiler.models import GLOBAL, REGION_PRED
from repro.compiler.predication import Role, linearize
from repro.compiler.regiontree import grow_region
from repro.compiler.rename import apply_renaming
from repro.ir import build_cfg, compute_liveness
from repro.isa import parse_program
from repro.machine.config import MachineConfig, base_machine


def compile_region(source, policy, *, eliminate, rename=False, config=None):
    program = parse_program(source)
    cfg = build_cfg(program)
    tree = grow_region(
        cfg, cfg.entry, both_arms=policy.both_arms, window_blocks=16,
        max_conditions=4, predictor=StaticPredictor({}, {}),
    )
    region = linearize(tree, cfg, eliminate_branches=eliminate)
    liveness = compute_liveness(cfg)
    live = {b: set(liveness.blocks[b].live_in_regs) for b in cfg.blocks}
    if rename:
        apply_renaming(region, policy, live)
    graph = build_dependence(region, policy, live)
    schedule = list_schedule(graph, config or base_machine())
    return region, graph, schedule


STRAIGHT = """
    li r1, 1
    li r2, 2
    add r3, r1, r2
    add r4, r3, r1
    out r4
    halt
"""


class TestListScheduler:
    def test_respects_latencies(self):
        region, graph, schedule = compile_region(
            STRAIGHT, REGION_PRED, eliminate=True
        )
        cycle = schedule.cycle_of
        for i, j, lat in graph.edges:
            assert cycle[j] >= cycle[i] + lat, (i, j, lat)

    def test_respects_issue_width(self):
        config = MachineConfig(
            issue_width=1, num_alu=1, num_branch=1, num_load=1, num_store=1
        )
        region, graph, schedule = compile_region(
            STRAIGHT, REGION_PRED, eliminate=True, config=config
        )
        for bundle in schedule.bundles:
            assert len(bundle) <= 1

    def test_respects_fu_limits(self):
        source = "\n".join(
            [f"    li r{r}, {r}" for r in range(1, 9)]
            + [f"    ld r{r}, r{r}, 100" for r in range(1, 9)]
            + ["    out r1", "    halt"]
        )
        region, graph, schedule = compile_region(
            source, REGION_PRED, eliminate=True
        )
        config = base_machine()
        items = region.items
        for bundle in schedule.bundles:
            loads = sum(1 for i in bundle if items[i].instr.is_load)
            assert loads <= config.num_load

    def test_independent_ops_pack_into_one_cycle(self):
        source = "    li r1, 1\n    li r2, 2\n    li r3, 3\n    li r4, 4\n    halt"
        region, graph, schedule = compile_region(
            source, REGION_PRED, eliminate=True
        )
        assert len(schedule.bundles[0]) == 4

    def test_all_items_scheduled_once(self):
        region, graph, schedule = compile_region(
            STRAIGHT, REGION_PRED, eliminate=True
        )
        seen = [i for bundle in schedule.bundles for i in bundle]
        assert sorted(seen) == list(range(len(region.items)))


BRANCHY = """
    li r1, 5
    li r2, 3
    clt c0, r2, r1
    br  c0, takearm
    addi r3, r1, 1
    jmp join
takearm:
    addi r3, r1, 2
join:
    out r3
    halt
"""


class TestRenaming:
    def test_hoisted_op_becomes_alw_with_copy(self):
        program = parse_program(BRANCHY)
        cfg = build_cfg(program)
        # A 2-block window keeps the join outside the region, so r3 is
        # live at an exit target and the restoring copy must survive.
        tree = grow_region(
            cfg, cfg.entry, both_arms=False, window_blocks=2,
            max_conditions=4, predictor=StaticPredictor({}, {}),
        )
        region = linearize(tree, cfg, eliminate_branches=False)
        liveness = compute_liveness(cfg)
        live = {b: set(liveness.blocks[b].live_in_regs) for b in cfg.blocks}
        before = [item.instr.opcode for item in region.items]
        apply_renaming(region, GLOBAL, live)
        after = [item for item in region.items]
        # The predicated addi was rewritten to alw form...
        addis = [i for i in after if i.instr.opcode == "addi"]
        assert any(i.instr.pred.is_always for i in addis)
        # ...writing a fresh register, with a predicated copy since r3 is
        # live at the join (the exit target).
        movs = [i for i in after if i.instr.opcode == "mov"]
        assert movs and not movs[0].instr.pred.is_always
        assert len(after) == len(before) + len(movs)

    def test_dead_copy_eliminated_when_join_in_region(self):
        """When the region swallows the join and copy propagation rewrote
        every reader, the restoring copy is deleted (the paper's copy
        elimination)."""
        program = parse_program(BRANCHY)
        cfg = build_cfg(program)
        tree = grow_region(
            cfg, cfg.entry, both_arms=False, window_blocks=16,
            max_conditions=4, predictor=StaticPredictor({}, {}),
        )
        region = linearize(tree, cfg, eliminate_branches=False)
        liveness = compute_liveness(cfg)
        live = {b: set(liveness.blocks[b].live_in_regs) for b in cfg.blocks}
        apply_renaming(region, GLOBAL, live)
        assert not [i for i in region.items if i.instr.opcode == "mov"]
        # The out was rewritten to read the fresh register directly.
        outs = [i for i in region.items if i.instr.opcode == "out"]
        assert outs and outs[0].instr.src_regs[0] != 3

    def test_renamed_code_still_correct(self):
        """Renaming must preserve the schedule-level dependences: the copy
        writes the home register under the home predicate."""
        program = parse_program(BRANCHY)
        cfg = build_cfg(program)
        tree = grow_region(
            cfg, cfg.entry, both_arms=False, window_blocks=16,
            max_conditions=4, predictor=StaticPredictor({}, {}),
        )
        region = linearize(tree, cfg, eliminate_branches=False)
        liveness = compute_liveness(cfg)
        live = {b: set(liveness.blocks[b].live_in_regs) for b in cfg.blocks}
        apply_renaming(region, GLOBAL, live)
        movs = [i for i in region.items if i.instr.opcode == "mov"]
        for mov in movs:
            assert mov.instr.dest_reg == 3

    def test_unsafe_ops_not_renamed(self):
        source = """
            li r1, 100
            li r2, 1
            clti c0, r2, 0
            br c0, arm
            jmp join
        arm:
            ld r3, r1, 0
        join:
            out r3
            halt
        """
        program = parse_program(source)
        cfg = build_cfg(program)
        tree = grow_region(
            cfg, cfg.entry, both_arms=False, window_blocks=16,
            max_conditions=4,
            predictor=StaticPredictor({}, {1: True}),
        )
        region = linearize(tree, cfg, eliminate_branches=False)
        liveness = compute_liveness(cfg)
        live = {b: set(liveness.blocks[b].live_in_regs) for b in cfg.blocks}
        apply_renaming(region, GLOBAL, live)
        loads = [i for i in region.items if i.instr.is_load]
        for load in loads:
            assert not load.instr.pred.is_always or load.node_id == 0
