"""Tests for the CFG-level loop unroller."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.compiler.unroll import unroll_loops
from repro.ir import build_cfg, compute_dominators, find_natural_loops
from repro.isa import parse_program
from repro.sim.interpreter import run_program
from repro.sim.memory import Memory
from repro.workloads import all_workloads
from repro.workloads.synthetic import generate

COUNTED_LOOP = """
    li   r1, 0
    li   r2, 0
loop:
    add  r2, r2, r1
    addi r1, r1, 1
    clti c0, r1, 10
    br   c0, loop
    out  r2
    halt
"""

NESTED = """
    li r1, 0
    li r3, 0
outer:
    li r2, 0
inner:
    add r3, r3, r2
    addi r2, r2, 1
    clti c0, r2, 4
    br c0, inner
    addi r1, r1, 1
    clti c1, r1, 3
    br c1, outer
    out r3
    halt
"""


class TestStructure:
    def test_factor_one_is_identity(self):
        cfg = build_cfg(parse_program(COUNTED_LOOP))
        unrolled = unroll_loops(cfg, 1)
        assert len(unrolled.blocks) == len(cfg.blocks)

    def test_factor_validation(self):
        cfg = build_cfg(parse_program(COUNTED_LOOP))
        with pytest.raises(ValueError):
            unroll_loops(cfg, 0)

    def test_body_replicated(self):
        cfg = build_cfg(parse_program(COUNTED_LOOP))
        unrolled = unroll_loops(cfg, 3)
        # The loop block appears three times (original + two copies).
        origins = [b.origin for b in unrolled.blocks.values()]
        loop_origin = next(
            b.origin for b in cfg.blocks.values() if b.is_branch_block
        )
        assert origins.count(loop_origin) == 3

    def test_single_loop_header_remains(self):
        cfg = build_cfg(parse_program(COUNTED_LOOP))
        unrolled = unroll_loops(cfg, 4)
        dominators = compute_dominators(unrolled)
        loops = find_natural_loops(unrolled, dominators)
        assert len(loops) == 1
        # The unrolled loop's body is ~factor times larger.
        assert loops[0].size >= 4

    def test_size_guard(self):
        cfg = build_cfg(parse_program(COUNTED_LOOP))
        unrolled = unroll_loops(cfg, 4, max_body_blocks=0)
        assert len(unrolled.blocks) == len(cfg.blocks)

    def test_nested_loops_both_unrolled(self):
        cfg = build_cfg(parse_program(NESTED))
        inner_origin = next(
            b.origin for b in cfg.blocks.values()
            if b.taken_target == b.bid
        )
        unrolled = unroll_loops(cfg, 2)
        dominators = compute_dominators(unrolled)
        loops = find_natural_loops(unrolled, dominators)
        # Outer loop + the inner loop + the outer copy's own inner loop.
        assert len(loops) == 3
        inner_loops = [
            loop for loop in loops
            if unrolled.blocks[loop.header].origin == inner_origin
        ]
        # Each inner-loop instance is itself unrolled (two body copies).
        assert inner_loops and all(loop.size == 2 for loop in inner_loops)


class TestSemantics:
    @pytest.mark.parametrize("factor", [2, 3, 4])
    def test_counted_loop_output_preserved(self, factor):
        program = parse_program(COUNTED_LOOP)
        base = run_program(program, Memory())
        unrolled = unroll_loops(build_cfg(program), factor).to_program()
        assert run_program(unrolled, Memory()).output == base.output

    @pytest.mark.parametrize("factor", [2, 4])
    def test_nested_output_preserved(self, factor):
        program = parse_program(NESTED)
        base = run_program(program, Memory())
        unrolled = unroll_loops(build_cfg(program), factor).to_program()
        assert run_program(unrolled, Memory()).output == base.output

    @pytest.mark.parametrize(
        "name", ["compress", "eqntott", "espresso", "grep", "li", "nroff"]
    )
    def test_kernels_preserved(self, name):
        workload = next(w for w in all_workloads() if w.name == name)
        base = run_program(workload.program, workload.eval_memory())
        unrolled = unroll_loops(
            build_cfg(workload.program), 2
        ).to_program()
        result = run_program(unrolled, workload.eval_memory())
        assert result.output == base.output


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 50_000), factor=st.sampled_from([2, 3]))
def test_unrolling_preserves_semantics_property(seed, factor):
    synthetic = generate(seed, predictability=0.6, size=3)
    base = run_program(synthetic.program, synthetic.make_memory())
    unrolled = unroll_loops(
        build_cfg(synthetic.program), factor
    ).to_program()
    result = run_program(unrolled, synthetic.make_memory())
    assert result.output == base.output
