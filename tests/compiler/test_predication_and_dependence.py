"""Tests for linearization/predication and the dependence builder."""

import pytest

from repro.analysis.branch_prediction import StaticPredictor
from repro.compiler.dependence import build_dependence
from repro.compiler.models import GLOBAL, REGION_PRED, TRACE_PRED
from repro.compiler.predication import Role, linearize
from repro.compiler.regiontree import grow_region
from repro.ir import build_cfg, compute_liveness
from repro.isa import parse_program

SOURCE = """
    li   r1, 0
    li   r2, 64
loop:
    ld   r4, r1, 100
    clti c0, r4, 32
    br   c0, small
    addi r3, r3, 1
    jmp  next
small:
    ld   r5, r4, 200
    add  r3, r3, r5
next:
    addi r1, r1, 1
    clt  c1, r1, r2
    br   c1, loop
    out  r3
    halt
"""


def build(both_arms=True, eliminate=True, policy=REGION_PRED):
    program = parse_program(SOURCE)
    cfg = build_cfg(program)
    loop_head = next(
        bid for bid, b in cfg.blocks.items()
        if any(i.opcode == "ld" and i.imm == 100 for i in b.instructions)
    )
    predictor = StaticPredictor(taken_probability={}, predictions={})
    tree = grow_region(
        cfg, loop_head, both_arms=both_arms, window_blocks=16,
        max_conditions=4, predictor=predictor,
        loop_headers=frozenset({loop_head}),
    )
    region = linearize(tree, cfg, eliminate_branches=eliminate)
    liveness = compute_liveness(cfg)
    exit_live_in = {
        bid: set(liveness.blocks[bid].live_in_regs) for bid in cfg.blocks
    }
    graph = build_dependence(region, policy, exit_live_in)
    return cfg, tree, region, graph


class TestLinearize:
    def test_cond_sets_become_alw(self):
        _, _, region, _ = build()
        cond_sets = [i for i in region.items if i.role is Role.COND_SET]
        assert len(cond_sets) >= 2
        for item in cond_sets:
            assert item.instr.pred.is_always
            # Re-indexed onto allocated CCR entries 0..K-1.
            assert item.instr.dest_creg is not None

    def test_body_predicates_are_path_conditions(self):
        _, tree, region, _ = build()
        for item in region.items:
            if item.role is Role.BODY:
                node = tree.nodes[item.node_id]
                assert item.instr.pred == node.pred

    def test_predicated_exits_replace_branches(self):
        _, _, region, _ = build(eliminate=True)
        assert not any(item.role is Role.BRANCH for item in region.items)
        exits = [i for i in region.items if i.role is Role.EXIT]
        assert exits, "region must have predicated exit jumps"
        for item in exits:
            assert item.instr.opcode == "jmp"
            assert not item.instr.pred.is_always

    def test_retained_branches(self):
        _, _, region, _ = build(eliminate=False, policy=GLOBAL)
        branches = [i for i in region.items if i.role is Role.BRANCH]
        assert branches, "restricted models keep their branches"
        for item in branches:
            assert item.instr.is_conditional_branch

    def test_exit_predicates_pairwise_disjoint(self):
        _, _, region, _ = build()
        exits = [i.instr.pred for i in region.items if i.role is Role.EXIT]
        for i, a in enumerate(exits):
            for b in exits[i + 1:]:
                assert a.disjoint_with(b)


def edges_between(graph, producer_opcode, consumer_opcode):
    items = graph.region.items
    return [
        (i, j, lat)
        for i, j, lat in graph.edges
        if items[i].instr.opcode == producer_opcode
        and items[j].instr.opcode == consumer_opcode
    ]


class TestDependence:
    def test_true_dependence_latency(self):
        _, _, region, graph = build()
        # ld r4 -> clti c0 (the load feeds the compare) with load latency.
        found = edges_between(graph, "ld", "clti")
        assert any(lat == 2 for _, _, lat in found)

    def test_buffered_model_has_no_guard_edges_on_body(self):
        """Predicating: a speculative body op has no condition-set edge."""
        _, _, region, graph = build(policy=REGION_PRED)
        items = region.items
        cond_set_indices = {
            i for i, item in enumerate(items) if item.role is Role.COND_SET
        }
        # The small-arm load depends on data (r4) but must NOT depend on
        # the condition set for c0 (it crosses it speculatively).
        small_load = next(
            j for j, item in enumerate(items)
            if item.instr.opcode == "ld" and item.instr.imm == 200
        )
        incoming = {(i, lat) for i, j, lat in graph.edges if j == small_load}
        cond_producers = {i for i, _ in incoming if i in cond_set_indices}
        assert not cond_producers

    def test_guarded_model_has_guard_edges(self):
        """Global: the same load waits for its condition (latency 1)."""
        _, _, region, graph = build(policy=GLOBAL, eliminate=False)
        items = region.items
        small_load = next(
            (j for j, item in enumerate(items)
             if item.instr.opcode == "ld" and item.instr.imm == 200),
            None,
        )
        if small_load is None:
            pytest.skip("arm excluded under this growth")
        cond_set_indices = {
            i for i, item in enumerate(items) if item.role is Role.COND_SET
        }
        incoming = [
            (i, lat) for i, j, lat in graph.edges
            if j == small_load and i in cond_set_indices
        ]
        assert any(lat == 1 for _, lat in incoming)

    def test_exit_waits_for_conditions_and_liveouts(self):
        _, _, region, graph = build()
        items = region.items
        exits = [j for j, item in enumerate(items) if item.role is Role.EXIT]
        cond_set_indices = {
            i for i, item in enumerate(items) if item.role is Role.COND_SET
        }
        for e in exits:
            incoming = {i for i, j, _ in graph.edges if j == e}
            # Every condition in the exit predicate must be produced first.
            for cond, _ in items[e].instr.pred.terms:
                producer = next(
                    i for i in cond_set_indices
                    if items[i].instr.dest_creg == cond
                )
                assert producer in incoming
        # The accumulator (r3, live out) gates on-path exits.
        r3_defs = [
            j for j, item in enumerate(items)
            if item.instr.dest_reg == 3
        ]
        assert r3_defs
        gated = [
            e for e in exits
            if any((d, e) in {(i, j) for i, j, _ in graph.edges}
                   for d in r3_defs)
        ]
        assert gated

    def test_shadow_positions_marked(self):
        _, _, region, graph = build()
        items = region.items
        # add r3, r3, r5: r5 comes from the speculative small-arm load.
        consumer = next(
            j for j, item in enumerate(items)
            if item.instr.opcode == "add" and 5 in item.instr.src_regs
        )
        assert graph.shadow_positions.get(consumer), (
            "reader of a speculative def must use the .s form"
        )

    def test_forward_edges_only(self):
        _, _, _, graph = build()
        for i, j, _ in graph.edges:
            assert i < j


class TestMemoryDependence:
    def test_same_address_store_load_ordered(self):
        source = """
            li r1, 100
            li r2, 5
        top:
            st r2, r1, 0
            ld r3, r1, 0
            out r3
            halt
        """
        program = parse_program(source)
        cfg = build_cfg(program)
        predictor = StaticPredictor({}, {})
        tree = grow_region(
            cfg, cfg.entry, both_arms=True, window_blocks=16,
            max_conditions=4, predictor=predictor,
        )
        region = linearize(tree, cfg, eliminate_branches=True)
        liveness = compute_liveness(cfg)
        live = {b: set(liveness.blocks[b].live_in_regs) for b in cfg.blocks}
        graph = build_dependence(region, REGION_PRED, live)
        found = edges_between(graph, "st", "ld")
        assert any(lat == 1 for _, _, lat in found)

    def test_distinct_roots_do_not_alias(self):
        source = """
            li r1, 100
            li r2, 200
            li r3, 5
        top:
            st r3, r1, 0
            ld r4, r2, 0
            out r4
            halt
        """
        program = parse_program(source)
        cfg = build_cfg(program)
        tree = grow_region(
            cfg, cfg.entry, both_arms=True, window_blocks=16,
            max_conditions=4, predictor=StaticPredictor({}, {}),
        )
        region = linearize(tree, cfg, eliminate_branches=True)
        liveness = compute_liveness(cfg)
        live = {b: set(liveness.blocks[b].live_in_regs) for b in cfg.blocks}
        graph = build_dependence(region, REGION_PRED, live)
        assert not edges_between(graph, "st", "ld")

    def test_counter_ablation_chains_cond_sets(self):
        import dataclasses

        ordered = dataclasses.replace(TRACE_PRED, ordered_cond_sets=True)
        _, _, region, plain_graph = build(
            both_arms=False, eliminate=True, policy=TRACE_PRED
        )
        _, _, region2, ordered_graph = build(
            both_arms=False, eliminate=True, policy=ordered
        )
        def cond_chain_edges(graph):
            items = graph.region.items
            return [
                (i, j) for i, j, _ in graph.edges
                if items[i].role is Role.COND_SET
                and items[j].role is Role.COND_SET
            ]
        assert len(cond_chain_edges(ordered_graph)) > len(
            cond_chain_edges(plain_graph)
        )
