"""Tests for equivalent-join sharing (footnote 2)."""

import dataclasses

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.branch_prediction import StaticPredictor
from repro.compiler import evaluate_model
from repro.compiler.models import REGION_PRED
from repro.compiler.regiontree import grow_region, merge_equivalent_joins
from repro.ir import build_cfg, compute_dominators
from repro.isa import parse_program
from repro.machine.config import base_machine
from repro.workloads.synthetic import generate

SHARED = dataclasses.replace(REGION_PRED, share_equivalent_joins=True)

DIAMOND_LOOP = """
    li   r1, 0
    li   r2, 32
loop:
    ld   r4, r1, 100
    andi r5, r4, 1
    ceqi c0, r5, 1
    br   c0, odd
    addi r3, r3, 1
    jmp  next
odd:
    addi r3, r3, 2
next:
    addi r1, r1, 1
    clt  c1, r1, r2
    br   c1, loop
    out  r3
    halt
"""


def grown_tree(source=DIAMOND_LOOP):
    program = parse_program(source)
    cfg = build_cfg(program)
    head = next(
        bid for bid, b in cfg.blocks.items()
        if any(i.opcode == "ld" for i in b.instructions)
    )
    tree = grow_region(
        cfg, head, both_arms=True, window_blocks=16, max_conditions=4,
        predictor=StaticPredictor({}, {}), loop_headers=frozenset({head}),
    )
    return cfg, tree


class TestMerge:
    def test_join_copies_unified(self):
        cfg, tree = grown_tree()
        dominators = compute_dominators(cfg)
        before = tree.block_count()
        merged = merge_equivalent_joins(tree, cfg, dominators)
        assert merged >= 1
        assert tree.block_count() < before
        # The shared join has two in-region parents.
        parent_counts: dict[int, int] = {}
        for node in tree.nodes.values():
            for child in node.children.values():
                parent_counts[child] = parent_counts.get(child, 0) + 1
        assert max(parent_counts.values()) == 2

    def test_shared_join_predicate_is_branch_predicate(self):
        cfg, tree = grown_tree()
        dominators = compute_dominators(cfg)
        merge_equivalent_joins(tree, cfg, dominators)
        shared = [
            node_id
            for node_id in tree.nodes
            if sum(
                1
                for n in tree.nodes.values()
                if node_id in n.children.values()
            ) == 2
        ]
        assert shared
        for node_id in shared:
            node = tree.nodes[node_id]
            root = tree.nodes[tree.root]
            assert node.pred == root.pred  # control dep = branch block's

    def test_non_equivalent_join_not_merged(self):
        # The join has a direct bypass edge from the branch block, so the
        # inner branch block is not its equivalent block.
        source = """
            li r1, 0
            li r2, 16
        loop:
            ld r4, r1, 100
            ceqi c0, r4, 0
            br c0, join
            andi r5, r4, 1
            ceqi c1, r5, 1
            br c1, join
            addi r3, r3, 5
        join:
            addi r1, r1, 1
            clt c2, r1, r2
            br c2, loop
            out r3
            halt
        """
        cfg, tree = grown_tree(source)
        dominators = compute_dominators(cfg)
        before = tree.block_count()
        merge_equivalent_joins(tree, cfg, dominators)
        # The inner branch's join (reachable from the outer branch
        # directly) must stay duplicated relative to that inner branch.
        assert tree.block_count() <= before  # merge may fire at outer level


class TestSemanticsUnderSharing:
    def test_kernels_preserved(self):
        from repro.workloads import all_workloads

        for workload in all_workloads():
            evaluation = evaluate_model(
                workload.program, SHARED, base_machine(),
                train_memory=workload.train_memory(),
                eval_memory=workload.eval_memory(),
            )
            assert evaluation.machine is not None  # validated inside

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 50_000), level=st.sampled_from([0.5, 0.8]))
    def test_random_programs_preserved(self, seed, level):
        synthetic = generate(seed, predictability=level, size=4)
        evaluate_model(
            synthetic.program, SHARED, base_machine(),
            train_memory=synthetic.make_memory(),
            eval_memory=synthetic.make_memory(),
        )

    def test_sharing_reduces_code_size_somewhere(self):
        from repro.eval import ExperimentContext, run_join_sharing

        result = run_join_sharing(ExperimentContext())
        assert any(
            shared_x < dup_x - 1e-9
            for _, _, _, dup_x, shared_x in result.rows
        )
        # And never costs more static code.
        for name, _, _, dup_x, shared_x in result.rows:
            assert shared_x <= dup_x + 1e-9, name
