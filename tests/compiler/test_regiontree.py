"""Region-formation tests."""

import pytest

from repro.analysis.branch_prediction import StaticPredictor
from repro.compiler.regiontree import grow_region
from repro.core.predicate import ALWAYS
from repro.ir import build_cfg
from repro.isa import parse_program

DIAMOND_LOOP = """
    li   r1, 0
    li   r2, 64
loop:
    ld   r4, r1, 100
    andi r5, r4, 1
    ceqi c0, r5, 1
    br   c0, odd
    addi r3, r3, 1
    jmp  next
odd:
    addi r3, r3, 2
next:
    addi r1, r1, 1
    clt  c1, r1, r2
    br   c1, loop
    out  r3
    halt
"""


def neutral_predictor(probability=0.5):
    return StaticPredictor(taken_probability={}, predictions={})


def loop_header_of(cfg):
    return [b.bid for b in cfg.blocks.values() if b.taken_target == b.bid or
            (b.is_branch_block and b.taken_target in
             [p for p in cfg.blocks])][0]


class TestGrowRegion:
    def _cfg(self):
        return build_cfg(parse_program(DIAMOND_LOOP))

    def _loop_head(self, cfg):
        # The block containing the first load is the loop head.
        for bid, block in cfg.blocks.items():
            if any(i.opcode == "ld" for i in block.instructions):
                return bid
        raise AssertionError

    def test_region_includes_both_arms(self):
        cfg = self._cfg()
        head = self._loop_head(cfg)
        tree = grow_region(
            cfg, head, both_arms=True, window_blocks=16,
            max_conditions=4, predictor=neutral_predictor(),
            loop_headers=frozenset({head}),
        )
        origins = [node.origin for node in tree.nodes.values()]
        # The header appears once; both branch arms are included; the join
        # ("next") block is tail-duplicated, once per arm.
        assert origins.count(head) == 1
        arms = {cfg.blocks[head].taken_target, cfg.blocks[head].fall_through}
        assert arms <= set(origins)
        join = cfg.blocks[cfg.blocks[head].taken_target].fall_through
        assert origins.count(join) == 2

    def test_trace_includes_one_arm(self):
        cfg = self._cfg()
        head = self._loop_head(cfg)
        tree = grow_region(
            cfg, head, both_arms=False, window_blocks=16,
            max_conditions=4, predictor=neutral_predictor(),
            loop_headers=frozenset({head}),
        )
        assert len(tree.nodes) == 3  # head + one arm + join

    def test_back_edges_become_exits_to_header(self):
        cfg = self._cfg()
        head = self._loop_head(cfg)
        tree = grow_region(
            cfg, head, both_arms=True, window_blocks=16,
            max_conditions=4, predictor=neutral_predictor(),
            loop_headers=frozenset({head}),
        )
        assert head in tree.exit_targets()

    def test_root_predicate_always(self):
        cfg = self._cfg()
        head = self._loop_head(cfg)
        tree = grow_region(
            cfg, head, both_arms=True, window_blocks=16,
            max_conditions=4, predictor=neutral_predictor(),
            loop_headers=frozenset({head}),
        )
        assert tree.nodes[tree.root].pred is ALWAYS or tree.nodes[
            tree.root
        ].pred.is_always

    def test_predicates_follow_tree_paths(self):
        cfg = self._cfg()
        head = self._loop_head(cfg)
        tree = grow_region(
            cfg, head, both_arms=True, window_blocks=16,
            max_conditions=4, predictor=neutral_predictor(),
            loop_headers=frozenset({head}),
        )
        for node in tree.nodes.values():
            if node.parent is None:
                continue
            parent = tree.nodes[node.parent]
            assert node.pred.implies(parent.pred)
            assert node.pred.depth >= parent.pred.depth

    def test_condition_budget_respected(self):
        cfg = self._cfg()
        head = self._loop_head(cfg)
        tree = grow_region(
            cfg, head, both_arms=True, window_blocks=16,
            max_conditions=1, predictor=neutral_predictor(),
            loop_headers=frozenset({head}),
        )
        assert tree.conditions_used <= 1
        # The join's back-edge branch could not be predicated: the join
        # blocks must head their own regions via exits.
        for node in tree.nodes.values():
            assert node.pred.depth <= 1

    def test_window_budget_respected(self):
        cfg = self._cfg()
        head = self._loop_head(cfg)
        tree = grow_region(
            cfg, head, both_arms=True, window_blocks=2,
            max_conditions=4, predictor=neutral_predictor(),
            loop_headers=frozenset({head}),
        )
        assert tree.block_count() <= 2

    def test_exit_predicates_pairwise_disjoint(self):
        cfg = self._cfg()
        head = self._loop_head(cfg)
        tree = grow_region(
            cfg, head, both_arms=True, window_blocks=16,
            max_conditions=4, predictor=neutral_predictor(),
            loop_headers=frozenset({head}),
        )
        exits = tree.all_exits()
        assert len(exits) >= 2
        for i, a in enumerate(exits):
            for b in exits[i + 1 :]:
                assert a.pred.disjoint_with(b.pred), (str(a.pred), str(b.pred))

    def test_loop_header_barrier(self):
        cfg = self._cfg()
        head = self._loop_head(cfg)
        entry = cfg.entry
        tree = grow_region(
            cfg, entry, both_arms=True, window_blocks=16,
            max_conditions=4, predictor=neutral_predictor(),
            loop_headers=frozenset({head}),
        )
        assert all(node.origin != head for node in tree.nodes.values())
        assert head in tree.exit_targets()
