"""Tests for the CCR, predicated register file, and store buffer."""

import pytest

from repro.core import CCR, PredicatedRegisterFile, PredicatedStoreBuffer
from repro.core.counter_predicate import CounterCommitFile, CounterPredicate
from repro.core.exceptions import FaultKind, FaultRecord, ScheduleViolation
from repro.core.predicate import ALWAYS, Predicate
from repro.sim.memory import Memory

C0 = Predicate({0: True})
NOT_C0 = Predicate({0: False})
C0_C1 = Predicate({0: True, 1: True})


def fault(uid=1):
    return FaultRecord(kind=FaultKind.MEMORY, instruction_uid=uid, address=0)


class TestCCR:
    def test_starts_unspecified(self):
        ccr = CCR(4)
        assert all(ccr.get(i) is None for i in range(4))

    def test_set_get(self):
        ccr = CCR(4)
        ccr.set(2, True)
        assert ccr.get(2) is True and ccr.is_specified(2)

    def test_reset(self):
        ccr = CCR(2)
        ccr.set(0, False)
        ccr.reset()
        assert ccr.get(0) is None

    def test_copy_from(self):
        a, b = CCR(3), CCR(3)
        b.set(1, True)
        a.copy_from(b)
        assert a.get(1) is True

    def test_size_mismatch(self):
        with pytest.raises(ValueError):
            CCR(2).copy_from(CCR(3))

    def test_bounds(self):
        with pytest.raises(IndexError):
            CCR(2).set(2, True)


class TestRegisterFile:
    def test_sequential_write_read(self):
        rf = PredicatedRegisterFile()
        rf.write_sequential(3, 42)
        assert rf.read(3) == 42

    def test_zero_register_immutable(self):
        rf = PredicatedRegisterFile()
        rf.write_sequential(0, 99)
        assert rf.read(0) == 0
        rf.write_speculative(0, 99, C0)
        assert rf.read(0, shadow=True) == 0

    def test_speculative_held_until_specified(self):
        rf, ccr = PredicatedRegisterFile(), CCR(4)
        rf.write_speculative(5, 7, C0)
        events = rf.tick(ccr)
        assert events.committed == [] and events.squashed == []
        assert rf.read(5) == 0  # sequential unchanged
        assert rf.read(5, shadow=True) == 7

    def test_commit_on_true(self):
        rf, ccr = PredicatedRegisterFile(), CCR(4)
        rf.write_speculative(5, 7, C0)
        ccr.set(0, True)
        events = rf.tick(ccr)
        assert events.committed == [5]
        assert rf.read(5) == 7
        assert not rf.has_speculative_state()

    def test_squash_on_false(self):
        rf, ccr = PredicatedRegisterFile(), CCR(4)
        rf.write_speculative(5, 7, C0)
        ccr.set(0, False)
        events = rf.tick(ccr)
        assert events.squashed == [5]
        assert rf.read(5) == 0

    def test_shadow_read_falls_back_to_sequential(self):
        """The paper's operand-fetch fix: invalid shadow reads sequential."""
        rf = PredicatedRegisterFile()
        rf.write_sequential(5, 11)
        assert rf.read(5, shadow=True) == 11

    def test_same_predicate_overwrites(self):
        rf = PredicatedRegisterFile()
        rf.write_speculative(5, 1, C0)
        rf.write_speculative(5, 2, C0)
        assert rf.read(5, shadow=True) == 2

    def test_shadow_conflict_raises(self):
        """Single shadow register: conflicting predicates are a schedule bug."""
        rf = PredicatedRegisterFile(shadow_capacity=1)
        rf.write_speculative(5, 1, C0)
        with pytest.raises(ScheduleViolation):
            rf.write_speculative(5, 2, NOT_C0)

    def test_infinite_shadow_allows_conflict(self):
        rf, ccr = PredicatedRegisterFile(shadow_capacity=None), CCR(4)
        rf.write_speculative(5, 1, C0)
        rf.write_speculative(5, 2, NOT_C0)
        ccr.set(0, False)
        events = rf.tick(ccr)
        assert events.squashed == [5] and events.committed == [5]
        assert rf.read(5) == 2

    def test_exception_buffered_then_detected(self):
        rf, ccr = PredicatedRegisterFile(), CCR(4)
        rf.write_speculative(5, 0, C0, fault=fault())
        assert rf.entries[5].flag_e
        ccr.set(0, True)
        events = rf.tick(ccr)
        assert len(events.detected_faults) == 1
        assert rf.read(5) == 0  # corrupted value never reaches sequential

    def test_exception_squashed_when_false(self):
        rf, ccr = PredicatedRegisterFile(), CCR(4)
        rf.write_speculative(5, 0, C0, fault=fault())
        ccr.set(0, False)
        events = rf.tick(ccr)
        assert events.detected_faults == []
        assert not rf.entries[5].flag_e

    def test_invalidate_speculative(self):
        rf = PredicatedRegisterFile()
        rf.write_speculative(5, 7, C0)
        rf.invalidate_speculative()
        assert not rf.has_speculative_state()

    def test_alw_speculative_write_rejected(self):
        rf = PredicatedRegisterFile()
        with pytest.raises(ValueError):
            rf.write_speculative(5, 7, ALWAYS)


class TestStoreBuffer:
    def test_nonspeculative_retires_in_order(self):
        sb, ccr, mem, out = PredicatedStoreBuffer(), CCR(2), Memory(), []
        sb.append(100, 1, ALWAYS, speculative=False)
        sb.append(101, 2, ALWAYS, speculative=False)
        events = sb.tick(ccr, mem, out)
        assert events.retired_stores == [(100, 1), (101, 2)]
        assert mem.load(100) == 1 and mem.load(101) == 2

    def test_speculative_blocks_head(self):
        sb, ccr, mem, out = PredicatedStoreBuffer(), CCR(2), Memory(), []
        sb.append(100, 1, C0, speculative=True)
        sb.append(101, 2, ALWAYS, speculative=False)
        events = sb.tick(ccr, mem, out)
        assert events.retired_stores == []  # FIFO head unresolved

    def test_commit_then_retire(self):
        sb, ccr, mem, out = PredicatedStoreBuffer(), CCR(2), Memory(), []
        sb.append(100, 1, C0, speculative=True)
        ccr.set(0, True)
        events = sb.tick(ccr, mem, out)
        assert events.committed and events.retired_stores == [(100, 1)]

    def test_squash_drops_entry(self):
        sb, ccr, mem, out = PredicatedStoreBuffer(), CCR(2), Memory(), []
        sb.append(100, 1, C0, speculative=True)
        ccr.set(0, False)
        sb.tick(ccr, mem, out)
        assert len(sb) == 0
        with pytest.raises(Exception):
            mem.load(1 << 30)

    def test_out_stream_ordering(self):
        sb, ccr, mem, out = PredicatedStoreBuffer(), CCR(2), Memory(), []
        sb.append(None, 10, ALWAYS, speculative=False)
        sb.append(None, 20, C0, speculative=True)
        sb.tick(ccr, mem, out)
        assert out == [10]
        ccr.set(0, True)
        sb.tick(ccr, mem, out)
        assert out == [10, 20]

    def test_forwarding_nonspeculative(self):
        sb = PredicatedStoreBuffer()
        sb.append(100, 5, ALWAYS, speculative=False)
        assert sb.lookup(100, ALWAYS) == 5
        assert sb.lookup(200, ALWAYS) is None

    def test_forwarding_newest_wins(self):
        sb = PredicatedStoreBuffer()
        sb.append(100, 5, ALWAYS, speculative=False)
        sb.append(100, 6, ALWAYS, speculative=False)
        assert sb.lookup(100, ALWAYS) == 6

    def test_forwarding_requires_implication(self):
        sb = PredicatedStoreBuffer()
        sb.append(100, 5, C0, speculative=True)
        assert sb.lookup(100, C0_C1) == 5  # deeper path sees it
        with pytest.raises(ScheduleViolation):
            sb.lookup(100, ALWAYS)  # ambiguous: schedule bug

    def test_forwarding_skips_disjoint(self):
        sb = PredicatedStoreBuffer()
        sb.append(100, 5, NOT_C0, speculative=True)
        assert sb.lookup(100, C0) is None

    def test_overflow_raises(self):
        sb = PredicatedStoreBuffer(capacity=1)
        sb.append(100, 1, ALWAYS, speculative=False)
        with pytest.raises(ScheduleViolation):
            sb.append(101, 2, ALWAYS, speculative=False)

    def test_invalidate_speculative_keeps_committed(self):
        sb, ccr, mem, out = PredicatedStoreBuffer(), CCR(2), Memory(), []
        sb.append(100, 1, ALWAYS, speculative=False)
        sb.append(101, 2, C0, speculative=True)
        sb.invalidate_speculative()
        sb.tick(ccr, mem, out)
        assert mem.load(100) == 1
        assert len(sb) == 0

    def test_drain(self):
        sb, mem, out = PredicatedStoreBuffer(), Memory(), []
        sb.append(100, 1, ALWAYS, speculative=False)
        sb.drain(mem, out)
        assert mem.load(100) == 1


class TestCounterPredicate:
    def test_commit_after_n_branches(self):
        file = CounterCommitFile()
        file.buffer(key=1, dependent_branches=2)
        committed, squashed = file.branch_resolved(correct=True)
        assert committed == [] and squashed == []
        committed, squashed = file.branch_resolved(correct=True)
        assert committed == [1]

    def test_mispredict_squashes_all(self):
        file = CounterCommitFile()
        file.buffer(1, 2)
        file.buffer(2, 3)
        committed, squashed = file.branch_resolved(correct=False)
        assert committed == [] and squashed == [1, 2]
        assert file.live_keys() == []

    def test_counter_validation(self):
        with pytest.raises(ValueError):
            CounterPredicate(-1)
        with pytest.raises(ValueError):
            CounterCommitFile().buffer(1, 0)
