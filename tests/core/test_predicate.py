"""Unit and property tests for predicate vectors."""

import pytest
from hypothesis import given, strategies as st

from repro.core.predicate import (
    ALWAYS,
    PredValue,
    Predicate,
    parse_predicate,
)

terms = st.dictionaries(st.integers(0, 7), st.booleans(), max_size=4)
ccr_values = st.dictionaries(
    st.integers(0, 7), st.sampled_from([True, False, None]), max_size=8
)


class TestBasics:
    def test_always(self):
        assert ALWAYS.is_always
        assert ALWAYS.evaluate({}) is PredValue.TRUE
        assert str(ALWAYS) == "alw"

    def test_str_form_matches_paper(self):
        assert str(Predicate({0: True, 1: False})) == "c0&!c1"

    def test_encode_vector(self):
        # The paper: c1&!c2&c3 -> {1,0,1}; c1&c3 -> {1,X,1} (0-indexed here).
        assert Predicate({0: True, 1: False, 2: True}).encode(3) == ("1", "0", "1")
        assert Predicate({0: True, 2: True}).encode(3) == ("1", "X", "1")

    def test_encode_rejects_small_ccr(self):
        with pytest.raises(ValueError):
            Predicate({3: True}).encode(2)

    def test_conjoin(self):
        pred = Predicate({0: True}).conjoin(1, False)
        assert pred == Predicate({0: True, 1: False})

    def test_conjoin_contradiction(self):
        with pytest.raises(ValueError):
            Predicate({0: True}).conjoin(0, False)

    def test_depth(self):
        assert ALWAYS.depth == 0
        assert Predicate({0: True, 3: False}).depth == 2


class TestEvaluate:
    def test_true_on_full_match(self):
        pred = Predicate({0: True, 1: False})
        assert pred.evaluate({0: True, 1: False}) is PredValue.TRUE

    def test_false_on_mismatch(self):
        pred = Predicate({0: True, 1: False})
        assert pred.evaluate({0: True, 1: True}) is PredValue.FALSE

    def test_unspec_dominates_mismatch(self):
        """The paper's hardware rule: any unspecified unmasked condition
        forces UNSPEC regardless of the partial match result."""
        pred = Predicate({0: True, 1: False})
        assert pred.evaluate({0: False, 1: None}) is PredValue.UNSPEC

    def test_dont_care_ignored(self):
        pred = Predicate({0: True})
        assert pred.evaluate({0: True, 1: None, 2: False}) is PredValue.TRUE


class TestRelations:
    def test_implies_subset(self):
        deeper = Predicate({0: True, 1: False})
        shallower = Predicate({0: True})
        assert deeper.implies(shallower)
        assert not shallower.implies(deeper)

    def test_everything_implies_always(self):
        assert Predicate({0: True}).implies(ALWAYS)

    def test_disjoint(self):
        assert Predicate({0: True}).disjoint_with(Predicate({0: False}))
        assert not Predicate({0: True}).disjoint_with(Predicate({1: False}))


class TestParse:
    def test_parse_examples(self):
        assert parse_predicate("alw") == ALWAYS
        assert parse_predicate("c0&!c1") == Predicate({0: True, 1: False})
        assert parse_predicate(" c2 ") == Predicate({2: True})

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_predicate("c0|c1")
        with pytest.raises(ValueError):
            parse_predicate("c0&!c0")


@given(terms)
def test_parse_format_roundtrip(term_dict):
    pred = Predicate(term_dict)
    assert parse_predicate(str(pred)) == pred


@given(terms, ccr_values)
def test_true_implies_specified(term_dict, values):
    """TRUE/FALSE verdicts require every constrained entry specified."""
    pred = Predicate(term_dict)
    verdict = pred.evaluate(values)
    if verdict is not PredValue.UNSPEC:
        assert all(values.get(i) is not None for i in pred.conditions)


@given(terms, terms, ccr_values)
def test_implication_soundness(p_terms, q_terms, values):
    """If p implies q and p is TRUE, q is TRUE."""
    try:
        p = Predicate(p_terms)
        q = Predicate(q_terms)
    except ValueError:
        return
    if p.implies(q) and p.evaluate(values) is PredValue.TRUE:
        assert q.evaluate(values) is PredValue.TRUE


@given(terms, terms, ccr_values)
def test_disjointness_soundness(p_terms, q_terms, values):
    """Disjoint predicates are never both TRUE."""
    p = Predicate(p_terms)
    q = Predicate(q_terms)
    if p.disjoint_with(q):
        both_true = (
            p.evaluate(values) is PredValue.TRUE
            and q.evaluate(values) is PredValue.TRUE
        )
        assert not both_true


@given(terms, st.integers(0, 7), st.booleans(), ccr_values)
def test_conjoin_monotone(term_dict, index, value, values):
    """A conjoined predicate is never 'more true' than its base."""
    base = Predicate(term_dict)
    try:
        refined = base.conjoin(index, value)
    except ValueError:
        return
    if refined.evaluate(values) is PredValue.TRUE:
        assert base.evaluate(values) is PredValue.TRUE
    assert refined.implies(base)
