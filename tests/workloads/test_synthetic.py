"""Tests for the synthetic program generator."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.branch_prediction import StaticPredictor
from repro.ir import build_cfg
from repro.machine.scalar import run_scalar
from repro.sim.interpreter import run_program
from repro.workloads.synthetic import generate


class TestGeneration:
    def test_deterministic(self):
        a = generate(3, predictability=0.7)
        b = generate(3, predictability=0.7)
        assert [str(i) for i in a.program.instructions] == [
            str(i) for i in b.program.instructions
        ]
        assert a.memory_image == b.memory_image

    def test_different_seeds_differ(self):
        a = generate(1)
        b = generate(2)
        assert [str(i) for i in a.program.instructions] != [
            str(i) for i in b.program.instructions
        ]

    def test_knob_validation(self):
        with pytest.raises(ValueError):
            generate(0, predictability=0.0)
        with pytest.raises(ValueError):
            generate(0, predictability=1.5)

    def test_predictability_knob_moves_accuracy(self):
        def accuracy(level: float) -> float:
            values = []
            for seed in range(6):
                synthetic = generate(seed, predictability=level)
                cfg = build_cfg(synthetic.program)
                run = run_scalar(synthetic.program, cfg, synthetic.make_memory())
                predictor = StaticPredictor.from_trace(run.trace)
                values.append(predictor.accuracy_on(run.trace))
            return sum(values) / len(values)

        assert accuracy(0.95) > accuracy(0.55) + 0.05


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10_000), level=st.sampled_from([0.5, 0.7, 0.9]))
def test_generated_programs_terminate_and_halt(seed, level):
    synthetic = generate(seed, predictability=level, size=3)
    result = run_program(
        synthetic.program, synthetic.make_memory(), max_steps=500_000
    )
    assert result.halted
