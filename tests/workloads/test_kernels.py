"""Tests for the six benchmark-analogue kernels."""

import pytest

from repro.analysis.branch_prediction import StaticPredictor
from repro.ir import build_cfg
from repro.machine.scalar import run_scalar
from repro.sim.interpreter import run_program
from repro.workloads import all_workloads, get_workload


@pytest.fixture(scope="module")
def workloads():
    return all_workloads()


class TestRegistry:
    def test_six_kernels_in_paper_order(self, workloads):
        assert [w.name for w in workloads] == [
            "compress", "eqntott", "espresso", "grep", "li", "nroff",
        ]

    def test_get_workload(self):
        assert get_workload("grep").name == "grep"
        with pytest.raises(KeyError):
            get_workload("doom")


class TestExecution:
    @pytest.mark.parametrize(
        "name", ["compress", "eqntott", "espresso", "grep", "li", "nroff"]
    )
    def test_runs_and_produces_output(self, name):
        workload = get_workload(name)
        result = run_program(workload.program, workload.eval_memory())
        assert result.halted
        assert result.output, f"{name} produced no observable output"

    @pytest.mark.parametrize(
        "name", ["compress", "eqntott", "espresso", "grep", "li", "nroff"]
    )
    def test_deterministic_per_seed(self, name):
        workload = get_workload(name)
        first = run_program(workload.program, workload.make_memory(5))
        second = run_program(workload.program, workload.make_memory(5))
        assert first.output == second.output

    @pytest.mark.parametrize(
        "name", ["compress", "eqntott", "espresso", "grep", "li", "nroff"]
    )
    def test_seeds_change_behaviour(self, name):
        workload = get_workload(name)
        first = run_program(workload.program, workload.make_memory(1))
        second = run_program(workload.program, workload.make_memory(2))
        assert first.output != second.output


class TestBranchBands:
    """The kernels must land in the paper's Table 3 predictability bands."""

    def accuracy(self, name: str) -> float:
        workload = get_workload(name)
        cfg = build_cfg(workload.program)
        train = run_scalar(workload.program, cfg, workload.train_memory())
        predictor = StaticPredictor.from_trace(train.trace)
        evaluation = run_scalar(workload.program, cfg, workload.eval_memory())
        return predictor.accuracy_on(evaluation.trace)

    @pytest.mark.parametrize("name", ["grep", "nroff"])
    def test_predictable_kernels(self, name):
        assert self.accuracy(name) >= 0.93

    @pytest.mark.parametrize(
        "name", ["compress", "eqntott", "espresso", "li"]
    )
    def test_unpredictable_kernels(self, name):
        assert self.accuracy(name) <= 0.90


class TestKernelBehaviour:
    def test_compress_emits_codes_and_misses(self):
        workload = get_workload("compress")
        result = run_program(workload.program, workload.eval_memory())
        checksum, next_code, misses = result.output
        assert next_code == misses  # one new code per miss
        assert 0 < misses < 400  # both hits and misses occurred

    def test_eqntott_tallies_sum_to_differing_elements(self):
        workload = get_workload("eqntott")
        result = run_program(workload.program, workload.eval_memory())
        less, greater, _ = result.output
        assert less > 0 and greater > 0

    def test_espresso_counts_bounded(self):
        workload = get_workload("espresso")
        result = run_program(workload.program, workload.eval_memory())
        nonempty, contained, _ = result.output
        assert 0 <= contained <= nonempty <= 40

    def test_grep_finds_planted_matches(self):
        workload = get_workload("grep")
        result = run_program(workload.program, workload.eval_memory())
        matches, last_position, _ = result.output
        assert matches >= 1
        assert last_position > 0

    def test_li_counts_cell_kinds(self):
        workload = get_workload("li")
        result = run_program(workload.program, workload.eval_memory())
        _, cons_count, symbol_count = result.output
        assert cons_count > 0 and symbol_count > 0

    def test_nroff_emits_lines_and_words(self):
        workload = get_workload("nroff")
        result = run_program(workload.program, workload.eval_memory())
        lines, words, _ = result.output
        assert lines > 0 and words > lines
