"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestCli:
    def test_workloads(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        for name in ("compress", "eqntott", "espresso", "grep", "li", "nroff"):
            assert name in out

    def test_run_workload(self, capsys):
        assert main(["run", "grep"]) == 0
        out = capsys.readouterr().out
        assert "cycles" in out and "output" in out

    def test_run_assembly_file(self, tmp_path, capsys):
        source = tmp_path / "tiny.s"
        source.write_text("li r1, 41\naddi r1, r1, 1\nout r1\nhalt\n")
        assert main(["run", str(source)]) == 0
        assert "[42]" in capsys.readouterr().out

    def test_compile_dump(self, capsys):
        assert main(["compile", "li", "--model", "region_pred", "--dump"]) == 0
        out = capsys.readouterr().out
        assert "units" in out and "B" in out

    def test_compile_restricted_model(self, capsys):
        assert main(["compile", "li", "--model", "global"]) == 0
        assert "units" in capsys.readouterr().out

    def test_exec_region_pred(self, capsys):
        assert main(["exec", "li", "--model", "region_pred"]) == 0
        out = capsys.readouterr().out
        assert "speedup" in out and "recoveries" in out

    def test_experiment_hwcost(self, capsys):
        assert main(["experiment", "hwcost"]) == 0
        assert "3 gates" in capsys.readouterr().out

    def test_experiment_table3(self, capsys):
        assert main(["experiment", "table3"]) == 0
        assert "grep" in capsys.readouterr().out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_unknown_model_rejected(self):
        with pytest.raises(SystemExit):
            main(["compile", "li", "--model", "warp"])
