"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import PROFILE_SCHEMA, main
from repro.eval.artifact import SCHEMA, SCHEMA_V2, load_artifact
from repro.obs.trace_events import validate_trace_events


class TestCli:
    def test_workloads(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        for name in ("compress", "eqntott", "espresso", "grep", "li", "nroff"):
            assert name in out

    def test_run_workload(self, capsys):
        assert main(["run", "grep"]) == 0
        out = capsys.readouterr().out
        assert "cycles" in out and "output" in out

    def test_run_assembly_file(self, tmp_path, capsys):
        source = tmp_path / "tiny.s"
        source.write_text("li r1, 41\naddi r1, r1, 1\nout r1\nhalt\n")
        assert main(["run", str(source)]) == 0
        assert "[42]" in capsys.readouterr().out

    def test_compile_dump(self, capsys):
        assert main(["compile", "li", "--model", "region_pred", "--dump"]) == 0
        out = capsys.readouterr().out
        assert "units" in out and "B" in out

    def test_compile_restricted_model(self, capsys):
        assert main(["compile", "li", "--model", "global"]) == 0
        assert "units" in capsys.readouterr().out

    def test_exec_region_pred(self, capsys):
        assert main(["exec", "li", "--model", "region_pred"]) == 0
        out = capsys.readouterr().out
        assert "speedup" in out and "recoveries" in out

    def test_experiment_hwcost(self, capsys):
        assert main(["experiment", "hwcost", "--no-cache"]) == 0
        assert "3 gates" in capsys.readouterr().out

    def test_experiment_table3(self, capsys):
        assert main(["experiment", "table3", "--no-cache"]) == 0
        assert "grep" in capsys.readouterr().out

    def test_experiment_json_directory(self, tmp_path, capsys):
        cache = tmp_path / "cache"
        out = tmp_path / "artifacts"
        assert (
            main(
                ["experiment", "table2", "--cache-dir", str(cache),
                 "--json", str(out)]
            )
            == 0
        )
        document = load_artifact(out / "table2.json")
        assert document["schema"] == SCHEMA
        assert document["experiment"] == "table2"
        assert len(document["data"]["rows"]) == 6
        err = capsys.readouterr().err
        assert "misses 6" in err

    def test_experiment_json_explicit_file(self, tmp_path, capsys):
        target = tmp_path / "t2.json"
        assert (
            main(["experiment", "table2", "--no-cache", "--json", str(target)])
            == 0
        )
        assert json.loads(target.read_text())["experiment"] == "table2"

    def test_experiment_all_rejects_json_file_target(self, tmp_path, capsys):
        code = main(
            ["experiment", "all", "--no-cache", "--json",
             str(tmp_path / "one.json")]
        )
        assert code == 2
        assert "directory" in capsys.readouterr().err

    def test_experiment_warm_cache_hits(self, tmp_path, capsys):
        cache = tmp_path / "cache"
        args = ["experiment", "table3", "--cache-dir", str(cache)]
        assert main(args) == 0
        capsys.readouterr()
        assert main(args) == 0
        err = capsys.readouterr().err
        assert "hit rate 100%" in err

    def test_experiment_jobs_flag_parses(self, tmp_path, capsys):
        assert (
            main(
                ["experiment", "table2", "--jobs", "2", "--cache-dir",
                 str(tmp_path / "c")]
            )
            == 0
        )
        assert "Table 2" in capsys.readouterr().out

    def test_experiment_quiet_suppresses_stats(self, capsys):
        assert main(["experiment", "hwcost", "--no-cache", "--quiet"]) == 0
        captured = capsys.readouterr()
        assert "gates" in captured.out
        assert captured.err == ""

    def test_experiment_json_stdout(self, capsys):
        assert (
            main(["experiment", "hwcost", "--no-cache", "--quiet",
                  "--json", "-"])
            == 0
        )
        document = json.loads(capsys.readouterr().out)
        assert document["schema"] == SCHEMA
        assert document["experiment"] == "hwcost"

    def test_experiment_json_stdout_rejects_all(self, capsys):
        code = main(["experiment", "all", "--no-cache", "--json", "-"])
        assert code == 2
        assert "single" in capsys.readouterr().err

    def test_experiment_metrics_embeds_runner_telemetry(self, tmp_path):
        target = tmp_path / "shadow.json"
        assert (
            main(["experiment", "shadow", "--no-cache", "--quiet",
                  "--metrics", "--json", str(target)])
            == 0
        )
        document = load_artifact(target)
        assert document["schema"] == SCHEMA_V2
        counters = document["metrics"]["counters"]
        assert counters["runner.cells"] == counters["runner.cache_misses"]
        assert counters["runner.cells"] > 0

    def test_experiment_default_artifact_stays_v1(self, tmp_path):
        target = tmp_path / "shadow.json"
        assert (
            main(["experiment", "shadow", "--no-cache", "--quiet",
                  "--json", str(target)])
            == 0
        )
        document = load_artifact(target)
        assert document["schema"] == SCHEMA
        assert "metrics" not in document

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_unknown_model_rejected(self):
        with pytest.raises(SystemExit):
            main(["compile", "li", "--model", "warp"])


class TestProfileCli:
    def test_profile_prints_counters_and_attribution(self, capsys):
        assert main(["profile", "compress"]) == 0
        out = capsys.readouterr().out
        assert "top regions by cycles" in out
        assert "machine.cycles" in out
        assert "regfile.shadow_occupancy" in out

    def test_profile_predicating_alias(self, capsys):
        assert main(["profile", "li", "--model", "predicating"]) == 0
        assert "model         : region_pred" in capsys.readouterr().out

    def test_profile_json_document(self, tmp_path, capsys):
        target = tmp_path / "out.json"
        assert (
            main(["profile", "compress", "--model", "predicating",
                  "--json", str(target)])
            == 0
        )
        document = json.loads(target.read_text())
        assert document["schema"] == PROFILE_SCHEMA
        assert document["model"] == "region_pred"
        counters = document["metrics"]["counters"]
        # The documented stable counter names.
        for name in (
            "machine.cycles",
            "machine.bundles",
            "machine.ops.issued",
            "machine.ops.squashed",
            "regfile.commits",
            "storebuffer.commits",
        ):
            assert name in counters, name
        assert counters["machine.cycles"] == document["machine_cycles"]
        attribution = document["attribution"]
        assert attribution["attributed_cycles"] == attribution["total_cycles"]

    def test_profile_json_stdout(self, capsys):
        assert main(["profile", "grep", "--json", "-"]) == 0
        out = capsys.readouterr().out
        payload = out[out.index("{"):]
        assert json.loads(payload)["schema"] == PROFILE_SCHEMA

    def test_profile_trace_out(self, tmp_path, capsys):
        target = tmp_path / "trace.json"
        assert main(["profile", "compress", "--trace-out", str(target)]) == 0
        tracks = validate_trace_events(json.loads(target.read_text()))
        assert len(tracks) >= 3
        for track in ("alu", "ccr", "region"):
            assert track in tracks

    def test_exec_trace_out(self, tmp_path, capsys):
        target = tmp_path / "trace.json"
        assert main(["exec", "li", "--trace-out", str(target)]) == 0
        tracks = validate_trace_events(json.loads(target.read_text()))
        assert "alu" in tracks


class TestVerifyCli:
    def test_verify_workload_all_models(self, capsys):
        assert main(["verify", "grep"]) == 0
        out = capsys.readouterr().out
        assert out.count("EQUIVALENT") == 2  # region_pred + trace_pred
        assert "region_pred" in out and "trace_pred" in out

    def test_verify_single_model(self, capsys):
        assert main(["verify", "li", "--model", "region_pred"]) == 0
        out = capsys.readouterr().out
        assert out.count("EQUIVALENT") == 1

    def test_verify_predicating_alias(self, capsys):
        assert main(["verify", "grep", "--model", "predicating"]) == 0
        assert "region_pred" in capsys.readouterr().out

    def test_verify_json_document(self, tmp_path, capsys):
        target = tmp_path / "verify.json"
        assert main(["verify", "grep", "--json", str(target)]) == 0
        document = json.loads(target.read_text())
        assert document["schema"] == "repro-verify/v1"
        assert all(result["equivalent"] for result in document["results"])
        assert document["metrics"]["counters"]["oracle.runs"] == 2

    def test_verify_needs_a_target(self, capsys):
        assert main(["verify"]) == 2

    def test_verify_replay_roundtrip(self, tmp_path, capsys):
        from repro.verify.fuzz import build_case, derive_campaign

        case_path = build_case(derive_campaign(0, 0)).save(
            tmp_path / "case.json"
        )
        assert main(["verify", "--replay", str(case_path)]) == 0
        out = capsys.readouterr().out
        assert "replaying" in out and "EQUIVALENT" in out

    def test_verify_generous_max_cycles_passes(self, capsys):
        assert main(
            ["verify", "grep", "--model", "region_pred",
             "--max-cycles", "10000000"]
        ) == 0
        assert "EQUIVALENT" in capsys.readouterr().out

    def test_verify_max_cycles_turns_livelock_into_exit_1(self, capsys):
        # A tiny budget makes every engine blow its step limit; the
        # result is a structured error divergence, never a hang or a
        # raw traceback.
        assert main(
            ["verify", "grep", "--model", "region_pred", "--max-cycles", "5"]
        ) == 1
        out = capsys.readouterr().out
        assert "DIVERGED" in out and "StepLimitExceeded" in out

    def test_verify_max_cycles_applies_to_replay(self, tmp_path, capsys):
        from repro.verify.fuzz import build_case, derive_campaign

        case_path = build_case(derive_campaign(0, 0)).save(
            tmp_path / "case.json"
        )
        assert main(
            ["verify", "--replay", str(case_path), "--max-cycles", "5"]
        ) == 1
        assert "StepLimitExceeded" in capsys.readouterr().out


class TestCkptCli:
    def snapshot(self, tmp_path):
        from repro.ckpt import save, write_snapshot

        from tests.ckpt.test_roundtrip import fresh_machine

        machine = fresh_machine()
        for _ in range(3):
            assert machine.step()
        return write_snapshot(save(machine), tmp_path / "snap.json")

    def test_inspect_json(self, tmp_path, capsys):
        path = self.snapshot(tmp_path)
        assert main(["ckpt", "inspect", str(path)]) == 0
        info = json.loads(capsys.readouterr().out)
        assert info["engine"] == "vliw"
        assert info["hash_valid"] is True
        assert info["cycle"] == 3

    def test_inspect_summary(self, tmp_path, capsys):
        path = self.snapshot(tmp_path)
        assert main(["ckpt", "inspect", str(path), "--summary"]) == 0
        line = capsys.readouterr().out.strip()
        assert line.startswith("ckpt engine=vliw")
        assert "hash=ok" in line

    def test_inspect_corrupt_snapshot_exits_nonzero(self, tmp_path, capsys):
        path = self.snapshot(tmp_path)
        document = json.loads(path.read_text())
        document["state"]["cycle"] = 999  # silent tamper
        path.write_text(json.dumps(document))
        assert main(["ckpt", "inspect", str(path), "--summary"]) == 1
        captured = capsys.readouterr()
        assert "hash=INVALID" in captured.out
        assert "integrity hash mismatch" in captured.err

    def test_inspect_missing_file(self, tmp_path, capsys):
        assert main(["ckpt", "inspect", str(tmp_path / "nope.json")]) == 2
        assert "unreadable" in capsys.readouterr().err

    def test_exec_writes_and_resumes_checkpoints(self, tmp_path, capsys):
        ckpt_dir = tmp_path / "ckpt"
        assert (
            main(["exec", "li", "--checkpoint-dir", str(ckpt_dir),
                  "--checkpoint-every", "25"])
            == 0
        )
        first = capsys.readouterr().out
        assert list(ckpt_dir.glob("ckpt-*.json"))
        assert (
            main(["exec", "li", "--checkpoint-dir", str(ckpt_dir),
                  "--checkpoint-every", "25", "--resume"])
            == 0
        )
        resumed = capsys.readouterr()
        assert "[ckpt] resumed" in resumed.err
        assert resumed.out == first  # bit-identical continuation

    def test_exec_resume_requires_checkpoint_dir(self, capsys):
        assert main(["exec", "li", "--resume"]) == 2
        assert "--checkpoint-dir" in capsys.readouterr().err

    def test_profile_resume_preserves_counters(self, tmp_path, capsys):
        target = tmp_path / "full.json"
        assert main(["profile", "li", "--json", str(target)]) == 0
        capsys.readouterr()
        full = json.loads(target.read_text())

        ckpt_dir = tmp_path / "ckpt"
        assert (
            main(["profile", "li", "--checkpoint-dir", str(ckpt_dir),
                  "--checkpoint-every", "25"])
            == 0
        )
        capsys.readouterr()
        resumed_target = tmp_path / "resumed.json"
        assert (
            main(["profile", "li", "--checkpoint-dir", str(ckpt_dir),
                  "--resume", "--json", str(resumed_target)])
            == 0
        )
        resumed = json.loads(resumed_target.read_text())
        assert resumed["metrics"] == full["metrics"]
        assert resumed["machine_cycles"] == full["machine_cycles"]

    def test_experiment_journal_resume_byte_identical(self, tmp_path, capsys):
        journal = tmp_path / "journal"
        args = ["experiment", "table2", "--no-cache", "--quiet",
                "--journal", str(journal)]
        first = tmp_path / "first"
        assert main(args + ["--json", str(first)]) == 0
        capsys.readouterr()
        second = tmp_path / "second"
        assert main(args + ["--resume", "--json", str(second)]) == 0
        assert (first / "table2.json").read_bytes() == (
            second / "table2.json"
        ).read_bytes()

    def test_experiment_resume_requires_journal(self, capsys):
        assert main(["experiment", "table2", "--resume"]) == 2
        assert "--journal" in capsys.readouterr().err

    def test_fuzz_journal_resume_replays(self, tmp_path, capsys):
        journal = tmp_path / "journal"
        args = ["fuzz", "--campaigns", "4", "--seed", "1",
                "--journal", str(journal)]
        assert main(args) == 0
        capsys.readouterr()
        assert main(args + ["--resume"]) == 0
        out = capsys.readouterr().out
        assert "(4 replayed)" in out
        assert "4 equivalent" in out

    def test_fuzz_resume_requires_journal(self, capsys):
        assert main(["fuzz", "--campaigns", "1", "--resume"]) == 2
        assert "--journal" in capsys.readouterr().err


class TestFuzzCli:
    def test_fuzz_clean_run(self, capsys):
        assert main(["fuzz", "--campaigns", "5", "--seed", "0"]) == 0
        out = capsys.readouterr().out
        assert "5 campaigns" in out
        assert "0 divergent" in out

    def test_fuzz_json_document(self, tmp_path, capsys):
        target = tmp_path / "fuzz.json"
        assert (
            main(
                ["fuzz", "--campaigns", "4", "--seed", "1",
                 "--json", str(target)]
            )
            == 0
        )
        document = json.loads(target.read_text())
        assert document["schema"] == "repro-fuzz/v1"
        assert document["campaigns"] == 4
        assert document["divergences"] == 0
        assert document["metrics"]["counters"]["fuzz.campaigns"] == 4

    def test_fuzz_verbose_progress(self, capsys):
        assert main(["fuzz", "--campaigns", "2", "--verbose"]) == 0
        err = capsys.readouterr().err
        assert err.count(": ok") == 2

    def test_fuzz_progress_meter(self, capsys):
        assert main(["fuzz", "--campaigns", "3", "--progress"]) == 0
        err = capsys.readouterr().err
        assert "[fuzz] 3/3 (100%)" in err
        assert "diverged" in err


class TestDiffTraceCli:
    def test_equivalent_workload(self, capsys):
        assert main(["diff-trace", "grep", "--model", "region_pred"]) == 0
        out = capsys.readouterr().out
        assert "EQUIVALENT" in out

    def test_needs_a_target(self, capsys):
        assert main(["diff-trace"]) == 2
        assert "--replay" in capsys.readouterr().err

    def test_replay_divergent_case_pinpoints(self, tmp_path, capsys):
        from repro.verify.fuzz import build_case, derive_campaign
        from repro.verify.tracediff import validate_tracediff

        # A clean case on correct hardware: the CLI can only exercise
        # the equivalent path (broken machines are injected in-process
        # by tests/verify/test_tracediff.py), but the artifact must
        # still validate and carry both sides.
        case_path = build_case(derive_campaign(0, 0)).save(
            tmp_path / "case.json"
        )
        target = tmp_path / "diff.json"
        assert (
            main(
                ["diff-trace", "--replay", str(case_path),
                 "--json", str(target)]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "diff-tracing" in out
        document = json.loads(target.read_text())
        validate_tracediff(document)
        assert document["scalar"]["effect_count"] > 0
        assert document["machine"]["effect_count"] > 0

    def test_trace_out_merges_both_processes(self, tmp_path, capsys):
        target = tmp_path / "trace.json"
        assert (
            main(
                ["diff-trace", "grep", "--model", "region_pred",
                 "--trace-out", str(target)]
            )
            == 0
        )
        events = json.loads(target.read_text())
        validate_trace_events(events)
        assert {event["pid"] for event in events} == {1, 2}

    def test_max_cycles_turns_livelock_into_exit_1(self, capsys):
        assert main(
            ["diff-trace", "grep", "--model", "region_pred",
             "--max-cycles", "5"]
        ) == 1
        out = capsys.readouterr().out
        assert "DIVERGED" in out and "StepLimitExceeded" in out

    def test_max_cycles_applies_to_replay(self, tmp_path, capsys):
        from repro.verify.fuzz import build_case, derive_campaign

        case_path = build_case(derive_campaign(0, 0)).save(
            tmp_path / "case.json"
        )
        assert main(
            ["diff-trace", "--replay", str(case_path), "--max-cycles", "5"]
        ) == 1
        assert "StepLimitExceeded" in capsys.readouterr().out


class TestServeCli:
    def test_frontend_is_required(self, capsys):
        with pytest.raises(SystemExit):
            main(["serve"])

    def test_frontends_are_mutually_exclusive(self, capsys):
        with pytest.raises(SystemExit):
            main(["serve", "--stdio", "--http", "0"])

    def test_bad_settings_exit_2(self, capsys):
        assert main(["serve", "--stdio", "--queue-limit", "0"]) == 2
        assert "queue limit" in capsys.readouterr().err

    def test_stdio_serves_and_exits_on_eof(
        self, tmp_path, capsys, monkeypatch
    ):
        import io

        request = json.dumps(
            {
                "id": "c1",
                "kind": "chaos",
                "chaos": {"mode": "ok", "value": 5},
            }
        )
        monkeypatch.setattr("sys.stdin", io.StringIO(request + "\n"))
        assert main(
            ["serve", "--stdio", "--journal", str(tmp_path / "j")]
        ) == 0
        captured = capsys.readouterr()
        [line] = [l for l in captured.out.splitlines() if l.strip()]
        response = json.loads(line)
        assert response["status"] == "ok"
        assert response["result"]["value"] == 5
        assert "journal" in captured.err
        # Results are durable: a second life replays without executing.
        monkeypatch.setattr("sys.stdin", io.StringIO(request + "\n"))
        assert main(
            ["serve", "--stdio", "--journal", str(tmp_path / "j")]
        ) == 0
        captured = capsys.readouterr()
        assert "1 durable result(s)" in captured.err
        [line] = [l for l in captured.out.splitlines() if l.strip()]
        assert json.loads(line)["result"]["value"] == 5


class TestRunLogCli:
    def test_log_json_brackets_any_command(self, tmp_path, capsys):
        from repro.obs.runlog import read_runlog

        log = tmp_path / "run.jsonl"
        assert main(["--log-json", str(log), "fuzz", "--campaigns", "2"]) == 0
        records = read_runlog(log)
        kinds = [record["kind"] for record in records]
        assert kinds[0] == "run.start"
        assert kinds[1] == "run.command"
        assert kinds[-2] == "run.exit"
        assert kinds[-1] == "run.end"
        assert kinds.count("fuzz.campaign") == 2
        exit_record = records[-2]
        assert exit_record["command"] == "fuzz"
        assert exit_record["status"] == 0

    def test_log_json_records_experiment_cells(self, tmp_path, capsys):
        from repro.obs.runlog import read_runlog

        log = tmp_path / "run.jsonl"
        assert (
            main(
                ["--log-json", str(log), "experiment", "hwcost",
                 "--no-cache", "--quiet"]
            )
            == 0
        )
        cells = [
            record
            for record in read_runlog(log)
            if record["kind"] == "experiment.cell"
        ]
        assert cells
        assert all(record["outcome"] == "computed" for record in cells)

    def test_without_flag_no_log_is_written(self, tmp_path, capsys):
        assert main(["fuzz", "--campaigns", "1"]) == 0
        assert list(tmp_path.iterdir()) == []
