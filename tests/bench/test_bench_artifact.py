"""Tests for the ``repro-bench/v1`` artifact layer."""

import copy

import pytest

from repro.bench.artifact import (
    SCHEMA,
    BenchArtifactError,
    dumps_artifact,
    host_fingerprint,
    load_artifact,
    make_artifact,
    merge_artifacts,
    validate_artifact,
    write_artifact,
)
from repro.bench.harness import run_measurement


def _measurement(name="micro.test", work=1_000):
    return run_measurement(
        name=name,
        suite="micro",
        unit="ops",
        fn=lambda: work,
        iterations=3,
        warmup=1,
    )


def synthetic_record(median_ns: float, *, unit="ops") -> dict:
    """A schema-valid benchmark record with a chosen median."""
    return {
        "suite": "micro",
        "unit": unit,
        "iterations": 5,
        "warmup": 1,
        "work_per_iteration": 1_000,
        "ns": {
            "samples": 5,
            "rejected": 0,
            "min": median_ns * 0.9,
            "median": median_ns,
            "mean": median_ns,
            "stdev": 0.0,
            "ci95": 0.0,
        },
        "throughput": {
            "unit": f"{unit}/sec",
            "median": 1_000 / (median_ns / 1e9),
            "best": 1_000 / (median_ns * 0.9 / 1e9),
        },
    }


def synthetic_artifact(medians: dict, *, quick=False, host=None) -> dict:
    """A schema-valid artifact from ``{name: median_ns}``."""
    return {
        "schema": SCHEMA,
        "quick": quick,
        "host": host or host_fingerprint(),
        "benchmarks": {
            name: synthetic_record(median) for name, median in medians.items()
        },
    }


class TestMakeArtifact:
    def test_round_trip(self, tmp_path):
        document = make_artifact([_measurement()])
        path = write_artifact(tmp_path / "bench.json", document)
        assert load_artifact(path) == document

    def test_canonical_serialization(self):
        document = make_artifact([_measurement()])
        text = dumps_artifact(document)
        assert text.endswith("\n")
        # Same data serializes to identical bytes regardless of
        # insertion order.
        reordered = {key: document[key] for key in reversed(list(document))}
        assert dumps_artifact(reordered) == text

    def test_raw_samples_not_persisted(self):
        measurement = _measurement()
        document = make_artifact([measurement])
        assert "raw_ns" not in document["benchmarks"]["micro.test"]
        assert measurement.raw_ns  # still available in memory

    def test_quick_flag_recorded(self):
        assert make_artifact([_measurement()], quick=True)["quick"] is True
        assert make_artifact([_measurement()])["quick"] is False

    def test_empty_run_rejected(self):
        with pytest.raises(BenchArtifactError, match="no measurements"):
            make_artifact([])

    def test_duplicate_names_rejected(self):
        with pytest.raises(BenchArtifactError, match="duplicate"):
            make_artifact([_measurement(), _measurement()])


class TestValidation:
    def test_synthetic_artifact_is_valid(self):
        validate_artifact(synthetic_artifact({"a": 1e6, "b": 2e6}))

    def test_wrong_schema(self):
        document = synthetic_artifact({"a": 1e6})
        document["schema"] = "repro-bench/v0"
        with pytest.raises(BenchArtifactError, match="schema mismatch"):
            validate_artifact(document)

    def test_missing_record_key(self):
        document = synthetic_artifact({"a": 1e6})
        del document["benchmarks"]["a"]["warmup"]
        with pytest.raises(BenchArtifactError, match="record keys"):
            validate_artifact(document)

    def test_unexpected_record_key(self):
        document = synthetic_artifact({"a": 1e6})
        document["benchmarks"]["a"]["extra"] = 1
        with pytest.raises(BenchArtifactError, match="record keys"):
            validate_artifact(document)

    def test_non_positive_median(self):
        document = synthetic_artifact({"a": 1e6})
        document["benchmarks"]["a"]["ns"]["median"] = 0
        with pytest.raises(BenchArtifactError, match="median"):
            validate_artifact(document)

    def test_throughput_unit_must_match(self):
        document = synthetic_artifact({"a": 1e6})
        document["benchmarks"]["a"]["throughput"]["unit"] = "cycles/sec"
        with pytest.raises(BenchArtifactError, match="throughput unit"):
            validate_artifact(document)

    def test_non_finite_number(self):
        document = synthetic_artifact({"a": 1e6})
        document["benchmarks"]["a"]["ns"]["mean"] = float("inf")
        with pytest.raises(BenchArtifactError, match="non-finite"):
            validate_artifact(document)

    def test_empty_benchmarks(self):
        document = synthetic_artifact({"a": 1e6})
        document["benchmarks"] = {}
        with pytest.raises(BenchArtifactError, match="benchmarks"):
            validate_artifact(document)

    def test_load_rejects_bad_json(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{nope")
        with pytest.raises(BenchArtifactError, match="not JSON"):
            load_artifact(path)


class TestMerge:
    def test_overlay_wins(self):
        base = synthetic_artifact({"a": 1e6, "b": 2e6})
        overlay = synthetic_artifact({"b": 3e6, "c": 4e6})
        merged = merge_artifacts(base, overlay)
        assert set(merged["benchmarks"]) == {"a", "b", "c"}
        assert merged["benchmarks"]["b"]["ns"]["median"] == 3e6

    def test_different_hosts_refused(self):
        base = synthetic_artifact({"a": 1e6})
        overlay = synthetic_artifact({"b": 2e6})
        overlay["host"] = dict(overlay["host"], machine="sparc")
        with pytest.raises(BenchArtifactError, match="different hosts"):
            merge_artifacts(base, overlay)

    def test_quick_full_mix_refused(self):
        base = synthetic_artifact({"a": 1e6})
        overlay = synthetic_artifact({"a": 2e6}, quick=True)
        with pytest.raises(BenchArtifactError, match="quick"):
            merge_artifacts(base, overlay)

    def test_inputs_unchanged(self):
        base = synthetic_artifact({"a": 1e6})
        overlay = synthetic_artifact({"a": 2e6})
        base_copy = copy.deepcopy(base)
        merge_artifacts(base, overlay)
        assert base == base_copy


class TestHostFingerprint:
    def test_shape(self):
        host = host_fingerprint()
        assert host["python"]
        assert host["implementation"]
        assert host["cpu_count"] >= 1
