"""Tests for the steady-state timing harness."""

import pytest

from repro.bench.harness import (
    Measurement,
    TimingStats,
    reject_outliers,
    run_measurement,
    summarize,
    time_iterations,
)


class TestOutlierRejection:
    def test_keeps_clean_samples(self):
        samples = [100, 101, 102, 99, 100]
        kept, rejected = reject_outliers(samples)
        assert kept == samples
        assert rejected == 0

    def test_drops_long_tail_spike(self):
        samples = [100, 101, 102, 99, 100, 10_000]
        kept, rejected = reject_outliers(samples)
        assert 10_000 not in kept
        assert rejected == 1

    def test_zero_mad_keeps_everything(self):
        # Identical samples (clock-resolution ties) have no spread to
        # judge outliers against.
        samples = [100] * 6 + [500]
        kept, rejected = reject_outliers(samples)
        assert kept == samples
        assert rejected == 0

    def test_tiny_sample_sets_untouched(self):
        kept, rejected = reject_outliers([1, 1_000_000])
        assert kept == [1, 1_000_000]
        assert rejected == 0


class TestSummarize:
    def test_basic_statistics(self):
        stats = summarize([100, 200, 300])
        assert stats.samples == 3
        assert stats.min == 100
        assert stats.median == 200
        assert stats.mean == 200
        assert stats.stdev == 100
        assert stats.ci95 > 0

    def test_single_sample(self):
        stats = summarize([500])
        assert stats.samples == 1
        assert stats.median == 500
        assert stats.stdev == 0.0
        assert stats.ci95 == 0.0

    def test_empty_raises(self):
        with pytest.raises(ValueError, match="empty"):
            summarize([])

    def test_outliers_excluded_from_summary(self):
        stats = summarize([100, 101, 102, 99, 100, 10_000])
        assert stats.rejected == 1
        assert stats.samples == 5
        assert stats.median == 100


class TestTimeIterations:
    def test_counts_and_work(self):
        calls = []
        samples, work = time_iterations(
            lambda: calls.append(1) or 7, iterations=4, warmup=2
        )
        assert len(calls) == 6  # warmup + timed
        assert len(samples) == 4
        assert work == 7
        assert all(isinstance(sample, int) for sample in samples)

    def test_work_drift_raises(self):
        counter = iter(range(100))

        with pytest.raises(RuntimeError, match="drifted"):
            time_iterations(lambda: next(counter), iterations=3, warmup=0)

    def test_gc_state_restored(self):
        import gc

        assert gc.isenabled()
        time_iterations(lambda: 1, iterations=2, warmup=0)
        assert gc.isenabled()


class TestRunMeasurement:
    def _measure(self, **overrides) -> Measurement:
        kwargs = dict(
            name="micro.test",
            suite="micro",
            unit="ops",
            fn=lambda: 1_000,
            iterations=3,
            warmup=1,
        )
        kwargs.update(overrides)
        return run_measurement(**kwargs)

    def test_throughput_is_work_over_wall_time(self):
        measurement = self._measure()
        assert measurement.work_per_iteration == 1_000
        assert measurement.throughput_median == pytest.approx(
            1_000 / (measurement.ns.median / 1e9)
        )
        assert measurement.throughput_best >= measurement.throughput_median

    def test_record_shape(self):
        record = self._measure().to_dict()
        assert record["suite"] == "micro"
        assert record["unit"] == "ops"
        assert record["throughput"]["unit"] == "ops/sec"
        assert set(record["ns"]) == {
            "samples", "rejected", "min", "median", "mean", "stdev", "ci95"
        }

    def test_zero_iterations_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            self._measure(iterations=0)

    def test_non_positive_work_rejected(self):
        with pytest.raises(RuntimeError, match="non-positive"):
            self._measure(fn=lambda: 0)

    def test_stats_are_frozen(self):
        stats = TimingStats(1, 0, 1, 1.0, 1.0, 0.0, 0.0)
        with pytest.raises(AttributeError):
            stats.median = 2.0
