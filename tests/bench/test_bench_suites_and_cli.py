"""Registry/`--quick` determinism and the `repro bench` CLI exit codes."""

import json

import pytest

from repro.bench.artifact import load_artifact
from repro.bench.suites import (
    MACRO_MODELS,
    SUITES,
    all_benchmarks,
    get_benchmark,
)
from repro.cli import main

from tests.bench.test_bench_artifact import synthetic_artifact


class TestRegistry:
    def test_suites_partition_the_registry(self):
        names = {bench.name for bench in all_benchmarks("all")}
        by_suite = [
            {bench.name for bench in all_benchmarks(suite)} for suite in SUITES
        ]
        assert set.union(*by_suite) == names
        assert not set.intersection(*by_suite)

    def test_micro_suite_covers_the_hot_primitives(self):
        names = {bench.name for bench in all_benchmarks("micro")}
        for expected in (
            "micro.predicate_eval",
            "micro.ccr_commit_sweep",
            "micro.store_buffer_search",
            "micro.bundle_issue",
            "micro.region_schedule",
            "micro.obs_null_sink_tick",
            "micro.obs_uninstrumented_tick",
        ):
            assert expected in names

    def test_macro_suite_covers_every_model_cell(self):
        names = {bench.name for bench in all_benchmarks("macro")}
        for model in MACRO_MODELS:
            assert f"macro.compress.{model}" in names
        assert "macro.compress.interpreter" in names
        assert "macro.compress.scalar" in names
        assert "macro.compress.compile" in names
        assert "macro.ckpt_snapshot" in names

    def test_unknown_suite_rejected(self):
        with pytest.raises(ValueError, match="unknown suite"):
            all_benchmarks("nano")

    def test_filter_substring(self):
        matched = all_benchmarks("all", filter_substring="obs_")
        assert {bench.name for bench in matched} == {
            "micro.obs_null_sink_tick",
            "micro.obs_uninstrumented_tick",
        }

    def test_get_benchmark(self):
        assert get_benchmark("micro.predicate_eval").suite == "micro"
        with pytest.raises(KeyError):
            get_benchmark("micro.missing")


class TestQuickDeterminism:
    """`--quick` must be a fixed per-benchmark iteration plan, not a
    runtime heuristic -- two quick runs of the same tree must record
    identical iteration counts."""

    def test_every_benchmark_has_a_fixed_quick_plan(self):
        for bench in all_benchmarks("all"):
            assert bench.quick_iterations >= 1
            assert bench.quick_iterations <= bench.iterations
            assert bench.quick_warmup <= bench.warmup

    def test_quick_run_uses_the_declared_counts(self):
        bench = get_benchmark("micro.predicate_eval")
        measurement = bench.run(quick=True)
        assert measurement.iterations == bench.quick_iterations
        assert measurement.warmup == bench.quick_warmup
        assert len(measurement.raw_ns) == bench.quick_iterations

    def test_quick_work_matches_full_length_work(self):
        # quick trims samples, never the simulated work per iteration.
        bench = get_benchmark("micro.predicate_eval")
        quick = bench.run(quick=True)
        full_body = bench.setup()
        assert full_body() == quick.work_per_iteration


class TestCliRun:
    def test_quick_filtered_run_writes_valid_artifact(self, tmp_path, capsys):
        out = tmp_path / "bench.json"
        assert (
            main(
                ["bench", "run", "--suite", "micro", "--quick",
                 "--filter", "predicate_eval", "--json", str(out)]
            )
            == 0
        )
        assert "micro.predicate_eval" in capsys.readouterr().out
        document = load_artifact(out)  # validates the schema
        assert document["quick"] is True
        record = document["benchmarks"]["micro.predicate_eval"]
        assert record["iterations"] == (
            get_benchmark("micro.predicate_eval").quick_iterations
        )

    def test_no_match_exits_2(self, capsys):
        assert main(["bench", "run", "--filter", "no-such-bench"]) == 2
        assert "no benchmarks match" in capsys.readouterr().err


class TestCliCompare:
    def _write(self, path, medians, **kwargs):
        path.write_text(json.dumps(synthetic_artifact(medians, **kwargs)))
        return str(path)

    def test_injected_regression_exits_1(self, tmp_path, capsys):
        old = self._write(tmp_path / "old.json", {"a": 1e6, "b": 1e6})
        new = self._write(tmp_path / "new.json", {"a": 1.25e6, "b": 1e6})
        assert main(["bench", "compare", old, new]) == 1
        out = capsys.readouterr().out
        assert "regression" in out
        assert "+25.0%" in out

    def test_within_noise_exits_0(self, tmp_path):
        old = self._write(tmp_path / "old.json", {"a": 1e6})
        new = self._write(tmp_path / "new.json", {"a": 1.05e6})
        assert main(["bench", "compare", old, new]) == 0

    def test_improvement_exits_0(self, tmp_path):
        old = self._write(tmp_path / "old.json", {"a": 1e6})
        new = self._write(tmp_path / "new.json", {"a": 0.5e6})
        assert main(["bench", "compare", old, new]) == 0

    def test_threshold_flag_moves_the_gate(self, tmp_path):
        old = self._write(tmp_path / "old.json", {"a": 1e6})
        new = self._write(tmp_path / "new.json", {"a": 1.15e6})
        assert main(["bench", "compare", old, new]) == 1
        assert (
            main(["bench", "compare", old, new, "--threshold", "0.20"]) == 0
        )

    def test_warn_only_reports_but_exits_0(self, tmp_path, capsys):
        old = self._write(tmp_path / "old.json", {"a": 1e6})
        new = self._write(tmp_path / "new.json", {"a": 2e6})
        assert main(["bench", "compare", old, new, "--warn-only"]) == 0
        assert "regression" in capsys.readouterr().out

    def test_invalid_artifact_exits_2(self, tmp_path, capsys):
        old = self._write(tmp_path / "old.json", {"a": 1e6})
        broken = tmp_path / "broken.json"
        broken.write_text("{nope")
        assert main(["bench", "compare", old, str(broken)]) == 2
        assert "not JSON" in capsys.readouterr().err

    def test_bad_threshold_exits_2(self, tmp_path, capsys):
        old = self._write(tmp_path / "old.json", {"a": 1e6})
        assert (
            main(["bench", "compare", old, old, "--threshold", "1.5"]) == 2
        )
        assert "threshold" in capsys.readouterr().err
