"""Tests for the regression gate on synthetic timing data."""

import pytest

from repro.bench.gate import (
    DEFAULT_THRESHOLD,
    classify,
    compare_artifacts,
    render_table,
)

from tests.bench.test_bench_artifact import synthetic_artifact


class TestClassify:
    def test_regression_beyond_threshold(self):
        assert classify(100.0, 120.0, 0.10) == "regression"

    def test_improvement_beyond_threshold(self):
        assert classify(100.0, 80.0, 0.10) == "improvement"

    def test_within_noise_is_ok(self):
        assert classify(100.0, 105.0, 0.10) == "ok"
        assert classify(100.0, 95.0, 0.10) == "ok"

    def test_threshold_is_exclusive_at_the_boundary(self):
        # Exactly +10% is still inside the tolerance band.
        assert classify(100.0, 110.0, 0.10) == "ok"
        assert classify(100.0, 90.0, 0.10) == "ok"


class TestCompare:
    def test_regression_fails_the_gate(self):
        old = synthetic_artifact({"a": 1e6})
        new = synthetic_artifact({"a": 1.2e6})  # +20%
        comparison = compare_artifacts(old, new, threshold=0.10)
        assert comparison.failed
        assert [d.name for d in comparison.regressions] == ["a"]
        delta = comparison.deltas[0]
        assert delta.ratio == pytest.approx(1.2)
        assert delta.speedup == pytest.approx(1 / 1.2)

    def test_improvement_passes_the_gate(self):
        old = synthetic_artifact({"a": 1e6})
        new = synthetic_artifact({"a": 0.5e6})
        comparison = compare_artifacts(old, new)
        assert not comparison.failed
        assert [d.name for d in comparison.improvements] == ["a"]

    def test_within_noise_passes(self):
        old = synthetic_artifact({"a": 1e6})
        new = synthetic_artifact({"a": 1.05e6})  # +5% < 10%
        comparison = compare_artifacts(old, new)
        assert not comparison.failed
        assert comparison.deltas[0].status == "ok"

    def test_added_and_removed_never_fail(self):
        old = synthetic_artifact({"a": 1e6, "gone": 1e6})
        new = synthetic_artifact({"a": 1e6, "fresh": 1e6})
        comparison = compare_artifacts(old, new)
        assert not comparison.failed
        statuses = {d.name: d.status for d in comparison.deltas}
        assert statuses == {"a": "ok", "gone": "removed", "fresh": "added"}

    def test_mixed_verdict_counts(self):
        old = synthetic_artifact({"slow": 1e6, "fast": 1e6, "same": 1e6})
        new = synthetic_artifact({"slow": 2e6, "fast": 0.5e6, "same": 1e6})
        comparison = compare_artifacts(old, new)
        assert comparison.failed  # one regression is enough
        assert comparison.counts() == {
            "regression": 1,
            "improvement": 1,
            "ok": 1,
            "added": 0,
            "removed": 0,
        }

    def test_custom_threshold(self):
        old = synthetic_artifact({"a": 1e6})
        new = synthetic_artifact({"a": 1.15e6})
        assert compare_artifacts(old, new, threshold=0.10).failed
        assert not compare_artifacts(old, new, threshold=0.20).failed

    @pytest.mark.parametrize("threshold", [0.0, 1.0, -0.1, 2.0])
    def test_threshold_bounds(self, threshold):
        artifact = synthetic_artifact({"a": 1e6})
        with pytest.raises(ValueError, match="threshold"):
            compare_artifacts(artifact, artifact, threshold=threshold)

    def test_default_threshold(self):
        assert DEFAULT_THRESHOLD == 0.10

    def test_host_and_quick_mismatch_flagged_not_failed(self):
        old = synthetic_artifact({"a": 1e6})
        new = synthetic_artifact({"a": 1e6}, quick=True)
        new["host"] = dict(new["host"], machine="sparc")
        comparison = compare_artifacts(old, new)
        assert comparison.host_mismatch
        assert comparison.quick_mismatch
        assert not comparison.failed


class TestRenderTable:
    def test_regressions_listed_first_with_warnings(self):
        old = synthetic_artifact({"z_slow": 1e6, "a_fast": 1e6})
        new = synthetic_artifact({"z_slow": 2e6, "a_fast": 0.5e6}, quick=True)
        table = render_table(compare_artifacts(old, new))
        lines = table.splitlines()
        assert "z_slow" in lines[1]  # regression row before improvement
        assert "+100.0%" in lines[1]
        assert "a_fast" in lines[2]
        assert "1 regression, 1 improvement" in table
        assert "--quick" in table  # quick-mismatch warning

    def test_units_scale_for_readability(self):
        old = synthetic_artifact({"tiny": 500.0, "huge": 2.5e9})
        table = render_table(compare_artifacts(old, old))
        assert "500ns" in table
        assert "2.500s" in table
