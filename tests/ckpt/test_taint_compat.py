"""Checkpoint compatibility across the taint track.

Three guarantees ride the ``repro-checkpoint/v1`` schema:

* taint-off snapshots are **byte-identical** to the pre-taint layout --
  no ``"taint"`` key appears anywhere, so old tooling (and old stored
  snapshots' hashes) keep working;
* a **pre-taint snapshot restores all-clear**: a document with no
  ``"taint"`` keys rebuilds a machine whose pending writes, store-buffer
  entries and in-flight results all carry ``taint=None``;
* with tracking on, entry-level taint **round-trips**: snapshot ->
  canonical JSON -> restore -> re-snapshot reproduces the document
  byte-for-byte, tags included.
"""

import json

from repro.ckpt.state import (
    canonical_dumps,
    content_hash,
    restore_vliw,
    snapshot_vliw,
)
from repro.machine.config import base_machine
from repro.machine.vliw import VLIWMachine
from repro.taint import TaintTracker, derive_gadget
from repro.taint.case import SecurityCase

from tests.ckpt.test_roundtrip import fresh_machine, recovery_program


def _strip_taint(obj):
    """A deep copy of *obj* with every ``"taint"`` key removed -- the
    shape a snapshot written before the taint track existed has."""
    if isinstance(obj, dict):
        return {
            key: _strip_taint(value)
            for key, value in obj.items()
            if key != "taint"
        }
    if isinstance(obj, list):
        return [_strip_taint(item) for item in obj]
    return obj


def _entry_taints(machine: VLIWMachine) -> list:
    """Every taint slot a restored machine carries, in a stable order."""
    taints = []
    for entry in machine.regfile.entries:
        taints.extend(write.taint for write in entry.pending)
    taints.extend(
        entry.taint for _, entry in machine.store_buffer._entries
    )
    taints.extend(flight.taint for flight in machine._in_flight)
    return taints


def _leaky_gadget_machine(taint: TaintTracker | None = None) -> VLIWMachine:
    """A hand-scheduled speculative gadget mid-flight taints state."""
    spec = _leaky_spec()
    case = SecurityCase.from_gadget(spec)
    return VLIWMachine(
        case.vliw(),
        case.config,
        case.make_memory(),
        **({} if taint is None else {"taint": taint}),
    )


def _leaky_spec():
    index = 0
    while True:
        spec = derive_gadget(7, index)
        if spec.expected_leak:
            return spec
        index += 1


class TestTaintOffSnapshots:
    def test_no_taint_keys_anywhere(self):
        machine = fresh_machine()
        steps = 0
        while steps < 3 and machine.step():
            steps += 1
        assert not machine.halted
        document = snapshot_vliw(machine)
        assert '"taint"' not in canonical_dumps(document)

    def test_gadget_without_tracker_stays_clean(self):
        # Even the leaky gadget: the taint *track* is what mints tags,
        # not the program shape.  Off means byte-identical-to-pre-taint.
        machine = _leaky_gadget_machine()
        while not machine.halted:
            document = snapshot_vliw(machine)
            assert '"taint"' not in canonical_dumps(document)
            if not machine.step():
                break


class TestPreTaintSnapshotsRestoreAllClear:
    def test_stripped_snapshot_restores_with_taint_none(self):
        tracker = TaintTracker()
        machine = _leaky_gadget_machine(tracker)
        spec = _leaky_spec()
        case = SecurityCase.from_gadget(spec)

        tainted_doc = None
        while machine.step():
            document = snapshot_vliw(machine)
            if '"taint"' in canonical_dumps(document):
                tainted_doc = document
                break
        assert tainted_doc is not None, "gadget never tainted buffered state"

        # Strip the taint keys and re-seal the envelope: exactly the
        # document a pre-taint writer would have produced at this cycle.
        pre_taint = _strip_taint(tainted_doc)
        pre_taint["hash"] = content_hash(pre_taint)
        restored = restore_vliw(pre_taint, case.vliw(), case.config)
        taints = _entry_taints(restored)
        assert taints, "restored machine should still have buffered state"
        assert all(taint is None for taint in taints)


class TestTaintRoundTrip:
    def test_tainted_snapshot_roundtrips_byte_identically(self):
        tracker = TaintTracker()
        machine = _leaky_gadget_machine(tracker)
        spec = _leaky_spec()
        case = SecurityCase.from_gadget(spec)

        checked_tainted = 0
        while machine.step():
            document = snapshot_vliw(machine)
            # File-write fidelity: through canonical JSON and back.
            document = json.loads(canonical_dumps(document))
            restored = restore_vliw(document, case.vliw(), case.config)
            again = snapshot_vliw(restored)
            assert canonical_dumps(again) == canonical_dumps(document)
            if '"taint"' in canonical_dumps(document):
                checked_tainted += 1
                assert any(
                    taint is not None for taint in _entry_taints(restored)
                )
        assert checked_tainted > 0, "gadget never tainted buffered state"
