"""Snapshot-loading hardening: every corrupt input fails loudly with
the path and the reason, and directory scans degrade to the previous
valid checkpoint instead of aborting."""

import json

import pytest

from repro.ckpt.engine import (
    CheckpointWriter,
    latest_snapshot,
    save,
    write_snapshot,
)
from repro.ckpt.state import (
    CKPT_SCHEMA,
    CheckpointError,
    load_snapshot,
    restore_vliw,
    validate_snapshot,
)
from repro.machine.config import base_machine, full_issue_machine
from repro.verify.case import ReproCase

from tests.ckpt.test_roundtrip import fresh_machine, recovery_program


def snapshot_document() -> dict:
    machine = fresh_machine()
    for _ in range(3):
        assert machine.step()
    return save(machine)


class TestLoadFailures:
    def test_missing_file(self, tmp_path):
        path = tmp_path / "nope.json"
        with pytest.raises(CheckpointError) as excinfo:
            load_snapshot(path)
        assert str(path) in str(excinfo.value)
        assert "unreadable" in excinfo.value.reason

    def test_not_json(self, tmp_path):
        path = tmp_path / "garbage.json"
        path.write_text("{not json")
        with pytest.raises(CheckpointError) as excinfo:
            load_snapshot(path)
        assert str(path) in str(excinfo.value)
        assert "not JSON" in excinfo.value.reason

    def test_truncated_snapshot(self, tmp_path):
        path = write_snapshot(snapshot_document(), tmp_path / "snap.json")
        text = path.read_text()
        path.write_text(text[: len(text) // 2])  # a kill mid-write
        with pytest.raises(CheckpointError) as excinfo:
            load_snapshot(path)
        assert str(path) in str(excinfo.value)

    def test_bitflip_fails_integrity_hash(self, tmp_path):
        document = snapshot_document()
        document["state"]["cycle"] += 1  # silent corruption
        path = write_snapshot(document, tmp_path / "snap.json")
        with pytest.raises(CheckpointError) as excinfo:
            load_snapshot(path)
        assert "integrity hash mismatch" in excinfo.value.reason

    def test_wrong_schema(self):
        with pytest.raises(CheckpointError, match="schema mismatch"):
            validate_snapshot({"schema": "repro-checkpoint/v0"})

    def test_not_an_object(self):
        with pytest.raises(CheckpointError, match="JSON object"):
            validate_snapshot([1, 2, 3])

    def test_missing_state(self):
        with pytest.raises(CheckpointError, match="missing state"):
            validate_snapshot(
                {"schema": CKPT_SCHEMA, "engine": "vliw",
                 "fingerprint": "x", "hash": "y"}
            )


class TestRestoreFailures:
    def test_fingerprint_mismatch_on_different_config(self):
        document = snapshot_document()
        with pytest.raises(CheckpointError) as excinfo:
            restore_vliw(
                document, recovery_program(), full_issue_machine(8, 4)
            )
        assert "fingerprint mismatch" in excinfo.value.reason

    def test_engine_mismatch(self):
        from repro.ckpt.state import snapshot_interpreter

        from tests.ckpt.test_roundtrip import fresh_interpreter

        interp = fresh_interpreter()
        assert interp.step()
        document = snapshot_interpreter(interp)
        with pytest.raises(CheckpointError, match="engine mismatch"):
            restore_vliw(document, recovery_program(), base_machine())


class TestLatestSnapshotDegradation:
    def test_corrupt_newest_falls_back_to_previous_valid(self, tmp_path):
        writer = CheckpointWriter(tmp_path)
        machine = fresh_machine()
        assert machine.step()
        good = writer.write(save(machine), machine.cycle)
        assert machine.step()
        bad = writer.write(save(machine), machine.cycle)
        bad.write_text(bad.read_text()[:40])  # torn newest snapshot

        latest = latest_snapshot(tmp_path)
        assert latest.found
        assert latest.path == good
        assert [path for path, _ in latest.skipped] == [str(bad)]
        assert latest.skipped[0][1]  # a human-readable reason

    def test_empty_directory(self, tmp_path):
        latest = latest_snapshot(tmp_path / "missing")
        assert not latest.found
        assert latest.skipped == []

    def test_all_corrupt_reports_every_skip(self, tmp_path):
        writer = CheckpointWriter(tmp_path)
        machine = fresh_machine()
        for _ in range(2):
            assert machine.step()
            writer.write(save(machine), machine.cycle)
        for path in tmp_path.glob("ckpt-*.json"):
            path.write_text("{}")
        latest = latest_snapshot(tmp_path)
        assert not latest.found
        assert len(latest.skipped) == 2


class TestWriterRotation:
    def test_keeps_only_last_n(self, tmp_path):
        writer = CheckpointWriter(tmp_path, keep=2)
        machine = fresh_machine()
        written = []
        for _ in range(4):
            assert machine.step()
            written.append(writer.write(save(machine), machine.cycle))
        remaining = sorted(tmp_path.glob("ckpt-*.json"))
        assert remaining == sorted(written[-2:])
        assert not list(tmp_path.glob("*.tmp"))  # atomic, no debris

    def test_final_snapshot_outside_rotation(self, tmp_path):
        writer = CheckpointWriter(tmp_path, keep=1)
        machine = fresh_machine()
        assert machine.step()
        writer.write(save(machine), machine.cycle)
        final = writer.write_final(save(machine))
        assert machine.step()
        writer.write(save(machine), machine.cycle)
        assert final.exists()
        latest = latest_snapshot(tmp_path)
        assert latest.path == final  # final wins over the rotation


class TestReproCaseHardening:
    """The same path+reason discipline applied to repro-case files."""

    def test_missing_file(self, tmp_path):
        path = tmp_path / "case.json"
        with pytest.raises(ValueError) as excinfo:
            ReproCase.load(path)
        assert str(path) in str(excinfo.value)
        assert "unreadable" in str(excinfo.value)

    def test_not_json(self, tmp_path):
        path = tmp_path / "case.json"
        path.write_text("]{")
        with pytest.raises(ValueError) as excinfo:
            ReproCase.load(path)
        assert str(path) in str(excinfo.value)
        assert "not JSON" in str(excinfo.value)

    def test_wrong_schema_names_both(self, tmp_path):
        path = tmp_path / "case.json"
        path.write_text(json.dumps({"schema": "repro-checkpoint/v1"}))
        with pytest.raises(ValueError) as excinfo:
            ReproCase.load(path)
        message = str(excinfo.value)
        assert str(path) in message
        assert "repro-checkpoint/v1" in message
        assert "repro-verify-case/v1" in message

    def test_non_object_document(self):
        with pytest.raises(ValueError, match="JSON object"):
            ReproCase.from_json("[1, 2]")
