"""The shared atomic-write helper (temp + ``os.replace``)."""

import os

import pytest

from repro.ckpt import atomic_write_text


class TestAtomicWriteText:
    def test_writes_and_creates_parents(self, tmp_path):
        target = tmp_path / "deep" / "nested" / "file.json"
        assert atomic_write_text(target, "{}\n") == target
        assert target.read_text() == "{}\n"

    def test_no_temp_remnants(self, tmp_path):
        atomic_write_text(tmp_path / "out.json", "data\n")
        assert [p.name for p in tmp_path.iterdir()] == ["out.json"]

    def test_failed_replace_leaves_original_intact(self, tmp_path, monkeypatch):
        target = tmp_path / "out.json"
        target.write_text("original\n")

        def broken_replace(src, dst):
            raise OSError("disk went away")

        monkeypatch.setattr(os, "replace", broken_replace)
        with pytest.raises(OSError):
            atomic_write_text(target, "replacement\n")
        monkeypatch.undo()
        assert target.read_text() == "original\n"
        assert [p.name for p in tmp_path.iterdir()] == ["out.json"]

    def test_overwrites_existing(self, tmp_path):
        target = tmp_path / "out.json"
        atomic_write_text(target, "one\n")
        atomic_write_text(target, "two\n")
        assert target.read_text() == "two\n"


class TestAtomicConsumers:
    def test_repro_case_save_is_atomic(self, tmp_path):
        from repro.machine.config import base_machine
        from repro.verify.case import ReproCase

        case = ReproCase(
            name="t",
            program_text="li r1, 1\nout r1\nhalt\n",
            model="region_pred",
            config=base_machine(),
        )
        path = case.save(tmp_path / "case.json")
        assert ReproCase.load(path).name == "t"
        assert [p.name for p in tmp_path.iterdir()] == ["case.json"]

    def test_write_artifact_is_atomic(self, tmp_path):
        from repro.eval.artifact import load_artifact, write_artifact

        class Result:
            @staticmethod
            def to_dict():
                return {"value": 1}

        path = write_artifact(tmp_path / "art", "demo", Result())
        assert load_artifact(path)["experiment"] == "demo"
        assert [p.name for p in (tmp_path / "art").iterdir()] == [
            "demo.json"
        ]
