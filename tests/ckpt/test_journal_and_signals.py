"""Journal-ledger durability and graceful-shutdown supervision."""

import json
import os
import signal

import pytest

from repro.ckpt.engine import CheckpointWriter, run_vliw
from repro.ckpt.journal import Journal
from repro.ckpt.signals import (
    ShutdownRequested,
    SignalSupervisor,
    exit_code_for,
)
from repro.ckpt.state import restore_vliw
from repro.machine.config import base_machine

from tests.ckpt.test_roundtrip import (
    fresh_machine,
    paging_handler,
    recovery_program,
    result_fields,
)


class TestJournal:
    def test_record_and_replay(self, tmp_path):
        with Journal(tmp_path / "j") as journal:
            journal.record("a", {"value": 1})
            journal.record("b", {"value": 2})
        assert Journal(tmp_path / "j").completed() == {
            "a": {"value": 1},
            "b": {"value": 2},
        }

    def test_later_record_wins(self, tmp_path):
        journal = Journal(tmp_path)
        journal.record("a", {"value": 1})
        journal.record("a", {"value": 2})
        journal.close()
        assert Journal(tmp_path).completed() == {"a": {"value": 2}}

    def test_torn_final_line_is_skipped(self, tmp_path):
        journal = Journal(tmp_path)
        journal.record("a", {"value": 1})
        journal.close()
        with open(journal.ledger_path, "a", encoding="utf-8") as handle:
            handle.write('{"key": "b", "payl')  # SIGKILL mid-append
        assert Journal(tmp_path).completed() == {"a": {"value": 1}}

    def test_foreign_lines_are_skipped(self, tmp_path):
        journal = Journal(tmp_path)
        with open(journal.ledger_path, "a", encoding="utf-8") as handle:
            handle.write("[1, 2]\n")  # valid JSON, wrong shape
            handle.write(json.dumps({"key": "a", "payload": {"v": 1}}) + "\n")
        assert Journal(tmp_path).completed() == {"a": {"v": 1}}

    def test_cell_dir_sanitizes_keys(self, tmp_path):
        journal = Journal(tmp_path)
        path = journal.cell_dir("fuzz:0:1:region_pred/trace_pred")
        assert path.is_dir()
        assert path.parent == tmp_path / "cells"
        assert "/" not in path.name and ":" not in path.name


class TestSignals:
    def test_exit_codes(self):
        assert exit_code_for(signal.SIGINT) == 130
        assert exit_code_for(signal.SIGTERM) == 143

    def test_supervisor_defers_and_arms_second_signal(self):
        with SignalSupervisor() as supervisor:
            assert supervisor.pending is None
            os.kill(os.getpid(), signal.SIGINT)
            # Handler only records; we are still alive.
            assert supervisor.pending == signal.SIGINT
            # The second delivery would use the default disposition.
            assert signal.getsignal(signal.SIGINT) is signal.default_int_handler or (
                signal.getsignal(signal.SIGINT) == signal.SIG_DFL
            )
            exc = supervisor.shutdown()
            assert isinstance(exc, ShutdownRequested)
            assert exc.exit_code == 130
            assert "SIGINT" in str(exc)

    def test_handlers_restored_on_exit(self):
        before = signal.getsignal(signal.SIGTERM)
        with SignalSupervisor():
            assert signal.getsignal(signal.SIGTERM) != before
        assert signal.getsignal(signal.SIGTERM) == before

    def test_shutdown_message_carries_checkpoint_path(self):
        supervisor = SignalSupervisor()
        supervisor.pending = signal.SIGTERM
        exc = supervisor.shutdown(checkpoint="/tmp/x/final.json")
        assert exc.checkpoint == "/tmp/x/final.json"
        assert "final.json" in str(exc)


class TestSupervisedRunLoop:
    def test_pending_signal_flushes_final_and_raises(self, tmp_path):
        machine = fresh_machine()
        writer = CheckpointWriter(tmp_path)
        supervisor = SignalSupervisor()  # not installed: drive directly
        supervisor.pending = signal.SIGTERM
        with pytest.raises(ShutdownRequested) as excinfo:
            run_vliw(machine, writer=writer, supervisor=supervisor)
        final = tmp_path / "final.json"
        assert excinfo.value.checkpoint == str(final)
        assert excinfo.value.exit_code == 143
        assert final.exists()

        # The flushed checkpoint continues to the bit-identical result.
        baseline = fresh_machine().run()
        from repro.ckpt.state import load_snapshot

        restored = restore_vliw(
            load_snapshot(final),
            recovery_program(),
            base_machine(),
            fault_handler=paging_handler,
            path=final,
        )
        assert result_fields(restored.run()) == result_fields(baseline)

    def test_uninterrupted_run_matches_plain_run(self, tmp_path):
        baseline = fresh_machine().run()
        checkpointed = run_vliw(
            fresh_machine(),
            checkpoint_every=2,
            writer=CheckpointWriter(tmp_path),
        )
        assert result_fields(checkpointed) == result_fields(baseline)
        assert list(tmp_path.glob("ckpt-*.json"))  # snapshots were cut
