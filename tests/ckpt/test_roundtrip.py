"""Checkpoint/restore bit-identity properties.

The contract the subsystem guarantees: *run N steps, snapshot, restore,
continue* produces exactly the result of the uninterrupted run -- same
outputs, same statistics, same metrics counters, same trace suffix --
at **every** boundary, including mid-recovery-mode with a fault handler
active.  These tests enforce it exhaustively on a faulting recovery
program (VLIW) and a faulting scalar loop (interpreter).
"""

import dataclasses
import json

import pytest

from repro.ckpt.state import (
    CheckpointError,
    canonical_dumps,
    restore_interpreter,
    restore_vliw,
    snapshot_interpreter,
    snapshot_vliw,
)
from repro.core.exceptions import FaultKind, MachineMode
from repro.ir.cfg import build_cfg
from repro.isa.parser import parse_instruction as P
from repro.isa.parser import parse_program
from repro.machine import Bundle, VLIWMachine, VLIWProgram
from repro.machine.config import base_machine
from repro.machine.program import RegionSpan
from repro.obs.metrics import CounterSink
from repro.obs.trace_events import CycleTraceRecorder
from repro.sim.interpreter import Interpreter
from repro.sim.memory import Memory


def paging_handler(fault, executor):
    """Demand-page handler: map the faulting word with a sentinel."""
    if fault.kind is FaultKind.MEMORY and fault.address is not None:
        try:
            executor.memory.map(fault.address, 777)
            return True
        except Exception:
            return False
    return False


def recovery_program() -> VLIWProgram:
    """A region with a committed speculative unsafe load that faults,
    so the run passes through recovery mode (RPC/EPC live)."""
    bundles = [
        Bundle((P("li r1, 100"), P("li r2, 3"))),
        Bundle((P("[c0] ld r3, r1, 0"),)),
        Bundle((P("cgt c0, r2, r0"),)),
        Bundle((P("[c0] addi r4, r3.s, 1"), P("[!c0] li r4, 5"))),
        Bundle((P("nop"),)),
        Bundle((P("[c0] jmp OUT"),)),
        Bundle((P("[!c0] jmp OUT"),)),
        Bundle((P("out r4"),)),
        Bundle((P("halt"),)),
    ]
    return VLIWProgram(
        bundles=bundles,
        labels={"R0": 0, "OUT": 7},
        regions=[RegionSpan("R0", 0, 7), RegionSpan("OUT", 7, 9)],
    )


def fresh_machine(sink=None, tracer=None) -> VLIWMachine:
    return VLIWMachine(
        recovery_program(),
        base_machine(),
        Memory(mapped_only=True),
        fault_handler=paging_handler,
        sink=sink if sink is not None else CounterSink(),
        tracer=tracer,
    )


def result_fields(result) -> dict:
    fields = {
        f.name: getattr(result, f.name)
        for f in dataclasses.fields(result)
    }
    return {
        name: value.state_dict() if isinstance(value, Memory) else value
        for name, value in fields.items()
    }


class TestVliwEveryBoundary:
    def test_checkpoint_restore_continue_is_bit_identical(self):
        baseline_sink = CounterSink()
        baseline = fresh_machine(baseline_sink).run()
        assert baseline.output == [778]
        assert baseline.recoveries == 1

        saw_recovery_mode = False
        boundary = 0
        while True:
            boundary += 1
            machine = fresh_machine()
            steps = 0
            while steps < boundary and machine.step():
                steps += 1
            if machine.halted:
                break
            document = snapshot_vliw(machine)
            if document["state"]["mode"] != MachineMode.NORMAL.value:
                saw_recovery_mode = True
            # Round-trip through canonical JSON: exactly what a file
            # write/read does.
            document = json.loads(canonical_dumps(document))
            sink = CounterSink()
            restored = restore_vliw(
                document,
                recovery_program(),
                base_machine(),
                fault_handler=paging_handler,
                sink=sink,
            )
            result = restored.run()
            assert result_fields(result) == result_fields(baseline), (
                f"divergence after restoring at boundary {boundary}"
            )
            assert sink.to_dict() == baseline_sink.to_dict(), (
                f"metrics divergence at boundary {boundary}"
            )
        # The faulting program must actually exercise a mid-recovery
        # snapshot, or the strongest claim here is untested.
        assert saw_recovery_mode

    def test_restored_run_emits_the_trace_suffix(self):
        full_tracer = CycleTraceRecorder("full")
        fresh_machine(tracer=full_tracer).run()

        machine = fresh_machine()
        for _ in range(4):
            assert machine.step()
        document = snapshot_vliw(machine)
        suffix_tracer = CycleTraceRecorder("full")
        restore_vliw(
            document,
            recovery_program(),
            base_machine(),
            fault_handler=paging_handler,
            tracer=suffix_tracer,
        ).run()
        # The restored run's events are exactly the tail of the full
        # run's (metadata preamble aside).
        def payload(events):
            return [e for e in events if e.get("ph") != "M"]

        suffix = payload(suffix_tracer.events)
        assert suffix == payload(full_tracer.events)[-len(suffix):]

    def test_snapshot_refuses_halted_machine(self):
        machine = fresh_machine()
        machine.run()
        with pytest.raises(CheckpointError, match="halted"):
            snapshot_vliw(machine)


SCALAR_SOURCE = """
    li r1, 100
    li r2, 0
    li r3, 5
    li r5, 1
LOOP:
    ld r4, r1, 0
    add r2, r2, r4
    addi r1, r1, 1
    sub r3, r3, r5
    cgt c0, r3, r0
    br c0, LOOP
    out r2
    halt
"""


#: One shared parse: instruction uids are process-local, so the
#: baseline, checkpointed, and restored runs must agree on the program
#: object for exact trace equality (a re-parsed but textually identical
#: program restores a self-consistent trace with its own uids).
SCALAR_PROGRAM = parse_program(SCALAR_SOURCE, name="scalar-ckpt")
SCALAR_CFG = build_cfg(SCALAR_PROGRAM)


def fresh_interpreter(sink=None):
    return Interpreter(
        SCALAR_PROGRAM,
        Memory(mapped_only=True),
        cfg=SCALAR_CFG,
        fault_handler=paging_handler,
        sink=sink if sink is not None else CounterSink(),
    )


class TestInterpreterEveryBoundary:
    def test_checkpoint_restore_continue_is_bit_identical(self):
        baseline_sink = CounterSink()
        interp = fresh_interpreter(baseline_sink)
        baseline = interp.run()
        assert baseline.output == [777 * 5]
        assert baseline.handled_faults == 5

        boundary = 0
        while True:
            boundary += 1
            interp = fresh_interpreter()
            steps = 0
            while steps < boundary and interp.step():
                steps += 1
            if interp.halted:
                break
            document = json.loads(canonical_dumps(snapshot_interpreter(interp)))
            sink = CounterSink()
            restored = restore_interpreter(
                document,
                SCALAR_PROGRAM,
                cfg=SCALAR_CFG,
                fault_handler=paging_handler,
                sink=sink,
            )
            result = restored.run()
            assert result.output == baseline.output
            assert result.registers == baseline.registers
            assert result.steps == baseline.steps
            assert result.scalar_cycles == baseline.scalar_cycles
            assert result.handled_faults == baseline.handled_faults
            assert result.memory.snapshot() == baseline.memory.snapshot()
            # The dynamic trace (branch events + block walk) must also
            # splice seamlessly: downstream profiling reads it.
            assert result.trace.blocks == baseline.trace.blocks
            assert result.trace.branches == baseline.trace.branches
            assert (
                result.trace.instruction_count
                == baseline.trace.instruction_count
            )
            assert sink.to_dict() == baseline_sink.to_dict()
        assert boundary > 10  # the loop actually exercised many boundaries

    def test_restore_under_reparsed_program_is_self_consistent(self):
        """Cross-process restore re-parses the program, which assigns
        fresh instruction uids; the restored trace must use *those* (not
        the snapshot-side uids) so prefix and suffix events agree."""
        interp = fresh_interpreter()
        for _ in range(12):
            assert interp.step()
        document = snapshot_interpreter(interp)
        program = parse_program(SCALAR_SOURCE, name="scalar-ckpt")
        restored = restore_interpreter(
            document, program, cfg=build_cfg(program),
            fault_handler=paging_handler,
        )
        result = restored.run()
        own_uids = {ins.uid for ins in program.instructions}
        assert {event.uid for event in result.trace.branches} <= own_uids
        baseline = fresh_interpreter().run()
        old_index = {
            ins.uid: i for i, ins in enumerate(SCALAR_PROGRAM.instructions)
        }
        new_index = {ins.uid: i for i, ins in enumerate(program.instructions)}
        assert [
            (e.block, new_index[e.uid], e.taken)
            for e in result.trace.branches
        ] == [
            (e.block, old_index[e.uid], e.taken)
            for e in baseline.trace.branches
        ]

    def test_snapshot_refuses_halted_interpreter(self):
        interp = fresh_interpreter()
        interp.run()
        with pytest.raises(CheckpointError, match="halted"):
            snapshot_interpreter(interp)
