"""Kill-and-resume: SIGKILL a journalled sweep mid-cell, resume it, and
get the byte-identical artifact with zero re-execution of finished work.

The sweep's fourth cell is a ``wait_for`` chaos cell that blocks until a
sentinel file appears, which parks the first run mid-cell
deterministically; the run is then SIGKILLed -- no handlers, no flushes,
the hardest crash there is.  The resume run pre-creates the sentinel, so
the same spec completes.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

SRC = str(Path(__file__).resolve().parents[2] / "src")

DRIVER = """
import json, sys
from repro.ckpt import Journal
from repro.eval import ExperimentContext
from repro.eval.runner import CellSpec

journal_dir, sentinel, out = sys.argv[1:4]
specs = (
    [
        CellSpec(kind="chaos", extras=(("mode", "ok"), ("value", i)))
        for i in range(3)
    ]
    + [
        CellSpec(
            kind="chaos",
            extras=(
                ("mode", "wait_for"),
                ("path", sentinel),
                ("timeout", 30.0),
                ("value", 99),
            ),
        )
    ]
    + [CellSpec(kind="chaos", extras=(("mode", "ok"), ("value", 7)))]
)
with Journal(journal_dir) as journal:
    ctx = ExperimentContext(journal=journal)
    results = ctx.run_cells(specs)
    stats = ctx.runner.stats
with open(out, "w") as f:
    json.dump(results, f, sort_keys=True, separators=(",", ":"))
with open(out + ".stats", "w") as f:
    json.dump(
        {
            "ledger_hits": stats.ledger_hits,
            "misses": stats.misses,
            "hits": stats.hits,
        },
        f,
    )
"""


def run_driver(tmp_path, journal, sentinel, out, wait=True):
    env = dict(os.environ, PYTHONPATH=SRC)
    driver = tmp_path / "driver.py"
    driver.write_text(DRIVER)
    process = subprocess.Popen(
        [sys.executable, str(driver), str(journal), str(sentinel), str(out)],
        env=env,
        cwd=str(tmp_path),
    )
    if wait:
        assert process.wait(timeout=60) == 0
    return process


def wait_for_ledger(journal: Path, lines: int, timeout: float = 30.0):
    ledger = journal / "ledger.jsonl"
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if ledger.exists():
            complete = [
                line
                for line in ledger.read_text().splitlines()
                if line.strip().endswith("}")
            ]
            if len(complete) >= lines:
                return
        time.sleep(0.05)
    pytest.fail(f"ledger never reached {lines} entries")


class TestKillAndResume:
    def test_sigkill_resume_is_byte_identical_with_zero_reexecution(
        self, tmp_path
    ):
        journal = tmp_path / "journal"
        sentinel = tmp_path / "sentinel"
        killed_out = tmp_path / "killed.json"

        # Run 1: SIGKILL while parked inside the fourth cell.  The first
        # three cells are durably ledgered; nothing else survives.
        process = run_driver(
            tmp_path, journal, sentinel, killed_out, wait=False
        )
        try:
            wait_for_ledger(journal, 3)
        finally:
            process.send_signal(signal.SIGKILL)
        assert process.wait(timeout=30) == -signal.SIGKILL
        assert not killed_out.exists()  # the sweep never finished

        # Run 2: same journal, sentinel pre-created -- the resume.
        sentinel.touch()
        resumed_out = tmp_path / "resumed.json"
        run_driver(tmp_path, journal, sentinel, resumed_out)
        stats = json.loads((tmp_path / "resumed.json.stats").read_text())
        assert stats["ledger_hits"] == 3  # replayed, not re-executed
        assert stats["misses"] == 2  # only the unfinished cells ran
        assert stats["hits"] == 0

        # Reference: an uninterrupted run in a fresh journal.
        clean_out = tmp_path / "clean.json"
        run_driver(tmp_path, tmp_path / "journal2", sentinel, clean_out)
        assert resumed_out.read_bytes() == clean_out.read_bytes()

    def test_resumed_sweep_needs_no_third_run(self, tmp_path):
        """After a completed journalled sweep, a re-run replays every
        cell from the ledger -- the fully-warm path."""
        journal = tmp_path / "journal"
        sentinel = tmp_path / "sentinel"
        sentinel.touch()
        run_driver(tmp_path, journal, sentinel, tmp_path / "first.json")
        run_driver(tmp_path, journal, sentinel, tmp_path / "second.json")
        stats = json.loads((tmp_path / "second.json.stats").read_text())
        assert stats["ledger_hits"] == 5
        assert stats["misses"] == 0
        assert (tmp_path / "first.json").read_bytes() == (
            tmp_path / "second.json"
        ).read_bytes()
