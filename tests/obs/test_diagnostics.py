"""Aborts must carry a machine-state snapshot (ISSUE satellite b)."""

import pytest

from repro.core.exceptions import ScheduleViolation
from repro.isa.parser import parse_instruction as P
from repro.machine import Bundle, VLIWMachine, VLIWProgram
from repro.machine.config import MachineConfig, base_machine
from repro.machine.program import RegionSpan
from repro.obs.diagnostics import (
    SNAPSHOT_BUNDLES,
    InterpreterSnapshot,
    MachineAbort,
    ProgramOverrun,
    StoreBufferDeadlock,
)
from repro.sim.memory import Memory


def program(bundle_specs, labels, regions):
    return VLIWProgram(
        bundles=[
            Bundle(tuple(P(text) for text in spec)) for spec in bundle_specs
        ],
        labels=labels,
        regions=[RegionSpan(*span) for span in regions],
    )


@pytest.fixture
def spinning():
    return program([["jmp R0"]], {"R0": 0}, [("R0", 0, 1)])


@pytest.fixture
def deadlocked():
    prog = program(
        [
            ["li r1, 100", "li r2, 5"],
            ["[c0] st r2, r1, 0"],  # c0 never set: head never resolves
            ["st r2, r1, 1"],
            ["halt"],
        ],
        {"R0": 0},
        [("R0", 0, 4)],
    )
    return VLIWMachine(prog, MachineConfig(store_buffer_capacity=1), Memory())


class TestMachineAbort:
    def test_cycle_limit_carries_snapshot(self, spinning):
        machine = VLIWMachine(spinning, base_machine(), Memory(), max_cycles=40)
        with pytest.raises(MachineAbort) as info:
            machine.run()
        snapshot = info.value.snapshot
        assert snapshot.cycle >= 40
        assert snapshot.pc == 0
        assert snapshot.mode == "normal"
        assert snapshot.last_bundles  # the spin loop was captured
        assert all(b.ops == ("jmp R0",) for b in snapshot.last_bundles)

    def test_snapshot_keeps_last_n_bundles(self, spinning):
        machine = VLIWMachine(
            spinning, base_machine(), Memory(), max_cycles=100
        )
        with pytest.raises(MachineAbort) as info:
            machine.run()
        assert len(info.value.snapshot.last_bundles) == SNAPSHOT_BUNDLES

    def test_remains_a_runtime_error_matching_exceeded(self, spinning):
        """Compatibility: pre-snapshot callers catch RuntimeError and
        match on 'exceeded'."""
        machine = VLIWMachine(spinning, base_machine(), Memory(), max_cycles=10)
        with pytest.raises(RuntimeError, match="exceeded"):
            machine.run()

    def test_message_includes_state_description(self, spinning):
        machine = VLIWMachine(spinning, base_machine(), Memory(), max_cycles=10)
        with pytest.raises(MachineAbort, match="last .* issued bundles"):
            machine.run()


class TestStoreBufferDeadlock:
    def test_carries_snapshot_with_buffer_occupancy(self, deadlocked):
        with pytest.raises(StoreBufferDeadlock) as info:
            deadlocked.run()
        snapshot = info.value.snapshot
        assert snapshot.store_buffer_occupancy == 1  # the stuck head
        assert snapshot.pc == 2  # the stalled store's bundle

    def test_remains_a_schedule_violation_matching_deadlock(self, deadlocked):
        with pytest.raises(ScheduleViolation, match="deadlock"):
            deadlocked.run()


class TestProgramOverrun:
    @pytest.fixture
    def overrunning(self):
        """A schedule whose last bundle is not a halt: issue falls off
        the end (a scheduler that dropped the halt)."""
        prog = program(
            [["li r1, 1"], ["add r1, r1, r1"]],
            {"R0": 0},
            [("R0", 0, 2)],
        )
        return VLIWMachine(prog, base_machine(), Memory())

    def test_carries_snapshot(self, overrunning):
        with pytest.raises(ProgramOverrun) as info:
            overrunning.run()
        snapshot = info.value.snapshot
        assert snapshot.pc >= 2  # past the last bundle
        assert snapshot.last_bundles

    def test_remains_a_schedule_violation(self, overrunning):
        with pytest.raises(ScheduleViolation, match="ran off the end"):
            overrunning.run()


class TestInterpreterSnapshot:
    def test_describe_includes_position_and_block_path(self):
        snapshot = InterpreterSnapshot(
            pc=7, steps=100, scalar_cycles=120, recent_blocks=(0, 2, 1)
        )
        described = snapshot.describe()
        assert "pc=7" in described
        assert "steps=100" in described
        assert "B0 -> B2 -> B1" in described

    def test_describe_without_blocks(self):
        snapshot = InterpreterSnapshot(
            pc=0, steps=5, scalar_cycles=5, recent_blocks=()
        )
        assert "last blocks" not in snapshot.describe()
