"""Enforces the observability layer's zero-cost claim.

The obs layer promises that with :data:`NULL_SINK` installed the
simulators pay only the ``sink.enabled`` guard test at each
instrumentation site.  The commit-hardware tick is split so the claim
is measurable: ``PredicatedRegisterFile.tick`` is the production entry
(guards + core) and ``_tick_core`` is the identical uninstrumented
body.  This test times the pair and fails if the guards cost >= 5%.

Methodology (mirrors ``micro.obs_*_tick`` in the bench suite, which
reports the same pair without enforcing it):

* one shared register file for both sides -- allocation locality
  between two instances varies by more than the guard cost;
* interleaved repeats, comparing minima -- the min of many repeats is
  the least-noisy location estimate for a pure-CPU body, and
  interleaving keeps frequency/cache drift from loading one side;
* up to three attempts before failing, since a single CI-machine
  scheduling spike can still poison one side's minimum.
"""

from __future__ import annotations

import gc
import time

from repro.core.ccr import CCR
from repro.core.predicate import Predicate
from repro.core.regfile import PredicatedRegisterFile
from repro.obs.metrics import NULL_SINK
from repro.obs.flight import NULL_RECORDER
from repro.taint import NULL_TAINT

#: The claim under test: guard sites must cost less than 5%.
OVERHEAD_LIMIT = 1.05

ROUNDS = 2_000  # ticks per timed sample
REPEATS = 9  # interleaved samples per side per attempt
ATTEMPTS = 3


def _loaded_regfile() -> tuple[PredicatedRegisterFile, CCR]:
    """A register file mid-flight: buffered writes that never decide.

    Every pending predicate stays UNSPEC (c5 is never set), so ticking
    re-runs the same sweep without mutating the file -- both sides time
    identical work for the life of the test.
    """
    regfile = PredicatedRegisterFile(32, shadow_capacity=None)
    undecided = Predicate({5: True})
    for reg in range(1, 13):
        regfile.write_speculative(reg, reg * 7, undecided)
    ccr = CCR(8)
    ccr.set(0, True)
    return regfile, ccr


def _min_ns(fn) -> int:
    best = None
    for _ in range(REPEATS):
        start = time.perf_counter_ns()
        fn()
        elapsed = time.perf_counter_ns() - start
        if best is None or elapsed < best:
            best = elapsed
    return best


def test_null_sink_is_disabled():
    assert NULL_SINK.enabled is False


def test_null_sink_tick_overhead_under_five_percent():
    regfile, ccr = _loaded_regfile()
    assert regfile.sink is NULL_SINK

    def instrumented() -> None:
        for _ in range(ROUNDS):
            regfile.tick(ccr)

    def uninstrumented() -> None:
        for _ in range(ROUNDS):
            regfile._tick_core(ccr)

    # Warm both paths before any timing.
    instrumented()
    uninstrumented()

    ratios = []
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(ATTEMPTS):
            # Interleaved: each side's minimum is drawn from samples
            # spread across the same stretch of wall time.
            guarded = _min_ns(instrumented)
            bare = _min_ns(uninstrumented)
            ratio = guarded / bare
            ratios.append(ratio)
            if ratio < OVERHEAD_LIMIT:
                return
    finally:
        if gc_was_enabled:
            gc.enable()
    raise AssertionError(
        "NULL_SINK guard overhead exceeded the zero-cost claim on all "
        f"attempts: ratios {[f'{r:.3f}' for r in ratios]} "
        f"(limit {OVERHEAD_LIMIT})"
    )


class TestDisabledRecorderGuard:
    """The flight recorder's disabled state is the same zero-cost shape.

    A default machine run carries :data:`NULL_RECORDER` and a single
    cached ``_forensics`` boolean; the hot loop pays one branch per
    guard site and allocates nothing.  The <5% wall-clock claim itself
    is gated by ``repro bench compare`` against the stored baseline --
    these tests pin the *structure* the claim depends on, so a refactor
    cannot silently start paying for forensics when they are off.
    """

    def test_null_recorder_is_disabled(self):
        assert NULL_RECORDER.enabled is False

    def test_default_machine_has_forensics_off(self):
        from repro.verify.fuzz import build_case, derive_campaign

        case = build_case(derive_campaign(0, 0))
        from repro.analysis.branch_prediction import StaticPredictor
        from repro.compiler.models import MODELS
        from repro.compiler.pipeline import compile_program
        from repro.ir.cfg import build_cfg
        from repro.machine.scalar import run_scalar
        from repro.machine.vliw import VLIWMachine

        program = case.program()
        cfg = build_cfg(program)
        train = run_scalar(program, cfg, case.make_memory())
        compiled = compile_program(
            program,
            MODELS[case.model],
            case.config,
            StaticPredictor.from_trace(train.trace),
        )
        machine = VLIWMachine(compiled.vliw, case.config, case.make_memory())
        assert machine.flight is NULL_RECORDER
        assert machine.effects is None
        assert machine._forensics is False

    def test_instrumentation_does_not_perturb_the_run(self):
        # Same case, forensics off (oracle) and fully on (diff-trace):
        # identical cycle counts and architectural verdicts, i.e. the
        # recorder observes the machine without becoming part of it.
        from repro.verify.fuzz import build_case, derive_campaign
        from repro.verify.tracediff import diff_trace_case

        case = build_case(derive_campaign(0, 0))
        bare = case.run()
        instrumented = diff_trace_case(case)
        assert instrumented.equivalent == bare.equivalent
        assert instrumented.machine.cycles == bare.machine_cycles
        assert instrumented.scalar.cycles == bare.scalar_cycles


class TestDisabledTaintGuard:
    """Taint tracking off is the same zero-cost shape as forensics off.

    A default machine (and interpreter) carries :data:`NULL_TAINT` and a
    single cached ``_taint`` boolean; with taint off the hot loop pays
    one branch per guard site, pending/store-buffer entries keep
    ``taint=None``, and snapshots stay byte-identical to the pre-taint
    layout.  As with forensics, the <5% wall-clock claim is gated by
    ``repro bench compare`` against the stored baseline -- these tests
    pin the structure that claim depends on.
    """

    def test_null_taint_is_disabled(self):
        assert NULL_TAINT.enabled is False

    def test_default_machine_has_taint_off(self):
        from repro.verify.fuzz import build_case, derive_campaign

        case = build_case(derive_campaign(0, 0))
        from repro.analysis.branch_prediction import StaticPredictor
        from repro.compiler.models import MODELS
        from repro.compiler.pipeline import compile_program
        from repro.ir.cfg import build_cfg
        from repro.machine.scalar import run_scalar
        from repro.machine.vliw import VLIWMachine
        from repro.sim.interpreter import Interpreter

        program = case.program()
        cfg = build_cfg(program)
        train = run_scalar(program, cfg, case.make_memory())
        compiled = compile_program(
            program,
            MODELS[case.model],
            case.config,
            StaticPredictor.from_trace(train.trace),
        )
        machine = VLIWMachine(compiled.vliw, case.config, case.make_memory())
        assert machine.taint is NULL_TAINT
        assert machine._taint is False
        interpreter = Interpreter(program, case.make_memory(), cfg=cfg)
        assert interpreter.taint is NULL_TAINT
        assert interpreter._taint is False

    def test_taint_run_does_not_perturb_cycles(self):
        # The security oracle's twin runs -- taint off, then taint on --
        # must agree on cycle count, or the taint machinery has become
        # part of the timing it is supposed to observe.  (A disagreement
        # is *also* reported as a timing leak; asserting both keeps the
        # mechanism honest.)
        from repro.taint import run_security
        from repro.workloads import get_workload

        workload = get_workload("grep")
        result = run_security(
            workload.program,
            model="region_pred",
            train_memory=workload.train_memory(),
            eval_memory=workload.eval_memory(),
        )
        assert result.error is None
        assert result.secure
        assert result.taint_cycles == result.baseline_cycles
