"""Flight-recorder ring bounds and committed-effect stream semantics.

The forensics layer stands on two invariants: the flight recorder's
memory stays O(capacity) no matter how long the run is (it is a flight
recorder -- you read it backwards from the crash), and the effect-stream
comparison only flags *schedule-variant* disagreements, never the
reorderings the compiler is allowed to make.
"""

import pytest

from repro.obs.effects import EffectStream, first_divergence
from repro.obs.flight import (
    NULL_RECORDER,
    FlightRecorder,
    RingRecorder,
)


class TestRingBounds:
    def test_capacity_is_enforced(self):
        ring = RingRecorder(capacity=16)
        for n in range(1000):
            ring.record(n, n, "R0", "issue", f"op{n}")
        assert len(ring) == 16
        assert ring.seq == 1000
        assert ring.dropped == 984
        # The ring holds exactly the newest events, in order.
        kept = ring.events()
        assert [event.seq for event in kept] == list(range(984, 1000))

    def test_under_capacity_drops_nothing(self):
        ring = RingRecorder(capacity=64)
        for n in range(10):
            ring.record(n, n, None, "issue", "op")
        assert len(ring) == 10
        assert ring.dropped == 0

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError, match="capacity"):
            RingRecorder(capacity=0)

    def test_window_cuts_plus_minus_k(self):
        ring = RingRecorder(capacity=100)
        for n in range(50):
            ring.record(n, n, None, "issue", f"op{n}")
        window = ring.window(25, 3)
        assert [event.seq for event in window] == [22, 23, 24, 25, 26, 27, 28]

    def test_window_clips_to_what_survived_eviction(self):
        ring = RingRecorder(capacity=8)
        for n in range(100):
            ring.record(n, n, None, "issue", "op")
        # Anchor long since evicted: nothing to show.
        assert ring.window(10, 3) == []
        # Anchor near the tail: only the surviving side remains.
        window = ring.window(93, 2)
        assert [event.seq for event in window] == [92, 93, 94, 95]


class TestDisabledRecorder:
    def test_null_recorder_is_disabled_and_inert(self):
        assert NULL_RECORDER.enabled is False
        NULL_RECORDER.record(1, 2, "R0", "issue", "op")
        assert NULL_RECORDER.seq == 0
        assert NULL_RECORDER.events() == []
        assert NULL_RECORDER.window(0, 10) == []

    def test_base_class_is_the_disabled_implementation(self):
        assert FlightRecorder.enabled is False


def _stream(side="scalar", effects=()):
    stream = EffectStream(side)
    for kind, key, value in effects:
        if kind == "out":
            stream.emit_out(value, cycle=0, pc=0, region=None)
        elif kind == "mem":
            stream.emit_mem(key, value, cycle=0, pc=0, region=None)
        elif kind == "reg":
            stream.emit_reg(key, value, cycle=0, pc=0, region=None)
    return stream


class TestEffectStream:
    def test_effects_anchor_to_the_flight_recorder(self):
        ring = RingRecorder(capacity=8)
        stream = EffectStream("machine", ring)
        ring.record(0, 0, None, "issue", "op0")
        ring.record(0, 0, None, "issue", "op1")
        stream.emit_out(7, cycle=0, pc=0, region=None)
        assert stream.effects[-1].flight_seq == 1

    def test_out_ordinals_increment(self):
        stream = _stream(effects=[("out", None, 1), ("out", None, 2)])
        assert [effect.locus for effect in stream.outs()] == [
            "out[0]",
            "out[1]",
        ]


class TestFirstDivergence:
    def test_agreeing_streams_have_no_divergence(self):
        effects = [("out", None, 1), ("mem", 100, 5), ("reg", 3, 9)]
        assert (
            first_divergence(_stream(effects=effects), _stream(effects=effects))
            is None
        )

    def test_out_stream_is_compared_strictly(self):
        scalar = _stream(effects=[("out", None, 1), ("out", None, 2)])
        machine = _stream(effects=[("out", None, 1), ("out", None, 99)])
        divergence = first_divergence(scalar, machine)
        assert divergence is not None
        assert divergence.channel == "out"
        assert divergence.locus == "out[1]"
        assert divergence.expected == 2
        assert divergence.actual == 99

    def test_missing_out_effect_reported_as_absent(self):
        scalar = _stream(effects=[("out", None, 1), ("out", None, 2)])
        machine = _stream(effects=[("out", None, 1)])
        divergence = first_divergence(scalar, machine)
        assert divergence.channel == "out"
        assert divergence.actual is None

    def test_cross_address_store_interleaving_is_not_compared(self):
        # The scheduler may reorder non-aliasing stores: same per-address
        # value sequences in a different global interleave must agree.
        scalar = _stream(effects=[("mem", 100, 1), ("mem", 200, 2)])
        machine = _stream(effects=[("mem", 200, 2), ("mem", 100, 1)])
        assert first_divergence(scalar, machine) is None

    def test_same_address_store_order_is_compared(self):
        scalar = _stream(effects=[("mem", 100, 1), ("mem", 100, 2)])
        machine = _stream(effects=[("mem", 100, 2), ("mem", 100, 1)])
        divergence = first_divergence(scalar, machine)
        assert divergence is not None
        assert divergence.channel == "memory"
        assert divergence.locus == "mem[100]"

    def test_register_commit_order_is_forensic_only(self):
        # Different commit order, same final state: equivalent.
        scalar = _stream(effects=[("reg", 1, 10), ("reg", 2, 20)])
        machine = _stream(effects=[("reg", 2, 20), ("reg", 1, 10)])
        finals = {1: 10, 2: 20}
        assert (
            first_divergence(
                scalar,
                machine,
                scalar_registers=finals,
                machine_registers=dict(finals),
            )
            is None
        )

    def test_final_register_mismatch_is_flagged(self):
        scalar = _stream(effects=[("reg", 5, 7)])
        machine = _stream(effects=[("reg", 5, 20)])
        divergence = first_divergence(
            scalar,
            machine,
            scalar_registers={5: 7},
            machine_registers={5: 20},
        )
        assert divergence.channel == "register"
        assert divergence.locus == "r5"
        assert divergence.expected == 7
        assert divergence.actual == 20
        # The anchors point at each side's last write to that register.
        assert divergence.scalar_effect.value == 7
        assert divergence.machine_effect.value == 20

    def test_out_divergence_outranks_register_divergence(self):
        scalar = _stream(effects=[("out", None, 1)])
        machine = _stream(effects=[("out", None, 2)])
        divergence = first_divergence(
            scalar,
            machine,
            scalar_registers={1: 1},
            machine_registers={1: 99},
        )
        assert divergence.channel == "out"
