"""Machine-level observability: counters, attribution, recovery traces.

These tests drive real workloads through the compile-and-evaluate
pipeline with a :class:`CounterSink` (and, where relevant, a
:class:`CycleTraceRecorder`) attached, and check the ISSUE invariants:

* counters agree with the machine's own ``VLIWResult`` statistics;
* per-region cycle attribution reconciles *exactly* with the machine's
  cycle count (transfer penalties charge the departing region);
* a faulting speculative workload shows nonzero recovery counters and a
  recovery span on the ``mode`` track;
* instrumentation is observational only -- a NullSink run produces
  byte-identical cycle counts.
"""

import json

import pytest

from repro.compiler import evaluate_model
from repro.machine import VLIWMachine
from repro.machine.config import base_machine
from repro.obs import (
    CounterSink,
    CycleTraceRecorder,
    attribute_regions,
    validate_trace_events,
)
from repro.sim.memory import Memory
from repro.workloads import get_workload

from tests.machine.test_recovery import build as build_faulting
from tests.machine.test_recovery import paging_handler


def run_instrumented(workload_name, model="region_pred", tracer=None):
    workload = get_workload(workload_name)
    sink = CounterSink()
    evaluation = evaluate_model(
        workload.program,
        model,
        base_machine(),
        train_memory=workload.train_memory(),
        eval_memory=workload.eval_memory(),
        sink=sink,
        tracer=tracer,
    )
    assert evaluation.machine is not None
    return evaluation, sink


class TestCountersMatchMachineStats:
    @pytest.mark.parametrize("model", ["region_pred", "trace_pred"])
    def test_counters_agree_with_vliw_result(self, model):
        evaluation, sink = run_instrumented("compress", model)
        result = evaluation.machine
        assert sink.counter("machine.cycles") == result.cycles
        assert sink.counter("machine.bundles") == result.bundles_issued
        assert sink.counter("machine.ops.squashed") == result.squashed_ops
        assert (
            sink.counter("machine.ops.speculative") == result.speculative_ops
        )
        assert (
            sink.counter("machine.recovery.entries") == result.recoveries
        )
        assert sink.counter("machine.faults.handled") == result.handled_faults

    def test_occupancy_histograms_sampled_every_cycle(self):
        evaluation, sink = run_instrumented("grep")
        cycles = evaluation.machine.cycles
        # One sample per machine cycle (the drain tick adds a few more).
        assert sink.histogram_summary("regfile.shadow_occupancy")["count"] >= cycles
        assert sink.histogram_summary("storebuffer.occupancy")["count"] >= cycles
        assert sink.histogram_summary("machine.issue_slots")["count"] == (
            evaluation.machine.bundles_issued
        )

    def test_commit_and_squash_counters_nonzero(self):
        _, sink = run_instrumented("compress")
        assert sink.counter("regfile.commits") > 0
        assert sink.counter("regfile.squashes") > 0
        assert sink.counter("storebuffer.commits") > 0


class TestRegionAttribution:
    @pytest.mark.parametrize("name", ["compress", "grep", "li"])
    def test_attribution_reconciles_exactly(self, name):
        evaluation, sink = run_instrumented(name)
        report = attribute_regions(sink)
        assert report.total_cycles == evaluation.machine.cycles
        assert report.reconciles(), (
            f"{name}: attributed {report.attributed_cycles} "
            f"!= total {report.total_cycles}"
        )

    def test_rows_sorted_by_cycles_and_labelled(self):
        _, sink = run_instrumented("compress")
        report = attribute_regions(sink)
        cycles = [row.cycles for row in report.rows]
        assert cycles == sorted(cycles, reverse=True)
        for row in report.rows:
            assert row.label.startswith("B")
            assert row.origin_block is not None

    def test_block_ops_cover_issued_ops(self):
        evaluation, sink = run_instrumented("grep")
        total_block_ops = sum(attribute_regions(sink).block_ops.values())
        # Every issued op carries provenance back to an original block.
        assert total_block_ops == sink.counter("machine.ops.issued")
        assert total_block_ops == evaluation.machine._issued_ops

    def test_render_mentions_top_region(self):
        _, sink = run_instrumented("compress")
        report = attribute_regions(sink)
        text = report.render(limit=3)
        assert "top regions by cycles" in text
        assert report.rows[0].label in text


class TestRecoveryObservability:
    def test_faulting_speculation_counts_recovery(self):
        """A committed speculative fault must surface as nonzero
        recovery-cycle/rollback counters and a recovery-mode span."""
        sink = CounterSink()
        tracer = CycleTraceRecorder("faulting")
        machine = VLIWMachine(
            build_faulting("cgt"),
            base_machine(),
            Memory(mapped_only=True),
            fault_handler=paging_handler,
            sink=sink,
            tracer=tracer,
        )
        result = machine.run()
        assert result.recoveries == 1
        assert sink.counter("machine.recovery.entries") == 1
        assert sink.counter("machine.recovery.cycles") > 0
        assert sink.counter("machine.faults.handled") == 1

        spans = [
            event
            for event in tracer.events
            if event.get("name") == "recovery" and event["ph"] == "X"
        ]
        assert len(spans) == 1
        assert spans[0]["dur"] >= sink.counter("machine.recovery.cycles")

    def test_squashed_fault_has_no_recovery_counters(self):
        sink = CounterSink()
        machine = VLIWMachine(
            build_faulting("clt"),
            base_machine(),
            Memory(mapped_only=True),
            fault_handler=paging_handler,
            sink=sink,
        )
        machine.run()
        assert sink.counter("machine.recovery.entries") == 0
        assert sink.counter("machine.recovery.cycles") == 0


class TestTraceOutput:
    def test_workload_trace_validates_with_fu_and_state_tracks(self):
        tracer = CycleTraceRecorder("compress")
        run_instrumented("compress", tracer=tracer)
        tracks = validate_trace_events(json.loads(tracer.to_json()))
        for track in ("alu", "branch", "load", "store", "ccr", "region"):
            assert track in tracks
        assert len(tracks) >= 3

    def test_ops_land_on_their_fu_track(self):
        tracer = CycleTraceRecorder("grep")
        run_instrumented("grep", tracer=tracer)
        tids = {}
        for event in tracer.events:
            if event["ph"] == "M" and event["name"] == "thread_name":
                tids[event["args"]["name"]] = event["tid"]
        load_ops = [
            event
            for event in tracer.events
            if event["ph"] == "X" and event.get("name") == "ld"
        ]
        assert load_ops
        assert all(event["tid"] == tids["load"] for event in load_ops)


class TestNullSinkNeutrality:
    @pytest.mark.parametrize("model", ["region_pred", "trace_pred"])
    @pytest.mark.parametrize("name", ["compress", "grep", "li"])
    def test_cycle_counts_identical_without_instrumentation(self, name, model):
        """The fig7 cells must be unaffected by the observability layer:
        a default (NullSink, no tracer) run and an instrumented run
        report identical cycles and output."""
        workload = get_workload(name)
        config = base_machine()

        def run(**kwargs):
            return evaluate_model(
                workload.program,
                model,
                config,
                train_memory=workload.train_memory(),
                eval_memory=workload.eval_memory(),
                **kwargs,
            )

        plain = run()
        instrumented = run(sink=CounterSink(), tracer=CycleTraceRecorder())
        assert plain.machine.cycles == instrumented.machine.cycles
        assert plain.machine.output == instrumented.machine.output
        assert plain.analytic.cycles == instrumented.analytic.cycles
