"""Unit tests for the metrics sinks (counters, histograms, export)."""

from repro.obs.metrics import NULL_SINK, CounterSink, MetricsSink, NullSink


class TestNullSink:
    def test_disabled_and_inert(self):
        assert NULL_SINK.enabled is False
        NULL_SINK.count("machine.cycles")
        NULL_SINK.observe("machine.issue_slots", 4)  # no-ops, no state

    def test_is_the_shared_default(self):
        assert isinstance(NULL_SINK, NullSink)
        assert isinstance(NULL_SINK, MetricsSink)

    def test_enabled_is_a_class_attribute(self):
        # The hot-path guard relies on a plain attribute lookup.
        assert "enabled" not in vars(NULL_SINK)
        assert MetricsSink.enabled is False


class TestCounterSink:
    def test_count_accumulates(self):
        sink = CounterSink()
        sink.count("machine.cycles")
        sink.count("machine.cycles", 4)
        assert sink.counter("machine.cycles") == 5
        assert sink.counter("absent") == 0
        assert sink.counter("absent", default=7) == 7

    def test_keyed_family_extraction(self):
        sink = CounterSink()
        sink.count("region.cycles/B0", 10)
        sink.count("region.cycles/B3", 2)
        sink.count("region.bundles/B0", 1)  # different family
        assert sink.keyed("region.cycles") == {"B0": 10, "B3": 2}

    def test_histogram_summary(self):
        sink = CounterSink()
        for value in (1, 2, 2, 3):
            sink.observe("machine.issue_slots", value)
        summary = sink.histogram_summary("machine.issue_slots")
        assert summary["count"] == 4
        assert summary["min"] == 1
        assert summary["max"] == 3
        assert summary["mean"] == 2.0
        assert summary["values"] == {"1": 1, "2": 2, "3": 1}

    def test_empty_histogram_summary(self):
        summary = CounterSink().histogram_summary("never.observed")
        assert summary == {
            "count": 0, "min": 0, "max": 0, "mean": 0.0, "values": {},
        }

    def test_to_dict_is_sorted_and_json_native(self):
        import json

        sink = CounterSink()
        sink.count("b.second")
        sink.count("a.first", 2)
        sink.observe("occupancy", 3)
        exported = sink.to_dict()
        assert list(exported["counters"]) == ["a.first", "b.second"]
        assert "occupancy" in exported["histograms"]
        json.dumps(exported)  # must serialize without custom encoders
