"""JSONL run logging (``--log-json``) and the live progress meter."""

import io
import json

import pytest

from repro.obs.progress import ProgressLine, _fmt_seconds
from repro.obs.runlog import (
    NULL_RUN_LOG,
    JsonlRunLog,
    NullRunLog,
    RunLog,
    read_runlog,
)


class TestNullRunLog:
    def test_disabled_and_inert(self):
        assert NULL_RUN_LOG.enabled is False
        NULL_RUN_LOG.event("anything", value=1)
        NULL_RUN_LOG.close()

    def test_base_class_is_the_disabled_implementation(self):
        assert RunLog.enabled is False
        assert isinstance(NULL_RUN_LOG, NullRunLog)

    def test_context_manager(self):
        with NullRunLog() as log:
            log.event("x")


class TestJsonlRunLog:
    def test_start_and_end_bracket_the_run(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with JsonlRunLog(path) as log:
            log.event("fuzz.campaign", seed=7, equivalent=True)
        records = read_runlog(path)
        assert [record["kind"] for record in records] == [
            "run.start",
            "fuzz.campaign",
            "run.end",
        ]
        assert records[1]["seed"] == 7
        assert records[1]["equivalent"] is True

    def test_seq_is_monotonic_and_run_id_shared(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with JsonlRunLog(path) as log:
            for n in range(5):
                log.event("tick", n=n)
        records = read_runlog(path)
        assert [record["seq"] for record in records] == list(
            range(len(records))
        )
        assert len({record["run_id"] for record in records}) == 1

    def test_append_mode_shares_one_file(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with JsonlRunLog(path):
            pass
        with JsonlRunLog(path):
            pass
        records = read_runlog(path)
        assert len(records) == 4  # two start/end pairs
        assert len({record["run_id"] for record in records}) == 2

    def test_close_is_idempotent(self, tmp_path):
        log = JsonlRunLog(tmp_path / "run.jsonl")
        log.close()
        log.close()
        log.event("after", x=1)  # dropped, not crashed
        assert len(read_runlog(log.path)) == 2

    def test_parent_directories_are_created(self, tmp_path):
        path = tmp_path / "deep" / "nested" / "run.jsonl"
        with JsonlRunLog(path):
            pass
        assert path.exists()

    def test_every_line_is_json(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with JsonlRunLog(path) as log:
            log.event("x", value="text")
        for line in path.read_text().splitlines():
            json.loads(line)


class TestReadRunlog:
    def test_bad_json_line_raises(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind": "ok", "seq": 0}\nnot json\n')
        with pytest.raises(ValueError, match="bad JSON line"):
            read_runlog(path)

    def test_non_record_line_raises(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"no_kind": true}\n')
        with pytest.raises(ValueError, match="not a run-log record"):
            read_runlog(path)

    def test_blank_lines_are_skipped(self, tmp_path):
        path = tmp_path / "gappy.jsonl"
        path.write_text('{"kind": "a"}\n\n{"kind": "b"}\n')
        assert [r["kind"] for r in read_runlog(path)] == ["a", "b"]


class TestProgressLine:
    def test_paints_and_finishes(self):
        stream = io.StringIO()
        meter = ProgressLine("fuzz", stream=stream, min_interval=0.0)
        meter.update(1, 4, "0 diverged")
        meter.update(4, 4, "0 diverged")
        meter.finish()
        text = stream.getvalue()
        assert "[fuzz] 1/4 (25%)" in text
        assert "[fuzz] 4/4 (100%)" in text
        assert "0 diverged" in text
        assert text.endswith("\n")

    def test_rewrites_in_place_with_carriage_returns(self):
        stream = io.StringIO()
        meter = ProgressLine("x", stream=stream, min_interval=0.0)
        meter.update(1, 2)
        meter.update(2, 2)
        assert stream.getvalue().count("\r") == 2
        assert "\n" not in stream.getvalue()

    def test_throttling_skips_fast_updates_but_keeps_the_last(self):
        stream = io.StringIO()
        meter = ProgressLine("x", stream=stream, min_interval=3600.0)
        meter.update(1, 100)  # painted: first update after construction?
        first = stream.getvalue()
        meter.update(2, 100)  # throttled
        assert stream.getvalue() == first
        meter.update(100, 100)  # done == total forces a paint
        assert "100/100" in stream.getvalue()

    def test_zero_total_paints_without_dividing(self):
        stream = io.StringIO()
        meter = ProgressLine("x", stream=stream, min_interval=0.0)
        meter.update(0, 0)
        meter.finish()
        assert "0/0" in stream.getvalue()


class TestFmtSeconds:
    def test_ranges(self):
        assert _fmt_seconds(12) == "12s"
        assert _fmt_seconds(90) == "1.5m"
        assert _fmt_seconds(5400) == "1.5h"
