"""Tests for the Chrome/Perfetto trace_event recorder and validator."""

import json

import pytest

from repro.obs.trace_events import (
    TRACKS,
    CycleTraceRecorder,
    validate_trace_events,
)


class TestRecorder:
    def test_pre_registers_all_tracks(self):
        recorder = CycleTraceRecorder("demo")
        assert recorder.track_names() == list(TRACKS)

    def test_process_metadata_names_the_program(self):
        recorder = CycleTraceRecorder("compress")
        process = recorder.events[0]
        assert process["ph"] == "M" and process["name"] == "process_name"
        assert "compress" in process["args"]["name"]

    def test_op_duration_event(self):
        recorder = CycleTraceRecorder()
        recorder.op(5, "alu", "add", duration=2, args={"pc": 3})
        event = recorder.events[-1]
        assert event["ph"] == "X"
        assert event["ts"] == 5 and event["dur"] == 2
        assert event["args"] == {"pc": 3}

    def test_zero_duration_clamped_to_one(self):
        recorder = CycleTraceRecorder()
        recorder.op(1, "alu", "add", duration=0)
        assert recorder.events[-1]["dur"] == 1

    def test_instant_event(self):
        recorder = CycleTraceRecorder()
        recorder.instant(7, "ccr", "c0=1")
        event = recorder.events[-1]
        assert event["ph"] == "i" and event["ts"] == 7 and event["s"] == "t"

    def test_span_covers_interval(self):
        recorder = CycleTraceRecorder()
        recorder.span("mode", "recovery", 10, 14)
        event = recorder.events[-1]
        assert event["ts"] == 10 and event["dur"] == 4

    def test_unknown_track_auto_created(self):
        recorder = CycleTraceRecorder()
        recorder.op(1, "none", "nop")
        assert "none" in recorder.track_names()

    def test_to_json_is_a_bare_array(self):
        recorder = CycleTraceRecorder()
        recorder.op(1, "alu", "add")
        document = json.loads(recorder.to_json())
        assert isinstance(document, list)
        assert validate_trace_events(document) == list(TRACKS)

    def test_write_round_trip(self, tmp_path):
        recorder = CycleTraceRecorder()
        recorder.op(1, "load", "ld")
        path = recorder.write(tmp_path / "sub" / "trace.json")
        tracks = validate_trace_events(json.loads(path.read_text()))
        assert "load" in tracks


class TestValidator:
    def test_rejects_non_array(self):
        with pytest.raises(ValueError, match="array"):
            validate_trace_events({"traceEvents": []})

    def test_rejects_event_without_ph(self):
        with pytest.raises(ValueError, match="ph"):
            validate_trace_events([{"pid": 1}])

    def test_rejects_duration_event_without_ts(self):
        with pytest.raises(ValueError, match="ts"):
            validate_trace_events([{"ph": "X", "pid": 1, "name": "x"}])
