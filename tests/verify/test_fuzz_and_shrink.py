"""Fuzzing determinism and the seeded-bug acceptance path.

The ISSUE's headline acceptance test lives here: a deliberately broken
machine (the classic commit/squash inversion -- squashed speculative
writes land in sequential state) must be *caught* by the fuzzer,
*shrunk* to a handful of instructions, and *replayable* from the
serialized JSON case.
"""

import pytest

from repro.core.predicate import PredValue
from repro.core.regfile import CommitEvents, PredicatedRegisterFile
from repro.isa.registers import NUM_REGS
from repro.machine.vliw import VLIWMachine
from repro.verify import ReproCase, run_fuzz, shrink_case
from repro.verify.case import CASE_SCHEMA
from repro.verify.fuzz import build_case, derive_campaign
from repro.verify.oracle import OracleResult
from repro.verify.shrink import (
    SHRINK_BUDGET_MARGIN,
    SHRINK_MAX_CYCLES,
    SHRINK_MAX_STEPS,
    SHRINK_MIN_CYCLES,
    SHRINK_MIN_STEPS,
    candidate_budgets,
)


class _SquashCommitsRegfile(PredicatedRegisterFile):
    """Commit/squash inversion: FALSE-predicate writes reach sequential
    state instead of being dropped."""

    def tick(self, ccr):
        events = CommitEvents()
        values = ccr.values()
        for reg, entry in enumerate(self.entries):
            if not entry.pending:
                continue
            kept = []
            for write in entry.pending:
                verdict = write.pred.evaluate(values)
                if verdict is PredValue.UNSPEC:
                    kept.append(write)
                elif verdict is PredValue.TRUE:
                    if write.fault is not None:
                        events.detected_faults.append(write.fault)
                    else:
                        entry.sequential = write.value
                    events.committed.append(reg)
                else:
                    entry.sequential = write.value  # the seeded bug
                    events.squashed.append(reg)
            entry.pending = kept
        return events


class BuggyMachine(VLIWMachine):
    """A VLIW machine wired to the inverted commit hardware."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.regfile = _SquashCommitsRegfile(
            NUM_REGS, shadow_capacity=self.config.shadow_capacity
        )


class TestFuzzDeterminism:
    def test_campaign_derivation_is_pure(self):
        for index in range(10):
            assert derive_campaign(7, index) == derive_campaign(7, index)

    def test_different_indices_differ(self):
        specs = {derive_campaign(0, index) for index in range(10)}
        assert len(specs) == 10

    def test_built_cases_are_reproducible(self):
        spec = derive_campaign(3, 1)
        assert build_case(spec).to_json() == build_case(spec).to_json()

    def test_reports_are_identical_across_runs(self):
        first = run_fuzz(6, seed=3)
        second = run_fuzz(6, seed=3)
        assert first.to_dict() == second.to_dict()


class TestCleanFuzz:
    def test_correct_machine_survives_fuzzing(self):
        report = run_fuzz(12, seed=1)
        assert report.divergences == 0, report.summary()
        assert report.equivalent == 12
        # The sweep exercised the interesting paths, not just straight
        # lines: at least one campaign took page faults.
        assert report.faulting_campaigns > 0


class TestSeededBug:
    """The acceptance pipeline: catch -> shrink -> replay."""

    def test_fuzzer_catches_the_buggy_machine(self):
        report = run_fuzz(14, seed=0, machine_factory=BuggyMachine)
        assert report.divergences >= 2, report.summary()
        categories = {
            finding.result.report.category for finding in report.findings
        }
        assert categories <= {"output", "register", "memory"}

    def test_finding_shrinks_small_and_replays(self, tmp_path):
        # Campaign (seed 0, index 13) deterministically exposes the
        # inverted commit on a small program.
        spec = derive_campaign(0, 13)
        case = build_case(spec)
        result = case.run(machine_factory=BuggyMachine)
        assert not result.equivalent

        shrunk = shrink_case(
            case,
            machine_factory=BuggyMachine,
            category=result.report.category,
        )
        assert shrunk.shrunk_instructions <= 10, shrunk.describe()
        assert shrunk.shrunk_instructions < shrunk.original_instructions
        assert shrunk.case.metadata["shrunk"] is True

        # Round-trip through JSON on disk, then replay.
        path = shrunk.case.save(tmp_path / "case.json")
        replayed = ReproCase.load(path)
        assert replayed.to_dict()["schema"] == CASE_SCHEMA
        again = replayed.run(machine_factory=BuggyMachine)
        assert not again.equivalent
        assert again.report.category == shrunk.category

        # The same minimal case passes on the correct machine: the
        # repro pins the bug, not an oracle artifact.
        assert replayed.run().equivalent

    def test_run_fuzz_saves_repro_cases(self, tmp_path):
        report = run_fuzz(
            14,
            seed=0,
            machine_factory=BuggyMachine,
            out_dir=tmp_path,
        )
        assert report.findings
        for finding in report.findings:
            assert finding.case_path is not None
            loaded = ReproCase.load(finding.case_path)
            assert loaded.model == finding.spec.model


class TestShrinkGuards:
    def test_non_divergent_case_is_rejected(self):
        case = build_case(derive_campaign(0, 0))
        assert case.run().equivalent
        with pytest.raises(ValueError, match="does not diverge"):
            shrink_case(case)


def _oracle_result(scalar_cycles, machine_cycles) -> OracleResult:
    return OracleResult(
        program="p",
        model="region_pred",
        equivalent=False,
        report=None,
        scalar_cycles=scalar_cycles,
        machine_cycles=machine_cycles,
    )


class TestAdaptiveBudgets:
    """Livelock regression: candidates are bounded by a small multiple
    of what the unshrunk case needed, not the worst-case ceilings.

    Before the adaptive budgets, a ddmin mutation that turned the
    program into an infinite loop burned the full static cycle budget
    (~1s) per candidate -- a shrink of a few hundred candidates could
    stall for minutes."""

    def test_unknown_initial_falls_back_to_ceilings(self):
        assert candidate_budgets(None) == (
            SHRINK_MAX_STEPS,
            SHRINK_MAX_CYCLES,
        )
        assert candidate_budgets(_oracle_result(None, None)) == (
            SHRINK_MAX_STEPS,
            SHRINK_MAX_CYCLES,
        )

    def test_tiny_runs_get_the_floors(self):
        assert candidate_budgets(_oracle_result(5, 9)) == (
            SHRINK_MIN_STEPS,
            SHRINK_MIN_CYCLES,
        )

    def test_midrange_scales_with_the_slower_side(self):
        steps, cycles = candidate_budgets(_oracle_result(1_000, 3_000))
        assert steps == 3_000 * SHRINK_BUDGET_MARGIN
        assert cycles == 3_000 * SHRINK_BUDGET_MARGIN

    def test_huge_runs_clamp_at_the_ceilings(self):
        assert candidate_budgets(_oracle_result(10**9, 10**9)) == (
            SHRINK_MAX_STEPS,
            SHRINK_MAX_CYCLES,
        )

    def test_candidates_run_under_the_adaptive_budget(self, monkeypatch):
        spec = derive_campaign(0, 13)
        case = build_case(spec)
        initial = case.run(machine_factory=BuggyMachine)
        assert not initial.equivalent
        expected = candidate_budgets(initial)
        assert expected[0] < SHRINK_MAX_STEPS
        assert expected[1] < SHRINK_MAX_CYCLES

        seen = []
        original_run = ReproCase.run

        def spy(self, **kwargs):
            seen.append((kwargs.get("max_steps"), kwargs.get("max_cycles")))
            return original_run(self, **kwargs)

        monkeypatch.setattr(ReproCase, "run", spy)
        shrink_case(
            case,
            machine_factory=BuggyMachine,
            category=initial.report.category,
            initial_result=initial,
        )
        # With category and initial_result supplied, every run here is a
        # candidate -- and every one got the adaptive budget.
        assert seen
        assert all(budgets == expected for budgets in seen)

    def test_livelocking_candidates_are_rejected_cheaply(self, monkeypatch):
        # Synthetic livelocking oracle: every mutated candidate "runs
        # forever", i.e. raises the budget-exhausted error the real
        # executor raises -- after proving its budget was adaptive.
        spec = derive_campaign(0, 13)
        case = build_case(spec)
        initial = case.run(machine_factory=BuggyMachine)
        _, cycles_budget = candidate_budgets(initial)
        assert cycles_budget < SHRINK_MAX_CYCLES

        candidates = 0
        original_run = ReproCase.run

        def livelocking(self, **kwargs):
            nonlocal candidates
            if self.program_text != case.program_text:
                candidates += 1
                assert kwargs.get("max_cycles") == cycles_budget
                raise RuntimeError("cycle budget exhausted (livelock)")
            return original_run(self, **kwargs)

        monkeypatch.setattr(ReproCase, "run", livelocking)
        shrunk = shrink_case(
            case,
            machine_factory=BuggyMachine,
            category=initial.report.category,
            initial_result=initial,
        )
        assert candidates > 0
        assert shrunk.accepted == 0
        assert shrunk.shrunk_instructions == shrunk.original_instructions
