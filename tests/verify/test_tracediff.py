"""Lockstep divergence forensics (``repro diff-trace``).

Two halves: on *correct* hardware the instrumented lockstep run must
agree with the oracle's verdict -- every registry workload under every
executable model yields matching effect streams and no divergence -- and
on deliberately *broken* hardware (the commit/squash inversion from
``test_fuzz_and_shrink``) the diff must pinpoint a first divergent
effect with flight-recorder context around it.
"""

import json

import pytest

from repro.machine.config import base_machine
from repro.verify import (
    ReproCase,
    diff_trace_case,
    merged_trace,
    run_diff_trace,
    validate_tracediff,
)
from repro.verify.fuzz import build_case, derive_campaign
from repro.verify.tracediff import TRACEDIFF_SCHEMA
from repro.workloads import all_workloads, get_workload
from tests.verify.test_fuzz_and_shrink import BuggyMachine

EXECUTABLE_MODELS = ("region_pred", "trace_pred")
WORKLOAD_NAMES = [workload.name for workload in all_workloads()]


def diff_for(name: str, model: str, **kwargs):
    workload = get_workload(name)
    return run_diff_trace(
        workload.program,
        model,
        base_machine(),
        train_memory=workload.train_memory(),
        eval_memory=workload.eval_memory(),
        **kwargs,
    )


class TestEquivalentStreams:
    """Where the oracle says EQUIVALENT, the effect streams agree."""

    @pytest.mark.parametrize("model", EXECUTABLE_MODELS)
    @pytest.mark.parametrize("name", WORKLOAD_NAMES)
    def test_workload_streams_agree(self, name, model):
        result = diff_for(name, model)
        assert result.equivalent, result.describe()
        assert result.divergence is None
        # Both sides really committed effects.
        assert len(result.scalar.effects) > 0
        assert len(result.machine.effects) > 0
        # The schedule-invariant channels match exactly.
        scalar_outs = [e.value for e in result.scalar.effects.outs()]
        machine_outs = [e.value for e in result.machine.effects.outs()]
        assert scalar_outs == machine_outs

    def test_equivalent_artifact_validates(self):
        document = diff_for("grep", "region_pred").to_dict()
        assert document["schema"] == TRACEDIFF_SCHEMA
        validate_tracediff(document)
        # And survives a JSON round trip.
        validate_tracediff(json.loads(json.dumps(document)))


class TestPinpointing:
    """Broken commit hardware is localized, not just detected."""

    @pytest.fixture(scope="class")
    def broken_result(self):
        # Campaign (seed 0, index 13) deterministically exposes the
        # inverted commit on a small program (see test_fuzz_and_shrink).
        case = build_case(derive_campaign(0, 13))
        return diff_trace_case(case, machine_factory=BuggyMachine)

    def test_divergence_is_found(self, broken_result):
        assert not broken_result.equivalent
        assert broken_result.divergence is not None
        divergence = broken_result.divergence
        assert divergence.channel in {"out", "register", "memory"}
        assert divergence.expected != divergence.actual

    def test_flight_window_surrounds_the_divergence(self, broken_result):
        # At least one side carries +-K events of mechanism context.
        assert broken_result.scalar_window or broken_result.machine_window
        for window in (broken_result.scalar_window, broken_result.machine_window):
            for event in window:
                assert event.kind
                assert event.cycle >= 0

    def test_describe_names_the_locus(self, broken_result):
        text = broken_result.describe()
        assert "DIVERGED" in text
        assert broken_result.divergence.locus in text

    def test_divergent_artifact_validates(self, broken_result):
        document = broken_result.to_dict()
        validate_tracediff(document)
        assert document["equivalent"] is False
        assert document["divergence"] is not None

    def test_same_case_is_clean_on_correct_hardware(self):
        case = build_case(derive_campaign(0, 13))
        result = diff_trace_case(case)
        assert result.equivalent, result.describe()


class TestReplayedCase:
    def test_saved_case_replays_through_diff_trace(self, tmp_path):
        case = build_case(derive_campaign(0, 13))
        path = case.save(tmp_path / "case.json")
        replayed = ReproCase.load(path)
        result = diff_trace_case(replayed, machine_factory=BuggyMachine)
        assert not result.equivalent
        assert result.divergence is not None


class TestMergedTrace:
    def test_two_process_perfetto_document(self):
        result = diff_for("grep", "region_pred")
        events = merged_trace(result, None)
        assert events
        pids = {event["pid"] for event in events}
        assert pids == {1, 2}


class TestValidateTracediff:
    def test_rejects_non_object(self):
        with pytest.raises(ValueError, match="JSON object"):
            validate_tracediff([])

    def test_rejects_wrong_schema(self):
        with pytest.raises(ValueError, match="not a tracediff artifact"):
            validate_tracediff({"schema": "repro-verify/v1"})

    def test_rejects_unexplained_divergence(self):
        document = diff_for("grep", "region_pred").to_dict()
        document["equivalent"] = False
        document["divergence"] = None
        with pytest.raises(ValueError, match="neither a divergence"):
            validate_tracediff(document)
