"""Fault-injection campaigns: corruption is never a silent wrong answer.

Every injected corruption of buffered speculative state must resolve to
an outcome the architecture (or the oracle) accounts for -- masked,
recovered, detected, or (for CCR flips, which corrupt decided
architectural state) an oracle-caught divergence.  A trial whose outcome
falls outside the per-point allowance is a violation and fails the
campaign.
"""

import json

import pytest

from repro.obs.metrics import CounterSink
from repro.verify.faults import (
    ALLOWED_OUTCOMES,
    INJECTION_POINTS,
    run_fault_campaign,
)


class TestCampaign:
    def test_no_violations_across_all_points(self):
        report = run_fault_campaign(8, seed=0)
        assert not report.violations, report.describe()
        assert len(report.results) == 8

    def test_every_point_is_exercised(self):
        report = run_fault_campaign(8, seed=0)
        matrix = report.outcome_matrix()
        assert set(matrix) == set(INJECTION_POINTS)

    def test_outcomes_respect_the_allowance(self):
        report = run_fault_campaign(8, seed=0)
        for result in report.results:
            if result.outcome == "not_applied":
                continue
            assert result.outcome in ALLOWED_OUTCOMES[result.point], (
                result.describe()
            )

    def test_recovery_path_is_actually_taken(self):
        """Spurious E flags on buffered state must force recoveries in
        at least some trials -- otherwise the campaign isn't testing the
        Section 3 recovery machinery at all."""
        report = run_fault_campaign(
            8, seed=0, points=("regfile", "store_buffer")
        )
        outcomes = [r.outcome for r in report.results]
        assert "recovered" in outcomes, outcomes

    def test_deterministic(self):
        assert (
            run_fault_campaign(4, seed=5).to_dict()
            == run_fault_campaign(4, seed=5).to_dict()
        )

    def test_report_is_json_native(self):
        document = run_fault_campaign(4, seed=0).to_dict()
        json.dumps(document)
        assert document["trials"] == 4

    def test_unknown_point_rejected(self):
        with pytest.raises(ValueError, match="unknown injection point"):
            run_fault_campaign(1, seed=0, points=("tlb",))

    def test_sink_counters(self):
        sink = CounterSink()
        report = run_fault_campaign(4, seed=0, sink=sink)
        counters = sink.to_dict()["counters"]
        assert counters["faults.trials"] == 4
        assert "faults.violations" not in counters
        applied = [r for r in report.results if r.outcome != "not_applied"]
        for result in applied:
            assert counters[f"faults.{result.point}.{result.outcome}"] >= 1
