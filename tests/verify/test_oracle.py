"""The differential oracle: golden-model equivalence and divergence reports.

``TestDifferentialSmoke`` is the ISSUE's tier-1 smoke matrix: every
registry workload under every executable machine model must reach
bit-identical architectural state on the cycle-level machine and the
scalar interpreter.
"""

import json

import pytest

from repro.machine.config import base_machine
from repro.machine.vliw import VLIWMachine
from repro.verify import (
    VERIFY_MODELS,
    OracleResult,
    resolve_model,
    run_oracle,
)
from repro.obs.metrics import CounterSink
from repro.workloads import all_workloads, get_workload

EXECUTABLE_MODELS = ("region_pred", "trace_pred")
WORKLOAD_NAMES = [workload.name for workload in all_workloads()]


def oracle_for(name: str, model: str, **kwargs) -> OracleResult:
    workload = get_workload(name)
    return run_oracle(
        workload.program,
        model,
        base_machine(),
        train_memory=workload.train_memory(),
        eval_memory=workload.eval_memory(),
        **kwargs,
    )


class TestDifferentialSmoke:
    """Every workload x every machine model, exact-state equivalence."""

    @pytest.mark.parametrize("model", EXECUTABLE_MODELS)
    @pytest.mark.parametrize("name", WORKLOAD_NAMES)
    def test_workload_is_equivalent(self, name, model):
        result = oracle_for(name, model)
        assert result.equivalent, result.describe()
        # The comparison really covered state, not a trivial empty run.
        assert result.compared_registers > 0
        assert result.machine_cycles > 0
        assert result.speedup > 1.0

    def test_predicating_alias_runs_region_pred(self):
        result = oracle_for("grep", "predicating")
        assert result.equivalent
        assert result.model == "region_pred"


class TestResolveModel:
    def test_alias(self):
        assert resolve_model("predicating") == "region_pred"

    def test_identity(self):
        for model in ("region_pred", "trace_pred"):
            assert resolve_model(model) == model

    def test_unknown_rejected(self):
        with pytest.raises(ValueError, match="unknown model"):
            resolve_model("superscalar")

    def test_analytic_only_rejected(self):
        with pytest.raises(ValueError, match="analytic-only"):
            resolve_model("global")

    def test_verify_models_all_resolve(self):
        for model in VERIFY_MODELS:
            assert resolve_model(model) in EXECUTABLE_MODELS


class _LyingMachine(VLIWMachine):
    """Corrupts the first output value the scalar semantics produced."""

    def run(self):
        result = super().run()
        result.output[0] = 999_999
        return result


class TestDivergenceReport:
    def test_broken_machine_is_caught(self):
        result = oracle_for("grep", "region_pred", machine_factory=_LyingMachine)
        assert not result.equivalent
        report = result.report
        assert report is not None
        assert report.category == "output"
        assert report.sites
        assert report.sites[0].kind == "output"
        assert report.sites[0].locus == "out[0]"
        assert report.sites[0].actual == 999_999

    def test_report_serializes_to_json(self):
        result = oracle_for("grep", "region_pred", machine_factory=_LyingMachine)
        document = result.to_dict()
        text = json.dumps(document)  # must be JSON-native throughout
        assert "999999" in text
        assert document["report"]["category"] == "output"

    def test_describe_names_the_divergence(self):
        result = oracle_for("grep", "region_pred", machine_factory=_LyingMachine)
        described = result.describe()
        assert "DIVERGED" in described
        assert "output" in described

    def test_sink_counts_divergences(self):
        sink = CounterSink()
        oracle_for("grep", "region_pred", machine_factory=_LyingMachine, sink=sink)
        counters = sink.to_dict()["counters"]
        assert counters["oracle.runs"] == 1
        assert counters["oracle.divergences"] == 1
        assert counters["oracle.divergences.output"] == 1

    def test_sink_counts_equivalent_runs(self):
        sink = CounterSink()
        oracle_for("grep", "region_pred", sink=sink)
        counters = sink.to_dict()["counters"]
        assert counters["oracle.equivalent"] == 1
        assert "oracle.divergences" not in counters
