"""Regression lock on the known ``region_pred`` divergence.

``findings/case-synthetic-1803.json`` freezes a fuzz finding (synthetic
program, seed 1803, demand-paged faults with unmap probability 0.3)
where region-predicated scheduled code diverges from scalar semantics:
the machine emits an extra ``out`` and a wrong register file.  See the
open item in ROADMAP.md ("Known bug (pre-existing, found 2026-08-06)").

The test is ``xfail(strict=True)``: it replays the case through the
differential oracle and asserts equivalence, which is expected to fail
while the scheduler/commit bug is open.  When the bug is fixed the
xpass becomes a hard failure, forcing whoever fixes it to delete the
marker here and close the ROADMAP entry in the same change -- the case
file is the bug's executable definition.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.verify.case import ReproCase

CASE_PATH = (
    Path(__file__).resolve().parents[2]
    / "findings"
    / "case-synthetic-1803.json"
)


def test_case_file_is_loadable():
    """The frozen case must stay parseable even while the bug is open."""
    case = ReproCase.load(CASE_PATH)
    assert case.model == "region_pred"
    assert case.backing, "case relies on the demand-paging backing store"
    assert case.instruction_count() > 0


@pytest.mark.xfail(
    strict=True,
    reason=(
        "known region_pred scheduler/commit divergence under demand-paged "
        "faults (ROADMAP open item, fuzz seed 1803); remove this marker "
        "when the fix lands"
    ),
)
def test_case_synthetic_1803_replays_equivalent():
    result = ReproCase.load(CASE_PATH).run()
    assert result.equivalent, result.describe()
