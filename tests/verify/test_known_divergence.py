"""Regression lock on the fixed ``region_pred`` fault-writeback bug.

``findings/case-synthetic-1803.json`` freezes a fuzz finding (synthetic
program, seed 1803, demand-paged faults with unmap probability 0.3)
where region-predicated scheduled code diverged from scalar semantics:
the machine emitted an extra ``out`` and a wrong register file.

Root cause (pinned down with ``repro diff-trace``): a faulting
speculative load wrote its E-flagged (and, on recovery replay, its
repaired) result into the shadow regfile *immediately at execute time*
instead of at its writeback cycle.  When the same bundle carried an
earlier-in-program-order ALU write to the same register (``min r5,...``
before ``ld r5,...``), the ALU result landed at end-of-cycle and
superseded the load -- the register kept the stale value and every
condition computed from it downstream went wrong.  Fixed by flying the
fault path through the normal writeback queue with the E flag attached
(see ``_InFlight.fault`` in ``machine/vliw.py``).

The replay now asserts equivalence outright: the case file is the bug's
executable definition and must stay green.
"""

from __future__ import annotations

from pathlib import Path

from repro.verify.case import ReproCase
from repro.verify.tracediff import diff_trace_case

CASE_PATH = (
    Path(__file__).resolve().parents[2]
    / "findings"
    / "case-synthetic-1803.json"
)


def test_case_file_is_loadable():
    """The frozen case must stay parseable."""
    case = ReproCase.load(CASE_PATH)
    assert case.model == "region_pred"
    assert case.backing, "case relies on the demand-paging backing store"
    assert case.instruction_count() > 0


def test_case_synthetic_1803_replays_equivalent():
    result = ReproCase.load(CASE_PATH).run()
    assert result.equivalent, result.describe()


def test_case_synthetic_1803_diff_trace_clean():
    """The lockstep differ agrees: no divergent committed effect."""
    result = diff_trace_case(ReproCase.load(CASE_PATH))
    assert result.equivalent
    assert result.divergence is None
