"""Tests for opcode semantics and the encoding cost model."""

import pytest
from hypothesis import given, strategies as st

from repro.isa.encoding import (
    region_predicating_cost,
    trace_predicating_cost,
)
from repro.isa.semantics import (
    ArithmeticFault,
    eval_alu,
    eval_cond,
    to_i64,
)

i64 = st.integers(-(2**63), 2**63 - 1)


class TestToI64:
    def test_wraps_positive_overflow(self):
        assert to_i64(2**63) == -(2**63)

    def test_identity_in_range(self):
        assert to_i64(42) == 42
        assert to_i64(-(2**63)) == -(2**63)
        assert to_i64(2**63 - 1) == 2**63 - 1


class TestAluSemantics:
    @pytest.mark.parametrize(
        "opcode, a, b, expected",
        [
            ("add", 2, 3, 5),
            ("sub", 2, 3, -1),
            ("mul", -4, 3, -12),
            ("div", 7, 2, 3),
            ("div", -7, 2, -3),  # truncating, like MIPS
            ("rem", 7, 2, 1),
            ("rem", -7, 2, -1),
            ("and", 0b1100, 0b1010, 0b1000),
            ("or", 0b1100, 0b1010, 0b1110),
            ("xor", 0b1100, 0b1010, 0b0110),
            ("sll", 1, 4, 16),
            ("srl", -1, 60, 15),
            ("sra", -16, 2, -4),
            ("slt", 1, 2, 1),
            ("slt", 2, 1, 0),
            ("seq", 5, 5, 1),
            ("min", 3, -2, -2),
            ("max", 3, -2, 3),
        ],
    )
    def test_binary_ops(self, opcode, a, b, expected):
        assert eval_alu(opcode, a, b) == expected

    def test_li_mov(self):
        assert eval_alu("li", 9) == 9
        assert eval_alu("mov", -3) == -3

    def test_immediates(self):
        assert eval_alu("addi", 10, -3) == 7
        assert eval_alu("slti", 1, 2) == 1

    def test_div_by_zero_faults(self):
        with pytest.raises(ArithmeticFault):
            eval_alu("div", 1, 0)
        with pytest.raises(ArithmeticFault):
            eval_alu("rem", 1, 0)

    @given(i64, i64)
    def test_add_wraps_like_hardware(self, a, b):
        assert eval_alu("add", a, b) == to_i64(a + b)

    @given(i64, st.integers(-(2**63), -1).filter(lambda x: x != 0))
    def test_div_sign_identity(self, a, b):
        quotient = eval_alu("div", a, b)
        remainder = eval_alu("rem", a, b)
        assert to_i64(quotient * b + remainder) == a


class TestCondSemantics:
    @pytest.mark.parametrize(
        "opcode, a, b, expected",
        [
            ("clt", 1, 2, True),
            ("cle", 2, 2, True),
            ("cgt", 2, 1, True),
            ("cge", 1, 2, False),
            ("ceq", 3, 3, True),
            ("cne", 3, 3, False),
        ],
    )
    def test_compares(self, opcode, a, b, expected):
        assert eval_cond(opcode, a, b) is expected

    def test_immediate_compares(self):
        assert eval_cond("clti", 1, 2) is True
        assert eval_cond("ceqi", 7, 7) is True


class TestEncodingCost:
    def test_region_k4_is_about_one_byte(self):
        """The paper: 2*K predicate bits + 1 bit/source ~= one byte for K=4."""
        cost = region_predicating_cost(4)
        assert cost.predicate_bits == 8
        assert cost.shadow_select_bits == 2
        assert 8 <= cost.overhead_bits <= 12

    def test_trace_needs_log_bits(self):
        assert trace_predicating_cost(4).predicate_bits == 3  # ceil(log2(5))
        assert trace_predicating_cost(1).predicate_bits == 1

    def test_trace_cheaper_than_region(self):
        for k in (1, 2, 4, 8):
            assert (
                trace_predicating_cost(k).overhead_bits
                <= region_predicating_cost(k).overhead_bits
            )

    def test_k_must_be_positive(self):
        with pytest.raises(ValueError):
            region_predicating_cost(0)
