"""Unit tests for operands and the Instruction record."""

import pytest

from repro.core.predicate import ALWAYS, Predicate
from repro.isa import CReg, Imm, Instruction, Label, Reg
from repro.isa.opcodes import OPCODES, FuClass


class TestOperands:
    def test_reg_str(self):
        assert str(Reg(7)) == "r7"

    def test_reg_bounds(self):
        with pytest.raises(ValueError):
            Reg(32)
        with pytest.raises(ValueError):
            Reg(-1)

    def test_creg_bounds(self):
        with pytest.raises(ValueError):
            CReg(8)

    def test_label_nonempty(self):
        with pytest.raises(ValueError):
            Label("")

    def test_operands_hashable(self):
        assert len({Reg(1), Reg(1), Reg(2), Imm(1), CReg(1)}) == 4


class TestInstruction:
    def test_add_defs_uses(self):
        instr = Instruction("add", (Reg(1), Reg(2), Reg(3)))
        assert instr.dest_reg == 1
        assert instr.src_regs == (2, 3)
        assert instr.dest_creg is None
        assert instr.fu is FuClass.ALU
        assert instr.latency == 1
        assert not instr.is_unsafe

    def test_load_properties(self):
        instr = Instruction("ld", (Reg(1), Reg(2), Imm(4)))
        assert instr.is_load and instr.is_unsafe
        assert instr.latency == 2
        assert instr.fu is FuClass.LOAD
        assert instr.imm == 4

    def test_store_has_no_dest(self):
        instr = Instruction("st", (Reg(1), Reg(2), Imm(0)))
        assert instr.dest_reg is None
        assert instr.src_regs == (1, 2)

    def test_cond_set(self):
        instr = Instruction("clt", (CReg(0), Reg(1), Reg(2)))
        assert instr.is_cond_set
        assert instr.dest_creg == 0
        assert instr.fu is FuClass.BRANCH

    def test_branch_targets(self):
        instr = Instruction("br", (CReg(0), Label("loop")))
        assert instr.is_conditional_branch and instr.is_control
        assert instr.target == "loop"
        assert instr.src_cregs == (0,)
        assert not instr.is_speculable

    def test_wrong_operand_count(self):
        with pytest.raises(ValueError):
            Instruction("add", (Reg(1), Reg(2)))

    def test_wrong_operand_type(self):
        with pytest.raises(ValueError):
            Instruction("add", (Reg(1), Reg(2), Imm(3)))

    def test_unknown_opcode(self):
        with pytest.raises(ValueError):
            Instruction("frobnicate", ())

    def test_shadow_marker_valid_position(self):
        instr = Instruction(
            "add", (Reg(1), Reg(2), Reg(3)), shadow=frozenset({1})
        )
        assert 1 in instr.shadow

    def test_shadow_marker_on_dest_rejected(self):
        with pytest.raises(ValueError):
            Instruction("add", (Reg(1), Reg(2), Reg(3)), shadow=frozenset({0}))

    def test_replace_gives_fresh_uid(self):
        a = Instruction("add", (Reg(1), Reg(2), Reg(3)))
        b = a.replace(pred=Predicate({0: True}))
        assert b.uid != a.uid
        assert b.pred == Predicate({0: True})
        assert a.pred is ALWAYS

    def test_rename_reg_dest_only(self):
        instr = Instruction("add", (Reg(1), Reg(1), Reg(3)))
        renamed = instr.rename_reg(1, 5, dest=True, srcs=False)
        assert renamed.dest_reg == 5
        assert renamed.src_regs == (1, 3)

    def test_rename_reg_srcs_only(self):
        instr = Instruction("add", (Reg(1), Reg(1), Reg(3)))
        renamed = instr.rename_reg(1, 5, dest=False, srcs=True)
        assert renamed.dest_reg == 1
        assert renamed.src_regs == (5, 3)

    def test_every_opcode_constructible(self):
        """Every entry of the opcode table can be instantiated."""
        fillers = {"rd": Reg(1), "rs": Reg(2), "cd": CReg(0), "cu": CReg(0),
                   "imm": Imm(1), "label": Label("L")}
        for name, info in OPCODES.items():
            instr = Instruction(
                name, tuple(fillers[role] for role in info.signature)
            )
            assert instr.opcode == name
