"""Parser/printer tests, including a hypothesis round-trip property."""

import pytest
from hypothesis import given, strategies as st

from repro.core.predicate import Predicate
from repro.isa import (
    Instruction,
    OPCODES,
    ParseError,
    format_instruction,
    format_program,
    parse_instruction,
    parse_program,
)
from repro.isa.operands import CReg, Imm, Label, Reg


class TestParseInstruction:
    def test_simple_add(self):
        instr = parse_instruction("add r1, r2, r3")
        assert instr.opcode == "add"
        assert instr.dest_reg == 1 and instr.src_regs == (2, 3)

    def test_predicated(self):
        instr = parse_instruction("[c0&!c1] sub r4, r5, r6")
        assert instr.pred == Predicate({0: True, 1: False})

    def test_alw_predicate_explicit(self):
        instr = parse_instruction("[alw] add r1, r2, r3")
        assert instr.pred.is_always

    def test_shadow_source(self):
        instr = parse_instruction("add r1, r2.s, r3")
        assert instr.shadow == frozenset({1})

    def test_shadow_on_dest_rejected(self):
        with pytest.raises(ParseError):
            parse_instruction("add r1.s, r2, r3")

    def test_load_immediate_offsets(self):
        assert parse_instruction("ld r1, r2, -8").imm == -8
        assert parse_instruction("ld r1, r2, 0x10").imm == 16

    def test_comment_stripped(self):
        instr = parse_instruction("add r1, r2, r3  # hello")
        assert instr.opcode == "add"

    def test_unknown_opcode(self):
        with pytest.raises(ParseError):
            parse_instruction("badop r1, r2, r3")

    def test_wrong_arity(self):
        with pytest.raises(ParseError):
            parse_instruction("add r1, r2")

    def test_bad_register(self):
        with pytest.raises(ParseError):
            parse_instruction("add r1, r99, r3")


class TestParseProgram:
    def test_labels_and_branches(self):
        program = parse_program(
            """
            start:
                li r1, 0
            loop:
                addi r1, r1, 1
                clti c0, r1, 10
                br c0, loop
                halt
            """
        )
        assert program.labels == {"start": 0, "loop": 1}
        assert len(program) == 5

    def test_duplicate_label(self):
        with pytest.raises(ParseError):
            parse_program("a:\n nop\na:\n nop")

    def test_undefined_target(self):
        with pytest.raises(ValueError):
            parse_program("jmp nowhere")

    def test_error_carries_line_number(self):
        with pytest.raises(ParseError, match="line 3"):
            parse_program("nop\nnop\nbadop r1\n")

    def test_trailing_label(self):
        program = parse_program("jmp end\nend:")
        assert program.labels["end"] == 1


class TestRoundTrip:
    def test_program_roundtrip(self):
        source = """
        entry:
            li r1, 5
            [c0&!c2] add r3, r1.s, r2
        loop:
            clt c1, r1, r3
            br c1, loop
            out r3
            halt
        """
        program = parse_program(source)
        text = format_program(program)
        again = parse_program(text)
        assert [format_instruction(i) for i in program.instructions] == [
            format_instruction(i) for i in again.instructions
        ]
        # Shadow markers and predicates survive the round trip.
        assert again.instructions[1].shadow == frozenset({1})
        assert again.instructions[1].pred == Predicate({0: True, 2: False})


def _instruction_strategy():
    """Random well-formed instructions over the whole opcode table."""
    fillers = {
        "rd": st.integers(0, 31).map(Reg),
        "rs": st.integers(0, 31).map(Reg),
        "cd": st.integers(0, 7).map(CReg),
        "cu": st.integers(0, 7).map(CReg),
        "imm": st.integers(-(2**31), 2**31 - 1).map(Imm),
        "label": st.just(Label("L")),
    }

    def build(name, pred_terms):
        info = OPCODES[name]
        return st.tuples(
            *[fillers[role] for role in info.signature]
        ).map(
            lambda operands: Instruction(
                name, operands, pred=Predicate(pred_terms)
            )
        )

    pred = st.dictionaries(st.integers(0, 7), st.booleans(), max_size=3)
    return st.sampled_from(sorted(OPCODES)).flatmap(
        lambda name: pred.flatmap(lambda terms: build(name, terms))
    )


@given(_instruction_strategy())
def test_instruction_text_roundtrip(instr):
    """parse(format(i)) reproduces i for arbitrary instructions."""
    again = parse_instruction(format_instruction(instr))
    assert again.opcode == instr.opcode
    assert again.operands == instr.operands
    assert again.pred == instr.pred
