"""Tests for the static predictor and Table 3's metric."""

from repro.analysis.branch_prediction import StaticPredictor, successive_accuracy
from repro.sim.trace import DynamicTrace


def trace_from(outcomes: list[tuple[int, bool]]) -> DynamicTrace:
    trace = DynamicTrace()
    for uid, taken in outcomes:
        trace.record_branch(block=0, uid=uid, taken=taken)
    return trace


class TestStaticPredictor:
    def test_majority_direction(self):
        trace = trace_from([(1, True)] * 7 + [(1, False)] * 3)
        predictor = StaticPredictor.from_trace(trace)
        assert predictor.predict(1) is True
        assert abs(predictor.probability(1) - 0.7) < 1e-9
        assert abs(predictor.confidence(1) - 0.7) < 1e-9

    def test_minority_direction(self):
        trace = trace_from([(1, False)] * 9 + [(1, True)])
        predictor = StaticPredictor.from_trace(trace)
        assert predictor.predict(1) is False
        assert abs(predictor.confidence(1) - 0.9) < 1e-9

    def test_unseen_branch_defaults(self):
        predictor = StaticPredictor.from_trace(trace_from([]))
        assert predictor.predict(42) is False
        assert predictor.probability(42) == 0.5

    def test_accuracy_on(self):
        train = trace_from([(1, True)] * 8 + [(1, False)] * 2)
        predictor = StaticPredictor.from_trace(train)
        evaluation = trace_from([(1, True)] * 6 + [(1, False)] * 4)
        assert abs(predictor.accuracy_on(evaluation) - 0.6) < 1e-9

    def test_accuracy_on_empty(self):
        predictor = StaticPredictor.from_trace(trace_from([]))
        assert predictor.accuracy_on(trace_from([])) == 1.0


class TestSuccessiveAccuracy:
    def test_perfect_prediction(self):
        trace = trace_from([(1, True)] * 20)
        predictor = StaticPredictor.from_trace(trace)
        accuracies = successive_accuracy(predictor, trace, max_run=4)
        assert accuracies == [1.0, 1.0, 1.0, 1.0]

    def test_alternating_outcomes(self):
        # Branch alternates T/F: majority is a tie broken to taken, so
        # accuracy 0.5 for single branches and 0 for any window of >= 3.
        trace = trace_from([(1, i % 2 == 0) for i in range(20)])
        predictor = StaticPredictor.from_trace(trace)
        accuracies = successive_accuracy(predictor, trace, max_run=3)
        assert abs(accuracies[0] - 0.5) < 1e-9
        assert accuracies[2] == 0.0

    def test_decay_is_monotone(self):
        import random

        rng = random.Random(7)
        trace = trace_from([(1, rng.random() < 0.8) for _ in range(500)])
        predictor = StaticPredictor.from_trace(trace)
        accuracies = successive_accuracy(predictor, trace, max_run=8)
        for early, late in zip(accuracies, accuracies[1:]):
            assert late <= early + 1e-9

    def test_window_semantics(self):
        # Outcomes: T T F T; predictor says T. Windows of 2:
        # (TT)=ok, (TF)=bad, (FT)=bad -> 1/3.
        trace = trace_from(
            [(1, True), (1, True), (1, False), (1, True)]
        )
        predictor = StaticPredictor.from_trace(trace)
        accuracies = successive_accuracy(predictor, trace, max_run=2)
        assert abs(accuracies[1] - 1 / 3) < 1e-9
