"""The crash-containing worker pool."""

from repro.obs.metrics import CounterSink
from repro.serve.pool import WorkerPool
from repro.serve.protocol import parse_request, resolve_request


def _chaos(job_id, **chaos):
    return resolve_request(
        parse_request({"id": job_id, "kind": "chaos", "chaos": chaos})
    )


def _ok(job_id, value):
    return _chaos(job_id, mode="ok", value=value)


class TestWorkerPool:
    def test_outcomes_in_batch_order(self):
        pool = WorkerPool(workers=2)
        try:
            batches = [
                (_ok("a", 1), _ok("b", 2)),
                (_ok("c", 3),),
            ]
            outcomes = pool.run_batches(batches)
        finally:
            pool.shutdown()
        values = [
            [outcome["ok"]["value"] for outcome in batch]
            for batch in outcomes
        ]
        assert values == [[1, 2], [3]]

    def test_deterministic_exception_costs_one_job(self):
        pool = WorkerPool(workers=1)
        try:
            [outcomes] = pool.run_batches(
                [(_ok("a", 1), _chaos("boom", mode="raise"), _ok("c", 3))]
            )
        finally:
            pool.shutdown()
        assert outcomes[0]["ok"]["value"] == 1
        assert outcomes[1]["error"]["type"] == "RuntimeError"
        assert outcomes[2]["ok"]["value"] == 3

    def test_killed_worker_is_replaced_and_batchmates_recovered(self):
        sink = CounterSink()
        pool = WorkerPool(
            workers=1, max_retries=1, retry_backoff=0.01, sink=sink
        )
        try:
            outcomes = pool.run_batches(
                [
                    (_chaos("killer", mode="kill"),),
                    (_ok("survivor", 7),),
                ]
            )
            # The kill-9'd job fails for good; its batch-neighbour is
            # re-run in isolation and survives.
            assert outcomes[0][0]["error"]["type"] == "BrokenProcessPool"
            assert outcomes[1][0]["ok"]["value"] == 7
            assert pool.crashes >= 1
            # Dead-worker replacement: the next batch gets a fresh pool.
            [after] = pool.run_batches([(_ok("after", 9),)])
            assert after[0]["ok"]["value"] == 9
        finally:
            pool.shutdown()
        assert sink.counters["serve.pool.worker_crashes"] >= 1

    def test_hung_job_times_out_into_an_error(self):
        sink = CounterSink()
        pool = WorkerPool(
            workers=1,
            job_timeout=0.3,
            max_retries=0,
            retry_backoff=0.01,
            sink=sink,
        )
        try:
            [outcomes] = pool.run_batches(
                [(_chaos("sleeper", mode="hang", seconds=60.0),)]
            )
        finally:
            pool.shutdown()
        assert outcomes[0]["error"]["type"] == "TimeoutError"
        assert pool.timeouts >= 1
        assert sink.counters["serve.pool.timeouts"] >= 1

    def test_retries_are_counted(self):
        sink = CounterSink()
        pool = WorkerPool(
            workers=1, max_retries=2, retry_backoff=0.01, sink=sink
        )
        try:
            [outcomes] = pool.run_batches([(_chaos("k", mode="kill"),)])
        finally:
            pool.shutdown()
        assert outcomes[0]["error"]["attempts"] == 3
        assert pool.retries == 2
        assert sink.counters["serve.retried"] == 2

    def test_empty_input(self):
        pool = WorkerPool(workers=1)
        try:
            assert pool.run_batches([]) == []
        finally:
            pool.shutdown()


class TestCompileAmortization:
    def test_one_compile_per_group_batch(self):
        # In-worker check (the cache is per process): a batch of
        # same-group jobs compiles once; the result payload is identical
        # either way, so amortization is invisible to clients.
        import repro.serve.worker as worker

        jobs = tuple(
            resolve_request(
                parse_request(
                    {
                        "id": f"j{seed}",
                        "workload": "grep",
                        "model": "region_pred",
                        "seed": seed,
                    }
                )
            )
            for seed in (3, 4, 5)
        )
        assert len({job.group for job in jobs}) == 1
        worker._COMPILE_CACHE.clear()
        before = worker.compile_count
        outcomes = worker.execute_batch(jobs)
        assert worker.compile_count == before + 1
        assert all("ok" in outcome for outcome in outcomes)
        # Cache persistence across batches: a later batch of the same
        # group compiles zero times.
        worker.execute_batch(jobs[:1])
        assert worker.compile_count == before + 1
