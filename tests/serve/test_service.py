"""The simulation service: admission, dedup, durability, frontends."""

import json
import threading
import time
import urllib.request

import pytest

from repro.ckpt.journal import LEDGER_NAME
from repro.obs.metrics import CounterSink
from repro.serve import (
    JobJournal,
    ServeSettings,
    SimulationService,
    make_http_server,
    serve_stdio,
)

TINY = "li r1, 41\naddi r1, r1, 1\nout r1\nhalt\n"


def _request(job_id, **fields):
    return json.dumps({"id": job_id, "client": "t", **fields})


def _chaos_ok(job_id, value, client="t"):
    return json.dumps(
        {
            "id": job_id,
            "client": client,
            "kind": "chaos",
            "chaos": {"mode": "ok", "value": value},
        }
    )


def _service(tmp_path=None, **settings):
    settings.setdefault("workers", 1)
    settings.setdefault("retry_backoff", 0.01)
    journal = JobJournal(tmp_path) if tmp_path is not None else None
    return SimulationService(
        ServeSettings(**settings), journal=journal, sink=CounterSink()
    )


class TestRequestPath:
    def test_identical_keys_execute_once_and_fan_out(self):
        service = _service()
        try:
            responses = service.handle_requests(
                [
                    _request("a", workload="grep", model="scalar"),
                    _request("b", workload="grep", model="scalar"),
                ]
            )
        finally:
            service.close()
        assert [r["status"] for r in responses] == ["ok", "ok"]
        assert responses[0]["key"] == responses[1]["key"]
        assert responses[0]["result"] == responses[1]["result"]
        assert service.stats["serve.completed"] == 1
        assert service.stats["serve.accepted"] == 2

    def test_malformed_line_costs_one_rejection(self):
        service = _service()
        try:
            responses = service.handle_requests(
                ["not json", _chaos_ok("fine", 5)]
            )
        finally:
            service.close()
        assert responses[0]["status"] == "rejected"
        assert responses[1]["status"] == "ok"
        assert service.stats["serve.rejected"] == 1

    def test_rejected_response_echoes_the_id(self):
        service = _service()
        try:
            [response] = service.handle_requests(
                [_request("wanted", workload="no-such-kernel")]
            )
        finally:
            service.close()
        assert response["status"] == "rejected"
        assert response["id"] == "wanted"

    def test_inline_program_round_trip(self):
        service = _service()
        try:
            [response] = service.handle_requests(
                [_request("i1", program=TINY, model="scalar")]
            )
        finally:
            service.close()
        assert response["status"] == "ok"
        assert response["result"]["output"] == [42]

    def test_error_jobs_report_structured_outcomes(self):
        service = _service(max_retries=0)
        try:
            [response] = service.handle_requests(
                [
                    json.dumps(
                        {
                            "id": "boom",
                            "kind": "chaos",
                            "chaos": {"mode": "raise"},
                        }
                    )
                ]
            )
        finally:
            service.close()
        assert response["status"] == "error"
        assert response["error"]["type"] == "RuntimeError"
        assert service.stats["serve.errors"] == 1


class TestAdmission:
    def test_queue_limit_sheds_deterministically(self):
        service = _service(queue_limit=2)
        try:
            responses = service.handle_requests(
                [_chaos_ok(f"j{i}", i) for i in range(4)]
            )
        finally:
            service.close()
        assert [r["status"] for r in responses] == [
            "ok",
            "ok",
            "overloaded",
            "overloaded",
        ]
        assert all(r["retry"] for r in responses[2:])
        assert service.stats["serve.rejected"] == 2

    def test_client_quota_spares_other_clients(self):
        service = _service(queue_limit=16, client_quota=2)
        try:
            responses = service.handle_requests(
                [
                    _chaos_ok("g1", 1, client="greedy"),
                    _chaos_ok("g2", 2, client="greedy"),
                    _chaos_ok("g3", 3, client="greedy"),
                    _chaos_ok("p1", 4, client="polite"),
                ]
            )
        finally:
            service.close()
        assert [r["status"] for r in responses] == [
            "ok",
            "ok",
            "rejected",
            "ok",
        ]
        assert "quota" in responses[2]["reason"]

    def test_overloaded_within_admission_deadline_while_saturated(
        self, tmp_path
    ):
        # Saturate the single worker with a job that blocks on a
        # sentinel file; a concurrent submission must get its
        # overloaded response from admission immediately, not after the
        # pool drains.
        sentinel = tmp_path / "go"
        service = _service(queue_limit=1, job_timeout=30.0)
        blocked = {}

        def submit_blocking():
            blocked["responses"] = service.handle_requests(
                [
                    json.dumps(
                        {
                            "id": "slow",
                            "kind": "chaos",
                            "chaos": {
                                "mode": "wait_for",
                                "path": str(sentinel),
                                "timeout": 30.0,
                            },
                        }
                    )
                ]
            )

        thread = threading.Thread(target=submit_blocking)
        thread.start()
        try:
            deadline = time.perf_counter() + 10.0
            while service.pending < 1:
                assert time.perf_counter() < deadline, "job never admitted"
                time.sleep(0.01)
            started = time.perf_counter()
            [response] = service.handle_requests([_chaos_ok("late", 1)])
            elapsed = time.perf_counter() - started
            assert response["status"] == "overloaded"
            assert "queue full" in response["reason"]
            assert elapsed < 2.0, f"admission took {elapsed:.2f}s"
        finally:
            sentinel.write_text("")
            thread.join(timeout=30.0)
            service.close()
        assert not thread.is_alive()
        assert blocked["responses"][0]["status"] == "ok"


class TestDurability:
    def test_wal_before_execution_then_done(self, tmp_path):
        service = _service(tmp_path)
        try:
            [response] = service.handle_requests(
                [_request("a", workload="grep", model="scalar")]
            )
        finally:
            service.close()
        lines = (tmp_path / LEDGER_NAME).read_text().splitlines()
        records = [json.loads(line) for line in lines]
        assert [r["payload"]["phase"] for r in records] == [
            "accepted",
            "done",
        ]
        assert records[0]["key"] == response["key"]

    def test_failed_jobs_are_never_marked_done(self, tmp_path):
        service = _service(tmp_path, max_retries=0)
        try:
            service.handle_requests(
                [
                    json.dumps(
                        {
                            "id": "boom",
                            "kind": "chaos",
                            "chaos": {"mode": "raise"},
                        }
                    )
                ]
            )
        finally:
            service.close()
        completed, incomplete = JobJournal(tmp_path).load()
        assert completed == {}
        assert len(incomplete) == 1

    def test_durable_replay_skips_execution_and_journal(self, tmp_path):
        service = _service(tmp_path)
        try:
            [first] = service.handle_requests(
                [_request("a", workload="grep", model="scalar")]
            )
            lines_before = len(
                (tmp_path / LEDGER_NAME).read_text().splitlines()
            )
            [again] = service.handle_requests(
                [_request("b", workload="grep", model="scalar")]
            )
            lines_after = len(
                (tmp_path / LEDGER_NAME).read_text().splitlines()
            )
        finally:
            service.close()
        assert again["result"] == first["result"]
        assert lines_after == lines_before  # no re-accept, no re-done
        assert service.stats["serve.replayed"] == 1
        assert service.stats["serve.completed"] == 1

    def test_restart_replays_results_byte_identically(self, tmp_path):
        request = _request("a", workload="grep", model="scalar")
        first = _service(tmp_path / "journal")
        try:
            [original] = first.handle_requests([request])
        finally:
            first.close()

        second = _service(tmp_path / "journal")
        try:
            assert second.recover() == 0  # nothing incomplete
            [replayed] = second.handle_requests([request])
        finally:
            second.close()
        assert json.dumps(replayed["result"], sort_keys=True) == json.dumps(
            original["result"], sort_keys=True
        )
        assert second.stats["serve.replayed"] == 1

    def test_recover_reexecutes_only_incomplete_jobs(self, tmp_path):
        done_job = _request("a", workload="grep", model="scalar")
        first = _service(tmp_path)
        try:
            first.handle_requests([done_job])
            # Simulate a crash mid-job: accepted, never completed.
            from repro.serve.protocol import parse_request, resolve_request

            pending = resolve_request(
                parse_request(
                    {
                        "id": "pending",
                        "kind": "chaos",
                        "chaos": {"mode": "ok", "value": 11},
                    }
                )
            )
            first.journal.accept(pending)
        finally:
            first.close()

        second = _service(tmp_path)
        try:
            assert second.recover() == 1  # exactly the incomplete job
            completed, incomplete = JobJournal(tmp_path).load()
        finally:
            second.close()
        assert incomplete == {}
        assert len(completed) == 2
        assert completed[pending.key]["value"] == 11


class TestWorkerKillMidBatch:
    def test_responses_match_an_uninterrupted_run(self):
        requests = [
            _request("s1", workload="grep", model="scalar"),
            json.dumps(
                {"id": "k1", "kind": "chaos", "chaos": {"mode": "kill"}}
            ),
            _request("s2", program=TINY, model="scalar"),
        ]
        chaotic = _service(max_retries=1)
        try:
            with_kill = chaotic.handle_requests(requests)
        finally:
            chaotic.close()
        clean = _service()
        try:
            without_kill = clean.handle_requests(
                [requests[0], requests[2]]
            )
        finally:
            clean.close()
        assert with_kill[1]["status"] == "error"
        # The surviving jobs' responses are byte-identical to a run
        # that never saw the kill.
        assert json.dumps(with_kill[0], sort_keys=True) == json.dumps(
            without_kill[0], sort_keys=True
        )
        assert json.dumps(with_kill[2], sort_keys=True) == json.dumps(
            without_kill[1], sort_keys=True
        )


class TestStdioFrontend:
    def test_json_lines_in_json_lines_out(self):
        import io

        service = _service()
        out = io.StringIO()
        lines = (
            _chaos_ok("a", 1)
            + "\n"
            + "garbage\n"
            + _chaos_ok("b", 2)
            + "\n"
        )
        try:
            serve_stdio(
                service, in_stream=io.StringIO(lines), out_stream=out
            )
        finally:
            service.close()
        responses = [
            json.loads(line) for line in out.getvalue().splitlines()
        ]
        assert [r["status"] for r in responses] == ["ok", "rejected", "ok"]
        assert responses[0]["result"]["value"] == 1
        assert responses[2]["result"]["value"] == 2


class TestHttpFrontend:
    @pytest.fixture()
    def server(self):
        service = _service()
        server = make_http_server(service, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        yield f"http://{host}:{port}", service
        server.shutdown()
        thread.join(timeout=10.0)
        server.server_close()
        service.close()

    def _post(self, base, body, headers=None):
        request = urllib.request.Request(
            f"{base}/v1/jobs",
            data=body.encode("utf-8"),
            headers=headers or {},
            method="POST",
        )
        try:
            with urllib.request.urlopen(request) as response:
                return response.status, response.read().decode("utf-8")
        except urllib.error.HTTPError as error:
            return error.code, error.read().decode("utf-8")

    def test_post_jobs_and_stats(self, server):
        base, service = server
        body = _chaos_ok("h1", 1) + "\n" + _chaos_ok("h2", 2) + "\n"
        status, payload = self._post(base, body)
        assert status == 200
        responses = [json.loads(line) for line in payload.splitlines()]
        assert [r["status"] for r in responses] == ["ok", "ok"]
        with urllib.request.urlopen(f"{base}/v1/stats") as stats:
            counters = json.loads(stats.read())
        assert counters["serve.completed"] == 2

    def test_client_header_overrides_the_request(self, server):
        base, service = server
        self._post(
            base, _chaos_ok("q1", 1), headers={"X-Client": "headered"}
        )
        assert service._per_client.get("headered", 0) == 0  # released
        assert service.stats["serve.accepted"] == 1

    def test_all_shed_is_429(self, server):
        base, _ = server
        status, payload = self._post(base, "garbage\nmore garbage\n")
        assert status == 429
        responses = [json.loads(line) for line in payload.splitlines()]
        assert all(r["status"] == "rejected" for r in responses)

    def test_empty_submission_is_400(self, server):
        base, _ = server
        status, _ = self._post(base, "\n\n")
        assert status == 400

    def test_unknown_path_is_404(self, server):
        base, _ = server
        status, _ = self._post(base, _chaos_ok("x", 1) + "\n")
        assert status == 200
        request = urllib.request.Request(f"{base}/v1/nope")
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request)
        assert excinfo.value.code == 404
