"""The two-phase write-ahead job journal."""

import json

from repro.ckpt.journal import LEDGER_NAME
from repro.serve.journal import JobJournal
from repro.serve.protocol import parse_request, resolve_request


def _job(**fields):
    return resolve_request(parse_request({"id": "j1", **fields}))


class TestJobJournal:
    def test_accepted_without_done_is_incomplete(self, tmp_path):
        job = _job(workload="grep", model="scalar")
        with JobJournal(tmp_path) as journal:
            journal.accept(job)
        completed, incomplete = JobJournal(tmp_path).load()
        assert completed == {}
        assert set(incomplete) == {job.key}
        assert incomplete[job.key] == job
        assert incomplete[job.key].key == job.key

    def test_done_after_accept_is_completed(self, tmp_path):
        job = _job(workload="grep", model="scalar")
        result = {"kind": "simulate", "output": [1, 2]}
        with JobJournal(tmp_path) as journal:
            journal.accept(job)
            journal.complete(job.key, result)
        completed, incomplete = JobJournal(tmp_path).load()
        assert incomplete == {}
        assert completed == {job.key: result}

    def test_wal_ordering_on_disk(self, tmp_path):
        # The accept record must land before the done record: that is
        # the write-ahead discipline the crash guarantees rest on.
        job = _job(workload="grep", model="scalar")
        with JobJournal(tmp_path) as journal:
            journal.accept(job)
            journal.complete(job.key, {"ok": True})
        lines = (tmp_path / LEDGER_NAME).read_text().splitlines()
        phases = [json.loads(line)["payload"]["phase"] for line in lines]
        assert phases == ["accepted", "done"]

    def test_torn_tail_and_foreign_lines_are_ignored(self, tmp_path):
        job = _job(workload="grep", model="scalar")
        with JobJournal(tmp_path) as journal:
            journal.accept(job)
            journal.complete(job.key, {"v": 1})
        with open(tmp_path / LEDGER_NAME, "a", encoding="utf-8") as handle:
            handle.write('{"key": "other", "payload": {"phase": "acce')
        completed, incomplete = JobJournal(tmp_path).load()
        assert completed == {job.key: {"v": 1}}
        assert incomplete == {}

    def test_unreconstructable_accept_record_is_dropped(self, tmp_path):
        with open(tmp_path / LEDGER_NAME, "w", encoding="utf-8") as handle:
            handle.write(
                json.dumps(
                    {
                        "key": "k",
                        "payload": {"phase": "accepted", "job": {"id": "x"}},
                    }
                )
                + "\n"
            )
        completed, incomplete = JobJournal(tmp_path).load()
        assert completed == {} and incomplete == {}

    def test_last_record_per_key_wins(self, tmp_path):
        job = _job(workload="grep", model="scalar")
        with JobJournal(tmp_path) as journal:
            journal.accept(job)
            journal.complete(job.key, {"v": 1})
            journal.accept(job)  # re-accepted in a later life
        completed, incomplete = JobJournal(tmp_path).load()
        assert completed == {}
        assert set(incomplete) == {job.key}
