"""Graceful shutdown and crash-restart of the real ``repro serve``.

These tests drive the CLI in a subprocess: SIGTERM during an active
batch must drain the in-flight jobs, flush the journal and exit
``128 + SIGTERM``; ``kill -9`` mid-batch must lose no accepted job --
a restart with the same journal replays exactly the incomplete work and
serves results byte-identical to an uninterrupted run.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

from repro.ckpt.journal import LEDGER_NAME
from repro.serve import JobJournal, ServeSettings, SimulationService

REPO_SRC = str(Path(__file__).resolve().parents[2] / "src")


def _spawn(*extra_args):
    env = dict(os.environ)
    env["PYTHONPATH"] = REPO_SRC + os.pathsep + env.get("PYTHONPATH", "")
    env["PYTHONUNBUFFERED"] = "1"
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--stdio", *extra_args],
        stdin=subprocess.PIPE,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        env=env,
        text=True,
    )


def _ledger_phases(journal_dir: Path) -> dict[str, str]:
    """Last phase per key, straight off the ledger file."""
    path = journal_dir / LEDGER_NAME
    phases: dict[str, str] = {}
    if not path.exists():
        return phases
    for line in path.read_text().splitlines():
        try:
            record = json.loads(line)
            phases[record["key"]] = record["payload"]["phase"]
        except (json.JSONDecodeError, KeyError, TypeError):
            continue
    return phases


def _wait_for(predicate, timeout=30.0, message="condition"):
    deadline = time.perf_counter() + timeout
    while not predicate():
        assert time.perf_counter() < deadline, f"timed out waiting: {message}"
        time.sleep(0.05)


def _request(job_id, **fields):
    return json.dumps({"id": job_id, "client": "t", **fields}) + "\n"


def _wait_request(job_id, sentinel: Path, timeout=60.0):
    return _request(
        job_id,
        kind="chaos",
        chaos={"mode": "wait_for", "path": str(sentinel), "timeout": timeout},
    )


class TestSigtermDrain:
    def test_drains_active_batch_flushes_journal_exits_143(self, tmp_path):
        journal_dir = tmp_path / "journal"
        sentinel = tmp_path / "go"
        process = _spawn("--journal", str(journal_dir), "--job-timeout", "60")
        try:
            process.stdin.write(
                _request("fast", workload="grep", model="scalar")
                + _wait_request("slow", sentinel)
            )
            process.stdin.flush()
            # Both jobs accepted (write-ahead records on disk), the
            # batch is in flight.
            _wait_for(
                lambda: len(_ledger_phases(journal_dir)) == 2,
                message="accept records",
            )
            process.send_signal(signal.SIGTERM)
            time.sleep(0.2)  # signal recorded while the batch is active
            sentinel.write_text("")  # now let the slow job finish
            stdout, stderr = process.communicate(timeout=60.0)
        except Exception:
            process.kill()
            raise
        # 128 + SIGTERM: interrupted-but-clean, not a crash.
        assert process.returncode == 128 + signal.SIGTERM, stderr
        # The in-flight batch drained: both responses were written...
        responses = [json.loads(line) for line in stdout.splitlines()]
        assert {r["id"] for r in responses} == {"fast", "slow"}
        assert all(r["status"] == "ok" for r in responses)
        # ...and both results are durable.
        phases = _ledger_phases(journal_dir)
        assert sorted(phases.values()) == ["done", "done"]
        assert "drained" in stderr


class TestKillNineRestart:
    def test_restart_replays_only_incomplete_jobs(self, tmp_path):
        journal_dir = tmp_path / "journal"
        sentinel = tmp_path / "go"
        fast = _request("fast", workload="grep", model="scalar")
        slow = _wait_request("slow", sentinel)

        process = _spawn("--journal", str(journal_dir))
        try:
            process.stdin.write(fast + slow)
            process.stdin.flush()
            # Wait until the fast job is durably done while the slow
            # one is accepted but incomplete -- a genuine mid-batch state.
            _wait_for(
                lambda: sorted(_ledger_phases(journal_dir).values())
                == ["accepted", "done"],
                message="fast job done, slow job accepted",
            )
            process.kill()  # SIGKILL: no handlers, no flush, no mercy
            process.wait(timeout=30.0)
        finally:
            if process.poll() is None:
                process.kill()
        phases = _ledger_phases(journal_dir)
        assert sorted(phases.values()) == ["accepted", "done"]

        # Restart: recovery must re-execute exactly the incomplete job.
        sentinel.write_text("")  # the blocked work can now succeed
        service = SimulationService(
            ServeSettings(workers=1), journal=JobJournal(journal_dir)
        )
        try:
            assert service.recover() == 1
            replay = service.handle_requests([fast.strip(), slow.strip()])
        finally:
            service.close()
        assert all(r["status"] == "ok" for r in replay)
        # Nothing lost, nothing duplicated: every key has exactly one
        # done record's worth of durable result.
        phases = _ledger_phases(journal_dir)
        assert sorted(phases.values()) == ["done", "done"]

        # Byte-identical to a server that was never killed.
        clean = SimulationService(ServeSettings(workers=1))
        try:
            uninterrupted = clean.handle_requests(
                [fast.strip(), slow.strip()]
            )
        finally:
            clean.close()
        assert [
            json.dumps(r["result"], sort_keys=True) for r in replay
        ] == [
            json.dumps(r["result"], sort_keys=True) for r in uninterrupted
        ]


class TestSigintExitCode:
    def test_sigint_exits_130(self, tmp_path):
        process = _spawn()
        try:
            process.stdin.write(_request("warm", kind="chaos",
                                         chaos={"mode": "ok", "value": 1}))
            process.stdin.flush()
            _wait_for(
                lambda: process.poll() is not None
                or bool(process.stdout.readline()),
                message="first response",
            )
            process.send_signal(signal.SIGINT)
            process.stdin.close()
            process.wait(timeout=30.0)
        except Exception:
            process.kill()
            raise
        assert process.returncode == 128 + signal.SIGINT
