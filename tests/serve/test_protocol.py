"""The JSON-lines request protocol: parsing, keys, round-trips."""

import json

import pytest

from repro.serve.protocol import (
    ProtocolError,
    dumps_response,
    job_from_payload,
    job_to_payload,
    parse_request,
    resolve_request,
    response_ok,
)

TINY = "li r1, 41\naddi r1, r1, 1\nout r1\nhalt\n"


def _job(**fields):
    document = {"id": "j1", **fields}
    return resolve_request(parse_request(document))


class TestParse:
    def test_happy_path_defaults(self):
        spec = parse_request(
            json.dumps({"id": "j1", "workload": "grep"})
        )
        assert spec.id == "j1"
        assert spec.client == "anonymous"
        assert spec.kind == "simulate"
        assert spec.model == "region_pred"

    @pytest.mark.parametrize(
        "line, fragment",
        [
            ("nope", "not JSON"),
            (json.dumps([1, 2]), "JSON object"),
            (json.dumps({"workload": "grep"}), "string 'id'"),
            (json.dumps({"id": "x" * 200, "workload": "grep"}), "id"),
            (json.dumps({"id": "j", "client": ""}), "client"),
            (json.dumps({"id": "j", "kind": "exotic"}), "unknown kind"),
            (json.dumps({"id": "j"}), "exactly one of"),
            (
                json.dumps({"id": "j", "workload": "grep", "program": "halt"}),
                "exactly one of",
            ),
            (
                json.dumps({"id": "j", "workload": "grep", "model": "vliw9"}),
                "unknown model",
            ),
            (
                json.dumps({"id": "j", "workload": "grep", "seed": "two"}),
                "seed",
            ),
            (
                json.dumps(
                    {"id": "j", "workload": "grep", "config": {"warp": 9}}
                ),
                "config field",
            ),
            (
                json.dumps(
                    {"id": "j", "workload": "grep", "memory": {"a": "b"}}
                ),
                "memory",
            ),
            (
                json.dumps(
                    {"id": "j", "kind": "chaos", "chaos": {"mode": "explode"}}
                ),
                "chaos mode",
            ),
        ],
    )
    def test_rejections_carry_the_reason(self, line, fragment):
        with pytest.raises(ProtocolError, match=fragment):
            parse_request(line)


class TestResolve:
    def test_workload_default_seed_is_eval_seed(self):
        from repro.workloads import get_workload

        job = _job(workload="grep", model="scalar")
        assert job.seed == get_workload("grep").eval_seed
        assert job.name == "grep"
        assert job.key and job.group

    def test_same_group_different_key_across_seeds(self):
        a = _job(workload="grep", model="scalar")
        b = _job(workload="grep", model="scalar", seed=99)
        assert a.group == b.group
        assert a.key != b.key

    def test_predicating_is_region_pred(self):
        alias = _job(workload="grep", model="predicating")
        canonical = _job(workload="grep", model="region_pred")
        assert alias.model == "region_pred"
        assert alias.key == canonical.key

    def test_model_changes_the_key(self):
        assert (
            _job(workload="grep", model="scalar").key
            != _job(workload="grep", model="region_pred").key
        )

    def test_config_override_changes_the_key(self):
        assert (
            _job(workload="grep", model="scalar").key
            != _job(
                workload="grep", model="scalar", config={"issue_width": 8}
            ).key
        )

    def test_inline_program_text_is_normalized(self):
        # Same instructions, different surface whitespace: same identity.
        a = _job(program=TINY, model="scalar")
        b = _job(program=TINY.replace(", ", ",  "), model="scalar")
        assert a.key == b.key

    def test_inline_parse_error_is_a_protocol_error(self):
        with pytest.raises(ProtocolError, match="bad program"):
            _job(program="frobnicate r9\n", model="scalar")

    def test_unknown_workload_is_a_protocol_error(self):
        with pytest.raises(ProtocolError, match="unknown workload"):
            _job(workload="nope")

    def test_bad_config_value_is_a_protocol_error(self):
        with pytest.raises(ProtocolError, match="bad machine config"):
            _job(workload="grep", config={"issue_width": 0})

    def test_chaos_identity_is_the_chaos_payload(self):
        a = _job(kind="chaos", chaos={"mode": "ok", "value": 1})
        b = _job(kind="chaos", chaos={"mode": "ok", "value": 2})
        assert a.key != b.key
        assert a.key == a.group


class TestJournalPayload:
    @pytest.mark.parametrize(
        "fields",
        [
            {"workload": "grep", "model": "scalar", "seed": 5},
            {
                "program": TINY,
                "model": "region_pred",
                "memory": {"100": 7},
                "config": {"issue_width": 4},
            },
            {"kind": "chaos", "chaos": {"mode": "ok", "value": 3}},
        ],
    )
    def test_round_trip(self, fields):
        job = _job(**fields)
        rebuilt = job_from_payload(job_to_payload(job))
        assert rebuilt == job
        assert rebuilt.key == job.key
        assert rebuilt.group == job.group


class TestResponses:
    def test_dumps_is_canonical(self):
        response = response_ok("j1", "k", {"b": 2, "a": 1})
        assert dumps_response(response) == dumps_response(dict(response))
        assert "\n" not in dumps_response(response)
        assert json.loads(dumps_response(response))["status"] == "ok"
