"""The shared jittered-backoff helper."""

import pytest

from repro.serve.backoff import backoff_delay, backoff_fraction


class TestBackoffDelay:
    def test_jitter_zero_is_the_legacy_schedule(self):
        delays = [
            backoff_delay(n, base=0.1, jitter=0.0) for n in (1, 2, 3, 4)
        ]
        assert delays == pytest.approx([0.1, 0.2, 0.4, 0.8])

    def test_deterministic_per_key(self):
        a = [backoff_delay(n, base=0.5, key="cell-7") for n in (1, 2, 3)]
        b = [backoff_delay(n, base=0.5, key="cell-7") for n in (1, 2, 3)]
        assert a == b

    def test_decorrelated_across_keys(self):
        keys = [f"job-{i}" for i in range(16)]
        delays = {backoff_delay(2, base=1.0, key=key) for key in keys}
        # Practically all keys land on distinct delays; lockstep would
        # collapse them to a single value.
        assert len(delays) > 12

    def test_jitter_only_shortens(self):
        for attempt in (1, 2, 3, 4):
            raw = 0.25 * 2 ** (attempt - 1)
            delay = backoff_delay(attempt, base=0.25, key="k")
            assert raw / 2 <= delay <= raw

    def test_max_delay_caps_the_raw_schedule(self):
        assert (
            backoff_delay(10, base=1.0, jitter=0.0, max_delay=3.0) == 3.0
        )

    def test_attempt_is_one_based(self):
        with pytest.raises(ValueError):
            backoff_delay(0, base=1.0)

    def test_jitter_range_validated(self):
        with pytest.raises(ValueError):
            backoff_delay(1, base=1.0, jitter=1.0)

    def test_fraction_in_unit_interval(self):
        for attempt in range(1, 20):
            fraction = backoff_fraction("some-key", attempt)
            assert 0.0 <= fraction < 1.0

    def test_shared_with_the_experiment_runner(self):
        # Satellite: one helper, two consumers -- the runner's isolated
        # retries must sleep the exact same schedule as the serve pool.
        import repro.eval.runner as runner
        import repro.serve.backoff as backoff

        assert runner.backoff_delay is backoff.backoff_delay
