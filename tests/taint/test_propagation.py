"""The propagation matrix: how taint moves through each op class.

Interpreter side: taint is seeded on committed registers/memory and must
flow through ALU mixing, loads (address vs value taint), stores, CCR
writes and outputs exactly as the rules in DESIGN.md specify.  Machine
side: the speculative load *is* the source -- no seeding needed -- and a
TRUE commit declassifies.
"""

from repro.ir.cfg import build_cfg
from repro.isa.parser import parse_program
from repro.machine.text import parse_vliw
from repro.machine.config import base_machine
from repro.machine.vliw import VLIWMachine
from repro.sim.interpreter import Interpreter
from repro.sim.memory import Memory
from repro.taint import TaintTracker
from repro.taint.tags import KIND_ADDRESS, KIND_VALUE, TaintTag


def seed_tag(**overrides) -> TaintTag:
    fields = dict(
        kind=KIND_VALUE,
        cycle=0,
        pc=0,
        region=None,
        address=None,
        origin="seed",
    )
    fields.update(overrides)
    return TaintTag(**fields)


def run_scalar_with_taint(
    text: str, tracker: TaintTracker, memory: Memory | None = None
):
    program = parse_program(text, name="t")
    interpreter = Interpreter(
        program,
        memory if memory is not None else Memory(),
        cfg=build_cfg(program),
        taint=tracker,
    )
    return interpreter.run()


class TestInterpreterAlu:
    def test_alu_unions_source_taints(self):
        tracker = TaintTracker()
        tracker.seed_register(1, seed_tag(pc=1))
        tracker.seed_register(2, seed_tag(pc=2))
        run_scalar_with_taint("add r3, r1, r2\nhalt\n", tracker)
        assert tracker.reg_taint[3] == frozenset(
            (seed_tag(pc=1), seed_tag(pc=2))
        )

    def test_clean_overwrite_drops_taint(self):
        tracker = TaintTracker()
        tracker.seed_register(3, seed_tag())
        run_scalar_with_taint("add r3, r0, r0\nhalt\n", tracker)
        assert 3 not in tracker.reg_taint


class TestInterpreterLoads:
    def test_load_picks_up_memory_taint(self):
        tracker = TaintTracker()
        tracker.seed_memory(100, seed_tag(address=100))
        memory = Memory()
        memory.store(100, 42)
        run_scalar_with_taint("ld r2, r0, 100\nhalt\n", tracker, memory)
        assert tracker.reg_taint[2] == frozenset((seed_tag(address=100),))

    def test_tainted_address_rekind_taints_loaded_value(self):
        tracker = TaintTracker()
        tracker.seed_register(1, seed_tag())
        memory = Memory()
        memory.store(100, 42)
        run_scalar_with_taint(
            "addi r1, r1, 100\nld r2, r1, 0\nhalt\n", tracker, memory
        )
        assert {t.kind for t in tracker.reg_taint[2]} == {KIND_ADDRESS}

    def test_clean_load_clears_destination(self):
        tracker = TaintTracker()
        tracker.seed_register(2, seed_tag())
        memory = Memory()
        memory.store(100, 42)
        run_scalar_with_taint("ld r2, r0, 100\nhalt\n", tracker, memory)
        assert 2 not in tracker.reg_taint


class TestInterpreterStoresAndOutputs:
    def test_tainted_store_is_a_memory_leak(self):
        tracker = TaintTracker()
        tracker.seed_register(1, seed_tag())
        run_scalar_with_taint("st r1, r0, 50\nhalt\n", tracker)
        assert [leak.kind for leak in tracker.leaks] == ["memory"]
        assert tracker.mem_taint[50] == frozenset((seed_tag(),))

    def test_tainted_store_address_leaks_as_address_kind(self):
        tracker = TaintTracker()
        tracker.seed_register(1, seed_tag())
        run_scalar_with_taint("addi r1, r1, 50\nst r0, r1, 0\nhalt\n", tracker)
        (leak,) = tracker.leaks
        assert leak.kind == "memory"
        assert {t.kind for t in leak.tags} == {KIND_ADDRESS}

    def test_clean_store_scrubs_memory_taint(self):
        tracker = TaintTracker()
        tracker.seed_memory(50, seed_tag(address=50))
        run_scalar_with_taint("st r0, r0, 50\nhalt\n", tracker)
        assert 50 not in tracker.mem_taint
        assert tracker.leaks == []

    def test_tainted_output_is_an_output_leak(self):
        tracker = TaintTracker()
        tracker.seed_register(1, seed_tag())
        result = run_scalar_with_taint("out r1\nhalt\n", tracker)
        assert result.output == [0]
        assert [leak.kind for leak in tracker.leaks] == ["output"]


class TestInterpreterCcr:
    def test_tainted_condition_is_a_propagation_not_a_leak(self):
        tracker = TaintTracker()
        tracker.seed_register(1, seed_tag())
        run_scalar_with_taint("cgt c0, r1, r0\nhalt\n", tracker)
        assert tracker.ccr_propagations == 1
        assert 0 in tracker.ccr_taint
        assert tracker.leaks == []

    def test_strict_policy_reports_predicate_leak(self):
        tracker = TaintTracker(policy="strict")
        tracker.seed_register(1, seed_tag())
        run_scalar_with_taint("cgt c0, r1, r0\nhalt\n", tracker)
        assert [leak.kind for leak in tracker.leaks] == ["predicate"]

    def test_clean_condition_clears_ccr_taint(self):
        tracker = TaintTracker()
        tracker.seed_register(1, seed_tag())
        run_scalar_with_taint(
            "cgt c0, r1, r0\ncgt c0, r0, r0\nhalt\n", tracker
        )
        assert 0 not in tracker.ccr_taint


def run_vliw_with_taint(
    text: str, tracker: TaintTracker, memory: Memory | None = None
):
    program = parse_vliw(text, name="t")
    machine = VLIWMachine(
        program,
        base_machine(),
        memory if memory is not None else Memory(),
        taint=tracker,
    )
    return machine.run()


class TestMachineSources:
    """The VLIW machine needs no seeding: a load executed while its
    predicate is UNSPEC (the E-flag moment) *is* the source."""

    GADGET = (
        "entry:\n"
        "  addi r1, r0, 20\n"
        "  [c0] ld r2, r1, 100\n"
        "  nop\n"
        "  {consumer}\n"
        "  clti c0, r1, 8\n"
        "  {tail}\n"
        "  halt\n"
    )

    def _memory(self) -> Memory:
        memory = Memory()
        memory.store(120, 31337)
        return memory

    def test_speculative_load_mints_a_source(self):
        tracker = TaintTracker()
        run_vliw_with_taint(
            self.GADGET.format(consumer="nop", tail="nop"),
            tracker,
            self._memory(),
        )
        assert tracker.sources == 1
        assert tracker.leaks == []

    def test_alw_consumer_leaks_with_provenance(self):
        tracker = TaintTracker()
        run_vliw_with_taint(
            self.GADGET.format(consumer="add r3, r2.s, r0", tail="out r3"),
            tracker,
            self._memory(),
        )
        kinds = [leak.kind for leak in tracker.leaks]
        assert "register" in kinds
        first = tracker.first_leak
        (tag,) = first.tags
        assert tag.origin == "spec-load"
        assert tag.address == 120

    def test_true_commit_declassifies(self):
        tracker = TaintTracker()
        run_vliw_with_taint(
            self.GADGET.format(consumer="nop", tail="nop").replace(
                "addi r1, r0, 20", "addi r1, r0, 4"
            ),
            tracker,
            self._memory(),
        )
        assert tracker.sources == 1
        assert tracker.declassified >= 1
        assert tracker.leaks == []
        assert tracker.reg_taint == {}
