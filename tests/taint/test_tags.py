"""The taint lattice: merge, re-kind, and stable serialization."""

import pytest

from repro.taint.tags import (
    KIND_ADDRESS,
    KIND_VALUE,
    TaintTag,
    merge_taint,
    rekind_address,
    taint_from_state,
    taint_to_state,
)


def tag(**overrides) -> TaintTag:
    fields = dict(
        kind=KIND_VALUE, cycle=3, pc=1, region="entry", address=120
    )
    fields.update(overrides)
    return TaintTag(**fields)


class TestMerge:
    def test_none_is_clean_identity(self):
        assert merge_taint(None, None) is None
        taint = frozenset((tag(),))
        assert merge_taint(taint, None) == taint
        assert merge_taint(None, taint) == taint

    def test_union_keeps_provenance(self):
        a, b = tag(pc=1), tag(pc=2)
        merged = merge_taint(frozenset((a,)), frozenset((b,)))
        assert merged == frozenset((a, b))

    def test_idempotent(self):
        taint = frozenset((tag(),))
        assert merge_taint(taint, taint) == taint


class TestRekind:
    def test_value_tags_become_address_tags(self):
        rekinded = rekind_address(frozenset((tag(),)))
        assert {t.kind for t in rekinded} == {KIND_ADDRESS}

    def test_provenance_survives_rekinding(self):
        (rekinded,) = rekind_address(frozenset((tag(cycle=9, pc=4),)))
        assert (rekinded.cycle, rekinded.pc) == (9, 4)

    def test_none_stays_none(self):
        assert rekind_address(None) is None


class TestSerialization:
    def test_round_trip(self):
        taint = frozenset((tag(), tag(pc=2, region=None, address=None)))
        assert taint_from_state(taint_to_state(taint)) == taint

    def test_none_round_trips_via_absent_state(self):
        assert taint_from_state(None) is None

    def test_state_order_is_stable(self):
        taint = frozenset(tag(pc=pc, cycle=cycle) for pc in range(4) for cycle in range(3))
        assert taint_to_state(taint) == taint_to_state(taint)
        # Rebuilding from a differently-constructed but equal set gives
        # the same bytes -- artifact diffs stay meaningful.
        rebuilt = frozenset(sorted(taint, key=lambda t: t.pc))
        assert taint_to_state(rebuilt) == taint_to_state(taint)


class TestTag:
    def test_describe_names_the_source(self):
        text = tag().describe()
        assert "value" in text and "entry@pc1" in text and "addr=120" in text

    def test_tags_are_hashable_and_frozen(self):
        with pytest.raises(Exception):
            tag().kind = "address"
