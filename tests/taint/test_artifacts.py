"""The ``repro-security/v1`` artifact and the replayable case format."""

import pytest

from repro.taint import security_document, validate_security
from repro.taint.case import SecurityCase
from repro.taint.gadget import build_gadget
from repro.workloads import get_workload
from repro.taint.oracle import run_security

import random


def _secure_result():
    workload = get_workload("li")
    return run_security(
        workload.program,
        model="region_pred",
        train_memory=workload.train_memory(),
        eval_memory=workload.eval_memory(),
    )


def _leaky_result():
    spec = build_gadget(1, 0, "direct-out", random.Random("a"))
    return SecurityCase.from_gadget(spec).run()


class TestSecurityDocument:
    def test_document_validates_and_aggregates(self):
        secure, leaky = _secure_result(), _leaky_result()
        document = security_document([secure, leaky])
        validate_security(document)
        assert document["schema"] == "repro-security/v1"
        assert document["secure"] is False
        assert document["checked"] == 2
        assert document["leaks"] == len(leaky.leaks)

    def test_all_secure_document(self):
        document = security_document([_secure_result()])
        validate_security(document)
        assert document["secure"] is True
        assert document["leaks"] == 0

    def test_rejects_wrong_schema(self):
        document = security_document([_secure_result()])
        document["schema"] = "repro-security/v0"
        with pytest.raises(ValueError):
            validate_security(document)

    def test_rejects_missing_result_keys(self):
        document = security_document([_secure_result()])
        del document["results"][0]["leaks"]
        with pytest.raises(ValueError):
            validate_security(document)

    def test_rejects_inconsistent_secure_flag(self):
        document = security_document([_leaky_result()])
        document["secure"] = True
        with pytest.raises(ValueError):
            validate_security(document)


class TestSecurityCaseFormat:
    def test_round_trip(self):
        spec = build_gadget(4, 2, "store", random.Random("rt"))
        case = SecurityCase.from_gadget(spec)
        rebuilt = SecurityCase.from_json(case.to_json())
        assert rebuilt.vliw_text == case.vliw_text
        assert rebuilt.memory_words == case.memory_words
        assert rebuilt.expected_kind == case.expected_kind
        assert rebuilt.policy == case.policy

    def test_save_load(self, tmp_path):
        spec = build_gadget(4, 2, "alu-out", random.Random("rt"))
        case = SecurityCase.from_gadget(spec)
        path = tmp_path / "case.json"
        case.save(path)
        loaded = SecurityCase.load(path)
        assert loaded.vliw_text == case.vliw_text
        assert not loaded.run().secure

    def test_rejects_bad_schema(self):
        spec = build_gadget(4, 2, "store", random.Random("rt"))
        document = SecurityCase.from_gadget(spec).to_dict()
        document["schema"] = "repro-case/v1"
        with pytest.raises(ValueError):
            SecurityCase.from_dict(document)

    def test_rejects_unknown_policy(self):
        spec = build_gadget(4, 2, "store", random.Random("rt"))
        document = SecurityCase.from_gadget(spec).to_dict()
        document["policy"] = "paranoid"
        with pytest.raises(ValueError):
            SecurityCase.from_dict(document)

    def test_load_error_names_the_file(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(ValueError) as excinfo:
            SecurityCase.load(path)
        assert "broken.json" in str(excinfo.value)
