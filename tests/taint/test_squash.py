"""Squash discards taint with the state it rides on.

A FALSE verdict drops the pending write / store-buffer entry *and* its
tags; recovery-mode invalidation does the same wholesale.  After the
squash nothing tainted remains anywhere -- committed maps, shadow
structures, or the store buffer.
"""

from repro.core.ccr import CCR
from repro.core.predicate import Predicate
from repro.core.regfile import PredicatedRegisterFile
from repro.core.store_buffer import PredicatedStoreBuffer
from repro.machine.config import base_machine
from repro.machine.text import parse_vliw
from repro.machine.vliw import VLIWMachine
from repro.sim.memory import Memory
from repro.taint import TaintTracker
from repro.taint.tags import TaintTag


def spec_taint() -> frozenset[TaintTag]:
    return frozenset(
        (TaintTag("value", cycle=1, pc=1, region="entry", address=120),)
    )


class TestRegfileSquash:
    def test_false_verdict_drops_write_and_taint(self):
        regfile = PredicatedRegisterFile(8, shadow_capacity=None)
        regfile.write_speculative(
            3, 31337, Predicate({0: True}), taint=spec_taint()
        )
        ccr = CCR(8)
        ccr.set(0, False)
        events = regfile.tick(ccr)
        assert events.squashed == [3]
        assert events.declassified == 0
        assert regfile.entries[3].pending == []
        hit, taint = regfile.shadow_taint(3, Predicate({0: True}))
        assert (hit, taint) == (False, None)

    def test_invalidate_speculative_drops_taint_wholesale(self):
        regfile = PredicatedRegisterFile(8, shadow_capacity=None)
        regfile.write_speculative(
            3, 31337, Predicate({0: True}), taint=spec_taint()
        )
        regfile.invalidate_speculative()
        assert not regfile.has_speculative_state()


class TestStoreBufferSquash:
    def test_false_verdict_drops_entry_and_taint(self):
        buffer = PredicatedStoreBuffer()
        buffer.append(
            50,
            31337,
            Predicate({0: True}),
            speculative=True,
            taint=spec_taint(),
        )
        ccr = CCR(8)
        ccr.set(0, False)
        memory = Memory()
        output: list[int] = []
        events = buffer.tick(ccr, memory, output)
        assert len(events.squashed) == 1
        assert events.declassified == 0
        assert len(buffer) == 0
        assert output == []
        hit, taint = buffer.lookup_taint(50, Predicate({0: True}))
        assert (hit, taint) == (False, None)


class TestMachineSquash:
    GADGET = (
        "entry:\n"
        "  addi r1, r0, 20\n"
        "  [c0] ld r2, r1, 100\n"
        "  nop\n"
        "  [c0] add r3, r2.s, r0\n"
        "  [c0] st r3.s, r0, 60\n"
        "  clti c0, r1, 8\n"
        "  halt\n"
    )

    def test_squash_leaves_no_taint_anywhere(self):
        tracker = TaintTracker()
        memory = Memory()
        memory.store(120, 31337)
        program = parse_vliw(self.GADGET, name="squash")
        machine = VLIWMachine(program, base_machine(), memory, taint=tracker)
        result = machine.run()

        # The whole speculative chain rode c0=False: sourced, then
        # squashed.  Nothing leaked, nothing stayed tainted.
        assert tracker.sources >= 1
        assert tracker.leaks == []
        finals = tracker.finals()
        assert finals["registers"] == {}
        assert finals["memory"] == {}
        assert not machine.regfile.has_speculative_state()
        assert result.architectural_output == ()
