"""Gadget ground truth, campaign determinism, and shrink/replay.

The campaign's value is that every gadget carries its own ground truth:
the detector is *checked*, not trusted.  These tests pin (a) each
variant's expected verdict and leak kind, (b) bit-identical derivation
and reports for a fixed seed, and (c) that a caught gadget shrinks to a
smaller replayable case that still exhibits the pinned leak kind.
"""

import json

from repro.taint import (
    CLEAN_VARIANTS,
    LEAKY_VARIANTS,
    build_gadget,
    derive_gadget,
    run_security_fuzz,
)
from repro.taint.case import SecurityCase
from repro.taint.campaign import shrink_security_case
from repro.taint.gadget import EXPECTED_KIND

import random


class TestGroundTruth:
    def test_every_leaky_variant_is_detected_with_its_kind(self):
        for variant in LEAKY_VARIANTS:
            spec = build_gadget(1, 0, variant, random.Random("t"))
            result = SecurityCase.from_gadget(spec).run()
            assert result.error is None, (variant, result.error)
            assert not result.secure, variant
            assert result.first_leak.kind == EXPECTED_KIND[variant]

    def test_every_clean_variant_is_secure(self):
        for variant in CLEAN_VARIANTS:
            spec = build_gadget(1, 0, variant, random.Random("t"))
            result = SecurityCase.from_gadget(spec).run()
            assert result.error is None, (variant, result.error)
            assert result.secure, (variant, result.describe())

    def test_checked_variant_never_even_sources(self):
        # The repaired shape resolves the bounds check before the load
        # issues: the load is squashed at issue, never executed, so it
        # must not mint a taint source at all.
        spec = build_gadget(1, 0, "checked", random.Random("t"))
        result = SecurityCase.from_gadget(spec).run()
        assert result.counters["sources"] == 0


class TestDeterminism:
    def test_derivation_is_pure(self):
        for index in range(6):
            assert derive_gadget(11, index) == derive_gadget(11, index)

    def test_same_seed_same_report(self):
        first = run_security_fuzz(6, 11)
        second = run_security_fuzz(6, 11)
        assert first.to_dict() == second.to_dict()
        assert first.mismatches == []
        assert first.detected + first.clean == 6

    def test_campaign_covers_both_fates(self):
        report = run_security_fuzz(12, 5)
        assert report.ok
        assert report.detected > 0
        assert report.clean > 0


class TestShrinkAndReplay:
    def test_caught_gadget_shrinks_and_replays(self, tmp_path):
        report = run_security_fuzz(
            8, 3, shrink=True, out_dir=tmp_path
        )
        assert report.ok
        assert report.findings, "seed 3 should catch at least one gadget"
        for finding in report.findings:
            assert finding.shrunk_bundles <= finding.original_bundles
            assert finding.case_path is not None

            # Round-trip through the saved JSON and re-run: the pinned
            # leak kind must reproduce from the file alone.
            loaded = SecurityCase.load(finding.case_path)
            assert loaded.expected_kind == finding.spec.expected_kind
            replay = loaded.run()
            assert not replay.secure
            assert any(
                leak.kind == loaded.expected_kind for leak in replay.leaks
            )

    def test_saved_case_is_valid_schema(self, tmp_path):
        report = run_security_fuzz(8, 3, shrink=True, out_dir=tmp_path)
        finding = report.findings[0]
        from pathlib import Path

        document = json.loads(Path(finding.case_path).read_text())
        assert document["schema"] == "repro-security-case/v1"
        round_tripped = SecurityCase.from_dict(document)
        assert round_tripped.vliw_text == SecurityCase.load(
            finding.case_path
        ).vliw_text

    def test_shrink_pins_the_leak_kind(self):
        spec = build_gadget(2, 0, "store", random.Random("s"))
        case = SecurityCase.from_gadget(spec)
        shrunk, attempts, accepted = shrink_security_case(case, "memory")
        assert attempts > 0
        assert shrunk.bundle_count() <= case.bundle_count()
        result = shrunk.run()
        assert any(leak.kind == "memory" for leak in result.leaks)
