"""Compiled code is clean by construction: all workloads, both models.

The dependence graph forces ``alw`` consumers onto committed sequential
state, so the compiler can never emit the gadget shape -- every
speculative load either declassifies on a TRUE commit or squashes.
This is the subsystem's soundness anchor: the same detector that flags
every hand-scheduled leaky gadget must stay silent across the entire
compiled workload suite, under both predication models, with no timing
delta between the taint-off and taint-on twin runs.
"""

import pytest

from repro.taint.oracle import run_security
from repro.workloads import all_workloads

MODELS = ("region_pred", "trace_pred")


@pytest.mark.parametrize("model", MODELS)
@pytest.mark.parametrize(
    "name", [workload.name for workload in all_workloads()]
)
def test_workload_is_secure(name, model):
    from repro.workloads import get_workload

    workload = get_workload(name)
    result = run_security(
        workload.program,
        model=model,
        train_memory=workload.train_memory(),
        eval_memory=workload.eval_memory(),
    )
    assert result.error is None, result.error
    assert result.secure, result.describe()
    assert result.taint_cycles == result.baseline_cycles


def test_speculation_is_actually_exercised():
    # The clean verdicts above would be vacuous if no workload ever
    # executed a load speculatively; pin that the suite really drives
    # the sources/declassify machinery.
    from repro.workloads import get_workload

    workload = get_workload("compress")
    result = run_security(
        workload.program,
        model="region_pred",
        train_memory=workload.train_memory(),
        eval_memory=workload.eval_memory(),
    )
    assert result.counters["sources"] > 100
    assert result.counters["declassified"] > 0
