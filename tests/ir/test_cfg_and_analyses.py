"""Tests for CFG construction, dominators, liveness, and loops."""

import pytest

from repro.ir import (
    build_cfg,
    compute_dominators,
    compute_liveness,
    find_natural_loops,
)
from repro.ir.dataflow import live_after_position
from repro.ir.loops import loop_nest_depth
from repro.isa import parse_program
from repro.sim import Memory, run_program

DIAMOND = """
    li   r1, 1
    clti c0, r1, 5
    br   c0, then
    li   r2, 10
    jmp  join
then:
    li   r2, 20
join:
    out  r2
    halt
"""

LOOP = """
    li   r1, 0
loop:
    addi r1, r1, 1
    clti c0, r1, 3
    br   c0, loop
    out  r1
    halt
"""


class TestBuildCFG:
    def test_diamond_structure(self):
        cfg = build_cfg(parse_program(DIAMOND))
        assert len(cfg.blocks) == 4
        entry = cfg.blocks[cfg.entry]
        assert entry.is_branch_block
        taken, fall = entry.taken_target, entry.fall_through
        # Both arms join at the out block.
        join = cfg.blocks[taken].taken_target or cfg.blocks[taken].fall_through
        assert cfg.blocks[fall].taken_target == join or (
            cfg.blocks[fall].fall_through == join
        )

    def test_loop_back_edge(self):
        cfg = build_cfg(parse_program(LOOP))
        loop_block = [b for b in cfg.blocks.values() if b.is_branch_block][0]
        assert loop_block.taken_target == loop_block.bid

    def test_start_of_mapping(self):
        program = parse_program(LOOP)
        cfg = build_cfg(program)
        for bid, start in cfg.start_of.items():
            assert cfg.blocks[bid].instructions[0] is program.instructions[start]

    def test_empty_program_rejected(self):
        from repro.isa.program import Program

        with pytest.raises(ValueError):
            build_cfg(Program())

    def test_roundtrip_preserves_behaviour(self):
        program = parse_program(DIAMOND)
        cfg = build_cfg(program)
        again = cfg.to_program()
        assert run_program(program).output == run_program(again).output

    def test_roundtrip_after_layout_shuffle(self):
        program = parse_program(DIAMOND)
        cfg = build_cfg(program)
        cfg.layout.reverse()
        again = cfg.to_program()
        assert run_program(program).output == run_program(again).output

    def test_clone_independent(self):
        cfg = build_cfg(parse_program(DIAMOND))
        copy = cfg.clone()
        copy.blocks[copy.entry].taken_target = None
        assert cfg.blocks[cfg.entry].taken_target is not None


class TestDominators:
    def test_diamond_dominance(self):
        cfg = build_cfg(parse_program(DIAMOND))
        dom = compute_dominators(cfg)
        entry = cfg.entry
        for bid in cfg.blocks:
            assert dom.dominates(entry, bid)
        # Neither arm dominates the join.
        entry_block = cfg.blocks[entry]
        join = [
            b
            for b in cfg.blocks
            if len(cfg.predecessors(b)) == 2
        ][0]
        assert not dom.dominates(entry_block.taken_target, join)
        assert not dom.dominates(entry_block.fall_through, join)

    def test_post_dominance(self):
        cfg = build_cfg(parse_program(DIAMOND))
        dom = compute_dominators(cfg)
        join = [b for b in cfg.blocks if len(cfg.predecessors(b)) == 2][0]
        assert dom.post_dominates(join, cfg.entry)

    def test_equivalent_blocks(self):
        """Entry and join of a diamond are equivalent (footnote 2)."""
        cfg = build_cfg(parse_program(DIAMOND))
        dom = compute_dominators(cfg)
        join = [b for b in cfg.blocks if len(cfg.predecessors(b)) == 2][0]
        assert dom.equivalent(cfg.entry, join)
        arm = cfg.blocks[cfg.entry].taken_target
        assert not dom.equivalent(arm, join)


class TestLiveness:
    def test_branch_condition_live(self):
        cfg = build_cfg(parse_program(DIAMOND))
        live = compute_liveness(cfg)
        entry = live.blocks[cfg.entry]
        assert 0 in entry.def_cregs

    def test_r2_live_into_join(self):
        cfg = build_cfg(parse_program(DIAMOND))
        live = compute_liveness(cfg)
        join = [b for b in cfg.blocks if len(cfg.predecessors(b)) == 2][0]
        assert 2 in live.blocks[join].live_in_regs

    def test_dead_regs_at_entry(self):
        cfg = build_cfg(parse_program(DIAMOND))
        live = compute_liveness(cfg)
        dead = live.dead_regs_at_entry(cfg.entry, 32)
        assert 5 in dead and 0 not in dead

    def test_loop_carried_liveness(self):
        cfg = build_cfg(parse_program(LOOP))
        live = compute_liveness(cfg)
        loop_block = [b for b in cfg.blocks.values() if b.is_branch_block][0]
        assert 1 in live.blocks[loop_block.bid].live_in_regs
        assert 1 in live.blocks[loop_block.bid].live_out_regs

    def test_live_after_position(self):
        cfg = build_cfg(parse_program(LOOP))
        live = compute_liveness(cfg)
        loop_bid = [b.bid for b in cfg.blocks.values() if b.is_branch_block][0]
        after_addi = live_after_position(cfg, live, loop_bid, 0)
        assert 1 in after_addi


class TestLoops:
    def test_simple_loop_found(self):
        cfg = build_cfg(parse_program(LOOP))
        dom = compute_dominators(cfg)
        loops = find_natural_loops(cfg, dom)
        assert len(loops) == 1
        assert loops[0].header == loops[0].back_edges[0][1]

    def test_no_loops_in_diamond(self):
        cfg = build_cfg(parse_program(DIAMOND))
        dom = compute_dominators(cfg)
        assert find_natural_loops(cfg, dom) == []

    def test_nested_loops(self):
        nested = """
            li r1, 0
        outer:
            li r2, 0
        inner:
            addi r2, r2, 1
            clti c0, r2, 3
            br c0, inner
            addi r1, r1, 1
            clti c1, r1, 3
            br c1, outer
            halt
        """
        cfg = build_cfg(parse_program(nested))
        dom = compute_dominators(cfg)
        loops = find_natural_loops(cfg, dom)
        assert len(loops) == 2
        depth = loop_nest_depth(loops)
        assert max(depth.values()) == 2
