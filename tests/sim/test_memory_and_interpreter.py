"""Tests for the memory model and the scalar interpreter."""

import pytest

from repro.core.exceptions import UnhandledFault
from repro.isa import parse_program
from repro.ir import build_cfg
from repro.sim import Memory, MemoryFault, run_program
from repro.sim.interpreter import Interpreter, StepLimitExceeded
from repro.sim.memory import MIN_VALID_ADDR


class TestMemory:
    def test_null_page_faults(self):
        mem = Memory()
        for address in (0, 1, MIN_VALID_ADDR - 1):
            with pytest.raises(MemoryFault):
                mem.load(address)

    def test_negative_address_faults(self):
        with pytest.raises(MemoryFault):
            Memory().load(-8)

    def test_limit_faults(self):
        mem = Memory(limit=100)
        with pytest.raises(MemoryFault):
            mem.store(100, 1)
        mem.store(99, 1)

    def test_unwritten_reads_zero(self):
        assert Memory().load(500) == 0

    def test_mapped_only_demand_paging(self):
        mem = Memory(mapped_only=True)
        with pytest.raises(MemoryFault):
            mem.load(500)
        mem.map(500, 7)
        assert mem.load(500) == 7

    def test_mapped_only_store_faults(self):
        mem = Memory(mapped_only=True)
        with pytest.raises(MemoryFault):
            mem.store(500, 1)

    def test_map_respects_bounds(self):
        with pytest.raises(MemoryFault):
            Memory().map(0)

    def test_block_helpers(self):
        mem = Memory()
        mem.write_block(100, [1, 2, 3])
        assert mem.read_block(100, 3) == [1, 2, 3]

    def test_clone_is_independent(self):
        mem = Memory()
        mem.store(100, 1)
        copy = mem.clone()
        copy.store(100, 2)
        assert mem.load(100) == 1


class TestInterpreter:
    def test_arithmetic_program(self):
        result = run_program(
            parse_program("li r1, 6\nli r2, 7\nmul r3, r1, r2\nout r3\nhalt")
        )
        assert result.output == [42]
        assert result.halted

    def test_branch_both_ways(self):
        source = """
            li r1, {x}
            clti c0, r1, 5
            br c0, small
            out r0
            halt
        small:
            li r2, 1
            out r2
            halt
        """
        assert run_program(parse_program(source.format(x=3))).output == [1]
        assert run_program(parse_program(source.format(x=9))).output == [0]

    def test_memory_ops(self):
        mem = Memory()
        result = run_program(
            parse_program("li r1, 100\nli r2, 5\nst r2, r1, 3\nld r3, r1, 3\nout r3\nhalt"),
            mem,
        )
        assert result.output == [5]
        assert mem.load(103) == 5

    def test_predicated_code_rejected(self):
        program = parse_program("[c0] add r1, r2, r3\nhalt")
        with pytest.raises(ValueError):
            Interpreter(program)

    def test_unhandled_fault_raises(self):
        program = parse_program("li r1, 0\nld r2, r1, 0\nhalt")
        with pytest.raises(UnhandledFault):
            run_program(parse_program("li r1, 0\nld r2, r1, 0\nhalt"))
        del program

    def test_fault_handler_repairs_and_retries(self):
        calls = []

        def handler(fault, interp):
            calls.append(fault.address)
            interp.memory.map(fault.address, 123)
            return True

        program = parse_program("li r1, 500\nld r2, r1, 0\nout r2\nhalt")
        result = run_program(
            program, Memory(mapped_only=True), fault_handler=handler
        )
        assert result.output == [123]
        assert result.handled_faults == 1
        assert calls == [500]

    def test_step_limit(self):
        program = parse_program("loop:\n jmp loop")
        with pytest.raises(StepLimitExceeded):
            run_program(program, max_steps=100)

    def test_step_limit_carries_snapshot_and_partial_result(self):
        program = parse_program(
            "loop:\n addi r1, r1, 1\n out r1\n jmp loop"
        )
        with pytest.raises(StepLimitExceeded) as info:
            run_program(program, cfg=build_cfg(program), max_steps=90)
        error = info.value
        assert error.snapshot is not None
        assert error.snapshot.steps == 90
        assert error.snapshot.pc in range(len(program.instructions))
        assert error.snapshot.recent_blocks  # the spin loop was seen
        assert "last blocks entered" in str(error)
        partial = error.partial
        assert partial is not None
        assert not partial.halted
        assert partial.steps == 90
        assert partial.output  # the loop's out values up to the cutoff
        assert partial.registers[1] > 0

    def test_r0_reads_zero(self):
        result = run_program(parse_program("li r0, 7\nout r0\nhalt"))
        assert result.output == [0]


class TestScalarTiming:
    def test_one_cycle_per_instruction(self):
        result = run_program(parse_program("nop\nnop\nnop\nhalt"))
        assert result.scalar_cycles == 4

    def test_load_use_stall(self):
        no_stall = run_program(
            parse_program("li r1, 100\nld r2, r1, 0\nnop\nadd r3, r2, r2\nhalt")
        ).scalar_cycles
        stall = run_program(
            parse_program("li r1, 100\nld r2, r1, 0\nadd r3, r2, r2\nnop\nhalt")
        ).scalar_cycles
        assert stall == no_stall + 1

    def test_taken_branch_penalty(self):
        taken = run_program(
            parse_program("li r1, 1\nceqi c0, r1, 1\nbr c0, skip\nnop\nskip:\nhalt")
        ).scalar_cycles
        not_taken = run_program(
            parse_program("li r1, 1\nceqi c0, r1, 2\nbr c0, skip\nnop\nskip:\nhalt")
        ).scalar_cycles
        # Taken: li + ceqi + br + penalty + halt = 5; not taken adds nop instead.
        assert taken == 5
        assert not_taken == 5

    def test_jmp_penalty(self):
        cycles = run_program(parse_program("jmp end\nend:\nhalt")).scalar_cycles
        assert cycles == 3  # jmp + penalty + halt


class TestTraceRecording:
    def test_block_sequence_and_branches(self):
        source = """
            li r1, 0
        loop:
            addi r1, r1, 1
            clti c0, r1, 3
            br c0, loop
            out r1
            halt
        """
        program = parse_program(source)
        cfg = build_cfg(program)
        result = run_program(program, cfg=cfg)
        trace = result.trace
        assert trace is not None
        counts = trace.block_counts()
        loop_bid = [b.bid for b in cfg.blocks.values() if b.is_branch_block][0]
        assert counts[loop_bid] == 3
        assert [e.taken for e in trace.branches] == [True, True, False]
        profile = trace.branch_profile()
        (taken, not_taken), = profile.values()
        assert (taken, not_taken) == (2, 1)

    def test_edge_counts(self):
        source = """
            li r1, 0
        loop:
            addi r1, r1, 1
            clti c0, r1, 4
            br c0, loop
            halt
        """
        program = parse_program(source)
        cfg = build_cfg(program)
        trace = run_program(program, cfg=cfg).trace
        loop_bid = [b.bid for b in cfg.blocks.values() if b.is_branch_block][0]
        assert trace.edge_counts()[(loop_bid, loop_bid)] == 3
