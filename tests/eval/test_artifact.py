"""Round-trip tests: every experiment's to_dict() survives the artifact
schema, and the writer emits canonical, reloadable documents."""

import json

import pytest

from repro.eval import EXPERIMENTS, ExperimentContext, ExperimentOptions
from repro.eval.artifact import (
    SCHEMA,
    SCHEMA_V2,
    ArtifactError,
    artifact_path,
    dumps_artifact,
    load_artifact,
    make_artifact,
    validate_artifact,
    write_artifact,
)
from repro.workloads import get_workload


@pytest.fixture(scope="module")
def small_ctx():
    return ExperimentContext([get_workload("grep"), get_workload("li")])


@pytest.fixture(scope="module")
def small_options():
    """Trimmed sweeps keep the full-registry round-trip fast."""
    return ExperimentOptions(
        run_machine=False,
        max_run=3,
        widths=(2,),
        depths=(1, 2),
        factors=(1, 2),
        machines=((4, 4),),
    )


@pytest.mark.parametrize("name", sorted(EXPERIMENTS))
def test_every_experiment_round_trips(name, small_ctx, small_options, tmp_path):
    result = EXPERIMENTS[name](small_ctx, small_options)
    document = make_artifact(name, result)
    validate_artifact(document)
    assert document["schema"] == SCHEMA
    assert document["experiment"] == name

    path = write_artifact(tmp_path, name, result)
    assert path == tmp_path / f"{name}.json"
    reloaded = load_artifact(path)
    assert reloaded == document


def test_dumps_is_canonical(small_ctx, small_options):
    result = EXPERIMENTS["table2"](small_ctx, small_options)
    first = dumps_artifact(make_artifact("table2", result))
    second = dumps_artifact(make_artifact("table2", result))
    assert first == second
    assert first.endswith("\n")


def test_artifact_path_resolution(tmp_path):
    assert artifact_path(tmp_path, "fig7") == tmp_path / "fig7.json"
    explicit = tmp_path / "custom.json"
    assert artifact_path(explicit, "fig7") == explicit


class TestValidation:
    def test_rejects_non_object(self):
        with pytest.raises(ArtifactError):
            validate_artifact([1, 2, 3])

    def test_rejects_wrong_schema(self):
        with pytest.raises(ArtifactError, match="schema"):
            validate_artifact(
                {"schema": "bogus/v9", "experiment": "x", "data": {"a": 1}}
            )

    def test_rejects_missing_experiment(self):
        with pytest.raises(ArtifactError, match="experiment"):
            validate_artifact({"schema": SCHEMA, "data": {"a": 1}})

    def test_rejects_empty_data(self):
        with pytest.raises(ArtifactError, match="data"):
            validate_artifact(
                {"schema": SCHEMA, "experiment": "x", "data": {}}
            )

    def test_rejects_non_json_payload(self):
        with pytest.raises(ArtifactError, match="non-JSON"):
            validate_artifact(
                {
                    "schema": SCHEMA,
                    "experiment": "x",
                    "data": {"bad": object()},
                }
            )

    def test_rejects_non_finite_floats(self):
        with pytest.raises(ArtifactError, match="non-finite"):
            validate_artifact(
                {
                    "schema": SCHEMA,
                    "experiment": "x",
                    "data": {"bad": float("inf")},
                }
            )

    def test_rejects_unparseable_file(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{nope")
        with pytest.raises(ArtifactError, match="not JSON"):
            load_artifact(path)


class TestMetricsEnvelope:
    """The optional v2 ``metrics`` section (runner telemetry)."""

    METRICS = {
        "counters": {"runner.cells": 3},
        "wall_ns": 500_000_000,
        "wall_seconds": 0.5,
    }

    def test_metrics_promote_schema_to_v2(self, small_ctx, small_options):
        result = EXPERIMENTS["hwcost"](small_ctx, small_options)
        document = make_artifact("hwcost", result, metrics=self.METRICS)
        assert document["schema"] == SCHEMA_V2
        assert document["metrics"] == self.METRICS
        validate_artifact(document)

    def test_no_metrics_keeps_v1_byte_identical(self, small_ctx, small_options):
        """The v2 introduction must not change default artifacts."""
        result = EXPERIMENTS["hwcost"](small_ctx, small_options)
        plain = dumps_artifact(make_artifact("hwcost", result))
        explicit_none = dumps_artifact(
            make_artifact("hwcost", result, metrics=None)
        )
        assert plain == explicit_none
        assert json.loads(plain)["schema"] == SCHEMA

    def test_v1_with_metrics_rejected(self):
        with pytest.raises(ArtifactError, match="v1"):
            validate_artifact(
                {
                    "schema": SCHEMA,
                    "experiment": "x",
                    "data": {"a": 1},
                    "metrics": self.METRICS,
                }
            )

    def test_v2_without_metrics_rejected(self):
        with pytest.raises(ArtifactError, match="metrics"):
            validate_artifact(
                {"schema": SCHEMA_V2, "experiment": "x", "data": {"a": 1}}
            )

    def test_v2_metrics_payload_checked(self):
        with pytest.raises(ArtifactError, match="metrics"):
            validate_artifact(
                {
                    "schema": SCHEMA_V2,
                    "experiment": "x",
                    "data": {"a": 1},
                    "metrics": {"bad": float("nan")},
                }
            )

    def test_write_and_reload_v2(self, small_ctx, small_options, tmp_path):
        result = EXPERIMENTS["hwcost"](small_ctx, small_options)
        path = write_artifact(tmp_path, "hwcost", result, metrics=self.METRICS)
        reloaded = load_artifact(path)
        assert reloaded["schema"] == SCHEMA_V2
        assert reloaded["metrics"] == self.METRICS


class TestErrorsEnvelope:
    """The optional v2 ``errors`` section (failed cells of a sweep)."""

    ERRORS = [
        {
            "error": {
                "label": "speedup/grep/region_pred",
                "type": "BrokenProcessPool",
                "message": "worker died",
                "attempts": 3,
            }
        }
    ]

    def _result(self, small_ctx, small_options):
        return EXPERIMENTS["hwcost"](small_ctx, small_options)

    def test_errors_promote_schema_to_v2(self, small_ctx, small_options):
        document = make_artifact(
            "hwcost", self._result(small_ctx, small_options),
            errors=self.ERRORS,
        )
        assert document["schema"] == SCHEMA_V2
        assert document["errors"] == self.ERRORS
        validate_artifact(document)

    def test_empty_errors_list_keeps_v1(self, small_ctx, small_options):
        result = self._result(small_ctx, small_options)
        document = make_artifact("hwcost", result, errors=[])
        assert document["schema"] == SCHEMA
        assert "errors" not in document

    def test_v1_with_errors_rejected(self):
        with pytest.raises(ArtifactError, match="v1"):
            validate_artifact(
                {
                    "schema": SCHEMA,
                    "experiment": "x",
                    "data": {"a": 1},
                    "errors": self.ERRORS,
                }
            )

    def test_v2_empty_errors_rejected(self):
        with pytest.raises(ArtifactError, match="errors"):
            validate_artifact(
                {
                    "schema": SCHEMA_V2,
                    "experiment": "x",
                    "data": {"a": 1},
                    "errors": [],
                }
            )

    def test_nan_payload_scrubbed_to_null(self, small_ctx, small_options):
        """Failed cells leave NaN placeholders; the artifact writer must
        turn them into null rather than fail validation."""

        class _Result:
            def to_dict(self):
                return {"geomeans": {"region_pred": float("nan")}}

        document = make_artifact("fig7", _Result(), errors=self.ERRORS)
        assert document["data"]["geomeans"]["region_pred"] is None
        validate_artifact(document)

    def test_write_and_reload_with_errors(
        self, small_ctx, small_options, tmp_path
    ):
        result = self._result(small_ctx, small_options)
        path = write_artifact(tmp_path, "hwcost", result, errors=self.ERRORS)
        reloaded = load_artifact(path)
        assert reloaded["schema"] == SCHEMA_V2
        assert reloaded["errors"] == self.ERRORS
