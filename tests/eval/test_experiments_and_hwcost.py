"""Tests for the evaluation harness on a reduced workload set."""

import pytest

from repro.eval import (
    ExperimentContext,
    ExperimentOptions,
    run_counter_ablation,
    run_fig6,
    run_fig7,
    run_fig8,
    run_hwcost,
    run_shadow_ablation,
    run_table2,
    run_table3,
)
from repro.eval.experiments import geomean
from repro.eval.hwcost import RegFileParams, analyze
from repro.eval.report import render_bars, render_table
from repro.workloads import get_workload


@pytest.fixture(scope="module")
def small_ctx():
    """Two kernels (one predictable, one not) keep these tests fast."""
    return ExperimentContext([get_workload("grep"), get_workload("li")])


class TestContext:
    def test_baseline_cached(self, small_ctx):
        workload = small_ctx.workloads[0]
        first = small_ctx.baseline(workload)
        second = small_ctx.baseline(workload)
        assert first is second

    def test_speedup_positive(self, small_ctx):
        from repro.machine.config import base_machine

        speedup = small_ctx.speedup(
            small_ctx.workloads[0], "region_pred", base_machine()
        )
        assert speedup > 1.0


class TestGeomean:
    def test_basic(self):
        assert abs(geomean([2.0, 8.0]) - 4.0) < 1e-9

    def test_empty(self):
        assert geomean([]) == 0.0


class TestDrivers:
    def test_table2_structure(self, small_ctx):
        result = run_table2(small_ctx)
        assert [row[0] for row in result.rows] == ["grep", "li"]
        assert "Table 2" in result.render()

    def test_table3_structure(self, small_ctx):
        result = run_table3(small_ctx, ExperimentOptions(max_run=4))
        assert set(result.rows) == {"grep", "li"}
        assert all(len(v) == 4 for v in result.rows.values())
        assert "grep" in result.render()

    def test_fig6_models(self, small_ctx):
        figure = run_fig6(small_ctx)
        assert figure.models == ["global", "squashing", "trace", "region"]
        means = figure.geomeans()
        assert all(value > 1.0 for value in means.values())
        assert "geomean" in figure.render()

    def test_fig7_validates_on_machine(self, small_ctx):
        figure = run_fig7(small_ctx)
        means = figure.geomeans()
        assert means["region_pred"] >= means["global"]

    def test_fig8_grid(self, small_ctx):
        result = run_fig8(small_ctx, ExperimentOptions(widths=(2, 4), depths=(1, 4)))
        assert set(result.geomeans) == {(2, 1), (2, 4), (4, 1), (4, 4)}
        assert result.geomeans[(4, 4)] >= result.geomeans[(4, 1)] - 1e-9
        assert "Figure 8" in result.render()

    def test_ablations_render(self, small_ctx):
        shadow = run_shadow_ablation(small_ctx)
        counter = run_counter_ablation(small_ctx)
        assert len(shadow.rows) == 2 and len(counter.rows) == 2
        assert "shadow" in shadow.render()
        assert "counter" in counter.render().lower()


class TestHwCost:
    def test_paper_bands(self):
        report = run_hwcost().report
        assert 0.60 <= report.shadow_ratio <= 0.90
        assert 0.10 <= report.commit_ratio <= 0.45
        assert report.predicate_eval_gate_delay == 3

    def test_commit_hardware_scales_with_ccr(self):
        small = analyze(RegFileParams(ccr_entries=2))
        large = analyze(RegFileParams(ccr_entries=8))
        assert large.commit_hardware > small.commit_hardware
        assert large.shadow_storage == small.shadow_storage

    def test_width_scaling(self):
        narrow = analyze(RegFileParams(word_bits=32))
        wide = analyze(RegFileParams(word_bits=64))
        assert wide.normal_regfile > narrow.normal_regfile
        # Ratios are roughly width-independent (a structural property).
        assert abs(wide.shadow_ratio - narrow.shadow_ratio) < 0.1

    def test_render(self):
        text = run_hwcost().render()
        assert "0.76" in text and "3 gates" in text


# The renderers' unit tests live in tests/eval/test_report.py; this
# module keeps one smoke check that results render through them.
class TestReport:
    def test_results_render_through_report(self, small_ctx):
        text = run_table2(small_ctx).render()
        assert render_table(["Program"], [["grep"]]).splitlines()[0] in text
        assert render_bars(["x"], [1.0]).count("#") > 0
