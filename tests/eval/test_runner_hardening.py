"""Crash tolerance of the cell runner: hangs, crashes, and error entries.

The ``chaos`` cell kind misbehaves on demand (raise, hang, or kill its
worker with ``os._exit``), which lets these tests drive every failure
path of the hardened runner without touching real experiment cells.
"""

import pytest

from repro.eval import ExperimentContext
from repro.eval.runner import CellSpec, error_entry, is_error_cell


def chaos(mode: str = "ok", **extras) -> CellSpec:
    return CellSpec(
        kind="chaos", extras=tuple({"mode": mode, **extras}.items())
    )


def ok_cells(count: int) -> list[CellSpec]:
    return [chaos("ok", value=index) for index in range(count)]


class TestErrorEntries:
    def test_shape(self):
        entry = error_entry(chaos("raise"), RuntimeError("boom"), attempts=2)
        assert is_error_cell(entry)
        assert entry["error"]["type"] == "RuntimeError"
        assert entry["error"]["message"] == "boom"
        assert entry["error"]["attempts"] == 2

    def test_value_cells_are_not_errors(self):
        assert not is_error_cell({"speedup": 2.0})


class TestSerialFailures:
    def test_raise_becomes_error_entry(self):
        ctx = ExperimentContext(workloads=[])
        results = ctx.run_cells([chaos("ok", value=7), chaos("raise")])
        assert results[0] == {"value": 7}
        assert is_error_cell(results[1])
        assert results[1]["error"]["type"] == "RuntimeError"
        assert ctx.runner.stats.errors == [results[1]]

    def test_fail_fast_restores_raising(self):
        ctx = ExperimentContext(workloads=[], fail_fast=True)
        with pytest.raises(RuntimeError, match="chaos cell asked to raise"):
            ctx.run_cells([chaos("ok"), chaos("raise")])

    def test_error_entries_are_never_cached(self, tmp_path):
        ctx = ExperimentContext(workloads=[], cache_dir=tmp_path)
        ctx.run_cells([chaos("ok", value=1), chaos("raise")])
        assert len(ctx.runner.stats.errors) == 1
        # A fresh runner over the same cache retries the failed cell
        # (one hit for the good cell, one miss for the bad one).
        again = ExperimentContext(workloads=[], cache_dir=tmp_path)
        again.run_cells([chaos("ok", value=1), chaos("raise")])
        assert again.runner.stats.hits == 1
        assert again.runner.stats.misses == 1


class TestPoolFailures:
    def test_worker_crash_yields_error_entry_and_complete_sweep(self):
        """Killing a worker mid-sweep costs that one cell, not the batch,
        and the surviving cells match a serial run exactly."""
        specs = ok_cells(4)
        serial = ExperimentContext(workloads=[]).run_cells(list(specs))

        ctx = ExperimentContext(
            workloads=[], jobs=2, max_retries=1, retry_backoff=0.01
        )
        sweep = list(specs)
        sweep.insert(2, chaos("kill"))
        results = ctx.run_cells(sweep)

        assert is_error_cell(results[2])
        assert results[2]["error"]["type"] == "BrokenProcessPool"
        assert results[2]["error"]["attempts"] == 2  # initial + 1 retry
        survivors = results[:2] + results[3:]
        assert survivors == serial  # byte-identical to the serial sweep
        assert ctx.runner.stats.crashes >= 1
        assert ctx.runner.stats.retries == 1
        assert len(ctx.runner.stats.errors) == 1

    def test_hung_cell_times_out_into_error_entry(self):
        ctx = ExperimentContext(
            workloads=[],
            jobs=2,
            cell_timeout=1.0,
            max_retries=0,
            retry_backoff=0.01,
        )
        results = ctx.run_cells(
            [chaos("ok", value=0), chaos("hang"), chaos("ok", value=2)]
        )
        assert results[0] == {"value": 0}
        assert results[2] == {"value": 2}
        assert is_error_cell(results[1])
        assert results[1]["error"]["type"] == "TimeoutError"
        assert ctx.runner.stats.timeouts >= 1

    def test_hang_with_fail_fast_raises(self):
        ctx = ExperimentContext(
            workloads=[], jobs=2, cell_timeout=0.5, fail_fast=True
        )
        with pytest.raises(TimeoutError):
            ctx.run_cells([chaos("hang"), chaos("ok")])

    def test_clean_pooled_run_reports_no_failures(self):
        ctx = ExperimentContext(workloads=[], jobs=2)
        results = ctx.run_cells(ok_cells(4))
        assert results == [{"value": index} for index in range(4)]
        stats = ctx.runner.stats
        assert stats.timeouts == stats.crashes == stats.retries == 0
        assert not stats.errors
        counters = stats.to_metrics()["counters"]
        # Clean-run telemetry carries no failure counters at all.
        assert not any("failed" in name or "timeout" in name
                       or "crash" in name for name in counters)


class TestStatsReporting:
    def test_report_names_failed_cells(self):
        ctx = ExperimentContext(workloads=[])
        ctx.run_cells([chaos("raise")])
        report = ctx.runner.stats.report()
        assert "1 cells errored" in report
        assert "RuntimeError" in report

    def test_failure_counters_in_metrics(self):
        ctx = ExperimentContext(workloads=[])
        ctx.run_cells([chaos("raise")])
        counters = ctx.runner.stats.to_metrics()["counters"]
        assert counters["runner.failed_cells"] == 1
