"""Unit tests for the ASCII renderers (tables and bar charts)."""

from repro.eval.report import render_bars, render_table


class TestRenderTable:
    def test_alignment_and_rule(self):
        text = render_table(["a", "bb"], [["x", 1], ["yyy", 22]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")
        assert set(lines[1]) <= {"-", " "}

    def test_empty_rows_render_headers_only(self):
        text = render_table(["col1", "col2"], [], title="empty")
        lines = text.splitlines()
        assert lines == ["empty", "col1  col2", "----  ----"]

    def test_wide_cell_stretches_column(self):
        text = render_table(["h"], [["a very wide value"]])
        header, rule, row = text.splitlines()
        assert len(rule) == len("a very wide value")

    def test_no_trailing_whitespace(self):
        text = render_table(["a", "b"], [["xx", "y"], ["z", "ww"]], title="t")
        assert all(line == line.rstrip() for line in text.splitlines())


class TestRenderBars:
    def test_proportional_bars(self):
        text = render_bars(["one", "two"], [1.0, 2.0], title="t")
        lines = text.splitlines()
        assert lines[0] == "t"
        assert lines[2].count("#") > lines[1].count("#")

    def test_empty_values(self):
        assert render_bars([], [], title="t") == "t"
        assert render_bars([], []) == ""

    def test_zero_peak_renders_without_bars(self):
        text = render_bars(["a", "b"], [0.0, 0.0])
        for line in text.splitlines():
            assert "#" not in line
            assert line == line.rstrip()

    def test_width_clamps_longest_bar(self):
        text = render_bars(["a", "b"], [1.0, 10.0], width=8)
        longest = max(line.count("#") for line in text.splitlines())
        assert longest == 8

    def test_nonpositive_width_still_renders(self):
        text = render_bars(["a"], [3.0], width=0)
        assert text.count("#") == 1

    def test_minimum_one_hash_for_tiny_values(self):
        text = render_bars(["tiny", "huge"], [0.001, 100.0], width=10)
        tiny_line = text.splitlines()[0]
        assert tiny_line.count("#") == 1
