"""Tests for the parallel, cached cell runner."""

import dataclasses
import json

import pytest

from repro.compiler.models import MODELS, REGION_PRED
from repro.eval import ExperimentContext
from repro.eval.runner import CellSpec, cell_cache_key, evaluate_cell
from repro.machine.config import base_machine
from repro.workloads import get_workload


@pytest.fixture(scope="module")
def grep():
    return get_workload("grep")


def _speedup_spec(**overrides) -> CellSpec:
    params = dict(
        kind="speedup", workload="grep", model="region_pred",
        config=base_machine(),
    )
    params.update(overrides)
    return CellSpec(**params)


class TestCacheKey:
    def test_stable_across_calls(self, grep):
        spec = _speedup_spec()
        assert cell_cache_key(spec, grep) == cell_cache_key(spec, grep)

    def test_equal_specs_share_a_key(self, grep):
        assert cell_cache_key(_speedup_spec(), grep) == cell_cache_key(
            _speedup_spec(), grep
        )

    def test_model_name_and_policy_agree(self, grep):
        """A model named by string keys identically to its policy object."""
        by_name = _speedup_spec()
        by_policy = _speedup_spec(model=None, policy=MODELS["region_pred"])
        assert cell_cache_key(by_name, grep) == cell_cache_key(by_policy, grep)

    def test_policy_field_change_misses(self, grep):
        base = cell_cache_key(_speedup_spec(), grep)
        widened = dataclasses.replace(REGION_PRED, window_blocks=99)
        changed = cell_cache_key(
            _speedup_spec(model=None, policy=widened), grep
        )
        assert base != changed

    def test_config_field_change_misses(self, grep):
        base = cell_cache_key(_speedup_spec(), grep)
        changed = cell_cache_key(
            _speedup_spec(config=base_machine(num_load=1)), grep
        )
        assert base != changed

    def test_seed_change_misses(self, grep):
        base = cell_cache_key(_speedup_spec(), grep)
        reseeded = dataclasses.replace(grep, eval_seed=grep.eval_seed + 1)
        assert base != cell_cache_key(_speedup_spec(), reseeded)
        retrained = dataclasses.replace(grep, train_seed=grep.train_seed + 7)
        assert base != cell_cache_key(_speedup_spec(), retrained)

    def test_kind_and_extras_discriminate(self, grep):
        speedup = cell_cache_key(_speedup_spec(), grep)
        stats = cell_cache_key(_speedup_spec(kind="compile_stats"), grep)
        assert speedup != stats
        a = cell_cache_key(
            _speedup_spec(kind="unroll", extras=(("factor", 2),)), grep
        )
        b = cell_cache_key(
            _speedup_spec(kind="unroll", extras=(("factor", 4),)), grep
        )
        assert a != b

    def test_run_machine_flag_discriminates(self, grep):
        assert cell_cache_key(
            _speedup_spec(run_machine=True), grep
        ) != cell_cache_key(_speedup_spec(), grep)


class TestCellRunner:
    def test_cold_then_warm(self, tmp_path):
        specs = [
            _speedup_spec(),
            _speedup_spec(model="trace"),
        ]
        cold = ExperimentContext(cache_dir=tmp_path)
        first = cold.run_cells(specs)
        assert cold.runner.stats.misses == 2
        assert cold.runner.stats.hits == 0

        warm = ExperimentContext(cache_dir=tmp_path)
        second = warm.run_cells(specs)
        assert warm.runner.stats.hits == 2
        assert warm.runner.stats.misses == 0
        assert first == second

    def test_duplicate_specs_compute_once(self, tmp_path):
        ctx = ExperimentContext(cache_dir=tmp_path)
        results = ctx.run_cells([_speedup_spec(), _speedup_spec()])
        assert results[0] == results[1]
        assert len(ctx.runner.stats.cell_times) == 1
        # Per-cell telemetry is integer perf_counter_ns durations.
        assert isinstance(ctx.runner.stats.cell_times[0][1], int)
        # Both cells are accounted for in the miss counter.
        assert ctx.runner.stats.misses == 2

    def test_no_cache_dir_recomputes(self):
        ctx = ExperimentContext()
        ctx.run_cells([_speedup_spec()])
        ctx.run_cells([_speedup_spec()])
        assert ctx.runner.stats.hits == 0
        assert ctx.runner.stats.misses == 2

    def test_corrupt_cache_entry_recomputed(self, tmp_path, grep):
        ctx = ExperimentContext(cache_dir=tmp_path)
        ctx.run_cells([_speedup_spec()])
        (entry,) = tmp_path.glob("*.json")
        entry.write_text("{not json")
        again = ExperimentContext(cache_dir=tmp_path)
        result = again.run_cells([_speedup_spec()])
        assert again.runner.stats.misses == 1
        assert result[0]["speedup"] > 1.0
        # The recomputed value was re-persisted as valid JSON.
        assert json.loads(entry.read_text())["values"] == result[0]

    def test_stale_cache_version_recomputed(self, tmp_path):
        ctx = ExperimentContext(cache_dir=tmp_path)
        ctx.run_cells([_speedup_spec()])
        (entry,) = tmp_path.glob("*.json")
        document = json.loads(entry.read_text())
        document["version"] = -1
        entry.write_text(json.dumps(document))
        again = ExperimentContext(cache_dir=tmp_path)
        again.run_cells([_speedup_spec()])
        assert again.runner.stats.misses == 1

    def test_parallel_matches_serial(self, tmp_path):
        specs = [
            _speedup_spec(workload=name, model=model)
            for name in ("grep", "li")
            for model in ("global", "trace", "region_pred")
        ]
        serial = ExperimentContext().run_cells(specs)
        parallel_ctx = ExperimentContext(jobs=2, cache_dir=tmp_path / "c")
        parallel = parallel_ctx.run_cells(specs)
        assert serial == parallel

    def test_report_mentions_hits_and_misses(self, tmp_path):
        ctx = ExperimentContext(cache_dir=tmp_path)
        ctx.run_cells([_speedup_spec()])
        ctx.run_cells([_speedup_spec()])
        text = ctx.runner.stats.report()
        assert "hits 1" in text and "misses 1" in text
        assert "slowest" in text


class TestEvaluateCell:
    def test_baseline_cell(self, grep):
        ctx = ExperimentContext()
        values = evaluate_cell(CellSpec(kind="baseline", workload="grep"), ctx)
        assert values["cycles"] > 0
        assert values["lines"] == grep.program.static_line_count()

    def test_accuracy_cell_length(self):
        ctx = ExperimentContext()
        values = evaluate_cell(
            CellSpec(
                kind="accuracy", workload="grep", extras=(("max_run", 3),)
            ),
            ctx,
        )
        assert len(values["accuracy"]) == 3

    def test_compile_stats_cell(self):
        ctx = ExperimentContext()
        values = evaluate_cell(
            CellSpec(
                kind="compile_stats",
                workload="li",
                model="region_pred",
                config=base_machine(),
            ),
            ctx,
        )
        assert values["speedup"] > 1.0
        assert values["expansion"] >= 1.0

    def test_hwcost_cell_needs_no_workload(self):
        ctx = ExperimentContext(workloads=[])
        values = evaluate_cell(CellSpec(kind="hwcost"), ctx)
        assert values["predicate_eval_gate_delay"] == 3

    def test_unknown_kind_rejected(self):
        ctx = ExperimentContext()
        with pytest.raises(ValueError, match="unknown cell kind"):
            evaluate_cell(CellSpec(kind="mystery", workload="grep"), ctx)


class TestRunnerTelemetry:
    """ExperimentContext runner telemetry through a metrics sink."""

    def test_cache_hits_and_misses_counted_into_sink(self, tmp_path):
        from repro.obs.metrics import CounterSink

        sink = CounterSink()
        ctx = ExperimentContext(
            [get_workload("grep")], cache_dir=tmp_path, sink=sink
        )
        specs = [_speedup_spec(workload="grep")]
        ctx.run_cells(specs)
        assert sink.counter("runner.cache_misses") == 1
        assert sink.counter("runner.cache_hits") == 0
        ctx.run_cells(specs)
        assert sink.counter("runner.cache_hits") == 1

    def test_stats_to_metrics_shape(self, tmp_path):
        ctx = ExperimentContext([get_workload("grep")], cache_dir=tmp_path)
        ctx.run_cells([_speedup_spec(workload="grep")])
        metrics = ctx.runner.stats.to_metrics()
        assert metrics["counters"]["runner.cells"] == 1
        assert metrics["counters"]["runner.cache_misses"] == 1
        assert isinstance(metrics["wall_ns"], int)
        assert metrics["wall_ns"] > 0
        assert metrics["wall_seconds"] >= 0.0
        assert metrics["wall_seconds"] == pytest.approx(
            metrics["wall_ns"] / 1e9, abs=1e-6
        )

    def test_speedup_cells_carry_btb_statistics(self):
        ctx = ExperimentContext([get_workload("grep")])
        config = dataclasses.replace(base_machine(), btb_entries=64)
        cell = evaluate_cell(_speedup_spec(workload="grep", config=config), ctx)
        assert cell["btb_hits"] > 0
        assert cell["btb_misses"] > 0  # compulsory misses at least
        optimistic = evaluate_cell(_speedup_spec(workload="grep"), ctx)
        assert optimistic["btb_hits"] == 0 == optimistic["btb_misses"]
