"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``workloads``  -- list the benchmark-analogue kernels.
* ``run``        -- execute a workload (or an assembly file) on the
  scalar baseline and print its output and cycle count.
* ``compile``    -- compile under a model and show the scheduled code
  and static statistics.
* ``exec``       -- compile with a predicating model and execute the
  result on the cycle-level VLIW machine (``--trace-out`` captures a
  Perfetto cycle trace).
* ``profile``    -- instrumented machine run: counters, occupancy
  histograms, the "top regions by cycles" attribution table, and
  optional ``--json`` / ``--trace-out`` exports.
* ``experiment`` -- regenerate a paper table/figure (or ``all``), with
  parallel fan-out (``--jobs``), a durable result cache
  (``--cache-dir`` / ``--no-cache``), JSON artifacts (``--json``, ``-``
  for stdout), runner telemetry in the artifact (``--metrics``),
  ``--quiet`` to suppress the stderr telemetry summary, and crash
  tolerance knobs (``--cell-timeout``, ``--retries``, ``--fail-fast``).
* ``verify``     -- differential check: compile a workload under a
  predicating model, run it on the cycle-level machine, and compare
  every architectural observable against the scalar interpreter
  (``--replay CASE.json`` re-runs a serialized fuzz finding).
* ``fuzz``       -- seed-deterministic differential fuzzing campaigns
  over random structured programs, region policies, machine shapes and
  fault-raising loads; ``--shrink`` delta-debugs findings to minimal
  repros, ``--out`` freezes them as replayable JSON cases.
* ``diff-trace`` -- lockstep divergence forensics: run a workload (or
  ``--replay CASE.json``) on both the scalar golden model and the
  machine with flight recorders and committed-effect streams attached,
  and report the first divergent architectural effect with a +-K-event
  flight window around it on each side (``--window``), a
  ``repro-tracediff/v1`` artifact (``--json``) and a merged two-process
  Perfetto trace (``--trace-out``).
* ``ckpt``       -- checkpoint tooling; ``ckpt inspect SNAP.json``
  prints a snapshot's engine, position, occupancy and hash validity
  (``--summary`` for the grep-able one-line form).
* ``serve``      -- fault-tolerant batched simulation service speaking
  a JSON-lines protocol over HTTP (``--http PORT``) or stdin/stdout
  (``--stdio``): compile-and-simulate jobs batched by identical
  program+config, bounded worker pool with per-job timeouts and
  isolated retries, deterministic load shedding (``--queue-limit``,
  ``--client-quota``), and a durable write-ahead job journal
  (``--journal DIR``) so a killed server replays exactly the
  incomplete jobs on restart -- never losing or duplicating accepted
  work.
* ``bench``      -- simulator performance measurement.  ``bench run
  [--suite micro|macro|all] [--quick] [--json OUT]`` times the
  registered benchmarks (steady-state harness: warmup, GC pinned off,
  MAD outlier rejection) and writes a ``repro-bench/v1`` artifact;
  ``bench compare OLD NEW [--threshold 0.10] [--warn-only]`` prints
  the per-benchmark delta table and exits 1 on regressions beyond the
  threshold.

Resumability: ``exec`` and ``profile`` take ``--checkpoint-dir`` /
``--checkpoint-every`` / ``--resume`` (periodic machine snapshots,
continued bit-identically); ``experiment`` and ``fuzz`` take
``--journal DIR`` / ``--resume`` (a durable completed-work ledger, so a
killed sweep replays finished cells instead of recomputing them).  The
long-running verbs trap SIGINT/SIGTERM, flush a final checkpoint at the
next safe boundary, and exit ``128 + signum`` (130/143) so wrappers can
tell "interrupted but resumable" from "failed".

Observability: the global ``--log-json PATH`` flag (before the command:
``repro --log-json run.jsonl fuzz ...``) appends structured JSONL run
records -- experiment cells with cache/ledger outcomes, cell retries,
fuzz campaign verdicts, bench samples.  ``experiment`` and ``fuzz`` take
``--progress`` for a stderr-only single-line live meter (done/total,
cache-hit rate or divergences, ETA).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.analysis.branch_prediction import StaticPredictor
from repro.ckpt import (
    CheckpointError,
    CheckpointWriter,
    Journal,
    ShutdownRequested,
    SignalSupervisor,
    describe_snapshot,
    latest_snapshot,
    restore_vliw,
    run_vliw,
    summary_line,
    validate_snapshot,
)
from repro.ckpt.engine import read_json
from repro.compiler import MODELS, compile_program, evaluate_model
from repro.eval import EXPERIMENTS, ExperimentContext, ExperimentOptions
from repro.eval.artifact import dumps_artifact, make_artifact, write_artifact
from repro.ir import build_cfg
from repro.isa import parse_program
from repro.machine.config import base_machine
from repro.machine.scalar import run_scalar
from repro.obs import CounterSink, CycleTraceRecorder, attribute_regions
from repro.obs.progress import ProgressLine
from repro.obs.runlog import NULL_RUN_LOG, JsonlRunLog
from repro.sim.memory import Memory
from repro.workloads import all_workloads, get_workload

DEFAULT_CACHE_DIR = ".repro-cache"

#: Schema of ``repro profile --json`` documents.
PROFILE_SCHEMA = "repro-profile/v1"

#: Schemas of ``repro verify --json`` / ``repro fuzz --json`` documents.
VERIFY_SCHEMA = "repro-verify/v1"
FUZZ_SCHEMA = "repro-fuzz/v1"

#: CLI aliases for the executable predicating models.
_PROFILE_MODELS = {
    "trace_pred": "trace_pred",
    "region_pred": "region_pred",
    # The paper's "predicating" model is region predication.
    "predicating": "region_pred",
}


def _load_program_and_memory(target: str, seed: int):
    """A workload name or a path to an assembly file."""
    path = Path(target)
    if path.exists():
        program = parse_program(path.read_text(), name=path.stem)
        return program, Memory(), Memory()
    workload = get_workload(target)
    return (
        workload.program,
        workload.make_memory(workload.train_seed),
        workload.make_memory(seed),
    )


def cmd_workloads(_args) -> int:
    for workload in all_workloads():
        print(f"{workload.name:10s} {workload.description}")
        if workload.remarks:
            print(f"{'':10s}   ({workload.remarks})")
    return 0


def cmd_run(args) -> int:
    program, _, memory = _load_program_and_memory(args.target, args.seed)
    cfg = build_cfg(program)
    result = run_scalar(program, cfg, memory)
    print(f"output : {list(result.output)}")
    print(f"cycles : {result.cycles}")
    print(f"instrs : {result.instructions}")
    return 0


def cmd_compile(args) -> int:
    program, train, _ = _load_program_and_memory(args.target, args.seed)
    cfg = build_cfg(program)
    scalar = run_scalar(program, cfg, train)
    predictor = StaticPredictor.from_trace(scalar.trace)
    compiled = compile_program(program, args.model, base_machine(), predictor)
    print(f"model    : {compiled.policy.name}")
    print(f"units    : {compiled.unit_count()}")
    total_ops = sum(
        len(unit.region.items) for unit in compiled.code.units.values()
    )
    bundles = sum(unit.length for unit in compiled.code.units.values())
    print(f"ops      : {total_ops} scheduled / {len(program)} source")
    print(f"bundles  : {bundles}")
    if compiled.vliw is not None and args.dump:
        print()
        print(compiled.vliw.format())
    return 0


def _write_trace(tracer: CycleTraceRecorder, target: str) -> None:
    path = Path(target)
    tracer.write(path)
    print(
        f"[trace] {path} ({len(tracer.track_names())} tracks)",
        file=sys.stderr,
    )


def _checkpointed_machine_runner(args, supervisor: SignalSupervisor):
    """A :func:`evaluate_model` machine-runner hook wiring the checkpoint
    layer into ``exec``/``profile``: periodic snapshots under
    ``--checkpoint-dir``, bit-identical continuation from the newest
    valid snapshot with ``--resume`` (corrupt or stale snapshots are
    reported and skipped, never fatal), and a final snapshot flush when
    the supervisor observes SIGINT/SIGTERM."""
    ckpt_dir = (
        Path(args.checkpoint_dir)
        if getattr(args, "checkpoint_dir", None)
        else None
    )

    def runner(machine):
        writer = CheckpointWriter(ckpt_dir) if ckpt_dir is not None else None
        resumed = machine
        if ckpt_dir is not None and args.resume:
            latest = latest_snapshot(ckpt_dir)
            for skipped_path, reason in latest.skipped:
                print(
                    f"[ckpt] skipping {skipped_path}: {reason}",
                    file=sys.stderr,
                )
            if latest.found:
                try:
                    resumed = restore_vliw(
                        latest.document,
                        machine.program,
                        machine.config,
                        fault_handler=machine.fault_handler,
                        sink=machine.sink,
                        tracer=machine.tracer,
                        path=latest.path,
                    )
                    print(
                        f"[ckpt] resumed {latest.path} "
                        f"at cycle {resumed.cycle}",
                        file=sys.stderr,
                    )
                except CheckpointError as error:
                    print(
                        f"[ckpt] {error}; starting fresh", file=sys.stderr
                    )
        return run_vliw(
            resumed,
            checkpoint_every=args.checkpoint_every,
            writer=writer,
            supervisor=supervisor,
        )

    return runner


def _report_shutdown(shutdown: ShutdownRequested, resume_hint: str) -> int:
    print(f"[ckpt] {shutdown}", file=sys.stderr)
    print(f"[ckpt] resume with {resume_hint}", file=sys.stderr)
    return shutdown.exit_code


def cmd_exec(args) -> int:
    program, train, memory = _load_program_and_memory(args.target, args.seed)
    if args.model != "scalar" and not MODELS[args.model].executable:
        print(
            f"model {args.model!r} is evaluated analytically; "
            "use trace_pred or region_pred for machine execution",
            file=sys.stderr,
        )
        return 2
    if args.resume and not args.checkpoint_dir:
        print("--resume needs --checkpoint-dir", file=sys.stderr)
        return 2
    tracer = CycleTraceRecorder(program.name) if args.trace_out else None
    with SignalSupervisor() as supervisor:
        try:
            evaluation = evaluate_model(
                program,
                args.model,
                base_machine(),
                train_memory=train,
                eval_memory=memory,
                tracer=tracer,
                machine_runner=_checkpointed_machine_runner(args, supervisor),
            )
        except ShutdownRequested as shutdown:
            return _report_shutdown(
                shutdown,
                f"repro exec {args.target} --checkpoint-dir "
                f"{args.checkpoint_dir or 'DIR'} --resume",
            )
    machine = evaluation.machine
    assert machine is not None
    print(f"output        : {machine.output}")
    print(f"scalar cycles : {evaluation.scalar.cycles}")
    print(f"VLIW cycles   : {machine.cycles}")
    print(f"speedup       : {evaluation.speedup:.2f}x")
    print(f"speculative   : {machine.speculative_ops}")
    print(f"squashed      : {machine.squashed_ops}")
    print(f"recoveries    : {machine.recoveries}")
    if tracer is not None:
        _write_trace(tracer, args.trace_out)
    return 0


def cmd_profile(args) -> int:
    program, train, memory = _load_program_and_memory(args.target, args.seed)
    model = _PROFILE_MODELS[args.model]
    if args.resume and not args.checkpoint_dir:
        print("--resume needs --checkpoint-dir", file=sys.stderr)
        return 2
    sink = CounterSink()
    tracer = CycleTraceRecorder(program.name) if args.trace_out else None
    with SignalSupervisor() as supervisor:
        try:
            evaluation = evaluate_model(
                program,
                model,
                base_machine(),
                train_memory=train,
                eval_memory=memory,
                sink=sink,
                tracer=tracer,
                machine_runner=_checkpointed_machine_runner(args, supervisor),
            )
        except ShutdownRequested as shutdown:
            return _report_shutdown(
                shutdown,
                f"repro profile {args.target} --checkpoint-dir "
                f"{args.checkpoint_dir or 'DIR'} --resume",
            )
    machine = evaluation.machine
    assert machine is not None
    report = attribute_regions(sink)

    print(f"workload      : {args.target}")
    print(f"model         : {evaluation.model}")
    print(f"scalar cycles : {evaluation.scalar.cycles}")
    print(f"VLIW cycles   : {machine.cycles}")
    print(f"speedup       : {evaluation.speedup:.2f}x")
    print()
    print(report.render(args.top))
    print()
    print("counters:")
    for name in sorted(sink.counters):
        if "/" in name:
            continue  # keyed families are the attribution table above
        print(f"  {name:36s} {sink.counters[name]}")
    print("histograms:")
    for name in sorted(sink.histograms):
        summary = sink.histogram_summary(name)
        print(
            f"  {name:36s} count {summary['count']}"
            f"  min {summary['min']}  mean {summary['mean']:.2f}"
            f"  max {summary['max']}"
        )

    if tracer is not None:
        _write_trace(tracer, args.trace_out)
    if args.json:
        document = {
            "schema": PROFILE_SCHEMA,
            "workload": args.target,
            "model": evaluation.model,
            "seed": args.seed,
            "scalar_cycles": evaluation.scalar.cycles,
            "machine_cycles": machine.cycles,
            "speedup": evaluation.speedup,
            "metrics": sink.to_dict(),
            "attribution": report.to_dict(),
        }
        _write_json(document, args.json, "profile")
    return 0


def _write_json(document: dict, target: str, tag: str) -> None:
    from repro.ckpt.engine import atomic_write_text

    text = json.dumps(document, sort_keys=True, indent=2) + "\n"
    if target == "-":
        sys.stdout.write(text)
    else:
        path = atomic_write_text(target, text)
        print(f"[{tag}] {path}", file=sys.stderr)


def _cmd_verify_security(args) -> int:
    """``repro verify --security``: taint-check instead of equivalence."""
    from repro.taint import SecurityCase, run_security, security_document
    from repro.verify import VERIFY_MODELS, resolve_model
    from repro.workloads import all_workloads

    sink = CounterSink()
    limits: dict = {}
    if args.max_cycles is not None:
        limits = {"max_cycles": args.max_cycles}
    results = []
    reproduced = True
    if args.replay:
        case = SecurityCase.load(args.replay)
        print(
            f"replaying {args.replay} ({case.name}, policy {case.policy})"
        )
        result = case.run(sink=sink, **limits)
        results.append(result)
        if case.expected_kind is not None:
            kinds = {leak.kind for leak in result.leaks}
            reproduced = case.expected_kind in kinds
            status = "reproduced" if reproduced else "did NOT reproduce"
            print(f"pinned {case.expected_kind} leak: {status}")
    else:
        if args.target is None:
            print(
                "verify --security needs a workload/file target, 'all', "
                "or --replay CASE.json",
                file=sys.stderr,
            )
            return 2
        models = (
            list(dict.fromkeys(resolve_model(m) for m in VERIFY_MODELS))
            if args.model == "all"
            else [args.model]
        )
        targets = (
            [w.name for w in all_workloads()]
            if args.target == "all"
            else [args.target]
        )
        if args.max_cycles is not None:
            limits["max_steps"] = args.max_cycles
        for target in targets:
            program, train, memory = _load_program_and_memory(
                target, args.seed
            )
            for model in models:
                results.append(
                    run_security(
                        program,
                        model,
                        base_machine(),
                        policy=args.policy,
                        train_memory=train.clone(),
                        eval_memory=memory.clone(),
                        sink=sink,
                        **limits,
                    )
                )
    for result in results:
        print(result.describe())
    if args.json:
        document = security_document(results, metrics=sink.to_dict())
        _write_json(document, args.json, "security")
    # A replayed leak case is *expected* to leak; success there means
    # the pinned channel reproduced.  Everywhere else, secure-or-fail.
    if args.replay and case.expected_kind is not None:
        return 0 if reproduced else 1
    return 0 if all(result.secure for result in results) else 1


def cmd_verify(args) -> int:
    from repro.verify import (
        VERIFY_MODELS,
        ReproCase,
        resolve_model,
        run_oracle,
    )

    if args.security:
        return _cmd_verify_security(args)
    sink = CounterSink()
    # --max-cycles caps both engines (machine cycles and interpreter
    # steps): a livelocked case yields a structured step-limit error
    # result and exit 1 instead of hanging the verifier.
    limits: dict = {}
    if args.max_cycles is not None:
        limits = {"max_cycles": args.max_cycles, "max_steps": args.max_cycles}
    results = []
    if args.replay:
        case = ReproCase.load(args.replay)
        print(f"replaying {args.replay} ({case.name}, {case.model})")
        results.append(case.run(sink=sink, **limits))
    else:
        if args.target is None:
            print("verify needs a workload/file target or --replay CASE.json",
                  file=sys.stderr)
            return 2
        # "all" covers every executable model once ("predicating" is an
        # alias for region_pred).
        models = (
            list(dict.fromkeys(resolve_model(m) for m in VERIFY_MODELS))
            if args.model == "all"
            else [args.model]
        )
        program, train, memory = _load_program_and_memory(
            args.target, args.seed
        )
        for model in models:
            results.append(
                run_oracle(
                    program,
                    model,
                    base_machine(),
                    train_memory=train.clone(),
                    eval_memory=memory.clone(),
                    sink=sink,
                    **limits,
                )
            )
    for result in results:
        print(result.describe())
    if args.json:
        document = {
            "schema": VERIFY_SCHEMA,
            "results": [result.to_dict() for result in results],
            "metrics": sink.to_dict(),
        }
        _write_json(document, args.json, "verify")
    return 0 if all(result.equivalent for result in results) else 1


def cmd_diff_trace(args) -> int:
    from repro.verify import (
        ReproCase,
        diff_trace_case,
        merged_trace,
        run_diff_trace,
    )
    from repro.verify.tracediff import TRACEDIFF_SCHEMA

    limits: dict = {}
    if args.max_cycles is not None:
        limits = {"max_cycles": args.max_cycles, "max_steps": args.max_cycles}
    tracer = None
    if args.replay:
        case = ReproCase.load(args.replay)
        if args.trace_out:
            tracer = CycleTraceRecorder(case.name, pid=1, process="machine")
        print(f"diff-tracing {args.replay} ({case.name}, {case.model})")
        result = diff_trace_case(
            case,
            window=args.window,
            flight_capacity=args.flight_capacity,
            tracer=tracer,
            **limits,
        )
    else:
        if args.target is None:
            print(
                "diff-trace needs a workload/file target or --replay "
                "CASE.json",
                file=sys.stderr,
            )
            return 2
        program, train, memory = _load_program_and_memory(
            args.target, args.seed
        )
        if args.trace_out:
            tracer = CycleTraceRecorder(
                program.name, pid=1, process="machine"
            )
        result = run_diff_trace(
            program,
            args.model,
            base_machine(),
            train_memory=train.clone(),
            eval_memory=memory.clone(),
            window=args.window,
            flight_capacity=args.flight_capacity,
            tracer=tracer,
            **limits,
        )
    print(result.describe())
    if args.json:
        _write_json(result.to_dict(), args.json, "diff-trace")
    if args.trace_out:
        path = Path(args.trace_out)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps(merged_trace(result, tracer), indent=1) + "\n"
        )
        print(f"[trace] {path}", file=sys.stderr)
    run_log = getattr(args, "run_log", NULL_RUN_LOG)
    if run_log.enabled:
        run_log.event(
            "diff_trace.result",
            program=result.program,
            model=result.model,
            equivalent=result.equivalent,
            schema=TRACEDIFF_SCHEMA,
        )
    return 0 if result.equivalent else 1


def _cmd_fuzz_security(args) -> int:
    """``repro fuzz --mode security``: sweep gadget space for leaks.

    Campaigns are seed-deterministic and fast, so the journal/resume
    machinery does not apply here; exit is 0 iff the detector agreed
    with the generator's ground truth on every gadget.
    """
    from repro.taint import run_security_fuzz

    if args.journal or args.resume:
        print("--journal/--resume apply to divergence fuzzing only",
              file=sys.stderr)
        return 2
    sink = CounterSink()
    meter = ProgressLine("security") if args.progress else None
    done = 0
    detected = 0

    def progress(spec, result) -> None:
        nonlocal done, detected
        done += 1
        if not result.secure:
            detected += 1
        if args.verbose:
            status = "LEAKED" if not result.secure else "clean"
            print(f"  {spec.describe()}: {status}", file=sys.stderr)
        if meter is not None:
            meter.update(done, args.campaigns, f"{detected} leaks")

    try:
        report = run_security_fuzz(
            args.campaigns,
            args.seed,
            policy=args.policy,
            shrink=args.shrink,
            out_dir=args.out,
            sink=sink,
            progress=progress,
        )
    finally:
        if meter is not None:
            meter.finish()
    print(report.summary())
    if args.json:
        document = {**report.to_dict(), "metrics": sink.to_dict()}
        _write_json(document, args.json, "security-fuzz")
    return 0 if report.ok else 1


def cmd_fuzz(args) -> int:
    from repro.verify import run_fuzz

    if args.mode == "security":
        return _cmd_fuzz_security(args)
    if args.resume and not args.journal:
        print("--resume needs --journal", file=sys.stderr)
        return 2
    sink = CounterSink()

    meter = ProgressLine("fuzz") if args.progress else None
    done = 0
    diverged = 0

    def progress(spec, result) -> None:
        nonlocal done, diverged
        done += 1
        if result is not None and not result.equivalent:
            diverged += 1
        if args.verbose:
            status = (
                "replayed"
                if result is None
                else ("ok" if result.equivalent else "DIVERGED")
            )
            print(f"  {spec.label()}: {status}", file=sys.stderr)
        if meter is not None:
            meter.update(done, args.campaigns, f"{diverged} diverged")

    journal = Journal(args.journal) if args.journal else None
    try:
        with SignalSupervisor() as supervisor:
            report = run_fuzz(
                args.campaigns,
                args.seed,
                shrink=args.shrink,
                out_dir=args.out,
                sink=sink,
                progress=progress,
                journal=journal,
                supervisor=supervisor,
                run_log=getattr(args, "run_log", NULL_RUN_LOG),
            )
    except ShutdownRequested as shutdown:
        if journal is not None:
            print(
                f"[ckpt] completed campaigns are ledgered in "
                f"{args.journal}",
                file=sys.stderr,
            )
        return _report_shutdown(
            shutdown,
            f"repro fuzz --campaigns {args.campaigns} --seed {args.seed} "
            f"--journal {args.journal or 'DIR'} --resume",
        )
    finally:
        if meter is not None:
            meter.finish()
        if journal is not None:
            journal.close()
    print(report.summary())
    if args.json:
        document = {
            "schema": FUZZ_SCHEMA,
            **report.to_dict(),
            "metrics": sink.to_dict(),
        }
        _write_json(document, args.json, "fuzz")
    return 0 if not report.findings else 1


def cmd_experiment(args) -> int:
    names = list(EXPERIMENTS) if args.name == "all" else [args.name]
    json_stdout = args.json == "-"
    json_target = (
        Path(args.json) if args.json and not json_stdout else None
    )
    if json_stdout and len(names) > 1:
        print(
            "--json - writes one artifact to stdout; pick a single "
            "experiment (not 'all')",
            file=sys.stderr,
        )
        return 2
    if (
        json_target is not None
        and json_target.suffix == ".json"
        and len(names) > 1
    ):
        print(
            "--json must name a directory (not a .json file) when writing "
            "more than one experiment",
            file=sys.stderr,
        )
        return 2

    cache_dir = None if args.no_cache else Path(args.cache_dir)
    if cache_dir is not None and cache_dir.exists() and not cache_dir.is_dir():
        print(f"--cache-dir {cache_dir} exists and is not a directory",
              file=sys.stderr)
        return 2
    if args.resume and not args.journal:
        print("--resume needs --journal", file=sys.stderr)
        return 2
    journal = Journal(args.journal) if args.journal else None
    meter = ProgressLine("experiment") if args.progress else None
    progress = None
    if meter is not None:
        def progress(done, total, stats):
            meter.update(done, total, f"cache {stats.hit_rate:.0%}")
    try:
        with SignalSupervisor() as supervisor:
            ctx = ExperimentContext(
                jobs=args.jobs, cache_dir=cache_dir,
                use_cache=not args.no_cache,
                cell_timeout=args.cell_timeout, max_retries=args.retries,
                fail_fast=args.fail_fast,
                journal=journal, checkpoint_every=args.checkpoint_every,
                supervisor=supervisor,
                run_log=getattr(args, "run_log", NULL_RUN_LOG),
                progress=progress,
            )
            options = ExperimentOptions()
            for name in names:
                errors_before = len(ctx.runner.stats.errors)
                result = EXPERIMENTS[name](ctx, options)
                # Runner telemetry at artifact-write time (cumulative
                # over the run); nondeterministic wall time, so strictly
                # opt-in.  Failed cells always ride the artifact as
                # structured error entries.
                metrics = (
                    ctx.runner.stats.to_metrics() if args.metrics else None
                )
                errors = ctx.runner.stats.errors[errors_before:]
                if json_stdout:
                    sys.stdout.write(
                        dumps_artifact(
                            make_artifact(name, result, metrics, errors)
                        )
                    )
                else:
                    print(result.render())
                    print()
                    if json_target is not None:
                        path = write_artifact(
                            json_target, name, result, metrics, errors
                        )
                        print(f"[artifact] {path}", file=sys.stderr)
    except ShutdownRequested as shutdown:
        if journal is not None:
            print(
                f"[ckpt] completed cells are ledgered in {args.journal}",
                file=sys.stderr,
            )
        return _report_shutdown(
            shutdown,
            f"repro experiment {args.name} --journal "
            f"{args.journal or 'DIR'} --resume",
        )
    finally:
        if meter is not None:
            meter.finish()
        if journal is not None:
            journal.close()
    if not args.quiet:
        print(ctx.runner.stats.report(), file=sys.stderr)
    return 0 if not ctx.runner.stats.errors else 3


def cmd_ckpt(args) -> int:
    """Checkpoint tooling; currently the ``inspect`` verb."""
    try:
        document = read_json(args.snapshot)
    except CheckpointError as error:
        print(error, file=sys.stderr)
        return 2
    problem = None
    try:
        validate_snapshot(document, path=args.snapshot)
    except CheckpointError as error:
        problem = error.reason
    hash_ok = problem is None
    try:
        if args.summary:
            print(summary_line(document, hash_ok=hash_ok))
        else:
            info = describe_snapshot(document, hash_ok=hash_ok)
            if problem is not None:
                info["problem"] = problem
            print(json.dumps(info, sort_keys=True, indent=2))
    except (AttributeError, TypeError):
        # Too malformed to even summarize; the validation reason says why.
        print(f"{args.snapshot}: {problem}", file=sys.stderr)
        return 1
    if problem is not None:
        print(f"[ckpt] {args.snapshot}: {problem}", file=sys.stderr)
    return 0 if hash_ok else 1


def cmd_bench(args) -> int:
    from repro import bench

    if args.bench_command == "run":
        try:
            benchmarks = bench.all_benchmarks(
                args.suite, filter_substring=args.filter
            )
        except ValueError as error:
            print(error, file=sys.stderr)
            return 2
        if not benchmarks:
            print(
                f"no benchmarks match suite={args.suite!r} "
                f"filter={args.filter!r}",
                file=sys.stderr,
            )
            return 2
        run_log = getattr(args, "run_log", NULL_RUN_LOG)
        measurements = []
        for definition in benchmarks:
            measurement = definition.run(quick=args.quick)
            measurements.append(measurement)
            stats = measurement.ns
            if run_log.enabled:
                run_log.event(
                    "bench.sample",
                    name=measurement.name,
                    median_ns=stats.median,
                    min_ns=stats.min,
                    mean_ns=stats.mean,
                    ci95_ns=stats.ci95,
                    throughput_median=measurement.throughput_median,
                    unit=measurement.unit,
                )
            print(
                f"{measurement.name:<34} "
                f"median {stats.median / 1e6:>9.3f}ms  "
                f"min {stats.min / 1e6:>9.3f}ms  "
                f"mean {stats.mean / 1e6:.3f}±{stats.ci95 / 1e6:.3f}ms  "
                f"{measurement.throughput_median:>12,.0f} "
                f"{measurement.unit}/sec"
                + (f"  [{stats.rejected} outliers]" if stats.rejected else "")
            )
        document = bench.make_artifact(measurements, quick=args.quick)
        if args.json:
            _write_json(document, args.json, "bench")
        return 0

    # bench compare OLD NEW
    try:
        old = bench.load_artifact(args.old)
        new = bench.load_artifact(args.new)
        comparison = bench.compare_artifacts(
            old, new, threshold=args.threshold
        )
    except (bench.BenchArtifactError, ValueError) as error:
        print(error, file=sys.stderr)
        return 2
    print(bench.render_table(comparison))
    if comparison.failed:
        if args.warn_only:
            print(
                f"warning: {len(comparison.regressions)} regression(s) "
                "beyond threshold (--warn-only: not failing)",
                file=sys.stderr,
            )
            return 0
        print(
            f"FAIL: {len(comparison.regressions)} regression(s) beyond "
            f"threshold {comparison.threshold:.0%}",
            file=sys.stderr,
        )
        return 1
    return 0


def cmd_serve(args) -> int:
    from repro.serve import (
        JobJournal,
        ServeSettings,
        SimulationService,
        serve_http,
        serve_stdio,
    )

    try:
        settings = ServeSettings(
            workers=args.jobs,
            queue_limit=args.queue_limit,
            client_quota=args.client_quota,
            job_timeout=args.job_timeout,
            max_retries=args.retries,
            retry_backoff=args.retry_backoff,
        )
    except ValueError as error:
        print(error, file=sys.stderr)
        return 2
    sink = CounterSink()
    run_log = getattr(args, "run_log", NULL_RUN_LOG)
    journal = JobJournal(args.journal) if args.journal else None
    service = SimulationService(
        settings, journal=journal, sink=sink, run_log=run_log
    )
    try:
        if journal is not None:
            replayed = service.recover()
            durable = service.counters()["serve.durable_results"]
            print(
                f"[serve] journal {args.journal}: {durable} durable "
                f"result(s), {replayed} incomplete job(s) re-executed",
                file=sys.stderr,
            )
        with SignalSupervisor() as supervisor:
            try:
                if args.stdio:
                    print(
                        "[serve] reading JSON-lines requests from stdin",
                        file=sys.stderr,
                    )
                    serve_stdio(service, supervisor=supervisor)
                else:

                    def ready(host: str, port: int) -> None:
                        print(
                            f"[serve] listening on http://{host}:{port}"
                            "/v1/jobs",
                            file=sys.stderr,
                        )

                    serve_http(
                        service,
                        host=args.host,
                        port=args.http,
                        supervisor=supervisor,
                        ready=ready,
                    )
            except ShutdownRequested as shutdown:
                counters = service.counters()
                print(
                    f"[serve] {shutdown}; drained in-flight jobs "
                    f"({counters['serve.completed']} completed, "
                    f"{counters['serve.errors']} errors)",
                    file=sys.stderr,
                )
                if journal is not None:
                    print(
                        f"[serve] results are durable in {args.journal}; "
                        "restart with the same --journal to replay",
                        file=sys.stderr,
                    )
                return shutdown.exit_code
    finally:
        service.close()
    print(json.dumps(service.counters(), sort_keys=True), file=sys.stderr)
    return 0


def _add_checkpoint_options(parser: argparse.ArgumentParser) -> None:
    """The machine-run checkpoint knobs shared by ``exec``/``profile``."""
    parser.add_argument(
        "--checkpoint-dir",
        metavar="DIR",
        help=(
            "write rotating machine snapshots here (and a final one on "
            "SIGINT/SIGTERM)"
        ),
    )
    parser.add_argument(
        "--checkpoint-every",
        type=int,
        default=10_000,
        metavar="CYCLES",
        help="cycles between periodic snapshots (default: 10000)",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help=(
            "continue from the newest valid snapshot in --checkpoint-dir "
            "(bit-identical to the uninterrupted run)"
        ),
    )


def _add_journal_options(
    parser: argparse.ArgumentParser, unit: str
) -> None:
    """The sweep-resume knobs shared by ``experiment``/``fuzz``."""
    parser.add_argument(
        "--journal",
        metavar="DIR",
        help=(
            f"durably ledger every completed {unit} here; a re-run with "
            "the same journal replays finished work instead of "
            "recomputing it"
        ),
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help=(
            "resume an interrupted journalled run (requires --journal; "
            "artifacts come out byte-identical to an uninterrupted run)"
        ),
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Unconstrained Speculative Execution with "
            "Predicated State Buffering' (ISCA 1995)."
        ),
    )
    parser.add_argument(
        "--log-json",
        metavar="PATH",
        help=(
            "append structured JSONL run-log records (run/cell/campaign/"
            "sample events) to PATH; off by default"
        ),
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("workloads", help="list benchmark kernels")

    run_parser = commands.add_parser("run", help="scalar-execute a program")
    run_parser.add_argument("target", help="workload name or assembly file")
    run_parser.add_argument("--seed", type=int, default=2)

    compile_parser = commands.add_parser(
        "compile", help="compile and show schedule statistics"
    )
    compile_parser.add_argument("target")
    compile_parser.add_argument(
        "--model", default="region_pred", choices=sorted(MODELS)
    )
    compile_parser.add_argument("--seed", type=int, default=2)
    compile_parser.add_argument(
        "--dump", action="store_true", help="print the scheduled bundles"
    )

    exec_parser = commands.add_parser(
        "exec", help="execute predicated code on the VLIW machine"
    )
    exec_parser.add_argument("target")
    exec_parser.add_argument(
        "--model", default="region_pred", choices=["trace_pred", "region_pred"]
    )
    exec_parser.add_argument("--seed", type=int, default=2)
    exec_parser.add_argument(
        "--trace-out",
        metavar="TRACE",
        help="write a Perfetto/Chrome trace_event JSON of the machine run",
    )
    _add_checkpoint_options(exec_parser)

    profile_parser = commands.add_parser(
        "profile",
        help="instrumented machine run: counters + per-region attribution",
    )
    profile_parser.add_argument("target", help="workload name or assembly file")
    profile_parser.add_argument(
        "--model",
        default="region_pred",
        choices=sorted(_PROFILE_MODELS),
        help="executable model ('predicating' = the paper's region_pred)",
    )
    profile_parser.add_argument("--seed", type=int, default=2)
    profile_parser.add_argument(
        "--top",
        type=int,
        default=10,
        metavar="K",
        help="regions shown in the attribution table (default: 10)",
    )
    profile_parser.add_argument(
        "--json",
        metavar="OUT",
        help=f"write the {PROFILE_SCHEMA} document ('-' for stdout)",
    )
    profile_parser.add_argument(
        "--trace-out",
        metavar="TRACE",
        help="write a Perfetto/Chrome trace_event JSON of the machine run",
    )
    _add_checkpoint_options(profile_parser)

    experiment_parser = commands.add_parser(
        "experiment", help="regenerate a paper table/figure"
    )
    experiment_parser.add_argument(
        "name", choices=sorted(EXPERIMENTS) + ["all"]
    )
    experiment_parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for cell evaluation (default: 1, serial)",
    )
    experiment_parser.add_argument(
        "--cache-dir",
        default=DEFAULT_CACHE_DIR,
        metavar="PATH",
        help=(
            "directory for the content-keyed result cache "
            f"(default: {DEFAULT_CACHE_DIR})"
        ),
    )
    experiment_parser.add_argument(
        "--no-cache",
        action="store_true",
        help="recompute every cell; neither read nor write the cache",
    )
    experiment_parser.add_argument(
        "--json",
        metavar="OUT",
        help=(
            "write JSON artifacts: a directory gets <experiment>.json per "
            "experiment; a *.json path is used verbatim (single "
            "experiment); '-' streams one artifact to stdout"
        ),
    )
    experiment_parser.add_argument(
        "--metrics",
        action="store_true",
        help=(
            "embed runner telemetry in artifacts (schema becomes "
            "repro-experiment/v2; wall time makes it nondeterministic)"
        ),
    )
    experiment_parser.add_argument(
        "--quiet",
        action="store_true",
        help="suppress the runner telemetry summary on stderr",
    )
    experiment_parser.add_argument(
        "--cell-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "per-cell wall-clock budget; a cell that exceeds it is "
            "retried in isolation and then recorded as an error entry "
            "(default: no timeout)"
        ),
    )
    experiment_parser.add_argument(
        "--retries",
        type=int,
        default=2,
        metavar="N",
        help=(
            "isolated retries (with exponential backoff) for a cell "
            "whose worker crashed or hung (default: 2)"
        ),
    )
    experiment_parser.add_argument(
        "--fail-fast",
        action="store_true",
        help=(
            "raise on the first failed cell instead of recording a "
            "structured error entry and finishing the sweep"
        ),
    )
    experiment_parser.add_argument(
        "--progress",
        action="store_true",
        help="stderr-only live progress line (cells done/total, ETA)",
    )
    _add_journal_options(experiment_parser, "cell")
    experiment_parser.add_argument(
        "--checkpoint-every",
        type=int,
        default=None,
        metavar="CYCLES",
        help=(
            "in-flight machine snapshot period for journalled measured "
            "cells (default: 5000)"
        ),
    )

    verify_parser = commands.add_parser(
        "verify",
        help="differential check: machine run vs scalar golden model",
    )
    verify_parser.add_argument(
        "target",
        nargs="?",
        help="workload name or assembly file (omit with --replay)",
    )
    verify_parser.add_argument(
        "--model",
        default="all",
        choices=["all", "predicating", "region_pred", "trace_pred"],
        help="executable model(s) to check (default: all)",
    )
    verify_parser.add_argument("--seed", type=int, default=2)
    verify_parser.add_argument(
        "--replay",
        metavar="CASE",
        help="re-run a serialized repro case (JSON) instead of a workload",
    )
    verify_parser.add_argument(
        "--json",
        metavar="OUT",
        help=f"write the {VERIFY_SCHEMA} document ('-' for stdout)",
    )
    verify_parser.add_argument(
        "--max-cycles",
        type=int,
        default=None,
        metavar="N",
        help=(
            "abort either engine after N cycles/steps with a structured "
            "step-limit error result (exit 1) instead of hanging on a "
            "livelocked case"
        ),
    )
    verify_parser.add_argument(
        "--security",
        action="store_true",
        help=(
            "taint-check instead of equivalence-check: twin taint-on/"
            "taint-off runs, exit 1 on any speculative information leak "
            "(target may be 'all' for every workload; --replay takes a "
            "repro-security-case/v1 JSON)"
        ),
    )
    verify_parser.add_argument(
        "--policy",
        default="committed",
        choices=["committed", "strict"],
        help=(
            "taint leak policy for --security: 'committed' flags "
            "unconfirmed speculative data reaching architectural state; "
            "'strict' additionally flags tainted predicate writes "
            "(default: committed)"
        ),
    )

    diff_trace_parser = commands.add_parser(
        "diff-trace",
        help=(
            "lockstep divergence forensics: pinpoint the first divergent "
            "architectural effect between machine and scalar model"
        ),
    )
    diff_trace_parser.add_argument(
        "target",
        nargs="?",
        help="workload name or assembly file (omit with --replay)",
    )
    diff_trace_parser.add_argument(
        "--model",
        default="predicating",
        choices=["predicating", "region_pred", "trace_pred"],
        help="executable model to trace (default: predicating)",
    )
    diff_trace_parser.add_argument("--seed", type=int, default=2)
    diff_trace_parser.add_argument(
        "--replay",
        metavar="CASE",
        help="diff-trace a serialized repro case (JSON) instead",
    )
    diff_trace_parser.add_argument(
        "--window",
        type=int,
        default=8,
        metavar="K",
        help="effects of context shown around the divergence (default: 8)",
    )
    diff_trace_parser.add_argument(
        "--flight-capacity",
        type=int,
        default=4096,
        metavar="N",
        help="flight-recorder ring capacity per side (default: 4096)",
    )
    diff_trace_parser.add_argument(
        "--json",
        metavar="OUT",
        help="write the repro-tracediff/v1 document ('-' for stdout)",
    )
    diff_trace_parser.add_argument(
        "--trace-out",
        metavar="TRACE",
        help=(
            "write a merged Perfetto/Chrome trace_event JSON (machine "
            "pid 1, scalar pid 2)"
        ),
    )
    diff_trace_parser.add_argument(
        "--max-cycles",
        type=int,
        default=None,
        metavar="N",
        help=(
            "abort either engine after N cycles/steps with a structured "
            "step-limit error result (exit 1) instead of hanging on a "
            "livelocked case"
        ),
    )

    fuzz_parser = commands.add_parser(
        "fuzz",
        help="seed-deterministic differential fuzzing campaigns",
    )
    fuzz_parser.add_argument(
        "--campaigns", type=int, default=20, metavar="N",
        help="number of campaigns to run (default: 20)",
    )
    fuzz_parser.add_argument(
        "--mode",
        default="divergence",
        choices=["divergence", "security"],
        help=(
            "'divergence' fuzzes machine-vs-scalar equivalence; "
            "'security' sweeps seeded leak gadgets and cross-checks the "
            "taint detector against ground truth (default: divergence)"
        ),
    )
    fuzz_parser.add_argument(
        "--policy",
        default="committed",
        choices=["committed", "strict"],
        help="taint leak policy for --mode security (default: committed)",
    )
    fuzz_parser.add_argument(
        "--seed", type=int, default=0,
        help="campaign derivation seed (default: 0)",
    )
    fuzz_parser.add_argument(
        "--shrink",
        action="store_true",
        help="delta-debug each finding to a minimal repro before saving",
    )
    fuzz_parser.add_argument(
        "--out",
        metavar="DIR",
        help="save each finding as a replayable case-<seed>-<n>.json here",
    )
    fuzz_parser.add_argument(
        "--json",
        metavar="OUT",
        help=f"write the {FUZZ_SCHEMA} document ('-' for stdout)",
    )
    fuzz_parser.add_argument(
        "--verbose",
        action="store_true",
        help="print one line per campaign on stderr",
    )
    fuzz_parser.add_argument(
        "--progress",
        action="store_true",
        help="stderr-only live progress line (campaigns done/total, ETA)",
    )
    _add_journal_options(fuzz_parser, "campaign")

    ckpt_parser = commands.add_parser(
        "ckpt", help="checkpoint tooling (inspect snapshots)"
    )
    ckpt_commands = ckpt_parser.add_subparsers(
        dest="ckpt_command", required=True
    )
    inspect_parser = ckpt_commands.add_parser(
        "inspect",
        help="describe a snapshot: engine, position, occupancy, hash",
    )
    inspect_parser.add_argument("snapshot", help="path to a SNAP.json file")
    inspect_parser.add_argument(
        "--summary",
        action="store_true",
        help="one grep-able line instead of the JSON description",
    )

    serve_parser = commands.add_parser(
        "serve",
        help=(
            "fault-tolerant batched simulation service (JSON-lines "
            "protocol over HTTP or stdin/stdout)"
        ),
    )
    frontend = serve_parser.add_mutually_exclusive_group(required=True)
    frontend.add_argument(
        "--http",
        type=int,
        metavar="PORT",
        help="serve the JSON-lines protocol over HTTP on PORT (0 = ephemeral)",
    )
    frontend.add_argument(
        "--stdio",
        action="store_true",
        help="read request lines from stdin, write response lines to stdout",
    )
    serve_parser.add_argument(
        "--host",
        default="127.0.0.1",
        help="bind address for --http (default: 127.0.0.1)",
    )
    serve_parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for job execution (default: 1)",
    )
    serve_parser.add_argument(
        "--queue-limit",
        type=int,
        default=64,
        metavar="N",
        help=(
            "bounded admission queue: jobs beyond N pending get an "
            "explicit 'overloaded' response (default: 64)"
        ),
    )
    serve_parser.add_argument(
        "--client-quota",
        type=int,
        default=16,
        metavar="N",
        help=(
            "at most N pending jobs per client; beyond that the client "
            "gets 'rejected: quota' (default: 16)"
        ),
    )
    serve_parser.add_argument(
        "--job-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "per-job wall-clock budget; a hung job is isolated, retried "
            "and then reported as a structured error (default: none)"
        ),
    )
    serve_parser.add_argument(
        "--retries",
        type=int,
        default=2,
        metavar="N",
        help=(
            "isolated retries (exponential backoff with deterministic "
            "jitter) for a job whose worker crashed or hung (default: 2)"
        ),
    )
    serve_parser.add_argument(
        "--retry-backoff",
        type=float,
        default=0.1,
        metavar="SECONDS",
        help="base delay of the retry backoff schedule (default: 0.1)",
    )
    serve_parser.add_argument(
        "--journal",
        metavar="DIR",
        help=(
            "durable write-ahead job journal: accepted jobs land here "
            "before execution, results after; a restarted server "
            "replays exactly the incomplete jobs and serves durable "
            "results without re-executing"
        ),
    )

    bench_parser = commands.add_parser(
        "bench", help="performance benchmarks and regression gating"
    )
    bench_commands = bench_parser.add_subparsers(
        dest="bench_command", required=True
    )
    bench_run = bench_commands.add_parser(
        "run", help="time the registered benchmarks"
    )
    bench_run.add_argument(
        "--suite",
        default="all",
        choices=["micro", "macro", "all"],
        help="which benchmark suite to run (default: all)",
    )
    bench_run.add_argument(
        "--quick",
        action="store_true",
        help=(
            "reduced, deterministic iteration counts for smoke runs "
            "(artifacts are marked quick and compare loudly against "
            "full-length ones)"
        ),
    )
    bench_run.add_argument(
        "--filter",
        metavar="SUBSTR",
        help="only run benchmarks whose name contains SUBSTR",
    )
    bench_run.add_argument(
        "--json",
        metavar="OUT",
        help="write the repro-bench/v1 artifact ('-' for stdout)",
    )
    bench_compare = bench_commands.add_parser(
        "compare",
        help="gate NEW against OLD; exit 1 on regressions beyond threshold",
    )
    bench_compare.add_argument("old", help="baseline repro-bench/v1 artifact")
    bench_compare.add_argument("new", help="candidate repro-bench/v1 artifact")
    bench_compare.add_argument(
        "--threshold",
        type=float,
        default=0.10,
        metavar="FRACTION",
        help="median-shift noise tolerance (default: 0.10 = 10%%)",
    )
    bench_compare.add_argument(
        "--warn-only",
        action="store_true",
        help="report regressions but exit 0 (CI smoke on noisy runners)",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "workloads": cmd_workloads,
        "run": cmd_run,
        "compile": cmd_compile,
        "exec": cmd_exec,
        "profile": cmd_profile,
        "experiment": cmd_experiment,
        "verify": cmd_verify,
        "diff-trace": cmd_diff_trace,
        "fuzz": cmd_fuzz,
        "ckpt": cmd_ckpt,
        "serve": cmd_serve,
        "bench": cmd_bench,
    }
    run_log = JsonlRunLog(args.log_json) if args.log_json else NULL_RUN_LOG
    args.run_log = run_log
    if run_log.enabled:
        run_log.event("run.command", command=args.command)
    status = None
    try:
        status = handlers[args.command](args)
    finally:
        if run_log.enabled:
            run_log.event("run.exit", command=args.command, status=status)
        run_log.close()
    return status


if __name__ == "__main__":
    sys.exit(main())
