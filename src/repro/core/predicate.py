"""Predicate vectors and their tri-state evaluation.

The paper restricts predicates to an ANDed conjunction of (possibly negated)
branch conditions so that hardware evaluation reduces to a masked match
between two vectors (Section 3.2):

    "We encode the predicate in a vector where each entry is associated with
    a branch condition. [...] a predicate c1&!c2&c3 is encoded to {1,0,1};
    a predicate c1&c3 is encoded to {1,X,1}."

Evaluation against the CCR is tri-state:

* if any *unmasked* (constrained) condition is still unspecified, the
  predicate evaluates to :data:`PredValue.UNSPEC` regardless of the partial
  match result (this is exactly the hardware behaviour the paper describes);
* otherwise the predicate is TRUE when every constrained entry matches the
  CCR and FALSE when any mismatches.

:data:`ALWAYS` is the empty conjunction -- the paper's ``alw`` predicate --
which evaluates to TRUE unconditionally.
"""

from __future__ import annotations

import enum
from collections.abc import Iterable, Mapping


class PredValue(enum.Enum):
    """Tri-state result of evaluating a predicate against the CCR."""

    TRUE = "true"
    FALSE = "false"
    UNSPEC = "unspec"


class Predicate:
    """An ANDed conjunction of (possibly negated) branch conditions.

    A predicate maps CCR entry indices to required boolean values; entries
    absent from the mapping are don't-cares (the ``X`` of the paper's vector
    encoding).  Instances are immutable and hashable.
    """

    __slots__ = ("_terms", "_hash")

    def __init__(self, terms: Mapping[int, bool] | Iterable[tuple[int, bool]] = ()):
        items = dict(terms)
        for index in items:
            if index < 0:
                raise ValueError(f"CCR index must be non-negative: {index}")
        self._terms: tuple[tuple[int, bool], ...] = tuple(sorted(items.items()))
        self._hash = hash(self._terms)

    @property
    def terms(self) -> tuple[tuple[int, bool], ...]:
        """The (ccr_index, required_value) pairs, sorted by index."""
        return self._terms

    @property
    def is_always(self) -> bool:
        """True for the empty conjunction (the paper's ``alw``)."""
        return not self._terms

    @property
    def conditions(self) -> frozenset[int]:
        """The set of CCR indices this predicate constrains."""
        return frozenset(index for index, _ in self._terms)

    @property
    def depth(self) -> int:
        """Number of branch conditions the predicate depends on."""
        return len(self._terms)

    def required(self, index: int) -> bool | None:
        """Required value for CCR entry *index*, or ``None`` if don't-care."""
        for i, value in self._terms:
            if i == index:
                return value
        return None

    def conjoin(self, index: int, value: bool) -> Predicate:
        """Return this predicate ANDed with one more condition term.

        Raises :class:`ValueError` when the new term contradicts an existing
        one (the conjunction would be unsatisfiable, which the region former
        never produces).
        """
        existing = self.required(index)
        if existing is not None and existing != value:
            raise ValueError(f"contradictory term c{index}={value} in {self}")
        items = dict(self._terms)
        items[index] = value
        return Predicate(items)

    def evaluate(self, ccr_values: Mapping[int, bool | None]) -> PredValue:
        """Masked-match evaluation against CCR contents.

        *ccr_values* maps CCR indices to True/False/None (None means the
        condition is not yet specified).  Mirrors the paper's hardware: any
        unspecified constrained entry forces UNSPEC.
        """
        terms = self._terms
        if not terms:  # alw: no constrained entries, unconditionally TRUE
            return PredValue.TRUE
        matched = True
        for index, required in terms:
            actual = ccr_values.get(index)
            if actual is None:
                return PredValue.UNSPEC
            if actual != required:
                matched = False
        return PredValue.TRUE if matched else PredValue.FALSE

    def implies(self, other: Predicate) -> bool:
        """True when this predicate's truth guarantees *other*'s truth.

        For pure conjunctions, p implies q iff q's terms are a subset of
        p's.  Used by the machine's store-buffer forwarding and by the
        scheduler's dependence analysis.
        """
        mine = dict(self._terms)
        return all(mine.get(index) == value for index, value in other._terms)

    def disjoint_with(self, other: Predicate) -> bool:
        """True when this predicate and *other* can never both be true."""
        mine = dict(self._terms)
        return any(
            index in mine and mine[index] != value for index, value in other._terms
        )

    def encode(self, num_conditions: int) -> tuple[str, ...]:
        """Vector encoding over *num_conditions* CCR entries ('1'/'0'/'X')."""
        items = dict(self._terms)
        for index in items:
            if index >= num_conditions:
                raise ValueError(
                    f"predicate uses c{index} but CCR has {num_conditions} entries"
                )
        return tuple(
            "X" if i not in items else ("1" if items[i] else "0")
            for i in range(num_conditions)
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Predicate):
            return NotImplemented
        return self._terms == other._terms

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"Predicate({self!s})"

    def __str__(self) -> str:
        if not self._terms:
            return "alw"
        return "&".join(
            (f"c{index}" if value else f"!c{index}") for index, value in self._terms
        )


ALWAYS = Predicate()


def parse_predicate(text: str) -> Predicate:
    """Parse the paper's textual predicate syntax (``alw``, ``c0&!c1``)."""
    text = text.strip()
    if text in ("alw", ""):
        return ALWAYS
    terms: dict[int, bool] = {}
    for part in text.split("&"):
        part = part.strip()
        value = True
        if part.startswith("!"):
            value = False
            part = part[1:].strip()
        if not part.startswith("c") or not part[1:].isdigit():
            raise ValueError(f"malformed predicate term: {part!r}")
        index = int(part[1:])
        if index in terms and terms[index] != value:
            raise ValueError(f"contradictory predicate: {text!r}")
        terms[index] = value
    return Predicate(terms)
