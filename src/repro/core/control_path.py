"""The control path (Figure 1).

The control path evaluates the predicate of every instruction issued in the
datapath against the CCR.  The verdict steers the write of the result:

* TRUE    -> non-speculative execution; the result goes to the sequential
  state (or the instruction simply executes, for control transfers);
* FALSE   -> the instruction is squashed at issue;
* UNSPEC  -> speculative execution; the result is buffered in the
  speculative state together with the predicate.

Control transfers must never be speculative -- a jump with an unspecified
predicate at issue is a schedule bug, which :meth:`ControlPath.evaluate`
enforces on the machine's behalf.
"""

from __future__ import annotations

from repro.core.ccr import CCR
from repro.core.exceptions import ScheduleViolation
from repro.core.predicate import Predicate, PredValue
from repro.isa.instruction import Instruction


class ControlPath:
    """Per-issue-slot predicate evaluation against the CCR."""

    def __init__(self, ccr: CCR):
        self.ccr = ccr

    def evaluate(self, instruction: Instruction) -> PredValue:
        """Evaluate *instruction*'s predicate for this cycle's issue."""
        verdict = self.ccr.evaluate(instruction.pred)
        if verdict is PredValue.UNSPEC and not instruction.is_speculable:
            raise ScheduleViolation(
                f"control transfer issued with unspecified predicate: {instruction}"
            )
        return verdict

    def evaluate_pred(self, pred: Predicate) -> PredValue:
        """Evaluate a bare predicate (writeback-time re-evaluation)."""
        return self.ccr.evaluate(pred)
