"""The condition code register (CCR).

The CCR holds the branch conditions a region's predicates refer to.  Each
entry is tri-state: True, False, or *unspecified* (``None``).  All entries
are reset to unspecified by hardware on every exit from a region, because
the speculative state is closed in the region (Section 3.3):

    "Since the speculative state is closed in a region, all branch
    conditions are reset to an unspecified value by the hardware on an
    exit from the current region."

The *future CCR* used during exception recovery (Section 3.5) is simply a
second instance of this class.
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.core.predicate import Predicate, PredValue


class CCR:
    """A K-entry condition code register with unspecified values.

    The register is read far more often than it is written: the commit
    hardware re-evaluates every buffered predicate each cycle, while
    conditions change only at condition-set instructions and region
    exits.  The class therefore memoizes both the :meth:`values` mapping
    and per-predicate :meth:`evaluate` verdicts, invalidating on any
    mutation that actually changes an entry (no-op writes keep the memo
    warm).  Callers must treat the :meth:`values` mapping as read-only
    -- it is shared between calls.
    """

    __slots__ = ("_values", "num_entries", "_values_view", "_memo")

    def __init__(self, num_entries: int):
        if num_entries < 1:
            raise ValueError("CCR needs at least one entry")
        self.num_entries = num_entries
        self._values: list[bool | None] = [None] * num_entries
        self._values_view: dict[int, bool | None] | None = None
        self._memo: dict[Predicate, PredValue] = {}

    def _invalidate(self) -> None:
        self._values_view = None
        if self._memo:
            self._memo.clear()

    def set(self, index: int, value: bool) -> None:
        """Specify condition *index* (a condition-set instruction's write)."""
        self._check(index)
        value = bool(value)
        if self._values[index] is not value:
            self._values[index] = value
            self._invalidate()

    def get(self, index: int) -> bool | None:
        """Current value of condition *index* (None = unspecified)."""
        self._check(index)
        return self._values[index]

    def is_specified(self, index: int) -> bool:
        self._check(index)
        return self._values[index] is not None

    def reset(self) -> None:
        """Reset every entry to unspecified (hardware region-exit action)."""
        if any(entry is not None for entry in self._values):
            self._values = [None] * self.num_entries
            self._invalidate()

    def values(self) -> Mapping[int, bool | None]:
        """A read-only mapping view for predicate evaluation.

        The same dict is returned until the register next changes;
        callers must not mutate it.
        """
        view = self._values_view
        if view is None:
            view = self._values_view = dict(enumerate(self._values))
        return view

    def evaluate(self, pred: Predicate) -> PredValue:
        """Memoized tri-state evaluation of *pred* against this register.

        Semantically identical to ``pred.evaluate(self.values())``; the
        verdict is cached per predicate until the register changes,
        because the commit hardware re-asks the same question for every
        buffered write, store and issued operation each cycle.
        """
        terms = pred._terms
        if not terms:
            return PredValue.TRUE
        memo = self._memo
        verdict = memo.get(pred)
        if verdict is None:
            values = self._values
            limit = self.num_entries
            matched = True
            for index, required in terms:
                actual = values[index] if index < limit else None
                if actual is None:
                    verdict = PredValue.UNSPEC
                    break
                if actual is not required:
                    matched = False
            else:
                verdict = PredValue.TRUE if matched else PredValue.FALSE
            memo[pred] = verdict
        return verdict

    def copy_from(self, other: CCR) -> None:
        """Copy *other*'s contents (recovery-mode exit: future CCR -> CCR)."""
        if other.num_entries != self.num_entries:
            raise ValueError("CCR size mismatch")
        if self._values != other._values:
            self._values = list(other._values)
            self._invalidate()

    def clone(self) -> CCR:
        other = CCR(self.num_entries)
        other._values = list(self._values)
        return other

    # ------------------------------------------------------------------
    # Checkpoint state extraction (JSON-native).
    # ------------------------------------------------------------------
    def state_list(self) -> list[bool | None]:
        """The entry values as a JSON-ready list (True/False/None)."""
        return list(self._values)

    def load_state(self, values: list[bool | None]) -> None:
        """Restore entry values captured by :meth:`state_list`."""
        if len(values) != self.num_entries:
            raise ValueError("CCR size mismatch")
        self._values = [None if v is None else bool(v) for v in values]
        self._invalidate()

    def _check(self, index: int) -> None:
        if not 0 <= index < self.num_entries:
            raise IndexError(f"CCR index out of range: {index}")

    def __repr__(self) -> str:
        body = ",".join(
            "U" if v is None else ("T" if v else "F") for v in self._values
        )
        return f"CCR[{body}]"
