"""The condition code register (CCR).

The CCR holds the branch conditions a region's predicates refer to.  Each
entry is tri-state: True, False, or *unspecified* (``None``).  All entries
are reset to unspecified by hardware on every exit from a region, because
the speculative state is closed in the region (Section 3.3):

    "Since the speculative state is closed in a region, all branch
    conditions are reset to an unspecified value by the hardware on an
    exit from the current region."

The *future CCR* used during exception recovery (Section 3.5) is simply a
second instance of this class.
"""

from __future__ import annotations

from collections.abc import Mapping


class CCR:
    """A K-entry condition code register with unspecified values."""

    __slots__ = ("_values", "num_entries")

    def __init__(self, num_entries: int):
        if num_entries < 1:
            raise ValueError("CCR needs at least one entry")
        self.num_entries = num_entries
        self._values: list[bool | None] = [None] * num_entries

    def set(self, index: int, value: bool) -> None:
        """Specify condition *index* (a condition-set instruction's write)."""
        self._check(index)
        self._values[index] = bool(value)

    def get(self, index: int) -> bool | None:
        """Current value of condition *index* (None = unspecified)."""
        self._check(index)
        return self._values[index]

    def is_specified(self, index: int) -> bool:
        self._check(index)
        return self._values[index] is not None

    def reset(self) -> None:
        """Reset every entry to unspecified (hardware region-exit action)."""
        self._values = [None] * self.num_entries

    def values(self) -> Mapping[int, bool | None]:
        """A read-only mapping view for predicate evaluation."""
        return {i: v for i, v in enumerate(self._values)}

    def copy_from(self, other: CCR) -> None:
        """Copy *other*'s contents (recovery-mode exit: future CCR -> CCR)."""
        if other.num_entries != self.num_entries:
            raise ValueError("CCR size mismatch")
        self._values = list(other._values)

    def clone(self) -> CCR:
        other = CCR(self.num_entries)
        other._values = list(self._values)
        return other

    # ------------------------------------------------------------------
    # Checkpoint state extraction (JSON-native).
    # ------------------------------------------------------------------
    def state_list(self) -> list[bool | None]:
        """The entry values as a JSON-ready list (True/False/None)."""
        return list(self._values)

    def load_state(self, values: list[bool | None]) -> None:
        """Restore entry values captured by :meth:`state_list`."""
        if len(values) != self.num_entries:
            raise ValueError("CCR size mismatch")
        self._values = [None if v is None else bool(v) for v in values]

    def _check(self, index: int) -> None:
        if not 0 <= index < self.num_entries:
            raise IndexError(f"CCR index out of range: {index}")

    def __repr__(self) -> str:
        body = ",".join(
            "U" if v is None else ("T" if v else "F") for v in self._values
        )
        return f"CCR[{body}]"
