"""The paper's primary contribution: predicated state buffering.

Modules:

* :mod:`repro.core.predicate` -- ANDed predicate vectors with negation and
  don't-cares, and their tri-state masked-match evaluation (Section 3.2).
* :mod:`repro.core.ccr` -- the condition code register with unspecified
  values and region-exit reset (Section 3.3).
* :mod:`repro.core.regfile` -- the predicated register file: sequential +
  shadow storage per entry, W/V/E flags, per-cycle commit/squash
  (Figure 2).
* :mod:`repro.core.store_buffer` -- the predicated FIFO store buffer with
  speculative entries and in-order D-cache retirement (Section 3.2).
* :mod:`repro.core.control_path` -- per-issue-slot predicate evaluation
  (Figure 1's control path).
* :mod:`repro.core.exceptions` -- speculative-exception records, the future
  CCR, and recovery-mode bookkeeping (Section 3.5).
* :mod:`repro.core.counter_predicate` -- the counter-type predicate
  alternative the paper argues against in Section 4.2.1.
"""

from repro.core.ccr import CCR
from repro.core.predicate import ALWAYS, PredValue, Predicate
from repro.core.regfile import PredicatedRegisterFile, RegisterFileEntry
from repro.core.store_buffer import PredicatedStoreBuffer, StoreBufferEntry

__all__ = [
    "ALWAYS",
    "CCR",
    "PredValue",
    "Predicate",
    "PredicatedRegisterFile",
    "PredicatedStoreBuffer",
    "RegisterFileEntry",
    "StoreBufferEntry",
]
