"""Speculative-exception records and recovery bookkeeping (Section 3.5).

A speculative instruction that faults does not trap; it writes a *corrupted*
result into the speculative state and sets the E flag, carrying a
:class:`FaultRecord` describing the original fault.  When the predicate of a
buffered exception later commits, the machine:

1. invalidates all speculative state (precise-interrupt point),
2. suppresses the CCR update, writing the new conditions to the *future
   CCR* instead,
3. rolls PC back to the region top saved in the *region program counter*
   (RPC) and re-executes in *recovery mode*, squashing instructions whose
   predicate is decided by the CCR (the *current condition*) and deciding
   re-raised faults against the future CCR (the *future condition*).

:class:`MachineMode` and :class:`RecoveryContext` carry that state for the
cycle-level machine.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.core.ccr import CCR


class FaultKind(enum.Enum):
    """Architectural fault classes our ISA can raise."""

    MEMORY = "memory"  # load/store to an unmapped or negative address
    ARITHMETIC = "arithmetic"  # division / remainder by zero


@dataclass(frozen=True, slots=True)
class FaultRecord:
    """Description of one fault, buffered with the speculative result.

    ``address`` is the faulting effective address for memory faults (the
    'excepting address' the sentinel architecture stores) and ``instruction_uid``
    identifies the excepting instruction for diagnostics.
    """

    kind: FaultKind
    instruction_uid: int
    address: int | None = None
    detail: str = ""

    def to_state(self) -> dict:
        """JSON-native form for checkpoint snapshots."""
        return {
            "kind": self.kind.value,
            "instruction_uid": self.instruction_uid,
            "address": self.address,
            "detail": self.detail,
        }

    @classmethod
    def from_state(cls, state: dict) -> "FaultRecord":
        return cls(
            kind=FaultKind(state["kind"]),
            instruction_uid=state["instruction_uid"],
            address=state["address"],
            detail=state.get("detail", ""),
        )


class SpeculativeExceptionCommit(Exception):
    """Internal signal: a buffered speculative exception's predicate
    committed; the machine must enter recovery mode."""

    def __init__(self, fault: FaultRecord):
        super().__init__(f"speculative exception committed: {fault}")
        self.fault = fault


class UnhandledFault(Exception):
    """A committed (non-speculative) fault with no handler installed."""

    def __init__(self, fault: FaultRecord):
        super().__init__(f"unhandled fault: {fault}")
        self.fault = fault


class ScheduleViolation(Exception):
    """The machine detected code the compiler must never emit (e.g. a jump
    issued with an unspecified predicate, or a shadow-storage conflict)."""


class MachineMode(enum.Enum):
    """Execution mode of the predicating machine."""

    NORMAL = "normal"
    RECOVERY = "recovery"


@dataclass
class RecoveryContext:
    """State carried while the machine is in recovery mode.

    ``epc`` is the program point (bundle index) at which the speculative
    exception committed; recovery ends when re-execution reaches it, at
    which point the future condition is copied into the CCR.
    """

    future_ccr: CCR
    epc: int
    fault: FaultRecord
