"""The predicated store buffer (Section 3.2).

A FIFO in front of the D-cache.  Both speculative and non-speculative
stores are buffered; each entry carries W (speculative), V (valid) and E
(outstanding exception) flags plus the predicate, and has hardware that
re-evaluates the predicate every cycle:

* predicate TRUE  -> the entry is committed (W reset; a buffered fault is
  a detected speculative exception);
* predicate FALSE -> the entry is squashed (V reset);
* the head entry retires to the D-cache only when valid and
  non-speculative, preserving program order of memory updates.

The observable-output instruction ``out`` flows through the same buffer
(``address=None``) so that speculatively executed output is committed or
squashed exactly like a store -- this is the validation channel that lets
tests compare scalar and predicated executions.

The buffer also implements store-to-load forwarding.  The scheduler keeps
may-aliasing memory operations in program order, so a load may be forwarded
the newest valid entry for its address whose predicate is *implied by* the
load's own predicate; entries with disjoint predicates (other control
paths) are skipped.  Any other overlap is a schedule bug and raises
:class:`~repro.core.exceptions.ScheduleViolation`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.ccr import CCR
from repro.core.exceptions import FaultRecord, ScheduleViolation
from repro.core.predicate import ALWAYS, Predicate, PredValue
from repro.obs.metrics import NULL_SINK, MetricsSink
from repro.taint.tags import TaintTag, taint_from_state, taint_to_state


@dataclass
class StoreBufferEntry:
    """One buffered store (or ``out``) with its W/V/E flags."""

    address: int | None  # None = observable-output stream
    value: int
    pred: Predicate
    speculative: bool  # W flag
    valid: bool = True  # V flag
    fault: FaultRecord | None = None  # E flag when not None
    taint: frozenset[TaintTag] | None = None  # information-flow track


@dataclass
class StoreBufferEvents:
    """Per-cycle commit/squash/retire activity."""

    committed: list[int] = field(default_factory=list)  # entry serials
    squashed: list[int] = field(default_factory=list)
    retired_stores: list[tuple[int, int]] = field(default_factory=list)
    retired_outputs: list[int] = field(default_factory=list)
    detected_faults: list[FaultRecord] = field(default_factory=list)
    declassified: int = 0  # tainted entries whose TRUE commit cleared them


class PredicatedStoreBuffer:
    """FIFO of predicated stores with in-order D-cache retirement."""

    def __init__(self, capacity: int = 16, *, sink: MetricsSink = NULL_SINK):
        if capacity < 1:
            raise ValueError("store buffer capacity must be >= 1")
        self.capacity = capacity
        self.sink = sink
        self._entries: list[tuple[int, StoreBufferEntry]] = []
        self._serial = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.capacity

    def append(
        self,
        address: int | None,
        value: int,
        pred: Predicate,
        *,
        speculative: bool,
        fault: FaultRecord | None = None,
        taint: frozenset[TaintTag] | None = None,
    ) -> int:
        """Append a store at the FIFO tail; returns the entry serial."""
        if self.full:
            raise ScheduleViolation("store buffer overflow")
        if speculative and pred.is_always:
            raise ValueError("speculative entry cannot carry the alw predicate")
        self._serial += 1
        entry = StoreBufferEntry(
            address=address,
            value=value,
            pred=pred if speculative else ALWAYS,
            speculative=speculative,
            fault=fault,
            taint=taint,
        )
        self._entries.append((self._serial, entry))
        return self._serial

    # ------------------------------------------------------------------
    # Per-cycle hardware.
    # ------------------------------------------------------------------
    def tick(self, ccr: CCR, memory, output: list[int]) -> StoreBufferEvents:
        """One cycle: evaluate predicates, then retire from the head.

        *memory* must expose ``store(address, value)``; retired outputs are
        appended to *output*.
        """
        if self.sink.enabled:
            self.sink.observe("storebuffer.occupancy", len(self._entries))
        events = self._tick_core(ccr, memory, output)
        if self.sink.enabled:
            self.sink.count("storebuffer.commits", len(events.committed))
            self.sink.count("storebuffer.squashes", len(events.squashed))
            self.sink.count(
                "storebuffer.retired_stores", len(events.retired_stores)
            )
            self.sink.count(
                "storebuffer.retired_outputs", len(events.retired_outputs)
            )
        return events

    def _tick_core(
        self, ccr: CCR, memory, output: list[int]
    ) -> StoreBufferEvents:
        """The buffer hardware itself, free of instrumentation.

        All sink guards live in :meth:`tick`; the bench suite times this
        method directly as the uninstrumented reference when enforcing
        the NULL_SINK zero-cost claim.
        """
        events = StoreBufferEvents()
        for serial, entry in self._entries:
            if not entry.valid or not entry.speculative:
                continue
            verdict = ccr.evaluate(entry.pred)
            if verdict is PredValue.TRUE:
                entry.speculative = False
                if entry.taint is not None:
                    # Architecturally confirmed: the entry retires with
                    # the value sequential execution would have stored,
                    # so its speculative provenance is declassified.
                    entry.taint = None
                    events.declassified += 1
                events.committed.append(serial)
                if entry.fault is not None:
                    events.detected_faults.append(entry.fault)
            elif verdict is PredValue.FALSE:
                entry.valid = False
                events.squashed.append(serial)

        while self._entries:
            serial, entry = self._entries[0]
            if not entry.valid:
                self._entries.pop(0)
                continue
            if entry.speculative:
                break  # head unresolved: retirement blocks
            if entry.fault is not None:
                # A non-speculative faulting store is a normal exception;
                # the machine raises it at retirement.
                events.detected_faults.append(entry.fault)
                self._entries.pop(0)
                continue
            if entry.address is None:
                output.append(entry.value)
                events.retired_outputs.append(entry.value)
            else:
                memory.store(entry.address, entry.value)
                events.retired_stores.append((entry.address, entry.value))
            self._entries.pop(0)
        return events

    # ------------------------------------------------------------------
    # Store-to-load forwarding.
    # ------------------------------------------------------------------
    def lookup(self, address: int, reader_pred: Predicate) -> int | None:
        """Forward the newest matching valid entry visible to *reader_pred*.

        Returns None when the load should read the D-cache.
        """
        for _, entry in reversed(self._entries):
            if not entry.valid or entry.address != address:
                continue
            if not entry.speculative or reader_pred.implies(entry.pred):
                return entry.value
            if reader_pred.disjoint_with(entry.pred):
                continue
            raise ScheduleViolation(
                f"ambiguous store-to-load forwarding at address {address}: "
                f"load {reader_pred} vs store {entry.pred}"
            )
        return None

    def lookup_taint(
        self, address: int, reader_pred: Predicate
    ) -> tuple[bool, frozenset[TaintTag] | None]:
        """The taint a forwarded load at *address* would observe.

        Mirrors :meth:`lookup`'s scan: ``(True, taint)`` when an entry
        forwards (taint may be None), ``(False, None)`` when the load
        reads the D-cache.  Called only after :meth:`lookup` succeeded,
        so the ambiguous-overlap case cannot re-raise here.
        """
        for _, entry in reversed(self._entries):
            if not entry.valid or entry.address != address:
                continue
            if not entry.speculative or reader_pred.implies(entry.pred):
                return True, entry.taint
            if reader_pred.disjoint_with(entry.pred):
                continue
            return False, None
        return False, None

    def invalidate_speculative(self) -> None:
        """Squash all speculative entries (entry to recovery mode)."""
        for _, entry in self._entries:
            if entry.speculative:
                entry.valid = False

    def drain(self, memory, output: list[int]) -> StoreBufferEvents:
        """Retire every remaining committed entry (used at halt).

        Returns the accumulated retirement events so the forensics layer
        can fold halt-time retirements into the committed-effect stream.
        """
        ccr = CCR(1)  # all-unspecified CCR: only non-speculative entries move
        drained = StoreBufferEvents()
        while True:
            before = len(self._entries)
            events = self.tick(ccr, memory, output)
            if events.detected_faults:
                raise ScheduleViolation(
                    "faulting store reached retirement during drain"
                )
            drained.committed.extend(events.committed)
            drained.squashed.extend(events.squashed)
            drained.retired_stores.extend(events.retired_stores)
            drained.retired_outputs.extend(events.retired_outputs)
            if len(self._entries) == before:
                break
        return drained

    def pending_entries(self) -> list[StoreBufferEntry]:
        """The live entries, oldest first (for tests)."""
        return [entry for _, entry in self._entries]

    # ------------------------------------------------------------------
    # Checkpoint state extraction (JSON-native).
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """The FIFO contents with serials and W/V/E flags."""
        return {
            "serial": self._serial,
            "entries": [
                {
                    "serial": serial,
                    "address": entry.address,
                    "value": entry.value,
                    "pred": str(entry.pred),
                    "speculative": entry.speculative,
                    "valid": entry.valid,
                    "fault": (
                        None if entry.fault is None else entry.fault.to_state()
                    ),
                    # Emitted only when present: taint-off snapshots stay
                    # byte-identical to the pre-taint layout.
                    **(
                        {}
                        if entry.taint is None
                        else {"taint": taint_to_state(entry.taint)}
                    ),
                }
                for serial, entry in self._entries
            ],
        }

    def load_state(self, state: dict) -> None:
        """Restore contents captured by :meth:`state_dict`."""
        from repro.core.predicate import parse_predicate

        if len(state["entries"]) > self.capacity:
            raise ValueError(
                f"store buffer capacity mismatch: snapshot holds "
                f"{len(state['entries'])}, buffer fits {self.capacity}"
            )
        self._serial = state["serial"]
        self._entries = [
            (
                item["serial"],
                StoreBufferEntry(
                    address=item["address"],
                    value=item["value"],
                    pred=parse_predicate(item["pred"]),
                    speculative=item["speculative"],
                    valid=item["valid"],
                    fault=(
                        None
                        if item["fault"] is None
                        else FaultRecord.from_state(item["fault"])
                    ),
                    # Pre-taint snapshots have no "taint" key: all-clear.
                    taint=taint_from_state(item.get("taint")),
                ),
            )
            for item in state["entries"]
        ]
