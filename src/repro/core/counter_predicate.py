"""Counter-type predicates -- the alternative Section 4.2.1 argues against.

Boosting-style hardware represents a speculative result's commit condition
as a *counter*: the number of not-yet-resolved branches the instruction
depends on.  Every correctly resolved branch decrements every live counter;
a counter reaching zero commits, and any mispredicted branch squashes all
counted state.

Because the counter "cannot specifically represent which branch condition
is set", condition-resolving branches **must execute in program order** --
reordering them would decrement counters against the wrong branch.  The
vector-form predicate of the paper has no such constraint.  The ablation
benchmark quantifies the scheduling cost of that in-order restriction; this
module provides the reference semantics the machine-level ablation uses.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class CounterPredicate:
    """A commit counter for one buffered speculative value."""

    remaining: int

    def __post_init__(self) -> None:
        if self.remaining < 0:
            raise ValueError("counter must be non-negative")

    @property
    def committed(self) -> bool:
        return self.remaining == 0

    def resolve_one(self) -> CounterPredicate:
        """One more dependent branch resolved correctly."""
        if self.remaining == 0:
            raise ValueError("already committed")
        return CounterPredicate(self.remaining - 1)


class CounterCommitFile:
    """Tracks counter predicates for a set of buffered values.

    Models the commit/squash hardware of a counter-based design: branches
    resolve strictly in order; a misprediction squashes everything.
    """

    def __init__(self) -> None:
        self._counters: dict[int, CounterPredicate] = {}

    def buffer(self, key: int, dependent_branches: int) -> None:
        """Buffer value *key* depending on *dependent_branches* branches."""
        if dependent_branches < 1:
            raise ValueError("a speculative value depends on >= 1 branch")
        self._counters[key] = CounterPredicate(dependent_branches)

    def branch_resolved(self, correct: bool) -> tuple[list[int], list[int]]:
        """Resolve the next branch in program order.

        Returns ``(committed_keys, squashed_keys)``.  On a misprediction all
        buffered state is squashed, like boosting's shadow discard.
        """
        if not correct:
            squashed = sorted(self._counters)
            self._counters.clear()
            return [], squashed
        committed: list[int] = []
        for key in sorted(self._counters):
            counter = self._counters[key].resolve_one()
            if counter.committed:
                committed.append(key)
            else:
                self._counters[key] = counter
        for key in committed:
            del self._counters[key]
        return committed, []

    def live_keys(self) -> list[int]:
        return sorted(self._counters)
