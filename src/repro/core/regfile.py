"""The predicated register file (Figure 2).

Each architectural register has a *sequential* storage (committed state) and
shadow storage for *speculative* values.  A speculative value is buffered
together with its predicate and an optional outstanding-fault record (the E
flag).  Dedicated per-entry hardware re-evaluates buffered predicates every
cycle against the CCR:

* predicate TRUE  -> the value is committed into the sequential storage
  (hardware flips the W flag / resets V); a buffered fault becomes a
  *detected speculative exception*;
* predicate FALSE -> the value is squashed (V reset);
* otherwise the value is held.

The paper provisions a **single** shadow register per sequential register
(footnote 1 measures the cost of that choice at 0-1%); ``shadow_capacity``
makes the choice explicit so the ablation benchmark can compare against an
infinite-shadow configuration.  Two concurrent speculative values with
*different* predicates in a capacity-1 file are a storage conflict that the
scheduler must have prevented, so the model raises
:class:`~repro.core.exceptions.ScheduleViolation` rather than silently
corrupting state.

Shadow reads fall back to the sequential storage when the shadow is invalid
-- the paper's one-gate operand-fetch fix that keeps re-execution correct
after an operand was committed (end of Section 3.5).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.ccr import CCR
from repro.core.exceptions import FaultRecord, ScheduleViolation
from repro.core.predicate import Predicate, PredValue
from repro.obs.metrics import NULL_SINK, MetricsSink
from repro.taint.tags import TaintTag, taint_from_state, taint_to_state


@dataclass
class PendingWrite:
    """One buffered speculative value: data + predicate + E flag.

    ``taint`` is the information-flow track riding next to W/V/E: the
    provenance of speculatively-loaded data this value depends on, or
    None (clean).  Commit and squash move it for free -- a squashed
    entry takes its taint with it, and a TRUE commit drops it (the
    speculation was architecturally confirmed, so the value equals what
    sequential execution computes).
    """

    value: int
    pred: Predicate
    fault: FaultRecord | None = None
    taint: frozenset[TaintTag] | None = None


@dataclass
class RegisterFileEntry:
    """One architectural register: sequential storage + shadow storage."""

    sequential: int = 0
    pending: list[PendingWrite] = field(default_factory=list)

    @property
    def flag_v(self) -> bool:
        """V flag: a valid speculative value is buffered."""
        return bool(self.pending)

    @property
    def flag_e(self) -> bool:
        """E flag: an outstanding speculative exception is buffered."""
        return any(write.fault is not None for write in self.pending)


@dataclass
class CommitEvents:
    """Per-cycle commit/squash activity, for tests and the Table 1 replay.

    ``committed_values`` carries the ``(reg, value)`` pairs that actually
    reached sequential state this tick (fault-commits detect instead of
    writing, so they appear in ``committed`` but not here); the forensics
    layer turns these into committed-register effects.  It is collected
    only when the register file's ``collect_commit_values`` flag is on --
    forensics-off runs must not pay the per-commit tuple.
    """

    committed: list[int] = field(default_factory=list)
    squashed: list[int] = field(default_factory=list)
    committed_values: list[tuple[int, int]] = field(default_factory=list)
    detected_faults: list[FaultRecord] = field(default_factory=list)
    declassified: int = 0  # tainted writes whose TRUE commit cleared them


class PredicatedRegisterFile:
    """A bank of predicated registers with per-cycle commit hardware."""

    def __init__(
        self,
        num_regs: int = 32,
        *,
        shadow_capacity: int | None = 1,
        zero_reg: int | None = 0,
        sink: MetricsSink = NULL_SINK,
    ):
        if num_regs < 1:
            raise ValueError("need at least one register")
        if shadow_capacity is not None and shadow_capacity < 1:
            raise ValueError("shadow capacity must be >= 1 or None (infinite)")
        self.num_regs = num_regs
        self.shadow_capacity = shadow_capacity
        self.zero_reg = zero_reg
        self.sink = sink
        #: Opt-in (set by the machine when forensics are attached):
        #: populate ``CommitEvents.committed_values`` during ticks.
        self.collect_commit_values = False
        self.entries = [RegisterFileEntry() for _ in range(num_regs)]

    # ------------------------------------------------------------------
    # Reads.
    # ------------------------------------------------------------------
    def read(
        self,
        reg: int,
        *,
        shadow: bool = False,
        reader_pred: Predicate | None = None,
    ) -> int:
        """Read register *reg*; ``shadow=True`` is the ``.s`` operand form.

        An invalid shadow falls back to the sequential storage (the paper's
        operand-fetch hardware fix).  When *reader_pred* is given, buffered
        values on control paths disjoint from the reader are skipped -- a
        reader must never observe a value that cannot commit on its own
        path (with a single shadow register the skip simply reaches the
        sequential fallback, which holds the reader's path value).
        """
        entry = self._entry(reg)
        if shadow:
            for write in reversed(entry.pending):
                if reader_pred is None or not write.pred.disjoint_with(
                    reader_pred
                ):
                    return write.value
        return entry.sequential

    def shadow_taint(
        self,
        reg: int,
        reader_pred: Predicate | None = None,
    ) -> tuple[bool, frozenset[TaintTag] | None]:
        """The taint a shadow read of *reg* observes.

        Mirrors :meth:`read`'s pending scan exactly: returns ``(True,
        taint)`` when a buffered value would be returned (its taint may
        still be None), else ``(False, None)`` -- the read fell back to
        the sequential storage, whose taint the machine-side tracker
        owns.
        """
        entry = self._entry(reg)
        for write in reversed(entry.pending):
            if reader_pred is None or not write.pred.disjoint_with(
                reader_pred
            ):
                return True, write.taint
        return False, None

    def shadow_fault(self, reg: int) -> FaultRecord | None:
        """The newest buffered fault on *reg*'s shadow, if any.

        Reading a corrupted shadow value propagates the corruption -- the
        machine uses this to let dependent speculative instructions carry
        poisoned data without trapping (they are re-executed in recovery).
        """
        entry = self._entry(reg)
        for write in reversed(entry.pending):
            if write.fault is not None:
                return write.fault
        return None

    # ------------------------------------------------------------------
    # Writes.
    # ------------------------------------------------------------------
    def write_sequential(self, reg: int, value: int) -> None:
        """Non-speculative write straight into the sequential state."""
        if reg == self.zero_reg:
            return
        self._entry(reg).sequential = value

    def supersede_pending(self, reg: int, ccr: CCR) -> None:
        """Drop buffered values a sequential write supersedes.

        When a younger instruction's result resolves TRUE at writeback and
        goes straight to the sequential state, an *older* buffered value
        whose predicate has also become true must not commit on a later
        tick and clobber it -- program order between writes to the same
        register would invert.  In the paper's hardware the younger write
        simply overwrites the shadow entry; in this model it bypasses the
        shadow, so the superseded entry is dropped instead.  (Buffered
        faults are never dropped: a true-committing E flag must still
        trigger recovery.)
        """
        if reg == self.zero_reg:
            return
        entry = self._entry(reg)
        entry.pending = [
            write
            for write in entry.pending
            if write.fault is not None
            or ccr.evaluate(write.pred) is not PredValue.TRUE
        ]

    def write_speculative(
        self,
        reg: int,
        value: int,
        pred: Predicate,
        fault: FaultRecord | None = None,
        taint: frozenset[TaintTag] | None = None,
    ) -> None:
        """Buffer a speculative write of *value* under *pred* (sets V, E)."""
        if reg == self.zero_reg:
            return
        if pred.is_always:
            raise ValueError("speculative write cannot carry the alw predicate")
        entry = self._entry(reg)
        if entry.pending and entry.pending[-1].pred == pred:
            # Same commit condition: the newer value supersedes the data,
            # but an outstanding E flag persists -- the original fault is
            # architecturally real on this path even if its value was
            # overwritten before use, and the scalar execution would have
            # trapped on it (precise-exception equivalence).  Taint is
            # *not* merged: the superseded data is dead, only the new
            # value's provenance can reach architectural state.
            fault = fault or entry.pending[-1].fault
            entry.pending[-1] = PendingWrite(value, pred, fault, taint)
            return
        if (
            self.shadow_capacity is not None
            and len(entry.pending) >= self.shadow_capacity
        ):
            raise ScheduleViolation(
                f"shadow storage conflict on r{reg}: pending "
                f"{entry.pending[-1].pred} vs new {pred}"
            )
        entry.pending.append(PendingWrite(value, pred, fault, taint))

    # ------------------------------------------------------------------
    # Per-cycle commit hardware.
    # ------------------------------------------------------------------
    def tick(self, ccr: CCR) -> CommitEvents:
        """Evaluate every buffered predicate against *ccr* once.

        Returns the cycle's commit/squash events.  Detected speculative
        exceptions are reported, not raised: the machine decides how to
        enter recovery mode.
        """
        if self.sink.enabled:
            self.sink.observe(
                "regfile.shadow_occupancy", self.shadow_occupancy()
            )
        events = self._tick_core(ccr)
        if self.sink.enabled:
            self.sink.count("regfile.commits", len(events.committed))
            self.sink.count("regfile.squashes", len(events.squashed))
        return events

    def _tick_core(self, ccr: CCR) -> CommitEvents:
        """The commit hardware itself, free of instrumentation.

        All sink guards live in :meth:`tick`; the bench suite times this
        method directly as the uninstrumented reference when enforcing
        the NULL_SINK zero-cost claim.
        """
        events = CommitEvents()
        for reg, entry in enumerate(self.entries):
            if not entry.pending:
                continue
            kept: list[PendingWrite] = []
            for write in entry.pending:
                verdict = ccr.evaluate(write.pred)
                if verdict is PredValue.UNSPEC:
                    kept.append(write)
                elif verdict is PredValue.TRUE:
                    if write.fault is not None:
                        events.detected_faults.append(write.fault)
                    else:
                        entry.sequential = write.value
                        if self.collect_commit_values:
                            events.committed_values.append(
                                (reg, write.value)
                            )
                    if write.taint is not None:
                        # Architecturally confirmed: the committed value
                        # equals sequential execution's, so the write's
                        # speculative provenance is declassified.
                        events.declassified += 1
                    events.committed.append(reg)
                else:
                    events.squashed.append(reg)
            entry.pending = kept
        return events

    def invalidate_speculative(self) -> None:
        """Drop all buffered speculative state (entry to recovery mode)."""
        for entry in self.entries:
            entry.pending.clear()

    # ------------------------------------------------------------------
    # Introspection.
    # ------------------------------------------------------------------
    def sequential_snapshot(self) -> tuple[int, ...]:
        """The committed architectural state, for validation."""
        return tuple(entry.sequential for entry in self.entries)

    def shadow_occupancy(self) -> int:
        """Buffered speculative values across all registers."""
        return sum(len(entry.pending) for entry in self.entries)

    def has_speculative_state(self) -> bool:
        return any(entry.pending for entry in self.entries)

    # ------------------------------------------------------------------
    # Checkpoint state extraction (JSON-native).
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """The complete register-file contents: sequential values plus
        every buffered speculative write with its predicate and E flag."""
        return {
            "sequential": [entry.sequential for entry in self.entries],
            "pending": {
                str(reg): [
                    {
                        "value": write.value,
                        "pred": str(write.pred),
                        "fault": (
                            None
                            if write.fault is None
                            else write.fault.to_state()
                        ),
                        # Taint rides snapshots only when present, so
                        # taint-off captures stay byte-identical to the
                        # pre-taint repro-checkpoint/v1 layout.
                        **(
                            {}
                            if write.taint is None
                            else {"taint": taint_to_state(write.taint)}
                        ),
                    }
                    for write in entry.pending
                ]
                for reg, entry in enumerate(self.entries)
                if entry.pending
            },
        }

    def load_state(self, state: dict) -> None:
        """Restore contents captured by :meth:`state_dict`."""
        from repro.core.predicate import parse_predicate

        sequential = state["sequential"]
        if len(sequential) != self.num_regs:
            raise ValueError(
                f"register count mismatch: snapshot has {len(sequential)}, "
                f"file has {self.num_regs}"
            )
        for entry, value in zip(self.entries, sequential):
            entry.sequential = value
            entry.pending = []
        for reg_text, writes in state.get("pending", {}).items():
            entry = self._entry(int(reg_text))
            entry.pending = [
                PendingWrite(
                    value=write["value"],
                    pred=parse_predicate(write["pred"]),
                    fault=(
                        None
                        if write["fault"] is None
                        else FaultRecord.from_state(write["fault"])
                    ),
                    # Pre-taint snapshots have no "taint" key: all-clear.
                    taint=taint_from_state(write.get("taint")),
                )
                for write in writes
            ]

    def _entry(self, reg: int) -> RegisterFileEntry:
        if not 0 <= reg < self.num_regs:
            raise IndexError(f"register out of range: {reg}")
        return self.entries[reg]
