"""Instruction-word encoding cost model (Section 4.2.1).

The paper quantifies the instruction-word overhead of predicating:

* **Region predicating** encodes the predicate as a full vector: 2 bits per
  CCR entry (value + don't-care mask), i.e. ``2*K`` bits for K branch
  conditions, plus one bit per source register to select the speculative
  state ("about one byte extension" for K = 3..4).
* **Trace predicating** needs only ``ceil(log2(K+1))`` bits, because along a
  single trace the predicate is fully described by *how many* of the
  preceding branches the instruction depends on.

This module reproduces that accounting so the hardware-cost experiment can
regenerate the paper's numbers for arbitrary configurations.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

BASE_INSTRUCTION_BITS = 32
MAX_SOURCE_REGS = 2


@dataclass(frozen=True, slots=True)
class EncodingCost:
    """Bit budget of one instruction word under a predicating scheme."""

    base_bits: int
    predicate_bits: int
    shadow_select_bits: int

    @property
    def total_bits(self) -> int:
        return self.base_bits + self.predicate_bits + self.shadow_select_bits

    @property
    def overhead_bits(self) -> int:
        return self.total_bits - self.base_bits

    @property
    def overhead_bytes(self) -> float:
        return self.overhead_bits / 8


def region_predicating_cost(num_conditions: int) -> EncodingCost:
    """Encoding cost of the region predicating model for K conditions.

    The predicate part needs 2*K bits (the paper: "The predicate part in an
    instruction word needs 2xK bits, where K is the number of branch
    conditions the architecture defines. Furthermore, one bit for each
    source register is necessary to specify the speculative state.").
    """
    if num_conditions < 1:
        raise ValueError("K must be >= 1")
    return EncodingCost(
        base_bits=BASE_INSTRUCTION_BITS,
        predicate_bits=2 * num_conditions,
        shadow_select_bits=MAX_SOURCE_REGS,
    )


def trace_predicating_cost(num_conditions: int) -> EncodingCost:
    """Encoding cost of the trace predicating model for K conditions.

    Along a trace the predicate is the count of dependent branches, so only
    ``log2`` bits are needed (the paper: "the predicate part needs only
    log2 K bits").  We round up and allow the count 0 (``alw``).
    """
    if num_conditions < 1:
        raise ValueError("K must be >= 1")
    return EncodingCost(
        base_bits=BASE_INSTRUCTION_BITS,
        predicate_bits=max(1, math.ceil(math.log2(num_conditions + 1))),
        shadow_select_bits=MAX_SOURCE_REGS,
    )
