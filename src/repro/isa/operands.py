"""Typed instruction operands.

Operands are small frozen value objects so instructions can be hashed,
compared, and safely shared between compiler passes.  Four kinds exist:

* :class:`Reg` -- a general-purpose register ``r0`` .. ``r31``.
* :class:`CReg` -- a condition register (CCR entry) ``c0`` .. ``c7``.
* :class:`Imm` -- a signed integer immediate.
* :class:`Label` -- a symbolic control-flow target.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.registers import NUM_CREGS, NUM_REGS


@dataclass(frozen=True, slots=True)
class Reg:
    """A general-purpose register operand."""

    index: int

    def __post_init__(self) -> None:
        if not 0 <= self.index < NUM_REGS:
            raise ValueError(f"register index out of range: {self.index}")

    def __str__(self) -> str:
        return f"r{self.index}"


@dataclass(frozen=True, slots=True)
class CReg:
    """A condition-register (CCR entry) operand."""

    index: int

    def __post_init__(self) -> None:
        if not 0 <= self.index < NUM_CREGS:
            raise ValueError(f"condition register index out of range: {self.index}")

    def __str__(self) -> str:
        return f"c{self.index}"


@dataclass(frozen=True, slots=True)
class Imm:
    """A signed integer immediate operand."""

    value: int

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True, slots=True)
class Label:
    """A symbolic label operand naming a control-flow target."""

    name: str

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("label name must be non-empty")

    def __str__(self) -> str:
        return self.name


Operand = Reg | CReg | Imm | Label
