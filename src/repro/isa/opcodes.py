"""The opcode table.

Every opcode carries:

* an *operand signature* -- a tuple of role codes describing each operand
  position (``rd`` destination register, ``rs`` source register, ``cd``
  destination condition register, ``cu`` source condition register, ``imm``
  immediate, ``label`` control target);
* a *function-unit class* (:class:`FuClass`) used by the resource model of
  the list scheduler and the VLIW machine (the paper's base machine has
  4 ALUs, 4 branch units, 2 load units, 1 store unit);
* a *latency* in cycles (loads take 2 cycles, everything else 1, matching
  the paper's Section 4 assumptions);
* an *unsafe* flag marking opcodes whose speculative execution may raise an
  exception (loads can fault on a bad address; ``div``/``rem`` fault on a
  zero divisor).  Unsafe opcodes are exactly the ones whose speculative
  motion the restricted models must forgo and the predicating models buffer
  with the E flag.

Condition-set opcodes (``clt`` etc.) and control transfers execute on the
branch units; this mirrors the paper's separation of the control path from
the datapath.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class FuClass(enum.Enum):
    """Function-unit class an opcode executes on."""

    ALU = "alu"
    BRANCH = "branch"
    LOAD = "load"
    STORE = "store"
    NONE = "none"  # nop / halt consume an issue slot but no unit


@dataclass(frozen=True, slots=True)
class OpcodeInfo:
    """Static properties of one opcode."""

    name: str
    signature: tuple[str, ...]
    fu: FuClass
    latency: int = 1
    unsafe: bool = False

    @property
    def writes_reg(self) -> bool:
        return "rd" in self.signature

    @property
    def writes_creg(self) -> bool:
        return "cd" in self.signature

    @property
    def is_control(self) -> bool:
        return "label" in self.signature


def _op(
    name: str,
    signature: tuple[str, ...],
    fu: FuClass,
    latency: int = 1,
    unsafe: bool = False,
) -> OpcodeInfo:
    return OpcodeInfo(name, signature, fu, latency, unsafe)


_RRR = ("rd", "rs", "rs")
_RRI = ("rd", "rs", "imm")
_CRR = ("cd", "rs", "rs")
_CRI = ("cd", "rs", "imm")

OPCODES: dict[str, OpcodeInfo] = {
    op.name: op
    for op in [
        # Three-address ALU operations.
        _op("add", _RRR, FuClass.ALU),
        _op("sub", _RRR, FuClass.ALU),
        _op("mul", _RRR, FuClass.ALU),
        _op("div", _RRR, FuClass.ALU, unsafe=True),
        _op("rem", _RRR, FuClass.ALU, unsafe=True),
        _op("and", _RRR, FuClass.ALU),
        _op("or", _RRR, FuClass.ALU),
        _op("xor", _RRR, FuClass.ALU),
        _op("nor", _RRR, FuClass.ALU),
        _op("sll", _RRR, FuClass.ALU),
        _op("srl", _RRR, FuClass.ALU),
        _op("sra", _RRR, FuClass.ALU),
        _op("slt", _RRR, FuClass.ALU),
        _op("sle", _RRR, FuClass.ALU),
        _op("seq", _RRR, FuClass.ALU),
        _op("sne", _RRR, FuClass.ALU),
        _op("min", _RRR, FuClass.ALU),
        _op("max", _RRR, FuClass.ALU),
        # Immediate ALU operations.
        _op("addi", _RRI, FuClass.ALU),
        _op("muli", _RRI, FuClass.ALU),
        _op("andi", _RRI, FuClass.ALU),
        _op("ori", _RRI, FuClass.ALU),
        _op("xori", _RRI, FuClass.ALU),
        _op("slli", _RRI, FuClass.ALU),
        _op("srli", _RRI, FuClass.ALU),
        _op("srai", _RRI, FuClass.ALU),
        _op("slti", _RRI, FuClass.ALU),
        _op("seqi", _RRI, FuClass.ALU),
        _op("snei", _RRI, FuClass.ALU),
        _op("li", ("rd", "imm"), FuClass.ALU),
        _op("mov", ("rd", "rs"), FuClass.ALU),
        # Condition-set operations (write a CCR entry; branch unit).
        _op("clt", _CRR, FuClass.BRANCH),
        _op("cle", _CRR, FuClass.BRANCH),
        _op("cgt", _CRR, FuClass.BRANCH),
        _op("cge", _CRR, FuClass.BRANCH),
        _op("ceq", _CRR, FuClass.BRANCH),
        _op("cne", _CRR, FuClass.BRANCH),
        _op("clti", _CRI, FuClass.BRANCH),
        _op("clei", _CRI, FuClass.BRANCH),
        _op("cgti", _CRI, FuClass.BRANCH),
        _op("cgei", _CRI, FuClass.BRANCH),
        _op("ceqi", _CRI, FuClass.BRANCH),
        _op("cnei", _CRI, FuClass.BRANCH),
        # Memory operations: "ld rd, rs, imm" loads mem[rs+imm];
        # "st rs(value), rs(addr), imm" stores to mem[addr+imm].
        _op("ld", ("rd", "rs", "imm"), FuClass.LOAD, latency=2, unsafe=True),
        _op("st", ("rs", "rs", "imm"), FuClass.STORE),
        # Control transfers: "br cu, label" branches when cu is true;
        # "brf cu, label" branches when cu is false; "jmp label" always.
        _op("br", ("cu", "label"), FuClass.BRANCH),
        _op("brf", ("cu", "label"), FuClass.BRANCH),
        _op("jmp", ("label",), FuClass.BRANCH),
        _op("halt", (), FuClass.NONE),
        # Observable output (the validation channel between scalar and
        # scheduled executions).
        _op("out", ("rs",), FuClass.STORE),
        _op("nop", (), FuClass.NONE),
    ]
}

CONTROL_OPCODES = frozenset({"br", "brf", "jmp", "halt"})
CONDITIONAL_BRANCH_OPCODES = frozenset({"br", "brf"})
COND_SET_OPCODES = frozenset(name for name, op in OPCODES.items() if op.writes_creg)
UNSAFE_OPCODES = frozenset(name for name, op in OPCODES.items() if op.unsafe)
