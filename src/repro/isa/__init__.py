"""Instruction-set architecture for the predicating machine.

This package defines the RISC-like ISA used throughout the reproduction:

* :mod:`repro.isa.registers` -- register-file conventions (``r0`` .. ``r31``
  with ``r0`` hardwired to zero, condition registers ``c0`` .. ``c7``).
* :mod:`repro.isa.opcodes` -- the opcode table: operand signatures,
  function-unit classes, latencies, and safety classification.
* :mod:`repro.isa.operands` -- typed operand values (register, condition
  register, immediate, label).
* :mod:`repro.isa.instruction` -- the :class:`~repro.isa.instruction.Instruction`
  record, optionally predicated and with shadow-source markers.
* :mod:`repro.isa.semantics` -- a single source of truth for the functional
  semantics of every opcode, shared by the scalar interpreter and the
  cycle-level VLIW machine so the two can never diverge.
* :mod:`repro.isa.parser` / :mod:`repro.isa.printer` -- assembly text
  round-tripping, including the paper's predicate / ``.s`` shadow syntax.
* :mod:`repro.isa.encoding` -- instruction-word bit-cost model used by the
  Section 4.2.1 hardware-cost evaluation.

The ISA substitutes for the paper's MIPS R3000 substrate; see DESIGN.md for
the substitution argument.
"""

from repro.isa.instruction import Instruction
from repro.isa.opcodes import OPCODES, FuClass, OpcodeInfo
from repro.isa.operands import CReg, Imm, Label, Reg
from repro.isa.parser import ParseError, parse_instruction, parse_program
from repro.isa.printer import format_instruction, format_program
from repro.isa.registers import NUM_CREGS, NUM_REGS, ZERO_REG

__all__ = [
    "CReg",
    "FuClass",
    "Imm",
    "Instruction",
    "Label",
    "NUM_CREGS",
    "NUM_REGS",
    "OPCODES",
    "OpcodeInfo",
    "ParseError",
    "Reg",
    "ZERO_REG",
    "format_instruction",
    "format_program",
    "parse_instruction",
    "parse_program",
]
