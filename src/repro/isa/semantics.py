"""Functional semantics of every opcode -- the single source of truth.

Both the scalar interpreter (:mod:`repro.sim.interpreter`) and the
cycle-level VLIW machine (:mod:`repro.machine.vliw`) evaluate instructions
through this module, so the two executors cannot diverge semantically.

Values are 64-bit two's-complement integers.  Unsafe operations raise
:class:`ArithmeticFault` (zero divisor) here; memory faults are raised by
the memory model (:mod:`repro.sim.memory`) because address validity is a
property of machine state, not of the opcode.
"""

from __future__ import annotations

from collections.abc import Callable

_MASK = (1 << 64) - 1
_SIGN = 1 << 63


class SimFault(Exception):
    """Base class for architectural faults raised during execution."""


class ArithmeticFault(SimFault):
    """Division or remainder by zero."""


def to_i64(value: int) -> int:
    """Wrap *value* to a 64-bit two's-complement integer."""
    value &= _MASK
    return value - (1 << 64) if value & _SIGN else value


def _shift_amount(value: int) -> int:
    return value & 63


def _div(a: int, b: int) -> int:
    if b == 0:
        raise ArithmeticFault("division by zero")
    # Truncating division, like MIPS.
    return abs(a) // abs(b) * (1 if (a >= 0) == (b >= 0) else -1)


def _rem(a: int, b: int) -> int:
    if b == 0:
        raise ArithmeticFault("remainder by zero")
    return a - _div(a, b) * b


# Each entry maps an opcode to a function of its *source values* (register
# sources in operand order, then the immediate if the opcode has one).
ALU_SEMANTICS: dict[str, Callable[..., int]] = {
    "add": lambda a, b: a + b,
    "sub": lambda a, b: a - b,
    "mul": lambda a, b: a * b,
    "div": _div,
    "rem": _rem,
    "and": lambda a, b: a & b,
    "or": lambda a, b: a | b,
    "xor": lambda a, b: a ^ b,
    "nor": lambda a, b: ~(a | b),
    "sll": lambda a, b: a << _shift_amount(b),
    "srl": lambda a, b: (a & _MASK) >> _shift_amount(b),
    "sra": lambda a, b: a >> _shift_amount(b),
    "slt": lambda a, b: int(a < b),
    "sle": lambda a, b: int(a <= b),
    "seq": lambda a, b: int(a == b),
    "sne": lambda a, b: int(a != b),
    "min": lambda a, b: min(a, b),
    "max": lambda a, b: max(a, b),
    "addi": lambda a, imm: a + imm,
    "muli": lambda a, imm: a * imm,
    "andi": lambda a, imm: a & imm,
    "ori": lambda a, imm: a | imm,
    "xori": lambda a, imm: a ^ imm,
    "slli": lambda a, imm: a << _shift_amount(imm),
    "srli": lambda a, imm: (a & _MASK) >> _shift_amount(imm),
    "srai": lambda a, imm: a >> _shift_amount(imm),
    "slti": lambda a, imm: int(a < imm),
    "seqi": lambda a, imm: int(a == imm),
    "snei": lambda a, imm: int(a != imm),
    "li": lambda imm: imm,
    "mov": lambda a: a,
}

COND_SEMANTICS: dict[str, Callable[..., bool]] = {
    "clt": lambda a, b: a < b,
    "cle": lambda a, b: a <= b,
    "cgt": lambda a, b: a > b,
    "cge": lambda a, b: a >= b,
    "ceq": lambda a, b: a == b,
    "cne": lambda a, b: a != b,
    "clti": lambda a, imm: a < imm,
    "clei": lambda a, imm: a <= imm,
    "cgti": lambda a, imm: a > imm,
    "cgei": lambda a, imm: a >= imm,
    "ceqi": lambda a, imm: a == imm,
    "cnei": lambda a, imm: a != imm,
}


def eval_alu(opcode: str, *source_values: int) -> int:
    """Evaluate an ALU opcode on *source_values*; result is wrapped to i64."""
    return to_i64(ALU_SEMANTICS[opcode](*source_values))


def eval_cond(opcode: str, *source_values: int) -> bool:
    """Evaluate a condition-set opcode on *source_values*."""
    return COND_SEMANTICS[opcode](*source_values)


def effective_address(base: int, offset: int) -> int:
    """Compute a load/store effective address."""
    return to_i64(base + offset)
