"""Assembly printer -- inverse of :mod:`repro.isa.parser`.

``parse_program(format_program(p))`` reproduces *p* up to instruction
``uid``s, which the round-trip property tests rely on.
"""

from __future__ import annotations

from repro.isa.instruction import Instruction
from repro.isa.opcodes import OPCODES
from repro.isa.operands import Reg
from repro.isa.program import Program


def format_instruction(instruction: Instruction, *, show_pred: bool = True) -> str:
    """Render one instruction, e.g. ``'[c0&!c1] add r1, r2.s, r3'``."""
    tokens = []
    signature = OPCODES[instruction.opcode].signature
    for position, operand in enumerate(instruction.operands):
        text = str(operand)
        if (
            position in instruction.shadow
            and isinstance(operand, Reg)
            and signature[position] == "rs"
        ):
            text += ".s"
        tokens.append(text)
    body = instruction.opcode + (" " + ", ".join(tokens) if tokens else "")
    if show_pred and not instruction.pred.is_always:
        return f"[{instruction.pred}] {body}"
    return body


def format_program(program: Program) -> str:
    """Render a full program with labels, parseable by ``parse_program``."""
    label_lines: dict[int, list[str]] = {}
    for label, index in program.labels.items():
        label_lines.setdefault(index, []).append(label)

    lines: list[str] = []
    for index, instruction in enumerate(program.instructions):
        for label in label_lines.get(index, []):
            lines.append(f"{label}:")
        lines.append("    " + format_instruction(instruction))
    for label in label_lines.get(len(program.instructions), []):
        lines.append(f"{label}:")
    return "\n".join(lines) + "\n"
