"""Assembly parser.

Grammar (one instruction per line)::

    line      := [label ':']* [ '[' predicate ']' ] opcode operands? comment?
    predicate := 'alw' | term ('&' term)*      term := ['!'] 'c' digits
    operand   := reg ['.s'] | creg | immediate | label-name
    comment   := '#' anything

Example::

    loop:
        ld   r1, r2, 0
        [c0&!c1] add r3.s, r1, r4     # predicated, r3-source read from shadow
        clt  c0, r1, r5
        br   c0, loop
        halt

The ``.s`` suffix on a *source* register marks a shadow-state read (the
paper's ``r2.s``); destinations never carry it because the control path
selects the destination storage at run time.
"""

from __future__ import annotations

import re

from repro.core.predicate import parse_predicate
from repro.isa.instruction import Instruction
from repro.isa.opcodes import OPCODES
from repro.isa.operands import CReg, Imm, Label, Operand, Reg
from repro.isa.program import Program

_LABEL_RE = re.compile(r"^[A-Za-z_.$][A-Za-z0-9_.$]*$")
_REG_RE = re.compile(r"^r(\d+)(\.s)?$")
_CREG_RE = re.compile(r"^c(\d+)$")
_IMM_RE = re.compile(r"^[+-]?(0x[0-9a-fA-F]+|\d+)$")


class ParseError(ValueError):
    """Raised on malformed assembly, with line information."""

    def __init__(self, message: str, line_number: int | None = None):
        if line_number is not None:
            message = f"line {line_number}: {message}"
        super().__init__(message)
        self.line_number = line_number


def _strip_comment(line: str) -> str:
    index = line.find("#")
    return line if index < 0 else line[:index]


def parse_instruction(text: str) -> Instruction:
    """Parse a single instruction (no labels), e.g. ``'[c0] add r1, r2, r3'``."""
    text = _strip_comment(text).strip()
    if not text:
        raise ParseError("empty instruction")

    pred = None
    if text.startswith("["):
        close = text.find("]")
        if close < 0:
            raise ParseError(f"unterminated predicate in {text!r}")
        pred = parse_predicate(text[1:close])
        text = text[close + 1 :].strip()

    parts = text.split(None, 1)
    opcode = parts[0].lower()
    if opcode not in OPCODES:
        raise ParseError(f"unknown opcode {opcode!r}")
    raw_operands = (
        [token.strip() for token in parts[1].split(",")] if len(parts) > 1 else []
    )
    raw_operands = [token for token in raw_operands if token]

    signature = OPCODES[opcode].signature
    if len(raw_operands) != len(signature):
        raise ParseError(
            f"{opcode} expects {len(signature)} operands, got {len(raw_operands)}"
        )

    operands: list[Operand] = []
    shadow: set[int] = set()
    for position, (token, role) in enumerate(zip(raw_operands, signature)):
        operands.append(_parse_operand(token, role, opcode, position, shadow))

    instruction = Instruction(
        opcode=opcode,
        operands=tuple(operands),
        shadow=frozenset(shadow),
    )
    if pred is not None:
        instruction = instruction.replace(pred=pred)
    return instruction


def _parse_operand(
    token: str, role: str, opcode: str, position: int, shadow: set[int]
) -> Operand:
    if role in ("rd", "rs"):
        match = _REG_RE.match(token)
        if not match:
            raise ParseError(f"{opcode}: expected register, got {token!r}")
        if match.group(2):
            if role != "rs":
                raise ParseError(
                    f"{opcode}: shadow suffix .s only valid on source registers"
                )
            shadow.add(position)
        try:
            return Reg(int(match.group(1)))
        except ValueError as error:
            raise ParseError(f"{opcode}: {error}") from error
    if role in ("cd", "cu"):
        match = _CREG_RE.match(token)
        if not match:
            raise ParseError(f"{opcode}: expected condition register, got {token!r}")
        try:
            return CReg(int(match.group(1)))
        except ValueError as error:
            raise ParseError(f"{opcode}: {error}") from error
    if role == "imm":
        if not _IMM_RE.match(token):
            raise ParseError(f"{opcode}: expected immediate, got {token!r}")
        return Imm(int(token, 0))
    if role == "label":
        if not _LABEL_RE.match(token):
            raise ParseError(f"{opcode}: expected label, got {token!r}")
        return Label(token)
    raise AssertionError(f"unknown operand role {role!r}")


def parse_program(text: str, name: str = "program") -> Program:
    """Parse a multi-line assembly listing into a :class:`Program`."""
    instructions: list[Instruction] = []
    labels: dict[str, int] = {}

    for line_number, raw_line in enumerate(text.splitlines(), start=1):
        line = _strip_comment(raw_line).strip()
        while line:
            colon = line.find(":")
            # A leading "name:" is a label definition only when the name is a
            # valid identifier (so "ld r1, r2, 0" is never misparsed).
            head = line[:colon].strip() if colon >= 0 else ""
            if colon >= 0 and _LABEL_RE.match(head):
                if head in labels:
                    raise ParseError(f"duplicate label {head!r}", line_number)
                labels[head] = len(instructions)
                line = line[colon + 1 :].strip()
            else:
                break
        if not line:
            continue
        try:
            instructions.append(parse_instruction(line))
        except ParseError as error:
            raise ParseError(str(error), line_number) from error

    program = Program(instructions=instructions, labels=labels, name=name)
    program.validate()
    return program
