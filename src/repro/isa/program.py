"""The linear (assembly-level) program form.

A :class:`Program` is an ordered list of instructions plus a label table
mapping symbolic names to instruction indices.  It is the unit the parser
produces, the interpreter executes, and the CFG builder consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.instruction import Instruction


@dataclass
class Program:
    """A linear instruction sequence with labels."""

    instructions: list[Instruction] = field(default_factory=list)
    labels: dict[str, int] = field(default_factory=dict)
    name: str = "program"

    def __post_init__(self) -> None:
        for label, index in self.labels.items():
            if not 0 <= index <= len(self.instructions):
                raise ValueError(f"label {label!r} points outside program: {index}")

    def __len__(self) -> int:
        return len(self.instructions)

    def labels_at(self, index: int) -> list[str]:
        """All labels attached to instruction *index* (in insertion order)."""
        return [label for label, i in self.labels.items() if i == index]

    def resolve(self, label: str) -> int:
        """Instruction index of *label*; raises KeyError if undefined."""
        return self.labels[label]

    def validate(self) -> None:
        """Check that every control-transfer target is a defined label."""
        for instruction in self.instructions:
            target = instruction.target
            if target is not None and target not in self.labels:
                raise ValueError(f"undefined label {target!r} in {instruction}")

    def static_line_count(self) -> int:
        """Static instruction count (the 'Lines' column of Table 2)."""
        return len(self.instructions)
