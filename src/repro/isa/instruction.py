"""The instruction record.

An :class:`Instruction` pairs an opcode with typed operands and, for
scheduled predicating code, a predicate and shadow-source markers:

* ``pred`` is the commit condition of the paper's instruction format
  (``predicate ? operation``); ``ALWAYS`` (``alw``) marks non-speculative
  instructions.
* ``shadow`` is the set of *source operand positions* that read the shadow
  (speculative) storage of their register -- the paper's ``.s`` suffix.
  Destinations never carry the marker because the control path selects the
  destination storage at run time.

Instructions are immutable; compiler passes build rewritten copies with
:meth:`Instruction.replace`.  Identity for dependence bookkeeping is by
object (``uid``), not value, because a region can legitimately contain two
textually identical instructions (after tail duplication).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from functools import cached_property
from typing import Any

from repro.core.predicate import ALWAYS, Predicate
from repro.isa.opcodes import (
    CONDITIONAL_BRANCH_OPCODES,
    CONTROL_OPCODES,
    OPCODES,
    FuClass,
    OpcodeInfo,
)
from repro.isa.operands import CReg, Imm, Label, Operand, Reg

_uid_counter = itertools.count()


@dataclass(frozen=True)
class Instruction:
    """One machine instruction, optionally predicated."""

    opcode: str
    operands: tuple[Operand, ...] = ()
    pred: Predicate = ALWAYS
    shadow: frozenset[int] = frozenset()
    uid: int = field(default_factory=lambda: next(_uid_counter))

    def __post_init__(self) -> None:
        info = OPCODES.get(self.opcode)
        if info is None:
            raise ValueError(f"unknown opcode: {self.opcode!r}")
        if len(self.operands) != len(info.signature):
            raise ValueError(
                f"{self.opcode} expects {len(info.signature)} operands, "
                f"got {len(self.operands)}"
            )
        for operand, role in zip(self.operands, info.signature):
            expected: type
            if role in ("rd", "rs"):
                expected = Reg
            elif role in ("cd", "cu"):
                expected = CReg
            elif role == "imm":
                expected = Imm
            else:
                expected = Label
            if not isinstance(operand, expected):
                raise ValueError(
                    f"{self.opcode} operand {operand!r} should be {expected.__name__}"
                )
        for position in self.shadow:
            if (
                position >= len(info.signature)
                or info.signature[position] != "rs"
            ):
                raise ValueError(
                    f"shadow marker on non-source operand {position} of {self.opcode}"
                )

    # ------------------------------------------------------------------
    # Static properties derived from the opcode table.
    #
    # The derived views are ``cached_property``: instructions are
    # immutable, and the machine re-reads decode facts (sources,
    # destination, latency) every cycle an op is live, so each is
    # computed once per instance.  ``cached_property`` stores into the
    # instance ``__dict__`` directly, which a frozen dataclass permits.
    # ------------------------------------------------------------------
    @cached_property
    def info(self) -> OpcodeInfo:
        return OPCODES[self.opcode]

    @cached_property
    def fu(self) -> FuClass:
        return self.info.fu

    @cached_property
    def latency(self) -> int:
        return self.info.latency

    @property
    def is_unsafe(self) -> bool:
        return self.info.unsafe

    @property
    def is_control(self) -> bool:
        return self.opcode in CONTROL_OPCODES

    @property
    def is_conditional_branch(self) -> bool:
        return self.opcode in CONDITIONAL_BRANCH_OPCODES

    @property
    def is_jump(self) -> bool:
        return self.opcode == "jmp"

    @property
    def is_load(self) -> bool:
        return self.opcode == "ld"

    @property
    def is_store(self) -> bool:
        return self.opcode == "st"

    @cached_property
    def is_cond_set(self) -> bool:
        return self.info.writes_creg

    @property
    def is_speculable(self) -> bool:
        """Whether the instruction may execute under an unspecified predicate.

        Control transfers cannot be speculative in the predicating machine:
        a jump whose predicate is unspecified at issue is a schedule bug.
        """
        return not self.is_control

    # ------------------------------------------------------------------
    # Def/use views.
    # ------------------------------------------------------------------
    @cached_property
    def dest_reg(self) -> int | None:
        """Destination general register index, or None."""
        for operand, role in zip(self.operands, self.info.signature):
            if role == "rd":
                assert isinstance(operand, Reg)
                return operand.index
        return None

    @cached_property
    def dest_creg(self) -> int | None:
        """Destination condition register index, or None."""
        for operand, role in zip(self.operands, self.info.signature):
            if role == "cd":
                assert isinstance(operand, CReg)
                return operand.index
        return None

    @cached_property
    def src_regs(self) -> tuple[int, ...]:
        """Source general register indices, in operand order."""
        return tuple(
            operand.index
            for operand, role in zip(self.operands, self.info.signature)
            if role == "rs" and isinstance(operand, Reg)
        )

    @cached_property
    def src_cregs(self) -> tuple[int, ...]:
        """Source condition register indices (branch uses)."""
        return tuple(
            operand.index
            for operand, role in zip(self.operands, self.info.signature)
            if role == "cu" and isinstance(operand, CReg)
        )

    @cached_property
    def target(self) -> str | None:
        """Control-transfer target label, or None."""
        for operand in self.operands:
            if isinstance(operand, Label):
                return operand.name
        return None

    @cached_property
    def imm(self) -> int | None:
        """Immediate value, or None."""
        for operand in self.operands:
            if isinstance(operand, Imm):
                return operand.value
        return None

    @cached_property
    def source_positions(self) -> tuple[int, ...]:
        """Operand positions that are general-register sources."""
        return tuple(
            position
            for position, role in enumerate(self.info.signature)
            if role == "rs"
        )

    def replace(self, **changes: Any) -> Instruction:
        """Return a copy with *changes* applied and a fresh ``uid``."""
        changes.setdefault("uid", next(_uid_counter))
        return replace(self, **changes)

    def rename_reg(self, old: int, new: int, *, dest: bool, srcs: bool) -> Instruction:
        """Return a copy with register *old* renamed to *new*.

        ``dest``/``srcs`` select which operand roles are rewritten, which
        the renaming pass uses to split a def from its uses.
        """
        new_operands = []
        for operand, role in zip(self.operands, self.info.signature):
            if isinstance(operand, Reg) and operand.index == old:
                if (role == "rd" and dest) or (role == "rs" and srcs):
                    operand = Reg(new)
            new_operands.append(operand)
        return self.replace(operands=tuple(new_operands))

    def __str__(self) -> str:
        from repro.isa.printer import format_instruction

        return format_instruction(self)
