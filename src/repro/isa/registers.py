"""Register-file conventions.

The machine has 32 general-purpose registers ``r0`` .. ``r31``; ``r0`` is
hardwired to zero (writes to it are discarded), following the MIPS convention
of the paper's base machine.  Condition registers ``c0`` .. ``c7`` hold branch
conditions; architecturally they live in the condition code register (CCR).
A machine configuration may expose fewer CCR entries than ``NUM_CREGS`` (the
paper evaluates K in {1, 2, 4, 8}); the region-forming compiler allocates CCR
entries per region and respects the configured K.
"""

NUM_REGS = 32
NUM_CREGS = 8
ZERO_REG = 0


def reg_name(index: int) -> str:
    """Return the assembly name of general register *index* (e.g. ``r7``)."""
    if not 0 <= index < NUM_REGS:
        raise ValueError(f"register index out of range: {index}")
    return f"r{index}"


def creg_name(index: int) -> str:
    """Return the assembly name of condition register *index* (e.g. ``c2``)."""
    if not 0 <= index < NUM_CREGS:
        raise ValueError(f"condition register index out of range: {index}")
    return f"c{index}"
