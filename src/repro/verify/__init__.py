"""Differential verification: oracle, fuzzing, shrinking, fault injection.

The paper's claim is architectural *equivalence*: the predicating VLIW
machine, whatever mixture of speculation, squashing and recovery it goes
through, must end in exactly the state sequential execution reaches.
This package enforces that claim systematically:

* :mod:`repro.verify.oracle` -- lockstep differential checker against the
  scalar interpreter golden model;
* :mod:`repro.verify.fuzz` -- seed-deterministic random-program campaigns
  through the oracle;
* :mod:`repro.verify.shrink` -- delta-debugging minimizer producing
  replayable JSON repro cases;
* :mod:`repro.verify.faults` -- fault-injection campaigns corrupting
  buffered speculative state mid-run.
"""

from repro.verify.case import CASE_SCHEMA, ReproCase
from repro.verify.faults import FaultCampaignReport, run_fault_campaign
from repro.verify.fuzz import FuzzReport, run_fuzz
from repro.verify.oracle import (
    VERIFY_MODELS,
    DivergenceReport,
    DivergenceSite,
    OracleResult,
    resolve_model,
    run_oracle,
)
from repro.verify.shrink import ShrinkResult, shrink_case

__all__ = [
    "CASE_SCHEMA",
    "DivergenceReport",
    "DivergenceSite",
    "FaultCampaignReport",
    "FuzzReport",
    "OracleResult",
    "ReproCase",
    "ShrinkResult",
    "VERIFY_MODELS",
    "resolve_model",
    "run_fault_campaign",
    "run_fuzz",
    "run_oracle",
    "shrink_case",
]
