"""Differential verification: oracle, fuzzing, shrinking, fault injection.

The paper's claim is architectural *equivalence*: the predicating VLIW
machine, whatever mixture of speculation, squashing and recovery it goes
through, must end in exactly the state sequential execution reaches.
This package enforces that claim systematically:

* :mod:`repro.verify.oracle` -- lockstep differential checker against the
  scalar interpreter golden model;
* :mod:`repro.verify.fuzz` -- seed-deterministic random-program campaigns
  through the oracle;
* :mod:`repro.verify.shrink` -- delta-debugging minimizer producing
  replayable JSON repro cases;
* :mod:`repro.verify.faults` -- fault-injection campaigns corrupting
  buffered speculative state mid-run;
* :mod:`repro.verify.tracediff` -- lockstep forensics: both models run
  instrumented with flight recorders and committed-effect streams, and
  the first divergent architectural effect is pinpointed with +-K-event
  context windows (``repro diff-trace``).
"""

from repro.verify.case import CASE_SCHEMA, ReproCase
from repro.verify.faults import FaultCampaignReport, run_fault_campaign
from repro.verify.fuzz import FuzzReport, run_fuzz
from repro.verify.oracle import (
    VERIFY_MODELS,
    DivergenceReport,
    DivergenceSite,
    OracleResult,
    resolve_model,
    run_oracle,
)
from repro.verify.shrink import ShrinkResult, ddmin_lines, shrink_case
from repro.verify.tracediff import (
    TRACEDIFF_SCHEMA,
    TraceDiffResult,
    diff_trace_case,
    merged_trace,
    run_diff_trace,
    validate_tracediff,
)

__all__ = [
    "CASE_SCHEMA",
    "DivergenceReport",
    "DivergenceSite",
    "FaultCampaignReport",
    "FuzzReport",
    "OracleResult",
    "ReproCase",
    "ShrinkResult",
    "TRACEDIFF_SCHEMA",
    "TraceDiffResult",
    "VERIFY_MODELS",
    "diff_trace_case",
    "merged_trace",
    "resolve_model",
    "run_diff_trace",
    "run_fault_campaign",
    "run_fuzz",
    "run_oracle",
    "ddmin_lines",
    "shrink_case",
    "validate_tracediff",
]
