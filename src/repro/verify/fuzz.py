"""Seed-deterministic differential fuzzing campaigns.

Each campaign derives its parameters from ``(seed, index)`` alone --
re-running with the same seed reproduces the same campaigns bit for bit
-- then generates a random structured program
(:mod:`repro.workloads.synthetic`) and pushes it through the differential
oracle.  The sweep covers the axes the machine is sensitive to:

* branch ``predictability`` and program ``size``;
* the executable models (``region_pred`` / ``trace_pred``);
* region-growth policy (``window_blocks``, ``share_equivalent_joins``);
* machine shape: the paper's base 4-issue machine, narrow/wide
  full-issue machines, finite BTB sizes, infinite shadow capacity;
* fault-raising loads: demand-paged memory with a random subset of data
  words unmapped, repaired by a pager on both sides.

A diverging campaign is frozen into a replayable
:class:`~repro.verify.case.ReproCase` (optionally shrunk first) so the
bug survives the process that found it.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.ckpt.journal import Journal
from repro.ckpt.signals import SignalSupervisor
from repro.machine.config import MachineConfig, base_machine, full_issue_machine
from repro.obs.metrics import NULL_SINK, MetricsSink
from repro.obs.runlog import NULL_RUN_LOG, RunLog
from repro.verify.case import ReproCase
from repro.verify.oracle import OracleResult, resolve_model
from repro.verify.shrink import ShrinkResult, shrink_case
from repro.workloads.synthetic import generate, paged_image

#: Machine shapes the fuzzer sweeps.  The scheduler does not model the
#: store-buffer capacity, so only shapes whose buffer is at least the
#: default are fair game (a tighter buffer can deadlock legal schedules).
CONFIGS: dict[str, object] = {
    "base": lambda: base_machine(),
    "narrow": lambda: full_issue_machine(2, 2),
    "wide": lambda: full_issue_machine(8, 4),
    "btb16": lambda: base_machine(btb_entries=16),
    "btb4": lambda: base_machine(btb_entries=4),
    "deep-shadow": lambda: base_machine(shadow_capacity=None),
}

DEFAULT_MODELS = ("region_pred", "trace_pred")

_PREDICTABILITIES = (0.5, 0.6, 0.7, 0.85, 0.95, 1.0)
_SIZES = (2, 3, 4)
_WINDOWS = (4, 8, 16)
_UNMAP_FRACTIONS = (0.0, 0.0, 0.0, 0.25, 0.5)


@dataclass(frozen=True)
class CampaignSpec:
    """Everything one campaign derives from (seed, index)."""

    index: int
    program_seed: int
    predictability: float
    size: int
    model: str
    window_blocks: int
    share_joins: bool
    config_name: str
    unmap_fraction: float

    def label(self) -> str:
        parts = [
            f"#{self.index}",
            f"seed={self.program_seed}",
            f"p={self.predictability}",
            f"size={self.size}",
            self.model,
            f"win={self.window_blocks}",
            self.config_name,
        ]
        if self.share_joins:
            parts.append("share-joins")
        if self.unmap_fraction:
            parts.append(f"unmap={self.unmap_fraction}")
        return "/".join(parts)

    def machine_config(self) -> MachineConfig:
        return CONFIGS[self.config_name]()

    def to_metadata(self) -> dict:
        return {
            "campaign": self.index,
            "program_seed": self.program_seed,
            "predictability": self.predictability,
            "size": self.size,
            "window_blocks": self.window_blocks,
            "share_joins": self.share_joins,
            "config": self.config_name,
            "unmap_fraction": self.unmap_fraction,
        }


def derive_campaign(
    seed: int, index: int, models: tuple[str, ...] = DEFAULT_MODELS
) -> CampaignSpec:
    """Deterministically derive campaign *index* of a *seed* run."""
    rng = random.Random(f"repro-fuzz:{seed}:{index}")
    return CampaignSpec(
        index=index,
        program_seed=rng.randrange(1 << 30),
        predictability=rng.choice(_PREDICTABILITIES),
        size=rng.choice(_SIZES),
        model=rng.choice(list(models)),
        window_blocks=rng.choice(_WINDOWS),
        share_joins=rng.random() < 0.5,
        config_name=rng.choice(sorted(CONFIGS)),
        unmap_fraction=rng.choice(_UNMAP_FRACTIONS),
    )


def build_case(spec: CampaignSpec) -> ReproCase:
    """Materialize the campaign's program + memory as a replayable case."""
    synthetic = generate(
        spec.program_seed,
        predictability=spec.predictability,
        size=spec.size,
    )
    resident = None
    backing = None
    if spec.unmap_fraction > 0.0:
        resident, backing = paged_image(
            synthetic, spec.unmap_fraction, spec.program_seed ^ 0xFA
        )
    return ReproCase.from_synthetic(
        synthetic,
        spec.model,
        spec.machine_config(),
        resident=resident,
        backing=backing,
        policy_overrides={
            "window_blocks": spec.window_blocks,
            "share_equivalent_joins": spec.share_joins,
        },
        metadata=spec.to_metadata(),
    )


@dataclass
class FuzzFinding:
    """One diverging campaign, frozen for replay."""

    spec: CampaignSpec
    result: OracleResult
    case: ReproCase
    shrink: ShrinkResult | None = None
    case_path: str | None = None

    def describe(self) -> str:
        lines = [f"campaign {self.spec.label()}"]
        assert self.result.report is not None
        lines.append(self.result.report.describe())
        if self.shrink is not None:
            lines.append(self.shrink.describe())
        if self.case_path is not None:
            lines.append(f"repro case: {self.case_path}")
        return "\n".join(lines)


@dataclass
class FuzzReport:
    """Outcome of one fuzzing run."""

    seed: int
    campaigns: int
    models: tuple[str, ...]
    findings: list[FuzzFinding] = field(default_factory=list)
    equivalent: int = 0
    total_recoveries: int = 0
    total_handled_faults: int = 0
    faulting_campaigns: int = 0
    #: Campaigns replayed from a resume journal without re-execution.
    #: Deliberately NOT part of :meth:`to_dict`, so a resumed run's
    #: artifact stays byte-identical to an uninterrupted one.
    replayed: int = 0

    @property
    def divergences(self) -> int:
        return len(self.findings)

    def summary(self) -> str:
        resumed = f" ({self.replayed} replayed)" if self.replayed else ""
        lines = [
            f"fuzz: {self.campaigns} campaigns (seed {self.seed}, "
            f"models {'/'.join(self.models)}){resumed}: "
            f"{self.equivalent} equivalent, {self.divergences} divergent",
            f"  coverage: {self.faulting_campaigns} campaigns with page "
            f"faults, {self.total_handled_faults} faults handled, "
            f"{self.total_recoveries} recoveries taken",
        ]
        for finding in self.findings:
            lines.append(finding.describe())
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "campaigns": self.campaigns,
            "models": list(self.models),
            "equivalent": self.equivalent,
            "divergences": self.divergences,
            "total_recoveries": self.total_recoveries,
            "total_handled_faults": self.total_handled_faults,
            "faulting_campaigns": self.faulting_campaigns,
            "findings": [
                {
                    "campaign": finding.spec.label(),
                    "report": finding.result.report.to_dict()
                    if finding.result.report
                    else None,
                    "case_path": finding.case_path,
                    "shrunk_instructions": (
                        finding.shrink.shrunk_instructions
                        if finding.shrink
                        else None
                    ),
                }
                for finding in self.findings
            ],
        }


def _campaign_key(seed: int, index: int, models: tuple[str, ...]) -> str:
    return f"fuzz:{seed}:{index}:{'/'.join(models)}"


def run_fuzz(
    campaigns: int,
    seed: int,
    *,
    models: tuple[str, ...] | None = None,
    shrink: bool = False,
    out_dir=None,
    machine_factory=None,
    sink: MetricsSink = NULL_SINK,
    progress=None,
    journal: Journal | None = None,
    supervisor: SignalSupervisor | None = None,
    run_log: RunLog = NULL_RUN_LOG,
) -> FuzzReport:
    """Run *campaigns* differential campaigns derived from *seed*.

    With *shrink*, each finding is delta-debugged to a minimal program
    before serialization; with *out_dir*, each finding's case is saved as
    ``case-<seed>-<index>.json`` there.  *machine_factory* substitutes a
    (possibly deliberately broken) machine for every campaign.

    *progress* is called once per campaign as ``progress(spec, result)``
    -- with ``result=None`` for campaigns replayed from the journal
    ledger, which never re-execute.  *run_log* receives one
    ``fuzz.campaign`` record per campaign.

    With a *journal*, each completed campaign is ledgered; a resumed run
    replays ledgered *equivalent* campaigns from their recorded counters
    without re-execution (campaigns are seed-deterministic, so the
    replayed counters are exactly what a re-run would produce), while
    divergent campaigns re-execute to rebuild their findings.  With a
    *supervisor*, a pending SIGINT/SIGTERM raises
    :class:`~repro.ckpt.signals.ShutdownRequested` at the next campaign
    boundary.
    """
    resolved = tuple(resolve_model(m) for m in (models or DEFAULT_MODELS))
    report = FuzzReport(seed=seed, campaigns=campaigns, models=resolved)
    ledger = journal.completed() if journal is not None else {}
    for index in range(campaigns):
        spec = derive_campaign(seed, index, resolved)
        key = _campaign_key(seed, index, resolved)
        if spec.unmap_fraction > 0.0:
            report.faulting_campaigns += 1
        completed = ledger.get(key)
        if completed is not None and completed.get("equivalent"):
            report.equivalent += 1
            report.total_recoveries += completed.get("recoveries", 0)
            report.total_handled_faults += completed.get("machine_faults", 0)
            report.replayed += 1
            if sink.enabled:
                sink.count("fuzz.campaigns.replayed")
            if run_log.enabled:
                run_log.event(
                    "fuzz.campaign",
                    seed=seed,
                    index=index,
                    label=spec.label(),
                    equivalent=True,
                    replayed=True,
                )
            if progress is not None:
                progress(spec, None)
            continue
        case = build_case(spec)
        result = case.run(machine_factory=machine_factory, sink=sink)
        if sink.enabled:
            sink.count("fuzz.campaigns")
        if journal is not None:
            journal.record(
                key,
                {
                    "equivalent": result.equivalent,
                    "recoveries": result.recoveries,
                    "machine_faults": result.machine_faults,
                },
            )
        if result.equivalent:
            report.equivalent += 1
            report.total_recoveries += result.recoveries
            report.total_handled_faults += result.machine_faults
        else:
            if sink.enabled:
                sink.count("fuzz.divergences")
            finding = FuzzFinding(spec=spec, result=result, case=case)
            if shrink:
                finding.shrink = shrink_case(
                    case,
                    machine_factory=machine_factory,
                    category=result.report.category,
                    initial_result=result,
                    sink=sink,
                )
                finding.case = finding.shrink.case
            if out_dir is not None:
                path = finding.case.save(
                    f"{out_dir}/case-{seed}-{spec.index}.json"
                )
                finding.case_path = str(path)
            report.findings.append(finding)
        if run_log.enabled:
            run_log.event(
                "fuzz.campaign",
                seed=seed,
                index=index,
                label=spec.label(),
                equivalent=result.equivalent,
                replayed=False,
                recoveries=result.recoveries,
                machine_faults=result.machine_faults,
            )
        if progress is not None:
            progress(spec, result)
        if supervisor is not None and supervisor.pending is not None:
            raise supervisor.shutdown()
    return report
