"""Lockstep differential checker: VLIW machine vs scalar golden model.

``run_oracle`` compiles a program under an executable predicating model,
runs the result on the cycle-level :class:`~repro.machine.vliw.VLIWMachine`,
runs the *same* program through the scalar
:class:`~repro.sim.interpreter.Interpreter` (the golden model), and
compares everything architecturally observable:

* the output stream (``out`` values, in order);
* the full sequential register file at halt;
* the final memory snapshot (every stored word);
* fault behaviour (an unhandled fault on one side must be the *same*
  unhandled fault on the other).

Any difference produces a structured :class:`DivergenceReport` naming the
first divergent register/address, the region holding the machine's final
PC, and the machine's committed-vs-squashed buffer state via the existing
:class:`~repro.obs.diagnostics.MachineSnapshot`.

The comparison is exact, not approximate: predicated state buffering is
*supposed* to reach bit-identical sequential state (Section 3), and the
scheduler orders every architecturally visible write before region exits,
so full register/memory equality is an invariant, not a heuristic.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.analysis.branch_prediction import StaticPredictor
from repro.compiler.models import MODELS
from repro.compiler.pipeline import compile_program
from repro.compiler.policy import ModelPolicy
from repro.core.exceptions import ScheduleViolation, UnhandledFault
from repro.ir.cfg import build_cfg
from repro.isa.program import Program
from repro.machine.config import MachineConfig, base_machine
from repro.machine.program import VLIWProgram
from repro.machine.scalar import run_scalar
from repro.machine.vliw import VLIWMachine, VLIWResult
from repro.obs.diagnostics import MachineAbort, MachineSnapshot
from repro.obs.metrics import NULL_SINK, MetricsSink
from repro.sim.interpreter import (
    Interpreter,
    InterpreterResult,
    StepLimitExceeded,
)
from repro.sim.memory import Memory

#: CLI aliases accepted everywhere a model is named; the paper's
#: "predicating" model is region predication.
MODEL_ALIASES = {"predicating": "region_pred"}

#: The model names ``repro verify`` / ``repro fuzz`` accept.
VERIFY_MODELS = ("predicating", "region_pred", "trace_pred")

#: Divergence sites reported before the comparison stops enumerating.
MAX_SITES = 8

#: Default execution budgets -- far above any workload, far below the
#: interpreter/machine global defaults so a livelocked candidate fails
#: fast during fuzzing and shrinking.
DEFAULT_MAX_STEPS = 2_000_000
DEFAULT_MAX_CYCLES = 20_000_000


class _SkipMachine(Exception):
    """Internal: the machine side cannot run (training hit its limit)."""


def resolve_model(model: str) -> str:
    """Canonical executable model name for *model* (accepts aliases)."""
    name = MODEL_ALIASES.get(model, model)
    policy = MODELS.get(name)
    if policy is None:
        raise ValueError(
            f"unknown model {model!r}; choose from {sorted(VERIFY_MODELS)}"
        )
    if not policy.executable:
        raise ValueError(
            f"model {model!r} is analytic-only; the oracle needs an "
            f"executable model ({sorted(VERIFY_MODELS)})"
        )
    return name


@dataclass(frozen=True)
class DivergenceSite:
    """One observable difference between machine and golden model."""

    kind: str  # "output" | "register" | "memory" | "fault" | "error"
    locus: str  # e.g. "out[3]", "r7", "mem[204]", "machine"
    expected: object  # what the scalar golden model produced
    actual: object  # what the machine produced

    def describe(self) -> str:
        return f"{self.locus}: expected {self.expected!r}, got {self.actual!r}"


@dataclass
class DivergenceReport:
    """Structured description of one machine/golden divergence."""

    program: str
    model: str
    category: str  # the first (most severe) site kind
    sites: tuple[DivergenceSite, ...]
    region: str | None = None
    snapshot: MachineSnapshot | None = None
    machine_error: str | None = None
    scalar_error: str | None = None

    def describe(self) -> str:
        lines = [f"{self.program} [{self.model}]: DIVERGED ({self.category})"]
        for site in self.sites:
            lines.append(f"  {site.describe()}")
        if self.region is not None:
            lines.append(f"  final region: {self.region}")
        if self.scalar_error:
            lines.append(f"  scalar error: {self.scalar_error.splitlines()[0]}")
        if self.machine_error:
            lines.append(
                f"  machine error: {self.machine_error.splitlines()[0]}"
            )
        if self.snapshot is not None:
            lines.append("  machine state at divergence:")
            lines.extend(
                f"    {line}" for line in self.snapshot.describe().splitlines()
            )
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "program": self.program,
            "model": self.model,
            "category": self.category,
            "region": self.region,
            "scalar_error": self.scalar_error,
            "machine_error": self.machine_error,
            "sites": [
                {
                    "kind": site.kind,
                    "locus": site.locus,
                    "expected": _jsonable(site.expected),
                    "actual": _jsonable(site.actual),
                }
                for site in self.sites
            ],
        }


def _jsonable(value):
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return repr(value)


@dataclass
class OracleResult:
    """Outcome of one differential check."""

    program: str
    model: str
    equivalent: bool
    report: DivergenceReport | None
    scalar_cycles: int | None = None
    machine_cycles: int | None = None
    scalar_faults: int = 0
    machine_faults: int = 0
    recoveries: int = 0
    compared_registers: int = 0
    compared_words: int = 0

    @property
    def speedup(self) -> float | None:
        if not self.scalar_cycles or not self.machine_cycles:
            return None
        return self.scalar_cycles / self.machine_cycles

    def describe(self) -> str:
        if self.equivalent:
            detail = (
                f"scalar {self.scalar_cycles} cy, machine "
                f"{self.machine_cycles} cy"
            )
            if self.speedup:
                detail += f", speedup {self.speedup:.2f}x"
            if self.recoveries:
                detail += f", {self.recoveries} recoveries"
            if self.machine_faults:
                detail += f", {self.machine_faults} handled faults"
            return f"{self.program} [{self.model}]: EQUIVALENT ({detail})"
        assert self.report is not None
        return self.report.describe()

    def to_dict(self) -> dict:
        return {
            "program": self.program,
            "model": self.model,
            "equivalent": self.equivalent,
            "scalar_cycles": self.scalar_cycles,
            "machine_cycles": self.machine_cycles,
            "scalar_faults": self.scalar_faults,
            "machine_faults": self.machine_faults,
            "recoveries": self.recoveries,
            "compared_registers": self.compared_registers,
            "compared_words": self.compared_words,
            "report": None if self.report is None else self.report.to_dict(),
        }


def region_label(vliw: VLIWProgram, pc: int) -> str | None:
    """The label of the region span containing bundle *pc*."""
    for span in vliw.regions:
        if span.start <= pc < span.end:
            return span.label
    return None


def run_oracle(
    program: Program,
    model: str | ModelPolicy,
    config: MachineConfig | None = None,
    *,
    train_memory: Memory | None = None,
    eval_memory: Memory | None = None,
    fault_handler=None,
    max_steps: int = DEFAULT_MAX_STEPS,
    max_cycles: int = DEFAULT_MAX_CYCLES,
    policy_overrides: dict | None = None,
    machine_factory=None,
    sink: MetricsSink = NULL_SINK,
) -> OracleResult:
    """Differentially check *program* under *model* against the golden model.

    *machine_factory* (signature-compatible with :class:`VLIWMachine`)
    exists so tests can seed a deliberately broken machine and watch the
    oracle catch it.  *policy_overrides* are ``dataclasses.replace``
    fields applied to the resolved policy (the fuzzer sweeps
    ``window_blocks`` / ``share_equivalent_joins`` this way).
    """
    if isinstance(model, str):
        name = resolve_model(model)
        policy = MODELS[name]
    else:
        policy = model
        name = policy.name
    if policy_overrides:
        policy = dataclasses.replace(policy, **policy_overrides)
    config = config if config is not None else base_machine()
    eval_memory = eval_memory if eval_memory is not None else Memory()
    train_memory = (
        train_memory if train_memory is not None else eval_memory.clone()
    )
    factory = machine_factory if machine_factory is not None else VLIWMachine

    if sink.enabled:
        sink.count("oracle.runs")

    # --- golden model: the scalar interpreter -------------------------
    golden: InterpreterResult | None = None
    golden_fault: UnhandledFault | None = None
    scalar_error: str | None = None
    cfg = build_cfg(program)
    interpreter = Interpreter(
        program,
        eval_memory.clone(),
        cfg=cfg,
        fault_handler=fault_handler,
        max_steps=max_steps,
    )
    try:
        golden = interpreter.run()
    except UnhandledFault as fault:
        golden_fault = fault
    except StepLimitExceeded as error:
        scalar_error = str(error)

    # --- compile (training run profiles the branches) -----------------
    machine_error: str | None = None
    machine_fault: UnhandledFault | None = None
    machine_result: VLIWResult | None = None
    machine = None
    snapshot: MachineSnapshot | None = None
    predictor = None
    try:
        # A livelocked training run must become a structured result,
        # not a raw traceback: the step limit is the whole point of
        # ``--max-cycles`` on replayed cases.
        train = run_scalar(
            program,
            cfg,
            train_memory.clone(),
            fault_handler=fault_handler,
            max_steps=max_steps,
        )
        predictor = StaticPredictor.from_trace(train.trace)
    except StepLimitExceeded as error:
        machine_error = f"StepLimitExceeded: training run: {error}"
    try:
        if predictor is None:
            raise _SkipMachine
        compiled = compile_program(program, policy, config, predictor)
        assert compiled.vliw is not None
        machine = factory(
            compiled.vliw,
            config,
            eval_memory.clone(),
            fault_handler=fault_handler,
            max_cycles=max_cycles,
        )
        machine_result = machine.run()
    except _SkipMachine:
        pass  # training blew the step limit; machine_error already says so
    except UnhandledFault as fault:
        machine_fault = fault
    except (ScheduleViolation, MachineAbort) as error:
        machine_error = f"{type(error).__name__}: {error}"
        snapshot = getattr(error, "snapshot", None)
    if machine is not None and snapshot is None:
        snapshot = machine.snapshot()

    # --- compare -------------------------------------------------------
    sites = _compare(
        golden, golden_fault, scalar_error,
        machine_result, machine_fault, machine_error,
    )
    report: DivergenceReport | None = None
    if sites:
        final_region = None
        if machine is not None and snapshot is not None:
            final_region = region_label(machine.program, snapshot.pc)
        report = DivergenceReport(
            program=program.name,
            model=name,
            category=sites[0].kind,
            sites=tuple(sites[:MAX_SITES]),
            region=final_region,
            snapshot=snapshot,
            machine_error=(
                machine_error
                if machine_error is not None
                else (str(machine_fault) if machine_fault else None)
            ),
            scalar_error=(
                scalar_error
                if scalar_error is not None
                else (str(golden_fault) if golden_fault else None)
            ),
        )
        if sink.enabled:
            sink.count("oracle.divergences")
            sink.count(f"oracle.divergences.{report.category}")
    elif sink.enabled:
        sink.count("oracle.equivalent")

    return OracleResult(
        program=program.name,
        model=name,
        equivalent=report is None,
        report=report,
        scalar_cycles=golden.scalar_cycles if golden is not None else None,
        machine_cycles=(
            machine_result.cycles if machine_result is not None else None
        ),
        scalar_faults=golden.handled_faults if golden is not None else 0,
        machine_faults=(
            machine_result.handled_faults if machine_result is not None else 0
        ),
        recoveries=(
            machine_result.recoveries if machine_result is not None else 0
        ),
        compared_registers=(
            len(golden.registers)
            if golden is not None and machine_result is not None
            else 0
        ),
        compared_words=(
            len(golden.memory.snapshot())
            if golden is not None and machine_result is not None
            else 0
        ),
    )


def _compare(
    golden: InterpreterResult | None,
    golden_fault: UnhandledFault | None,
    scalar_error: str | None,
    machine_result: VLIWResult | None,
    machine_fault: UnhandledFault | None,
    machine_error: str | None,
) -> list[DivergenceSite]:
    """All observable differences, most severe first."""
    sites: list[DivergenceSite] = []

    # Hard failures first: a machine abort or a step-limit blowout is
    # never equivalence, whatever the other side did.
    if machine_error is not None:
        sites.append(
            DivergenceSite(
                kind="error",
                locus="machine",
                expected="completion",
                actual=machine_error.splitlines()[0],
            )
        )
        return sites
    if scalar_error is not None:
        sites.append(
            DivergenceSite(
                kind="error",
                locus="scalar",
                expected="completion",
                actual=scalar_error.splitlines()[0],
            )
        )
        return sites

    # Fault parity: both sides must trap identically or not at all.
    if golden_fault is not None or machine_fault is not None:
        g = golden_fault.fault if golden_fault is not None else None
        m = machine_fault.fault if machine_fault is not None else None
        g_key = (g.kind.value, g.address) if g is not None else None
        m_key = (m.kind.value, m.address) if m is not None else None
        if g_key != m_key:
            sites.append(
                DivergenceSite(
                    kind="fault",
                    locus="unhandled-fault",
                    expected=g_key,
                    actual=m_key,
                )
            )
        return sites  # equivalent-by-fault: no state to compare

    assert golden is not None and machine_result is not None

    # Output stream.
    g_out, m_out = golden.output, machine_result.output
    for index, (expected, actual) in enumerate(zip(g_out, m_out)):
        if expected != actual:
            sites.append(
                DivergenceSite("output", f"out[{index}]", expected, actual)
            )
            break
    if not sites and len(g_out) != len(m_out):
        sites.append(
            DivergenceSite("output", "len(out)", len(g_out), len(m_out))
        )

    # Full register file.
    for reg, (expected, actual) in enumerate(
        zip(golden.registers, machine_result.registers)
    ):
        if expected != actual:
            sites.append(DivergenceSite("register", f"r{reg}", expected, actual))
            if len(sites) >= MAX_SITES:
                return sites

    # Final memory image.
    g_mem = golden.memory.snapshot()
    m_mem = machine_result.memory.snapshot()
    for address in sorted(g_mem.keys() | m_mem.keys()):
        expected, actual = g_mem.get(address), m_mem.get(address)
        if expected != actual:
            sites.append(
                DivergenceSite("memory", f"mem[{address}]", expected, actual)
            )
            if len(sites) >= MAX_SITES:
                return sites
    return sites
