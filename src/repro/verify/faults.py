"""Fault-injection campaigns against the predicated buffering hardware.

Section 3's protection argument is that *buffered* speculative state can
never silently corrupt the architectural state: every buffered value
carries a predicate and an E flag, and the per-entry commit hardware
either squashes it (predicate FALSE), or -- when a buffered exception
would commit -- rolls the machine back into recovery mode, which
re-executes the region and recomputes the value.  This module tests that
protection boundary directly, by corrupting machine state mid-run and
classifying what happens against the oracle:

==============  =========================================================
point           corrupted state / allowed outcomes
==============  =========================================================
regfile         a spurious E flag raised on an undecided
                :class:`PendingWrite` -- the architecture's own fault
                model (a speculative op that flagged an exception).
                Allowed: MASKED (predicate squashes the entry, the E
                flag with it), RECOVERED (the E-flag commit rolls the
                machine back and recovery re-execution reaches the same
                architectural state), DETECTED (structured abort).
                Never DIVERGED: spurious buffered exceptions are inside
                the protection boundary.
store_buffer    a spurious E flag on an undecided speculative
                :class:`StoreBufferEntry` -- same allowed set.
ccr             a *specified* CCR bit flipped.  The CCR is architectural
                control state -- outside the buffering protection
                boundary -- so corruption may change the computation:
                DIVERGED is allowed *and is itself the point*: the
                oracle must catch it (this doubles as a sensitivity /
                mutation test of the oracle).  Also MASKED / RECOVERED /
                DETECTED.
btb             a BTB slot evicted (junk key).  The BTB is strictly a
                timing structure, so the only allowed outcome is MASKED
                -- any architectural effect is a modelling bug.
==============  =========================================================

*Why E flags and not bit-flipped values?*  The paper's protection claim
(Section 3) is about the commit/squash path: buffered state cannot reach
the sequential state unless its predicate commits, and a buffered
exception cannot be lost.  It is *not* an ECC claim about the buffered
bits themselves: a flipped data value can legally leak through a shadow
read into a condition-set -- architectural control state -- before its
producer's predicate resolves, and the differential oracle (not the
machine) is what catches that.  Raising E flags tests exactly what the
architecture promises: recovery from an arbitrary buffered exception at
an arbitrary cycle must be semantically invisible.

An injection that finds no eligible target retries every subsequent
cycle; a run where it never applies is reported ``not_applied`` (always
allowed).  The campaign asserts every trial's outcome is in its point's
allowed set -- "never a silent wrong answer" -- and reports violations
structurally.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.core.exceptions import FaultKind, FaultRecord
from repro.core.predicate import PredValue
from repro.machine.config import base_machine
from repro.machine.vliw import VLIWMachine
from repro.obs.metrics import NULL_SINK, MetricsSink
from repro.verify.case import ReproCase
from repro.workloads.synthetic import generate

INJECTION_POINTS = ("regfile", "store_buffer", "ccr", "btb")

#: Outcomes each point may legally produce (``not_applied`` is always
#: allowed and never counts against the matrix).
ALLOWED_OUTCOMES: dict[str, frozenset[str]] = {
    "regfile": frozenset({"masked", "recovered", "detected"}),
    "store_buffer": frozenset({"masked", "recovered", "detected"}),
    "ccr": frozenset({"masked", "recovered", "detected", "diverged"}),
    "btb": frozenset({"masked"}),
}


@dataclass(frozen=True)
class InjectionSpec:
    """What to corrupt, and from which cycle to start trying."""

    point: str
    cycle: int
    salt: int  # seeds the in-machine target-choice RNG


class InjectingMachine(VLIWMachine):
    """A VLIWMachine that corrupts one piece of state mid-run.

    The injection is attempted at the top of every cycle's commit tick
    from ``spec.cycle`` on, until an eligible target exists; buffered-
    state injections only target entries whose predicate is undecided
    (matching physically meaningful corruption of in-flight state).
    """

    def __init__(self, *args, injection: InjectionSpec, **kwargs):
        super().__init__(*args, **kwargs)
        self.injection = injection
        self._inject_rng = random.Random(f"inject:{injection.salt}")
        self.applied_cycle: int | None = None
        self.applied_detail: str | None = None

    def _tick(self) -> None:
        if self.applied_cycle is None and self.cycle >= self.injection.cycle:
            detail = self._try_inject()
            if detail is not None:
                self.applied_cycle = self.cycle
                self.applied_detail = detail
                # Injection plants E flags behind the machine's back;
                # re-arm the exception-commit scan guard.
                self._maybe_fault = True
        super()._tick()

    # -- injection targets ---------------------------------------------
    def _undecided(self, pred) -> bool:
        """Undecided now *and* under the future condition (recovery)."""
        if pred.evaluate(self.ccr.values()) is not PredValue.UNSPEC:
            return False
        if self.future_ccr is not None:
            return pred.evaluate(self.future_ccr.values()) is PredValue.UNSPEC
        return True

    def _try_inject(self) -> str | None:
        point = self.injection.point
        if point == "regfile":
            candidates = [
                (reg, write)
                for reg, entry in enumerate(self.regfile.entries)
                for write in entry.pending
                if write.fault is None and self._undecided(write.pred)
            ]
            if not candidates:
                return None
            reg, write = self._inject_rng.choice(candidates)
            write.fault = _injected_fault()
            return f"regfile r{reg} pred {write.pred}"
        if point == "store_buffer":
            candidates = [
                entry
                for entry in self.store_buffer.pending_entries()
                if entry.speculative
                and entry.valid
                and entry.fault is None
                and self._undecided(entry.pred)
            ]
            if not candidates:
                return None
            entry = self._inject_rng.choice(candidates)
            entry.fault = _injected_fault()
            locus = "out" if entry.address is None else f"mem[{entry.address}]"
            return f"store-buffer {locus} pred {entry.pred}"
        if point == "ccr":
            specified = [
                index
                for index in range(self.ccr.num_entries)
                if self.ccr.get(index) is not None
            ]
            if not specified:
                return None
            index = self._inject_rng.choice(specified)
            value = self.ccr.get(index)
            self.ccr.set(index, not value)
            return f"ccr c{index} {value} -> {not value}"
        if point == "btb":
            if self._btb is None:
                return None
            slot = self._inject_rng.randrange(len(self._btb._slots))
            self._btb._slots[slot] = ("injected", self._inject_rng.random())
            return f"btb slot {slot} evicted"
        raise ValueError(f"unknown injection point {point!r}")


def _injected_fault() -> FaultRecord:
    return FaultRecord(
        kind=FaultKind.MEMORY,
        instruction_uid=-1,
        detail="injected corruption (E flag raised by fault injector)",
    )


class _ProbeMachine(VLIWMachine):
    """Clean run that records, per point, the cycles with a live target.

    Execution is deterministic, so an :class:`InjectingMachine` replaying
    the same case evolves identically up to the injection -- a trigger
    chosen from these cycles is guaranteed to find something to corrupt.
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.target_cycles: dict[str, list[int]] = {
            point: [] for point in INJECTION_POINTS
        }

    def _undecided(self, pred) -> bool:
        if pred.evaluate(self.ccr.values()) is not PredValue.UNSPEC:
            return False
        if self.future_ccr is not None:
            return pred.evaluate(self.future_ccr.values()) is PredValue.UNSPEC
        return True

    def _tick(self) -> None:
        if any(
            self._undecided(write.pred)
            for entry in self.regfile.entries
            for write in entry.pending
        ):
            self.target_cycles["regfile"].append(self.cycle)
        if any(
            entry.speculative and entry.valid and self._undecided(entry.pred)
            for entry in self.store_buffer.pending_entries()
        ):
            self.target_cycles["store_buffer"].append(self.cycle)
        if any(
            self.ccr.get(index) is not None
            for index in range(self.ccr.num_entries)
        ):
            self.target_cycles["ccr"].append(self.cycle)
        if self._btb is not None:
            self.target_cycles["btb"].append(self.cycle)
        super()._tick()


@dataclass
class InjectionResult:
    """One trial's classification."""

    trial: int
    point: str
    program_seed: int
    model: str
    trigger_cycle: int
    outcome: str  # masked|recovered|detected|diverged|not_applied
    allowed: bool
    detail: str | None = None
    divergence_category: str | None = None

    def describe(self) -> str:
        status = "ok" if self.allowed else "VIOLATION"
        text = (
            f"trial {self.trial}: {self.point} @cycle {self.trigger_cycle} "
            f"(seed {self.program_seed}, {self.model}) -> "
            f"{self.outcome.upper()} [{status}]"
        )
        if self.detail:
            text += f" -- {self.detail}"
        return text


@dataclass
class FaultCampaignReport:
    """Outcome matrix of one injection campaign."""

    seed: int
    trials: int
    results: list[InjectionResult] = field(default_factory=list)

    @property
    def violations(self) -> list[InjectionResult]:
        return [r for r in self.results if not r.allowed]

    def outcome_matrix(self) -> dict[str, dict[str, int]]:
        matrix: dict[str, dict[str, int]] = {}
        for result in self.results:
            row = matrix.setdefault(result.point, {})
            row[result.outcome] = row.get(result.outcome, 0) + 1
        return matrix

    def describe(self) -> str:
        lines = [
            f"fault injection: {self.trials} trials (seed {self.seed}), "
            f"{len(self.violations)} violations"
        ]
        for point, row in sorted(self.outcome_matrix().items()):
            counts = ", ".join(
                f"{outcome} {count}" for outcome, count in sorted(row.items())
            )
            lines.append(f"  {point:12s} {counts}")
        for violation in self.violations:
            lines.append(violation.describe())
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "trials": self.trials,
            "matrix": self.outcome_matrix(),
            "violations": [v.describe() for v in self.violations],
        }


def run_fault_campaign(
    trials: int,
    seed: int,
    *,
    points: tuple[str, ...] = INJECTION_POINTS,
    model: str = "region_pred",
    sink: MetricsSink = NULL_SINK,
) -> FaultCampaignReport:
    """Run *trials* injection trials derived deterministically from *seed*."""
    for point in points:
        if point not in ALLOWED_OUTCOMES:
            raise ValueError(f"unknown injection point {point!r}")
    report = FaultCampaignReport(seed=seed, trials=trials)
    for trial in range(trials):
        rng = random.Random(f"repro-faults:{seed}:{trial}")
        point = points[trial % len(points)]
        config = (
            base_machine(btb_entries=16) if point == "btb" else base_machine()
        )

        # Find a program whose clean run actually exposes the point (a
        # tiny program may never buffer speculative state); the probe
        # also yields the cycles at which a target exists, so the
        # trigger is guaranteed to land on live state.
        case = clean = None
        program_seed = 0
        target_cycles: list[int] = []
        for _ in range(8):
            program_seed = rng.randrange(1 << 20)
            synthetic = generate(
                program_seed,
                predictability=rng.choice((0.5, 0.6)),
                size=rng.choice((3, 4)),
            )
            case = ReproCase.from_synthetic(synthetic, model, config)
            holder: dict[str, _ProbeMachine] = {}

            def probe_factory(*args, **kwargs):
                machine = _ProbeMachine(*args, **kwargs)
                holder["machine"] = machine
                return machine

            clean = case.run(machine_factory=probe_factory)
            if not clean.equivalent:
                raise RuntimeError(
                    "fault campaign requires an equivalent baseline run; "
                    f"seed {program_seed} diverges without injection:\n"
                    + clean.report.describe()
                )
            target_cycles = holder["machine"].target_cycles[point]
            if target_cycles:
                break
        if not target_cycles:
            report.results.append(
                InjectionResult(
                    trial=trial,
                    point=point,
                    program_seed=program_seed,
                    model=model,
                    trigger_cycle=0,
                    outcome="not_applied",
                    allowed=True,
                    detail="no cycle exposed a target",
                )
            )
            continue
        trigger = rng.choice(target_cycles)
        spec = InjectionSpec(point=point, cycle=trigger, salt=rng.randrange(1 << 30))

        holder: dict[str, InjectingMachine] = {}

        def factory(*args, **kwargs):
            machine = InjectingMachine(*args, injection=spec, **kwargs)
            holder["machine"] = machine
            return machine

        aborted: str | None = None
        injected = None
        try:
            injected = case.run(machine_factory=factory)
        except AssertionError as error:
            # An internal invariant tripped: a structured abort, not a
            # silent wrong answer.
            aborted = f"invariant: {error}"

        machine = holder.get("machine")
        applied = machine is not None and machine.applied_cycle is not None
        detail = machine.applied_detail if machine is not None else None
        divergence_category = None
        if not applied:
            outcome = "not_applied"
        elif aborted is not None:
            outcome = "detected"
            detail = f"{detail}; {aborted}"
        elif injected is not None and injected.equivalent:
            outcome = (
                "recovered"
                if injected.recoveries > clean.recoveries
                else "masked"
            )
        else:
            assert injected is not None and injected.report is not None
            divergence_category = injected.report.category
            outcome = (
                "detected"
                if injected.report.category == "error"
                else "diverged"
            )
        allowed = outcome == "not_applied" or outcome in ALLOWED_OUTCOMES[point]
        result = InjectionResult(
            trial=trial,
            point=point,
            program_seed=program_seed,
            model=model,
            trigger_cycle=trigger,
            outcome=outcome,
            allowed=allowed,
            detail=detail,
            divergence_category=divergence_category,
        )
        report.results.append(result)
        if sink.enabled:
            sink.count("faults.trials")
            sink.count(f"faults.{point}.{outcome}")
            if not allowed:
                sink.count("faults.violations")
    return report
