"""Delta-debugging minimizer for divergent repro cases.

Given a :class:`~repro.verify.case.ReproCase` whose oracle run diverges,
``shrink_case`` greedily removes chunks of program lines (halving chunk
sizes, ddmin-style) while the *same category* of divergence still
reproduces.  Candidates that fail to parse, fail validation, stop
diverging, or diverge differently are rejected; livelocked candidates
are cut off by *adaptive* step/cycle budgets -- a small multiple of what
the unshrunk case actually needed, not the static worst-case ceilings --
so a mutation that turns the program into an infinite loop costs
milliseconds to reject instead of seconds.  The result is a minimal case
serializable to JSON and replayable via
``repro verify --replay CASE.json``.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.obs.metrics import NULL_SINK, MetricsSink
from repro.verify.case import ReproCase
from repro.verify.oracle import OracleResult

#: Worst-case execution budgets: a shrunk synthetic program is tiny, so
#: anything still running after this is a livelock, not a repro.  These
#: bound the *initial* (unshrunk) run and cap the adaptive budgets.
SHRINK_MAX_STEPS = 200_000
SHRINK_MAX_CYCLES = 2_000_000

#: Candidate budgets scale with the initial run: removing lines cannot
#: legitimately make the program run much longer, so a candidate gets
#: ``margin * observed`` (floored -- tiny programs deserve slack for
#: recovery replays -- and capped at the static ceilings above).
SHRINK_BUDGET_MARGIN = 8
SHRINK_MIN_STEPS = 2_000
SHRINK_MIN_CYCLES = 10_000


def candidate_budgets(initial: OracleResult | None) -> tuple[int, int]:
    """Step/cycle budgets for candidate runs, from the *initial* run.

    Falls back to the static ceilings when the initial run's cycle
    counts are unknown (e.g. it crashed before completing).
    """
    if initial is None:
        return SHRINK_MAX_STEPS, SHRINK_MAX_CYCLES
    observed = max(initial.scalar_cycles or 0, initial.machine_cycles or 0)
    if observed <= 0:
        return SHRINK_MAX_STEPS, SHRINK_MAX_CYCLES
    scaled = observed * SHRINK_BUDGET_MARGIN
    steps = min(SHRINK_MAX_STEPS, max(SHRINK_MIN_STEPS, scaled))
    cycles = min(SHRINK_MAX_CYCLES, max(SHRINK_MIN_CYCLES, scaled))
    return steps, cycles


def ddmin_lines(
    lines: list[str],
    reproduces,
    *,
    max_attempts: int = 2_000,
    sink: MetricsSink = NULL_SINK,
) -> tuple[list[str], int, int]:
    """Greedy chunk-halving ddmin over text lines.

    Repeatedly deletes chunks (size halving from ``len(lines)//2`` down
    to 1) while ``reproduces(kept_lines)`` stays True; a rejected chunk
    is put back and the window advances.  Returns ``(minimized_lines,
    attempts, accepted)``.  Shared by the divergence shrinker and the
    security-campaign leak shrinker -- *reproduces* owns all domain
    judgment (parse, validate, run, classify).
    """
    lines = list(lines)
    attempts = 0
    accepted = 0
    chunk = max(1, len(lines) // 2)
    while chunk >= 1 and attempts < max_attempts:
        removed_any = False
        start = 0
        while start < len(lines) and attempts < max_attempts:
            kept = lines[:start] + lines[start + chunk:]
            if not kept:
                start += chunk
                continue
            attempts += 1
            if sink.enabled:
                sink.count("shrink.candidates")
            if reproduces(kept):
                lines = kept
                removed_any = True
                accepted += 1
                if sink.enabled:
                    sink.count("shrink.accepted")
                # Retry the same offset: the next chunk slid into place.
            else:
                start += chunk
        if not removed_any:
            chunk //= 2
        elif chunk > len(lines):
            chunk = max(1, len(lines) // 2)
    return lines, attempts, accepted


@dataclass
class ShrinkResult:
    """The minimized case plus how the search went."""

    case: ReproCase
    category: str
    attempts: int
    accepted: int
    original_instructions: int
    shrunk_instructions: int

    def describe(self) -> str:
        return (
            f"shrunk {self.original_instructions} -> "
            f"{self.shrunk_instructions} instructions "
            f"({self.attempts} candidates, {self.accepted} accepted, "
            f"category {self.category})"
        )


def _reproduces(
    case: ReproCase,
    category: str,
    machine_factory,
    sink: MetricsSink,
    max_steps: int,
    max_cycles: int,
) -> bool:
    """Does *case* still produce a *category* divergence?"""
    try:
        result = case.run(
            machine_factory=machine_factory,
            max_steps=max_steps,
            max_cycles=max_cycles,
            sink=sink,
        )
    except Exception:
        # Unparseable/invalid/degenerate candidate (e.g. an unhandled
        # fault during the training run, or a livelocked candidate
        # exceeding its adaptive budget): not a reproduction.
        return False
    return result.report is not None and result.report.category == category


def shrink_case(
    case: ReproCase,
    *,
    machine_factory=None,
    category: str | None = None,
    initial_result: OracleResult | None = None,
    max_attempts: int = 2_000,
    sink: MetricsSink = NULL_SINK,
) -> ShrinkResult:
    """Minimize *case* while its divergence keeps reproducing.

    *category* pins the divergence class to preserve (defaults to the
    category the unshrunk case produces).  *initial_result* is the
    unshrunk case's oracle result, if the caller already has it -- its
    cycle counts size the per-candidate livelock budgets
    (:func:`candidate_budgets`); when absent the initial case is run
    here.  *machine_factory* must match whatever produced the original
    divergence (e.g. a deliberately broken machine subclass under test).
    """
    if category is None or initial_result is None:
        initial_result = case.run(
            machine_factory=machine_factory,
            max_steps=SHRINK_MAX_STEPS,
            max_cycles=SHRINK_MAX_CYCLES,
            sink=sink,
        )
        if category is None:
            if initial_result.report is None:
                raise ValueError(
                    f"{case.name}: case does not diverge; nothing to shrink"
                )
            category = initial_result.report.category
    max_steps, max_cycles = candidate_budgets(initial_result)

    original_instructions = case.instruction_count()

    def candidate(kept: list[str]) -> ReproCase:
        return dataclasses.replace(
            case, program_text="\n".join(kept) + "\n"
        )

    lines, attempts, accepted = ddmin_lines(
        case.program_text.splitlines(),
        lambda kept: _reproduces(
            candidate(kept),
            category,
            machine_factory,
            sink,
            max_steps,
            max_cycles,
        ),
        max_attempts=max_attempts,
        sink=sink,
    )

    shrunk = candidate(lines)
    shrunk.metadata = dict(case.metadata)
    shrunk.metadata.update(
        {
            "shrunk": True,
            "shrink_category": category,
            "shrink_attempts": attempts,
            "original_instructions": original_instructions,
        }
    )
    return ShrinkResult(
        case=shrunk,
        category=category,
        attempts=attempts,
        accepted=accepted,
        original_instructions=original_instructions,
        shrunk_instructions=shrunk.instruction_count(),
    )
