"""Delta-debugging minimizer for divergent repro cases.

Given a :class:`~repro.verify.case.ReproCase` whose oracle run diverges,
``shrink_case`` greedily removes chunks of program lines (halving chunk
sizes, ddmin-style) while the *same category* of divergence still
reproduces.  Candidates that fail to parse, fail validation, stop
diverging, or diverge differently are rejected; livelocked candidates are
cut off by tight step/cycle budgets and rejected too.  The result is a
minimal case serializable to JSON and replayable via
``repro verify --replay CASE.json``.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.obs.metrics import NULL_SINK, MetricsSink
from repro.verify.case import ReproCase

#: Execution budgets for candidate runs: a shrunk synthetic program is
#: tiny, so anything still running after this is a livelock, not a repro.
SHRINK_MAX_STEPS = 200_000
SHRINK_MAX_CYCLES = 2_000_000


@dataclass
class ShrinkResult:
    """The minimized case plus how the search went."""

    case: ReproCase
    category: str
    attempts: int
    accepted: int
    original_instructions: int
    shrunk_instructions: int

    def describe(self) -> str:
        return (
            f"shrunk {self.original_instructions} -> "
            f"{self.shrunk_instructions} instructions "
            f"({self.attempts} candidates, {self.accepted} accepted, "
            f"category {self.category})"
        )


def _reproduces(
    case: ReproCase,
    category: str,
    machine_factory,
    sink: MetricsSink,
) -> bool:
    """Does *case* still produce a *category* divergence?"""
    try:
        result = case.run(
            machine_factory=machine_factory,
            max_steps=SHRINK_MAX_STEPS,
            max_cycles=SHRINK_MAX_CYCLES,
            sink=sink,
        )
    except Exception:
        # Unparseable/invalid/degenerate candidate (e.g. an unhandled
        # fault during the training run): not a reproduction.
        return False
    return result.report is not None and result.report.category == category


def shrink_case(
    case: ReproCase,
    *,
    machine_factory=None,
    category: str | None = None,
    max_attempts: int = 2_000,
    sink: MetricsSink = NULL_SINK,
) -> ShrinkResult:
    """Minimize *case* while its divergence keeps reproducing.

    *category* pins the divergence class to preserve (defaults to the
    category the unshrunk case produces).  *machine_factory* must match
    whatever produced the original divergence (e.g. a deliberately broken
    machine subclass under test).
    """
    if category is None:
        initial = case.run(
            machine_factory=machine_factory,
            max_steps=SHRINK_MAX_STEPS,
            max_cycles=SHRINK_MAX_CYCLES,
            sink=sink,
        )
        if initial.report is None:
            raise ValueError(
                f"{case.name}: case does not diverge; nothing to shrink"
            )
        category = initial.report.category

    original_instructions = case.instruction_count()
    lines = case.program_text.splitlines()
    attempts = 0
    accepted = 0

    def candidate(kept: list[str]) -> ReproCase:
        return dataclasses.replace(
            case, program_text="\n".join(kept) + "\n"
        )

    chunk = max(1, len(lines) // 2)
    while chunk >= 1 and attempts < max_attempts:
        removed_any = False
        start = 0
        while start < len(lines) and attempts < max_attempts:
            kept = lines[:start] + lines[start + chunk:]
            if not kept:
                start += chunk
                continue
            attempts += 1
            if sink.enabled:
                sink.count("shrink.candidates")
            if _reproduces(candidate(kept), category, machine_factory, sink):
                lines = kept
                removed_any = True
                accepted += 1
                if sink.enabled:
                    sink.count("shrink.accepted")
                # Retry the same offset: the next chunk slid into place.
            else:
                start += chunk
        if not removed_any:
            chunk //= 2
        elif chunk > len(lines):
            chunk = max(1, len(lines) // 2)

    shrunk = candidate(lines)
    shrunk.metadata = dict(case.metadata)
    shrunk.metadata.update(
        {
            "shrunk": True,
            "shrink_category": category,
            "shrink_attempts": attempts,
            "original_instructions": original_instructions,
        }
    )
    return ShrinkResult(
        case=shrunk,
        category=category,
        attempts=attempts,
        accepted=accepted,
        original_instructions=original_instructions,
        shrunk_instructions=shrunk.instruction_count(),
    )
