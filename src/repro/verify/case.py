"""Serializable repro cases: a divergence, frozen to JSON.

A :class:`ReproCase` captures everything a divergence needs to reproduce
deterministically: the program text, the initial memory image (resident
words plus, for demand-paged campaigns, the pager's backing store), the
model with any policy overrides, and the machine configuration.  Cases
round-trip through JSON (``repro verify --replay CASE.json``) so a fuzz
finding shrunk on one machine replays bit-identically anywhere.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.compiler.models import MODELS
from repro.core.exceptions import FaultKind
from repro.isa.parser import parse_program
from repro.isa.program import Program
from repro.machine.config import MachineConfig
from repro.obs.metrics import NULL_SINK, MetricsSink
from repro.sim.memory import Memory

#: Envelope identifier; bump on breaking layout changes.
CASE_SCHEMA = "repro-verify-case/v1"


def _with_path(path, reason: str) -> str:
    return f"{path}: {reason}" if path is not None else reason


@dataclass
class ReproCase:
    """One self-contained, replayable differential-check input."""

    name: str
    program_text: str
    model: str
    config: MachineConfig
    memory_words: dict[int, int] = field(default_factory=dict)
    mapped_only: bool = False
    backing: dict[int, int] | None = None  # pager backing store
    policy_overrides: dict = field(default_factory=dict)
    metadata: dict = field(default_factory=dict)

    # -- reconstruction ------------------------------------------------
    def program(self) -> Program:
        return parse_program(self.program_text, name=self.name)

    def make_memory(self) -> Memory:
        memory = Memory(mapped_only=self.mapped_only)
        for address, value in self.memory_words.items():
            if self.mapped_only:
                memory.map(address, value)
            else:
                memory.store(address, value)
        return memory

    def make_fault_handler(self):
        """A pager over the backing store, or None for plain memory."""
        if self.backing is None:
            return None
        backing = self.backing

        def pager(fault, executor) -> bool:
            if fault.kind is FaultKind.MEMORY and fault.address in backing:
                executor.memory.map(fault.address, backing[fault.address])
                return True
            return False

        return pager

    def run(
        self,
        *,
        machine_factory=None,
        max_steps: int | None = None,
        max_cycles: int | None = None,
        sink: MetricsSink = NULL_SINK,
    ):
        """Replay the case through the oracle; returns an OracleResult."""
        from repro.verify.oracle import run_oracle

        kwargs: dict = {}
        if max_steps is not None:
            kwargs["max_steps"] = max_steps
        if max_cycles is not None:
            kwargs["max_cycles"] = max_cycles
        return run_oracle(
            self.program(),
            self.model,
            self.config,
            eval_memory=self.make_memory(),
            fault_handler=self.make_fault_handler(),
            policy_overrides=self.policy_overrides,
            machine_factory=machine_factory,
            sink=sink,
            **kwargs,
        )

    # -- serialization -------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "schema": CASE_SCHEMA,
            "name": self.name,
            "program": self.program_text,
            "model": self.model,
            "config": dataclasses.asdict(self.config),
            "memory": {str(a): v for a, v in sorted(self.memory_words.items())},
            "mapped_only": self.mapped_only,
            "backing": (
                None
                if self.backing is None
                else {str(a): v for a, v in sorted(self.backing.items())}
            ),
            "policy_overrides": dict(self.policy_overrides),
            "metadata": dict(self.metadata),
        }

    @classmethod
    def from_dict(cls, document: dict, *, path=None) -> "ReproCase":
        from repro.ckpt.state import schema_mismatch_message

        if not isinstance(document, dict):
            raise ValueError(
                _with_path(path, "repro case must be a JSON object")
            )
        schema = document.get("schema")
        if schema != CASE_SCHEMA:
            raise ValueError(
                _with_path(
                    path,
                    "not a repro case: "
                    + schema_mismatch_message(schema, CASE_SCHEMA),
                )
            )
        model = document["model"]
        from repro.verify.oracle import resolve_model

        resolve_model(model)  # validate early, not at replay time
        backing = document.get("backing")
        return cls(
            name=document["name"],
            program_text=document["program"],
            model=model,
            config=MachineConfig(**document["config"]),
            memory_words={
                int(a): v for a, v in document.get("memory", {}).items()
            },
            mapped_only=bool(document.get("mapped_only", False)),
            backing=(
                None
                if backing is None
                else {int(a): v for a, v in backing.items()}
            ),
            policy_overrides=dict(document.get("policy_overrides", {})),
            metadata=dict(document.get("metadata", {})),
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=2) + "\n"

    @classmethod
    def from_json(cls, text: str, *, path=None) -> "ReproCase":
        try:
            document = json.loads(text)
        except json.JSONDecodeError as error:
            raise ValueError(
                _with_path(path, f"not JSON ({error})")
            ) from error
        return cls.from_dict(document, path=path)

    def save(self, path: str | Path) -> Path:
        """Freeze the case atomically (temp + ``os.replace``): a kill
        mid-write can never leave a truncated, unreplayable JSON."""
        from repro.ckpt.engine import atomic_write_text

        return atomic_write_text(path, self.to_json())

    @classmethod
    def load(cls, path: str | Path) -> "ReproCase":
        """Read one case file.  Every failure mode -- unreadable file,
        bad JSON, wrong schema -- reports the path plus the reason in a
        :class:`ValueError`, never a raw traceback type."""
        try:
            text = Path(path).read_text()
        except OSError as error:
            raise ValueError(
                _with_path(path, f"unreadable case ({error})")
            ) from error
        return cls.from_json(text, path=path)

    def instruction_count(self) -> int:
        return len(self.program().instructions)

    @classmethod
    def from_synthetic(
        cls,
        synthetic,
        model: str,
        config: MachineConfig,
        *,
        resident: Memory | None = None,
        backing: dict[int, int] | None = None,
        policy_overrides: dict | None = None,
        metadata: dict | None = None,
    ) -> "ReproCase":
        """Freeze a synthetic-program campaign input into a case."""
        from repro.isa.printer import format_program

        if resident is not None:
            memory_words = resident.snapshot()
            mapped_only = resident.mapped_only
        else:
            memory_words = synthetic.make_memory().snapshot()
            mapped_only = False
        return cls(
            name=synthetic.program.name,
            program_text=format_program(synthetic.program),
            model=model,
            config=config,
            memory_words=memory_words,
            mapped_only=mapped_only,
            backing=backing,
            policy_overrides=dict(policy_overrides or {}),
            metadata=dict(metadata or {}),
        )
