"""Lockstep divergence forensics: effect streams + flight windows.

Where :mod:`repro.verify.oracle` answers *whether* the machine matches
the scalar golden model, ``run_diff_trace`` answers *where it first went
wrong*.  Both sides run fully instrumented -- a committed-effect stream
(:mod:`repro.obs.effects`) and a bounded flight recorder
(:mod:`repro.obs.flight`) each -- then the streams are aligned under the
schedule-invariant comparison rules and the first divergent
architectural effect is reported together with a +/-K-event
flight-recorder window from each side.

The result serializes to a versioned ``repro-tracediff/v1`` artifact,
and ``--trace-out`` merges the machine's Perfetto cycle trace (pid 1)
with a synthesized scalar timeline (pid 2) into one trace for visual
diffing.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.analysis.branch_prediction import StaticPredictor
from repro.compiler.models import MODELS
from repro.compiler.pipeline import compile_program
from repro.compiler.policy import ModelPolicy
from repro.core.exceptions import ScheduleViolation, UnhandledFault
from repro.ir.cfg import build_cfg
from repro.isa.program import Program
from repro.machine.config import MachineConfig, base_machine
from repro.machine.scalar import run_scalar
from repro.machine.vliw import VLIWMachine
from repro.obs.diagnostics import MachineAbort
from repro.obs.effects import EffectDivergence, EffectStream, first_divergence
from repro.obs.flight import DEFAULT_CAPACITY, FlightEvent, RingRecorder
from repro.obs.trace_events import CycleTraceRecorder
from repro.sim.interpreter import Interpreter, StepLimitExceeded
from repro.sim.memory import Memory
from repro.verify.case import ReproCase
from repro.verify.oracle import (
    DEFAULT_MAX_CYCLES,
    DEFAULT_MAX_STEPS,
    resolve_model,
)

#: Envelope identifier for the diff-trace artifact; bump on layout changes.
TRACEDIFF_SCHEMA = "repro-tracediff/v1"

#: Default +/-K flight-recorder window around the divergent effect.
DEFAULT_WINDOW = 8

#: Trailing effects included in the artifact for context.
_EFFECT_TAIL = 16


class _SkipMachine(Exception):
    """Internal: the machine side cannot run (training hit its limit)."""


@dataclass
class SideRun:
    """One instrumented execution (scalar golden model or VLIW machine)."""

    name: str
    effects: EffectStream
    flight: RingRecorder
    cycles: int | None = None
    error: str | None = None
    unhandled: tuple[str, int | None] | None = None  # (kind, address)
    registers: dict[int, int] | None = None
    handled_faults: int = 0

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "cycles": self.cycles,
            "error": self.error,
            "unhandled_fault": (
                list(self.unhandled) if self.unhandled is not None else None
            ),
            "handled_faults": self.handled_faults,
            "effect_count": len(self.effects),
            "flight_recorded": self.flight.seq,
            "flight_dropped": self.flight.dropped,
            "effects_tail": [
                effect.to_dict()
                for effect in self.effects.effects[-_EFFECT_TAIL:]
            ],
        }


@dataclass
class TraceDiffResult:
    """Everything one lockstep diff produced."""

    program: str
    model: str
    equivalent: bool
    divergence: EffectDivergence | None
    scalar: SideRun
    machine: SideRun
    window: int
    scalar_window: list[FlightEvent] = dataclasses.field(default_factory=list)
    machine_window: list[FlightEvent] = dataclasses.field(default_factory=list)

    def describe(self) -> str:
        lines = []
        if self.equivalent:
            lines.append(
                f"{self.program} [{self.model}]: EQUIVALENT "
                f"(scalar {len(self.scalar.effects)} effects, "
                f"machine {len(self.machine.effects)} effects)"
            )
            return "\n".join(lines)
        lines.append(f"{self.program} [{self.model}]: DIVERGED")
        for side in (self.scalar, self.machine):
            if side.error is not None:
                lines.append(f"  {side.name} error: {side.error.splitlines()[0]}")
            if side.unhandled is not None:
                kind, address = side.unhandled
                lines.append(f"  {side.name} unhandled fault: {kind}@{address}")
        if self.divergence is not None:
            lines.extend(
                "  " + line
                for line in self.divergence.describe().splitlines()
            )
        for side, window in (
            (self.scalar, self.scalar_window),
            (self.machine, self.machine_window),
        ):
            if not window:
                continue
            lines.append(
                f"  {side.name} flight window "
                f"(+/-{self.window} events around the divergence):"
            )
            lines.extend("    " + event.describe() for event in window)
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "schema": TRACEDIFF_SCHEMA,
            "program": self.program,
            "model": self.model,
            "equivalent": self.equivalent,
            "window": self.window,
            "divergence": (
                None if self.divergence is None else self.divergence.to_dict()
            ),
            "scalar": {
                **self.scalar.to_dict(),
                "flight_window": [e.to_dict() for e in self.scalar_window],
            },
            "machine": {
                **self.machine.to_dict(),
                "flight_window": [e.to_dict() for e in self.machine_window],
            },
        }


def validate_tracediff(document: object) -> None:
    """Schema-check a loaded tracediff artifact (tests, CI smoke)."""
    if not isinstance(document, dict):
        raise ValueError("tracediff artifact must be a JSON object")
    if document.get("schema") != TRACEDIFF_SCHEMA:
        raise ValueError(
            f"not a tracediff artifact: schema {document.get('schema')!r}, "
            f"expected {TRACEDIFF_SCHEMA!r}"
        )
    for key in ("program", "model", "equivalent", "window", "scalar", "machine"):
        if key not in document:
            raise ValueError(f"tracediff artifact lacks {key!r}")
    if not document["equivalent"] and document.get("divergence") is None:
        for side in ("scalar", "machine"):
            info = document[side]
            if info.get("error") or info.get("unhandled_fault"):
                break
        else:
            raise ValueError(
                "non-equivalent tracediff has neither a divergence "
                "nor a side error"
            )
    for side in ("scalar", "machine"):
        info = document[side]
        if not isinstance(info, dict) or "flight_window" not in info:
            raise ValueError(f"tracediff {side} side lacks flight_window")


def _cut_window(
    side: SideRun, divergence: EffectDivergence | None, k: int
) -> list[FlightEvent]:
    """+/-k flight events around *side*'s divergence anchor."""
    if divergence is None:
        return []
    effect = (
        divergence.scalar_effect
        if side.name == "scalar"
        else divergence.machine_effect
    )
    anchor = effect.flight_seq if effect is not None else None
    if anchor is None:
        # No anchored effect on this side (e.g. the effect is missing
        # entirely): window around the end of the recording.
        anchor = max(side.flight.seq - 1, 0)
    return side.flight.window(anchor, k)


def run_diff_trace(
    program: Program,
    model: str | ModelPolicy,
    config: MachineConfig | None = None,
    *,
    train_memory: Memory | None = None,
    eval_memory: Memory | None = None,
    fault_handler=None,
    max_steps: int = DEFAULT_MAX_STEPS,
    max_cycles: int = DEFAULT_MAX_CYCLES,
    policy_overrides: dict | None = None,
    machine_factory=None,
    window: int = DEFAULT_WINDOW,
    flight_capacity: int = DEFAULT_CAPACITY,
    tracer: CycleTraceRecorder | None = None,
) -> TraceDiffResult:
    """Run both sides fully instrumented and align their effect streams.

    Mirrors :func:`repro.verify.oracle.run_oracle`'s compilation and
    memory plumbing exactly, so a case that diverges under the oracle
    diverges identically here.  *tracer*, when given, is attached to the
    machine run (see :func:`merged_trace` for the two-process view).
    """
    if isinstance(model, str):
        name = resolve_model(model)
        policy = MODELS[name]
    else:
        policy = model
        name = policy.name
    if policy_overrides:
        policy = dataclasses.replace(policy, **policy_overrides)
    config = config if config is not None else base_machine()
    eval_memory = eval_memory if eval_memory is not None else Memory()
    train_memory = (
        train_memory if train_memory is not None else eval_memory.clone()
    )
    factory = machine_factory if machine_factory is not None else VLIWMachine

    # --- scalar golden model, instrumented ----------------------------
    scalar = SideRun(
        name="scalar",
        effects=None,  # set below (stream needs the recorder)
        flight=RingRecorder(flight_capacity, source="scalar"),
    )
    scalar.effects = EffectStream("scalar", scalar.flight)
    cfg = build_cfg(program)
    interpreter = Interpreter(
        program,
        eval_memory.clone(),
        cfg=cfg,
        fault_handler=fault_handler,
        max_steps=max_steps,
        flight=scalar.flight,
        effects=scalar.effects,
    )
    try:
        golden = interpreter.run()
        scalar.cycles = golden.scalar_cycles
        scalar.registers = dict(enumerate(golden.registers))
        scalar.handled_faults = golden.handled_faults
    except UnhandledFault as fault:
        scalar.unhandled = (fault.fault.kind.value, fault.fault.address)
        scalar.handled_faults = interpreter.handled_faults
    except StepLimitExceeded as error:
        scalar.error = str(error)

    # --- machine, instrumented ----------------------------------------
    machine_side = SideRun(
        name="machine",
        effects=None,
        flight=RingRecorder(flight_capacity, source="machine"),
    )
    machine_side.effects = EffectStream("machine", machine_side.flight)
    predictor = None
    try:
        # Mirror the oracle: a livelocked training run becomes a
        # structured machine-side error, never a raw traceback.
        train = run_scalar(
            program,
            cfg,
            train_memory.clone(),
            fault_handler=fault_handler,
            max_steps=max_steps,
        )
        predictor = StaticPredictor.from_trace(train.trace)
    except StepLimitExceeded as error:
        machine_side.error = f"StepLimitExceeded: training run: {error}"
    machine = None
    try:
        if predictor is None:
            raise _SkipMachine
        compiled = compile_program(program, policy, config, predictor)
        assert compiled.vliw is not None
        machine = factory(
            compiled.vliw,
            config,
            eval_memory.clone(),
            fault_handler=fault_handler,
            max_cycles=max_cycles,
            flight=machine_side.flight,
            effects=machine_side.effects,
            tracer=tracer,
        )
        result = machine.run()
        machine_side.cycles = result.cycles
        machine_side.registers = dict(enumerate(result.registers))
        machine_side.handled_faults = result.handled_faults
    except _SkipMachine:
        pass  # training blew the step limit; the side error already says so
    except UnhandledFault as fault:
        machine_side.unhandled = (fault.fault.kind.value, fault.fault.address)
        if machine is not None:
            machine_side.handled_faults = machine.handled_faults
    except (ScheduleViolation, MachineAbort) as error:
        machine_side.error = f"{type(error).__name__}: {error}"

    # --- align ---------------------------------------------------------
    divergence = first_divergence(
        scalar.effects,
        machine_side.effects,
        scalar_registers=scalar.registers,
        machine_registers=machine_side.registers,
    )
    fault_parity = scalar.unhandled == machine_side.unhandled
    equivalent = (
        divergence is None
        and scalar.error is None
        and machine_side.error is None
        and fault_parity
    )
    return TraceDiffResult(
        program=program.name,
        model=name,
        equivalent=equivalent,
        divergence=divergence,
        scalar=scalar,
        machine=machine_side,
        window=window,
        scalar_window=_cut_window(scalar, divergence, window),
        machine_window=_cut_window(machine_side, divergence, window),
    )


def diff_trace_case(
    case: ReproCase,
    *,
    machine_factory=None,
    max_steps: int | None = None,
    max_cycles: int | None = None,
    window: int = DEFAULT_WINDOW,
    flight_capacity: int = DEFAULT_CAPACITY,
    tracer: CycleTraceRecorder | None = None,
) -> TraceDiffResult:
    """Replay a serialized repro case through the lockstep diff."""
    kwargs: dict = {}
    if max_steps is not None:
        kwargs["max_steps"] = max_steps
    if max_cycles is not None:
        kwargs["max_cycles"] = max_cycles
    return run_diff_trace(
        case.program(),
        case.model,
        case.config,
        eval_memory=case.make_memory(),
        fault_handler=case.make_fault_handler(),
        policy_overrides=case.policy_overrides,
        machine_factory=machine_factory,
        window=window,
        flight_capacity=flight_capacity,
        tracer=tracer,
        **kwargs,
    )


def merged_trace(
    result: TraceDiffResult, tracer: CycleTraceRecorder | None
) -> list[dict]:
    """One Perfetto document holding both sides, cycle-aligned.

    The machine keeps its full cycle trace (pid 1, when *tracer* was
    attached to the run) plus an ``effects`` instant track; the scalar
    side (pid 2) gets its timeline synthesized from the flight recorder
    and effect stream.  Load in https://ui.perfetto.dev and diff the two
    process rows visually.
    """
    events: list[dict] = []
    machine_rec = (
        tracer
        if tracer is not None
        else CycleTraceRecorder(result.program, pid=1, process="machine")
    )
    for effect in result.machine.effects:
        machine_rec.instant(
            effect.cycle,
            "effects",
            effect.locus,
            args={"value": effect.value, "pc": effect.pc, "region": effect.region},
        )
    events.extend(machine_rec.events)

    scalar_rec = CycleTraceRecorder(result.program, pid=2, process="scalar")
    for flight_event in result.scalar.flight.events():
        if flight_event.kind == "issue":
            scalar_rec.op(
                flight_event.cycle,
                "alu",
                flight_event.detail,
                args={"pc": flight_event.pc, "region": flight_event.region},
            )
    for effect in result.scalar.effects:
        scalar_rec.instant(
            effect.cycle,
            "effects",
            effect.locus,
            args={"value": effect.value, "pc": effect.pc, "region": effect.region},
        )
    events.extend(scalar_rec.events)
    return events
