"""Basic blocks.

A block is a maximal straight-line instruction sequence.  At most the last
instruction is a control transfer.  Blocks record their control successors
explicitly (``taken_target`` for the branch/jump target, ``fall_through``
for the sequential successor) rather than by label, so CFG transforms can
re-point edges without string surgery.

``origin`` tracks which *original* block a duplicated copy descends from;
the trace-driven cycle counters use it to map a dynamic scalar trace onto
transformed code.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.instruction import Instruction


@dataclass
class BasicBlock:
    """One basic block of the CFG."""

    bid: int
    instructions: list[Instruction] = field(default_factory=list)
    taken_target: int | None = None
    fall_through: int | None = None
    origin: int | None = None

    def __post_init__(self) -> None:
        if self.origin is None:
            self.origin = self.bid

    @property
    def terminator(self) -> Instruction | None:
        """The trailing control transfer, or None for a pure fall-through."""
        if self.instructions and self.instructions[-1].is_control:
            return self.instructions[-1]
        return None

    @property
    def body(self) -> list[Instruction]:
        """Instructions excluding the terminator."""
        if self.terminator is not None:
            return self.instructions[:-1]
        return list(self.instructions)

    @property
    def successors(self) -> tuple[int, ...]:
        """Successor block ids (taken first, then fall-through)."""
        succs = []
        if self.taken_target is not None:
            succs.append(self.taken_target)
        if self.fall_through is not None:
            succs.append(self.fall_through)
        return tuple(succs)

    @property
    def is_branch_block(self) -> bool:
        """True when the block ends in a two-way conditional branch."""
        terminator = self.terminator
        return terminator is not None and terminator.is_conditional_branch

    def instruction_count(self) -> int:
        return len(self.instructions)

    def __repr__(self) -> str:
        return (
            f"BasicBlock(bid={self.bid}, n={len(self.instructions)}, "
            f"taken={self.taken_target}, fall={self.fall_through})"
        )
