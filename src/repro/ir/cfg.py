"""The control-flow graph.

Built from a linear :class:`~repro.isa.program.Program` with the classic
leader algorithm, and linearizable back to one (inserting explicit jumps
where the chosen layout breaks a fall-through edge).  Round-tripping
preserves execution semantics, which the property tests check by running
both forms through the interpreter.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.block import BasicBlock
from repro.isa.instruction import Instruction
from repro.isa.operands import Label
from repro.isa.program import Program


@dataclass
class CFG:
    """A control-flow graph over basic blocks.

    ``start_of`` maps block ids to the first-instruction index of the
    *source program the CFG was built from*; the interpreter uses it to
    record block-level traces.  It is only meaningful on freshly built
    CFGs (transforms do not maintain it).
    """

    blocks: dict[int, BasicBlock] = field(default_factory=dict)
    entry: int = 0
    layout: list[int] = field(default_factory=list)
    name: str = "program"
    start_of: dict[int, int] = field(default_factory=dict)
    _next_bid: int = 0

    # ------------------------------------------------------------------
    # Construction helpers.
    # ------------------------------------------------------------------
    def new_block(
        self, instructions: list[Instruction] | None = None, origin: int | None = None
    ) -> BasicBlock:
        """Allocate a fresh block and append it to the layout."""
        block = BasicBlock(
            bid=self._next_bid, instructions=list(instructions or []), origin=origin
        )
        self._next_bid += 1
        self.blocks[block.bid] = block
        self.layout.append(block.bid)
        return block

    def remove_block(self, bid: int) -> None:
        """Delete a block (callers must have re-pointed incoming edges)."""
        del self.blocks[bid]
        self.layout.remove(bid)

    # ------------------------------------------------------------------
    # Graph queries.
    # ------------------------------------------------------------------
    def successors(self, bid: int) -> tuple[int, ...]:
        return self.blocks[bid].successors

    def predecessors(self, bid: int) -> list[int]:
        return [
            block.bid
            for block in self.blocks.values()
            if bid in block.successors
        ]

    def predecessor_map(self) -> dict[int, list[int]]:
        preds: dict[int, list[int]] = {bid: [] for bid in self.blocks}
        for block in self.blocks.values():
            for succ in block.successors:
                preds[succ].append(block.bid)
        return preds

    def reachable(self) -> set[int]:
        """Blocks reachable from the entry."""
        seen = {self.entry}
        worklist = [self.entry]
        while worklist:
            bid = worklist.pop()
            for succ in self.blocks[bid].successors:
                if succ not in seen:
                    seen.add(succ)
                    worklist.append(succ)
        return seen

    def remove_unreachable(self) -> None:
        alive = self.reachable()
        for bid in [b for b in self.blocks if b not in alive]:
            self.remove_block(bid)

    def reverse_postorder(self) -> list[int]:
        """Blocks in reverse postorder from the entry (reachable only)."""
        order: list[int] = []
        seen: set[int] = set()

        def visit(bid: int) -> None:
            stack = [(bid, iter(self.blocks[bid].successors))]
            seen.add(bid)
            while stack:
                current, successors = stack[-1]
                advanced = False
                for succ in successors:
                    if succ not in seen:
                        seen.add(succ)
                        stack.append((succ, iter(self.blocks[succ].successors)))
                        advanced = True
                        break
                if not advanced:
                    order.append(current)
                    stack.pop()

        visit(self.entry)
        order.reverse()
        return order

    def instruction_count(self) -> int:
        return sum(block.instruction_count() for block in self.blocks.values())

    # ------------------------------------------------------------------
    # Linearization.
    # ------------------------------------------------------------------
    def to_program(self) -> Program:
        """Linearize back to an assembly-level program.

        Block labels are regenerated as ``B<bid>``; a ``jmp`` is inserted
        wherever the layout does not realize a fall-through edge.
        """
        layout = [bid for bid in self.layout if bid in self.blocks]
        if self.entry in layout:
            layout.remove(self.entry)
        layout.insert(0, self.entry)

        instructions: list[Instruction] = []
        labels: dict[str, int] = {}
        position_of = {bid: position for position, bid in enumerate(layout)}

        for position, bid in enumerate(layout):
            block = self.blocks[bid]
            labels[f"B{bid}"] = len(instructions)
            body = block.body
            terminator = block.terminator
            instructions.extend(body)
            if terminator is not None:
                if terminator.target is not None:
                    if block.taken_target is None:
                        raise ValueError(f"block {bid}: terminator with no target")
                    retargeted = terminator.replace(
                        operands=tuple(
                            Label(f"B{block.taken_target}")
                            if isinstance(operand, Label)
                            else operand
                            for operand in terminator.operands
                        )
                    )
                    instructions.append(retargeted)
                else:
                    instructions.append(terminator)
            needs_fall = block.fall_through is not None and (
                terminator is None or terminator.opcode != "jmp"
            )
            if needs_fall:
                next_bid = layout[position + 1] if position + 1 < len(layout) else None
                if block.fall_through != next_bid:
                    instructions.append(
                        Instruction("jmp", (Label(f"B{block.fall_through}"),))
                    )
        program = Program(
            instructions=instructions, labels=labels, name=self.name
        )
        program.validate()
        return program

    def clone(self) -> CFG:
        """Structural copy (instructions are immutable and shared)."""
        copy = CFG(name=self.name, entry=self.entry)
        copy._next_bid = self._next_bid
        copy.layout = list(self.layout)
        for bid, block in self.blocks.items():
            copy.blocks[bid] = BasicBlock(
                bid=block.bid,
                instructions=list(block.instructions),
                taken_target=block.taken_target,
                fall_through=block.fall_through,
                origin=block.origin,
            )
        return copy


def build_cfg(program: Program) -> CFG:
    """Build a CFG from a linear program with the leader algorithm."""
    program.validate()
    if not program.instructions:
        raise ValueError("cannot build a CFG for an empty program")

    leaders = {0}
    for index, instruction in enumerate(program.instructions):
        if instruction.is_control:
            if index + 1 < len(program.instructions):
                leaders.add(index + 1)
            target = instruction.target
            if target is not None:
                leaders.add(program.resolve(target))
    for index in program.labels.values():
        if index < len(program.instructions):
            leaders.add(index)

    starts = sorted(leaders)
    cfg = CFG(name=program.name)
    block_at_index: dict[int, int] = {}
    for position, start in enumerate(starts):
        end = starts[position + 1] if position + 1 < len(starts) else len(
            program.instructions
        )
        block = cfg.new_block(program.instructions[start:end])
        block_at_index[start] = block.bid
        cfg.start_of[block.bid] = start

    for position, start in enumerate(starts):
        bid = block_at_index[start]
        block = cfg.blocks[bid]
        end = starts[position + 1] if position + 1 < len(starts) else len(
            program.instructions
        )
        next_start = starts[position + 1] if position + 1 < len(starts) else None
        terminator = block.terminator
        if terminator is None:
            if next_start is not None:
                block.fall_through = block_at_index[next_start]
        elif terminator.opcode == "jmp":
            block.taken_target = block_at_index[program.resolve(terminator.target)]
        elif terminator.is_conditional_branch:
            block.taken_target = block_at_index[program.resolve(terminator.target)]
            if next_start is not None:
                block.fall_through = block_at_index[next_start]
        elif terminator.opcode == "halt":
            pass
        else:  # pragma: no cover - the opcode table has no other control ops
            raise AssertionError(f"unhandled terminator {terminator}")

    cfg.entry = block_at_index[0]
    return cfg
