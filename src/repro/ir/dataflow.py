"""Dataflow analyses: liveness for general and condition registers.

Backward may-analysis over the CFG.  Liveness drives:

* register renaming (a speculative motion needs a destination register that
  is dead on the side-effect-causing path);
* copy propagation's dead-copy elimination;
* validation that scheduled code preserves the values of live registers.

``r0`` is never considered live (reads are constant zero).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.cfg import CFG
from repro.isa.instruction import Instruction
from repro.isa.registers import ZERO_REG


@dataclass
class BlockLiveness:
    """Per-block liveness sets (register indices / CCR indices)."""

    use_regs: set[int] = field(default_factory=set)
    def_regs: set[int] = field(default_factory=set)
    use_cregs: set[int] = field(default_factory=set)
    def_cregs: set[int] = field(default_factory=set)
    live_in_regs: set[int] = field(default_factory=set)
    live_out_regs: set[int] = field(default_factory=set)
    live_in_cregs: set[int] = field(default_factory=set)
    live_out_cregs: set[int] = field(default_factory=set)


@dataclass
class LivenessInfo:
    """Liveness results for a whole CFG."""

    blocks: dict[int, BlockLiveness]

    def live_out_regs(self, bid: int) -> set[int]:
        return self.blocks[bid].live_out_regs

    def live_in_regs(self, bid: int) -> set[int]:
        return self.blocks[bid].live_in_regs

    def dead_regs_at_entry(self, bid: int, num_regs: int) -> set[int]:
        """Registers whose value is irrelevant on entry to *bid*."""
        live = self.blocks[bid].live_in_regs
        return {r for r in range(num_regs) if r != ZERO_REG and r not in live}


def instruction_uses(instruction: Instruction) -> tuple[set[int], set[int]]:
    """(register uses, condition-register uses) of one instruction."""
    regs = {r for r in instruction.src_regs if r != ZERO_REG}
    cregs = set(instruction.src_cregs)
    return regs, cregs


def instruction_defs(instruction: Instruction) -> tuple[set[int], set[int]]:
    """(register defs, condition-register defs) of one instruction."""
    regs: set[int] = set()
    if instruction.dest_reg is not None and instruction.dest_reg != ZERO_REG:
        regs.add(instruction.dest_reg)
    cregs: set[int] = set()
    if instruction.dest_creg is not None:
        cregs.add(instruction.dest_creg)
    return regs, cregs


def compute_liveness(cfg: CFG) -> LivenessInfo:
    """Iterative backward liveness over the whole CFG."""
    info: dict[int, BlockLiveness] = {}
    for bid, block in cfg.blocks.items():
        liveness = BlockLiveness()
        # Scan backwards to build use/def with correct kill ordering.
        for instruction in reversed(block.instructions):
            def_regs, def_cregs = instruction_defs(instruction)
            use_regs, use_cregs = instruction_uses(instruction)
            liveness.use_regs -= def_regs
            liveness.use_cregs -= def_cregs
            liveness.def_regs |= def_regs
            liveness.def_cregs |= def_cregs
            liveness.use_regs |= use_regs
            liveness.use_cregs |= use_cregs
        info[bid] = liveness

    changed = True
    while changed:
        changed = False
        for bid in cfg.blocks:
            liveness = info[bid]
            out_regs: set[int] = set()
            out_cregs: set[int] = set()
            for succ in cfg.blocks[bid].successors:
                out_regs |= info[succ].live_in_regs
                out_cregs |= info[succ].live_in_cregs
            in_regs = liveness.use_regs | (out_regs - liveness.def_regs)
            in_cregs = liveness.use_cregs | (out_cregs - liveness.def_cregs)
            if (
                in_regs != liveness.live_in_regs
                or out_regs != liveness.live_out_regs
                or in_cregs != liveness.live_in_cregs
                or out_cregs != liveness.live_out_cregs
            ):
                liveness.live_in_regs = in_regs
                liveness.live_out_regs = out_regs
                liveness.live_in_cregs = in_cregs
                liveness.live_out_cregs = out_cregs
                changed = True
    return LivenessInfo(blocks=info)


def live_after_position(
    cfg: CFG, liveness: LivenessInfo, bid: int, position: int
) -> set[int]:
    """Registers live immediately *after* instruction *position* in block *bid*."""
    block = cfg.blocks[bid]
    live = set(liveness.blocks[bid].live_out_regs)
    for instruction in reversed(block.instructions[position + 1 :]):
        def_regs, _ = instruction_defs(instruction)
        use_regs, _ = instruction_uses(instruction)
        live -= def_regs
        live |= use_regs
    return live
