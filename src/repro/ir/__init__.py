"""Compiler intermediate representation.

* :mod:`repro.ir.block` -- basic blocks.
* :mod:`repro.ir.cfg` -- the control-flow graph, built from and linearized
  back to the assembly-level :class:`~repro.isa.program.Program`.
* :mod:`repro.ir.dominators` -- dominator / post-dominator trees and the
  paper's *equivalent block* relation (footnote 2).
* :mod:`repro.ir.dataflow` -- liveness for general and condition registers.
* :mod:`repro.ir.loops` -- natural-loop detection (region/trace seeds).
"""

from repro.ir.block import BasicBlock
from repro.ir.cfg import CFG, build_cfg
from repro.ir.dataflow import LivenessInfo, compute_liveness
from repro.ir.dominators import DominatorInfo, compute_dominators
from repro.ir.loops import Loop, find_natural_loops

__all__ = [
    "BasicBlock",
    "CFG",
    "DominatorInfo",
    "LivenessInfo",
    "Loop",
    "build_cfg",
    "compute_dominators",
    "compute_liveness",
    "find_natural_loops",
]
