"""Natural-loop detection.

Loop heads are the preferred region/trace seeds ("usually a loop head",
Section 3.3).  A natural loop is identified from a back edge t -> h where h
dominates t; its body is every block that can reach t without passing
through h.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.cfg import CFG
from repro.ir.dominators import DominatorInfo


@dataclass
class Loop:
    """One natural loop: header plus body blocks (header included)."""

    header: int
    body: set[int] = field(default_factory=set)
    back_edges: list[tuple[int, int]] = field(default_factory=list)

    @property
    def size(self) -> int:
        return len(self.body)


def find_natural_loops(cfg: CFG, dom: DominatorInfo) -> list[Loop]:
    """All natural loops, merged per header, outermost-first by body size."""
    loops: dict[int, Loop] = {}
    reachable = cfg.reachable()
    for bid in reachable:
        for succ in cfg.blocks[bid].successors:
            if succ in reachable and dom.dominates(succ, bid):
                loop = loops.setdefault(succ, Loop(header=succ, body={succ}))
                loop.back_edges.append((bid, succ))
                # Collect the loop body by walking predecessors from the tail.
                worklist = [bid]
                while worklist:
                    node = worklist.pop()
                    if node in loop.body:
                        continue
                    loop.body.add(node)
                    for pred in cfg.predecessors(node):
                        if pred in reachable:
                            worklist.append(pred)
    return sorted(loops.values(), key=lambda loop: -loop.size)


def loop_nest_depth(loops: list[Loop]) -> dict[int, int]:
    """Nesting depth of every block (0 = not in any loop)."""
    depth: dict[int, int] = {}
    for loop in loops:
        for bid in loop.body:
            depth[bid] = depth.get(bid, 0) + 1
    return depth
