"""Dominator and post-dominator analysis.

Implements the Cooper-Harvey-Kennedy iterative algorithm over reverse
postorder.  Post-dominators are computed on the reversed graph with a
virtual exit node joining every ``halt`` block (and every block with no
successors).

Also provides the paper's *equivalent block* relation (footnote 2): block X
is equivalent to block Y when X dominates Y and Y post-dominates X -- the
condition under which a join block shares its control dependence with an
earlier block and need not be duplicated.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir.cfg import CFG

VIRTUAL_EXIT = -1


@dataclass
class DominatorInfo:
    """Immediate-dominator trees for a CFG."""

    idom: dict[int, int | None]
    ipdom: dict[int, int | None]

    def dominates(self, a: int, b: int) -> bool:
        """True when *a* dominates *b* (reflexive)."""
        node: int | None = b
        while node is not None:
            if node == a:
                return True
            node = self.idom.get(node)
        return False

    def post_dominates(self, a: int, b: int) -> bool:
        """True when *a* post-dominates *b* (reflexive)."""
        node: int | None = b
        while node is not None and node != VIRTUAL_EXIT:
            if node == a:
                return True
            node = self.ipdom.get(node)
        return False

    def equivalent(self, x: int, y: int) -> bool:
        """The paper's footnote-2 relation: X dom Y and Y pdom X."""
        return self.dominates(x, y) and self.post_dominates(y, x)


def _compute_idoms(
    nodes: list[int],
    entry: int,
    preds: dict[int, list[int]],
) -> dict[int, int | None]:
    order = {node: position for position, node in enumerate(nodes)}
    idom: dict[int, int | None] = {node: None for node in nodes}
    idom[entry] = entry

    def intersect(a: int, b: int) -> int:
        while a != b:
            while order[a] > order[b]:
                a = idom[a]  # type: ignore[assignment]
            while order[b] > order[a]:
                b = idom[b]  # type: ignore[assignment]
        return a

    changed = True
    while changed:
        changed = False
        for node in nodes:
            if node == entry:
                continue
            candidates = [p for p in preds.get(node, []) if idom.get(p) is not None]
            if not candidates:
                continue
            new_idom = candidates[0]
            for other in candidates[1:]:
                new_idom = intersect(new_idom, other)
            if idom[node] != new_idom:
                idom[node] = new_idom
                changed = True

    idom[entry] = None
    return idom


def compute_dominators(cfg: CFG) -> DominatorInfo:
    """Compute dominator and post-dominator trees for *cfg*."""
    rpo = cfg.reverse_postorder()
    preds = cfg.predecessor_map()
    idom = _compute_idoms(rpo, cfg.entry, preds)

    # Post-dominators: reverse the graph and add a virtual exit.
    reachable = set(rpo)
    reverse_succs: dict[int, list[int]] = {bid: [] for bid in reachable}
    reverse_succs[VIRTUAL_EXIT] = []
    exits = []
    for bid in reachable:
        succs = [s for s in cfg.blocks[bid].successors if s in reachable]
        if not succs:
            exits.append(bid)
        for succ in succs:
            reverse_succs[succ].append(bid)
    for bid in exits:
        reverse_succs[VIRTUAL_EXIT].append(bid)

    # Reverse postorder of the reversed graph, from the virtual exit.
    order: list[int] = []
    seen = {VIRTUAL_EXIT}
    stack = [(VIRTUAL_EXIT, iter(reverse_succs[VIRTUAL_EXIT]))]
    while stack:
        current, iterator = stack[-1]
        advanced = False
        for nxt in iterator:
            if nxt not in seen:
                seen.add(nxt)
                stack.append((nxt, iter(reverse_succs[nxt])))
                advanced = True
                break
        if not advanced:
            order.append(current)
            stack.pop()
    order.reverse()

    reverse_preds: dict[int, list[int]] = {node: [] for node in order}
    for node in order:
        for succ in reverse_succs.get(node, []):
            if succ in reverse_preds:
                reverse_preds[succ].append(node)

    ipdom = _compute_idoms(order, VIRTUAL_EXIT, reverse_preds)
    return DominatorInfo(idom=idom, ipdom=ipdom)
