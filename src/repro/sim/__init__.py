"""Functional simulation substrate (the reproduction's 'pixie').

* :mod:`repro.sim.memory` -- the data memory with NULL-page and bounds
  fault semantics that make unsafe speculative loads actually fault.
* :mod:`repro.sim.trace` -- dynamic execution traces: block sequences and
  branch outcomes, the input to every trace-driven cycle counter.
* :mod:`repro.sim.interpreter` -- the scalar functional interpreter that
  executes linear programs, records traces, and applies the R3000-like
  scalar timing model.
"""

from repro.sim.interpreter import InterpreterResult, Interpreter, run_program
from repro.sim.memory import Memory, MemoryFault
from repro.sim.trace import DynamicTrace

__all__ = [
    "DynamicTrace",
    "Interpreter",
    "InterpreterResult",
    "Memory",
    "MemoryFault",
    "run_program",
]
