"""Data memory with fault semantics.

Addresses below :data:`MIN_VALID_ADDR` (the NULL page) or at/above the
configured limit fault.  This gives the paper's motivating unsafe-load
behaviour for real: a speculative load that dereferences a NULL
next-pointer in the last iteration of a linked-list loop raises
:class:`MemoryFault` (Section 2.1).

Memory is word-addressed (one 64-bit value per address) -- byte granularity
adds nothing to the mechanism under study.
"""

from __future__ import annotations

from repro.isa.semantics import SimFault, to_i64

MIN_VALID_ADDR = 8
DEFAULT_LIMIT = 1 << 20


class MemoryFault(SimFault):
    """Access to the NULL page or outside the valid address range."""

    def __init__(self, address: int, access: str):
        super().__init__(f"memory fault: {access} at address {address}")
        self.address = address
        self.access = access


class Memory:
    """Sparse word-addressed data memory.

    With ``mapped_only=True`` the memory behaves like a demand-paged
    address space: accesses to in-range but unmapped words fault, and a
    fault handler can repair them with :meth:`map` -- the restartable
    speculative-exception scenario of Section 3.5.
    """

    __slots__ = ("_words", "limit", "mapped_only")

    def __init__(self, limit: int = DEFAULT_LIMIT, *, mapped_only: bool = False):
        if limit <= MIN_VALID_ADDR:
            raise ValueError("memory limit too small")
        self.limit = limit
        self.mapped_only = mapped_only
        self._words: dict[int, int] = {}

    def _check(self, address: int, access: str) -> None:
        if not MIN_VALID_ADDR <= address < self.limit:
            raise MemoryFault(address, access)
        if self.mapped_only and address not in self._words:
            raise MemoryFault(address, access)

    def map(self, address: int, value: int = 0) -> None:
        """Map one word (bounds-checked only); the fault-handler repair."""
        if not MIN_VALID_ADDR <= address < self.limit:
            raise MemoryFault(address, "map")
        self._words[address] = to_i64(value)

    def load(self, address: int) -> int:
        """Read one word; unwritten valid addresses read as zero."""
        self._check(address, "load")
        return self._words.get(address, 0)

    def store(self, address: int, value: int) -> None:
        """Write one word."""
        self._check(address, "store")
        self._words[address] = to_i64(value)

    def is_valid(self, address: int) -> bool:
        """Whether an access to *address* would succeed right now."""
        if not MIN_VALID_ADDR <= address < self.limit:
            return False
        return not self.mapped_only or address in self._words

    # ------------------------------------------------------------------
    # Workload setup helpers (not architectural operations).
    # ------------------------------------------------------------------
    def write_block(self, base: int, values: list[int] | tuple[int, ...]) -> None:
        """Initialize ``len(values)`` consecutive words starting at *base*."""
        for offset, value in enumerate(values):
            self.map(base + offset, value)

    def read_block(self, base: int, count: int) -> list[int]:
        """Read *count* consecutive words (for tests)."""
        return [self.load(base + offset) for offset in range(count)]

    def snapshot(self) -> dict[int, int]:
        """All written words (for end-state comparison)."""
        return dict(self._words)

    def state_dict(self) -> dict:
        """The full memory image, JSON-native (string word addresses)."""
        return {
            "limit": self.limit,
            "mapped_only": self.mapped_only,
            "words": {
                str(address): value
                for address, value in sorted(self._words.items())
            },
        }

    @classmethod
    def from_state(cls, state: dict) -> Memory:
        """Rebuild a memory captured by :meth:`state_dict`."""
        memory = cls(state["limit"], mapped_only=state["mapped_only"])
        memory._words = {
            int(address): value for address, value in state["words"].items()
        }
        return memory

    def clone(self) -> Memory:
        other = Memory(self.limit, mapped_only=self.mapped_only)
        other._words = dict(self._words)
        return other
