"""Dynamic execution traces.

A :class:`DynamicTrace` records what the scalar program *did*: the sequence
of basic blocks entered and the outcome of every conditional branch.  It is
the input to

* the trace-driven cycle counters of every scheduling model (the paper's
  methodology: "we count cycles using the trace information of the R3000
  code by pixie"),
* the profile-based static branch predictor, and
* the Table 3 successive-branch prediction-accuracy analysis.

Block ids refer to the *original* scalar CFG; schedulers record, per
transformed block, which original block it descends from.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field


@dataclass
class BranchEvent:
    """One dynamic conditional-branch execution."""

    block: int  # original block id whose terminator branched
    uid: int  # terminator instruction uid
    taken: bool


@dataclass
class DynamicTrace:
    """Full dynamic behaviour of one scalar run."""

    blocks: list[int] = field(default_factory=list)
    branches: list[BranchEvent] = field(default_factory=list)
    instruction_count: int = 0

    def record_block(self, bid: int) -> None:
        self.blocks.append(bid)

    def record_branch(self, block: int, uid: int, taken: bool) -> None:
        self.branches.append(BranchEvent(block, uid, taken))

    # ------------------------------------------------------------------
    # Profile summaries.
    # ------------------------------------------------------------------
    def block_counts(self) -> Counter[int]:
        return Counter(self.blocks)

    def branch_profile(self) -> dict[int, tuple[int, int]]:
        """Per static branch uid: (times taken, times not taken)."""
        profile: dict[int, list[int]] = {}
        for event in self.branches:
            entry = profile.setdefault(event.uid, [0, 0])
            entry[0 if event.taken else 1] += 1
        return {uid: (taken, not_taken) for uid, (taken, not_taken) in profile.items()}

    def edge_counts(self) -> Counter[tuple[int, int]]:
        """Dynamic execution count of every CFG edge."""
        return Counter(zip(self.blocks, self.blocks[1:]))
