"""The scalar functional interpreter -- this reproduction's *pixie*.

Executes a linear scalar program (every instruction ``alw``-predicated)
with the shared opcode semantics, while

* recording the dynamic trace (block sequence + branch outcomes) used by
  every trace-driven cycle counter and by the branch-prediction analysis;
* counting cycles under the R3000-like scalar timing model that is the
  paper's speedup baseline: one cycle per instruction, a one-cycle
  load-use interlock stall, and a one-cycle taken-control-transfer
  penalty.

Faults (NULL/bounds loads, zero divisors) invoke an optional handler
callback; a handler that repairs machine state returns True and the
faulting instruction re-executes -- the same contract the predicating
machine's recovery mode uses, so scalar and speculative executions of a
faulting program remain comparable.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Callable
from dataclasses import dataclass

from repro.core.exceptions import FaultKind, FaultRecord, UnhandledFault
from repro.ir.cfg import CFG
from repro.isa.instruction import Instruction
from repro.isa.program import Program
from repro.isa.registers import NUM_CREGS, NUM_REGS, ZERO_REG
from repro.isa.printer import format_instruction
from repro.isa.semantics import (
    ArithmeticFault,
    eval_alu,
    eval_cond,
    effective_address,
)
from repro.obs.diagnostics import InterpreterSnapshot
from repro.obs.effects import EffectStream
from repro.obs.flight import NULL_RECORDER, FlightRecorder
from repro.obs.metrics import NULL_SINK, MetricsSink
from repro.sim.memory import Memory, MemoryFault
from repro.sim.trace import DynamicTrace
from repro.taint.tags import merge_taint, rekind_address
from repro.taint.track import NULL_TAINT, TaintTracker

FaultHandler = Callable[[FaultRecord, "Interpreter"], bool]

DEFAULT_MAX_STEPS = 20_000_000

#: CFG blocks the interpreter remembers for the livelock snapshot.
RECENT_BLOCKS = 8


class StepLimitExceeded(RuntimeError):
    """The program ran past the configured step budget (likely livelock).

    Carries a :class:`~repro.obs.diagnostics.InterpreterSnapshot`
    (where the interpreter was spinning) and the partial
    :class:`InterpreterResult` accumulated so far, so a livelocked fuzz
    case or workload is debuggable from the exception alone.
    """

    def __init__(
        self,
        message: str,
        snapshot: InterpreterSnapshot | None = None,
        partial: "InterpreterResult | None" = None,
    ):
        if snapshot is not None:
            message = f"{message}\n{snapshot.describe()}"
        super().__init__(message)
        self.snapshot = snapshot
        self.partial = partial


@dataclass
class InterpreterResult:
    """Everything one scalar run produced."""

    output: list[int]
    registers: tuple[int, ...]
    memory: Memory
    steps: int
    scalar_cycles: int
    trace: DynamicTrace | None
    handled_faults: int
    halted: bool = True

    @property
    def architectural_output(self) -> tuple[int, ...]:
        """The observable output stream (the scalar/VLIW comparison key)."""
        return tuple(self.output)


class Interpreter:
    """Step-at-a-time scalar executor with trace and timing observers."""

    def __init__(
        self,
        program: Program,
        memory: Memory | None = None,
        *,
        cfg: CFG | None = None,
        fault_handler: FaultHandler | None = None,
        max_steps: int = DEFAULT_MAX_STEPS,
        sink: MetricsSink = NULL_SINK,
        flight: FlightRecorder = NULL_RECORDER,
        effects: EffectStream | None = None,
        taint: TaintTracker = NULL_TAINT,
    ):
        program.validate()
        for instruction in program.instructions:
            if not instruction.pred.is_always:
                raise ValueError(
                    "the scalar interpreter only executes unpredicated code: "
                    f"{instruction}"
                )
        self.program = program
        self.memory = memory if memory is not None else Memory()
        self.fault_handler = fault_handler
        self.max_steps = max_steps
        self.sink = sink
        # Forensics: the scalar side emits every architectural effect
        # directly at execution -- there is no speculative state to
        # commit, so the effect stream *is* the instruction stream's
        # architectural footprint.  Guarded like ``sink.enabled``.
        self.flight = flight
        self.effects = effects
        self._forensics = flight.enabled or effects is not None
        # Information flow: the scalar model has no speculation, so the
        # only sources are taints seeded by a campaign or test; every
        # architectural write is an immediate commit, hence an immediate
        # sink check.  Guarded by one cached boolean like forensics.
        self.taint = taint
        self._taint = taint.enabled
        self._current_block: int | None = None
        self.registers = [0] * NUM_REGS
        self.cregs = [False] * NUM_CREGS
        self.output: list[int] = []
        self.pc = 0
        self.steps = 0
        self.scalar_cycles = 0
        self.handled_faults = 0
        self._last_load_dest: int | None = None
        self._recent_blocks: deque[int] = deque(maxlen=RECENT_BLOCKS)
        # Run-loop state, promoted to fields so execution can pause and
        # resume at any step boundary (the checkpoint layer's contract).
        self._started = False
        self._halted = False

        self.trace: DynamicTrace | None = None
        self._block_of_index: dict[int, int] = {}
        if cfg is not None:
            self.trace = DynamicTrace()
            self._block_of_index = {
                index: bid for bid, index in getattr(cfg, "start_of", {}).items()
            }

    # ------------------------------------------------------------------
    # Register access.
    # ------------------------------------------------------------------
    def read_reg(self, reg: int) -> int:
        return 0 if reg == ZERO_REG else self.registers[reg]

    def write_reg(self, reg: int, value: int) -> None:
        if reg != ZERO_REG:
            self.registers[reg] = value

    # ------------------------------------------------------------------
    # Execution.
    # ------------------------------------------------------------------
    def run(self) -> InterpreterResult:
        """Run to ``halt``; returns the collected result."""
        while self.step():
            pass
        return self._result(halted=self._halted)

    def step(self) -> bool:
        """Execute one instruction.

        Returns True while the program is still running; executing the
        ``halt`` instruction (or falling off the end) returns False.
        Step boundaries are the interpreter's checkpointable states.
        """
        if not self._started:
            self._started = True
            self._note_block_entry(self.pc)
        if self._halted or self.pc >= len(self.program.instructions):
            return False
        if self.steps >= self.max_steps:
            raise StepLimitExceeded(
                f"{self.program.name}: exceeded {self.max_steps} steps",
                snapshot=self.snapshot(),
                partial=self._result(halted=False),
            )
        instruction = self.program.instructions[self.pc]
        if instruction.opcode == "halt":
            self.steps += 1
            self.scalar_cycles += 1
            self._halted = True
            return False
        self._step(instruction)
        return self.pc < len(self.program.instructions)

    @property
    def halted(self) -> bool:
        return self._halted

    def result(self) -> InterpreterResult:
        """The collected result of the run so far."""
        return self._result(halted=self._halted)

    def _step(self, instruction: Instruction) -> None:
        self.steps += 1
        self.scalar_cycles += 1
        if self._forensics and self.flight.enabled:
            self.flight.record(
                self.scalar_cycles,
                self.pc,
                self._region_name(),
                "issue",
                format_instruction(instruction),
            )
        observing = self.sink.enabled
        if observing:
            self.sink.count("scalar.instructions")
            self.sink.count("scalar.cycles")
        if self._uses_loaded_value(instruction):
            self.scalar_cycles += 1  # load-use interlock stall
            if observing:
                self.sink.count("scalar.cycles")
                self.sink.count("scalar.load_use_stalls")
        next_load_dest: int | None = None

        opcode = instruction.opcode
        taken_transfer = False
        next_pc = self.pc + 1

        try:
            if opcode == "ld":
                address = effective_address(
                    self.read_reg(instruction.src_regs[0]), instruction.imm or 0
                )
                value = self.memory.load(address)
                self.write_reg(instruction.dest_reg, value)
                if self._taint:
                    loaded = merge_taint(
                        self.taint.mem_taint.get(address),
                        rekind_address(
                            self.taint.reg_taint.get(instruction.src_regs[0])
                        ),
                    )
                    self._set_reg_taint(instruction.dest_reg, loaded)
                if self._forensics:
                    self._forensic_reg(instruction.dest_reg, value)
                next_load_dest = instruction.dest_reg
            elif opcode == "st":
                value_reg, addr_reg = instruction.src_regs
                address = effective_address(
                    self.read_reg(addr_reg), instruction.imm or 0
                )
                value = self.read_reg(value_reg)
                self.memory.store(address, value)
                if self._taint:
                    stored = merge_taint(
                        self.taint.reg_taint.get(value_reg),
                        rekind_address(self.taint.reg_taint.get(addr_reg)),
                    )
                    if stored is not None:
                        self.taint.leak(
                            "memory",
                            self.scalar_cycles,
                            self.pc,
                            self._region_name(),
                            f"mem[{address}] = {value}",
                            stored,
                        )
                        self.taint.mem_taint[address] = merge_taint(
                            self.taint.mem_taint.get(address), stored
                        )
                    else:
                        self.taint.mem_taint.pop(address, None)
                if self._forensics:
                    self._forensic_mem(address, value)
            elif opcode == "out":
                value = self.read_reg(instruction.src_regs[0])
                self.output.append(value)
                if self._taint:
                    emitted = self.taint.reg_taint.get(instruction.src_regs[0])
                    if emitted is not None:
                        self.taint.leak(
                            "output",
                            self.scalar_cycles,
                            self.pc,
                            self._region_name(),
                            f"out {value}",
                            emitted,
                        )
                if self._forensics:
                    self._forensic_out(value)
            elif opcode == "br" or opcode == "brf":
                condition = self.cregs[instruction.src_cregs[0]]
                taken = condition if opcode == "br" else not condition
                if self.trace is not None:
                    block = self._block_of_index.get(self._current_block_start(), -1)
                    self.trace.record_branch(block, instruction.uid, taken)
                if taken:
                    next_pc = self.program.resolve(instruction.target)
                    taken_transfer = True
            elif opcode == "jmp":
                next_pc = self.program.resolve(instruction.target)
                taken_transfer = True
            elif opcode == "nop":
                pass
            elif instruction.is_cond_set:
                values = [self.read_reg(r) for r in instruction.src_regs]
                if instruction.imm is not None:
                    values.append(instruction.imm)
                condition = eval_cond(opcode, *values)
                self.cregs[instruction.dest_creg] = condition
                if self._taint:
                    operand = self._union_reg_taint(instruction.src_regs)
                    if operand is not None:
                        self.taint.ccr_write(
                            instruction.dest_creg,
                            operand,
                            self.scalar_cycles,
                            self.pc,
                            self._region_name(),
                        )
                    else:
                        self.taint.ccr_taint.pop(
                            instruction.dest_creg, None
                        )
                if self._forensics and self.flight.enabled:
                    self.flight.record(
                        self.scalar_cycles,
                        self.pc,
                        self._region_name(),
                        "ccr.write",
                        f"c{instruction.dest_creg} = {int(condition)}",
                    )
            else:
                values = [self.read_reg(r) for r in instruction.src_regs]
                if instruction.imm is not None:
                    values.append(instruction.imm)
                value = eval_alu(opcode, *values)
                self.write_reg(instruction.dest_reg, value)
                if self._taint:
                    self._set_reg_taint(
                        instruction.dest_reg,
                        self._union_reg_taint(instruction.src_regs),
                    )
                if self._forensics:
                    self._forensic_reg(instruction.dest_reg, value)
        except (MemoryFault, ArithmeticFault) as error:
            fault = _fault_record(error, instruction)
            if self.fault_handler is None or not self.fault_handler(fault, self):
                if self._forensics:
                    self._forensic_fault("fault.unhandled", fault)
                raise UnhandledFault(fault) from error
            self.handled_faults += 1
            if observing:
                self.sink.count("scalar.faults.handled")
            if self._forensics:
                self._forensic_fault("fault.handled", fault)
            return  # re-execute the repaired instruction; pc unchanged

        if taken_transfer:
            self.scalar_cycles += 1  # taken-transfer penalty
            if observing:
                self.sink.count("scalar.cycles")
                self.sink.count("scalar.taken_transfers")
            if self._forensics and self.flight.enabled:
                self.flight.record(
                    self.scalar_cycles,
                    self.pc,
                    self._region_name(),
                    "transfer",
                    f"-> pc={next_pc}",
                )
        self._last_load_dest = next_load_dest
        self.pc = next_pc
        if taken_transfer or self.pc in self._block_of_index:
            self._note_block_entry(self.pc)

    # ------------------------------------------------------------------
    # Taint plumbing (guarded by ``self._taint`` at every call site).
    # ------------------------------------------------------------------
    def _set_reg_taint(self, reg, taint) -> None:
        """Overwrite a register's taint; a clean write scrubs old taint
        (the register now holds untainted data).  r0 stays clean."""
        if reg == ZERO_REG:
            return
        if taint is None:
            self.taint.reg_taint.pop(reg, None)
        else:
            self.taint.reg_taint[reg] = taint

    def _union_reg_taint(self, regs):
        """The merged taint of a source-register tuple (None if clean)."""
        taint = None
        for reg in regs:
            taint = merge_taint(taint, self.taint.reg_taint.get(reg))
        return taint

    def _uses_loaded_value(self, instruction: Instruction) -> bool:
        return (
            self._last_load_dest is not None
            and self._last_load_dest in instruction.src_regs
        )

    # ------------------------------------------------------------------
    # Trace bookkeeping.
    # ------------------------------------------------------------------
    def _note_block_entry(self, index: int) -> None:
        if index in self._block_of_index:
            block = self._block_of_index[index]
            self._current_block = block
            self._recent_blocks.append(block)
            if self.trace is not None:
                self.trace.record_block(block)

    # ------------------------------------------------------------------
    # Forensics (guarded by ``self._forensics`` at every call site).
    # ------------------------------------------------------------------
    def _region_name(self) -> str | None:
        if self._current_block is None:
            return None
        return f"B{self._current_block}"

    def _forensic_reg(self, reg: int, value: int) -> None:
        if reg == ZERO_REG:
            return
        region = self._region_name()
        if self.flight.enabled:
            self.flight.record(
                self.scalar_cycles, self.pc, region, "reg.write", f"r{reg} = {value}"
            )
        if self.effects is not None:
            self.effects.emit_reg(
                reg, value, cycle=self.scalar_cycles, pc=self.pc, region=region
            )

    def _forensic_mem(self, address: int, value: int) -> None:
        region = self._region_name()
        if self.flight.enabled:
            self.flight.record(
                self.scalar_cycles,
                self.pc,
                region,
                "mem.store",
                f"mem[{address}] = {value}",
            )
        if self.effects is not None:
            self.effects.emit_mem(
                address, value, cycle=self.scalar_cycles, pc=self.pc, region=region
            )

    def _forensic_out(self, value: int) -> None:
        region = self._region_name()
        if self.flight.enabled:
            self.flight.record(
                self.scalar_cycles, self.pc, region, "out", f"out {value}"
            )
        if self.effects is not None:
            self.effects.emit_out(
                value, cycle=self.scalar_cycles, pc=self.pc, region=region
            )

    def _forensic_fault(self, kind: str, fault: FaultRecord) -> None:
        region = self._region_name()
        where = fault.address if fault.address is not None else "?"
        if self.flight.enabled:
            self.flight.record(
                self.scalar_cycles,
                self.pc,
                region,
                kind,
                f"{fault.kind.value}@{where}",
            )
        if kind == "fault.handled" and self.effects is not None:
            self.effects.emit_fault(
                fault.kind.value,
                fault.address if fault.address is not None else -1,
                cycle=self.scalar_cycles,
                pc=self.pc,
                region=region,
            )

    def _current_block_start(self) -> int:
        """Start index of the block containing the current pc."""
        index = self.pc
        while index not in self._block_of_index and index > 0:
            index -= 1
        return index

    def snapshot(self) -> InterpreterSnapshot:
        """Where the interpreter is right now (block path needs a CFG)."""
        return InterpreterSnapshot(
            pc=self.pc,
            steps=self.steps,
            scalar_cycles=self.scalar_cycles,
            recent_blocks=tuple(self._recent_blocks),
        )

    def _result(self, halted: bool) -> InterpreterResult:
        if self.trace is not None:
            self.trace.instruction_count = self.steps
        return InterpreterResult(
            output=list(self.output),
            registers=tuple(self.registers),
            memory=self.memory,
            steps=self.steps,
            scalar_cycles=self.scalar_cycles,
            trace=self.trace,
            handled_faults=self.handled_faults,
            halted=halted,
        )


def _fault_record(error: Exception, instruction: Instruction) -> FaultRecord:
    if isinstance(error, MemoryFault):
        return FaultRecord(
            kind=FaultKind.MEMORY,
            instruction_uid=instruction.uid,
            address=error.address,
            detail=str(error),
        )
    return FaultRecord(
        kind=FaultKind.ARITHMETIC,
        instruction_uid=instruction.uid,
        detail=str(error),
    )


def run_program(
    program: Program,
    memory: Memory | None = None,
    *,
    cfg: CFG | None = None,
    fault_handler: FaultHandler | None = None,
    max_steps: int = DEFAULT_MAX_STEPS,
    sink: MetricsSink = NULL_SINK,
    flight: FlightRecorder = NULL_RECORDER,
    effects: EffectStream | None = None,
    taint: TaintTracker = NULL_TAINT,
) -> InterpreterResult:
    """Convenience wrapper: construct an :class:`Interpreter` and run it."""
    interpreter = Interpreter(
        program,
        memory,
        cfg=cfg,
        fault_handler=fault_handler,
        max_steps=max_steps,
        sink=sink,
        flight=flight,
        effects=effects,
        taint=taint,
    )
    return interpreter.run()
