"""Emission of executable VLIW code from scheduled predicating regions.

Only the predicating models emit machine code (the restricted baselines
are evaluated trace-analytically, as in the paper); the emitted program is
run on :class:`~repro.machine.vliw.VLIWMachine` both to validate that
scheduled code computes exactly what the scalar program computes and to
cross-check the analytic cycle counts.

Shadow-source markers (``.s``) come from the dependence builder: an
operand reads the speculative state iff its reaching definition inside the
region is itself predicated.
"""

from __future__ import annotations

from repro.compiler.dependence import DepGraph
from repro.compiler.unit import ScheduledUnit
from repro.machine.program import Bundle, RegionSpan, VLIWProgram


def emit_vliw(
    units: dict[int, ScheduledUnit],
    graphs: dict[int, DepGraph],
    entry: int,
    name: str = "vliw",
) -> VLIWProgram:
    """Lay out every unit and resolve exit labels."""
    order = [entry] + sorted(origin for origin in units if origin != entry)
    bundles: list[Bundle] = []
    provenance: list[tuple[int, ...]] = []
    labels: dict[str, int] = {}
    regions: list[RegionSpan] = []

    for origin in order:
        unit = units[origin]
        graph = graphs[origin]
        start = len(bundles)
        labels[f"B{origin}"] = start
        for cycle_items in unit.schedule.bundles:
            ops = []
            origins = []
            for index in sorted(cycle_items):
                item = unit.region.items[index]
                instr = item.instr
                shadow = graph.shadow_positions.get(index)
                if shadow:
                    instr = instr.replace(shadow=frozenset(shadow))
                ops.append(instr)
                origins.append(unit.tree.nodes[item.node_id].origin)
            bundles.append(Bundle(tuple(ops)))
            provenance.append(tuple(origins))
        if len(bundles) == start:
            # A degenerate empty region still needs one bundle to land on.
            bundles.append(Bundle(()))
            provenance.append(())
        regions.append(RegionSpan(f"B{origin}", start, len(bundles)))

    program = VLIWProgram(
        bundles=bundles,
        labels=labels,
        regions=regions,
        name=name,
        provenance=provenance,
    )
    program.validate()
    return program
