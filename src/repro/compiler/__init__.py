"""The instruction scheduler (Section 3.3) and its model variants.

All eight evaluated machine/scheduling models are policy variants of one
windowed scheduler:

1. a *region tree* is grown from a header block by tail duplication
   (:mod:`repro.compiler.regiontree`) -- a trace is the single-child
   special case, global scheduling the two-block special case;
2. the tree is linearized and predicated
   (:mod:`repro.compiler.predication`), re-indexing condition-set
   instructions onto allocated CCR entries; restricted models keep their
   conditional branches, predicating models eliminate them;
3. the rename-hoist transform (:mod:`repro.compiler.rename`) gives
   compiler-only models their legal speculative motion (renamed
   destination + predicated copy, with dead-copy elimination);
4. a dependence graph encodes each model's speculation constraints
   (:mod:`repro.compiler.dependence`), including the predicating-specific
   rules: shadow-storage conflicts, commit-ordering (WAR vs commit),
   exception-taint barriers for condition-sets, and region-exit closure;
5. a resource-constrained list scheduler packs bundles
   (:mod:`repro.compiler.list_scheduler`);
6. scheduled units are counted against the scalar dynamic trace
   (:mod:`repro.compiler.unit`), and predicating models additionally emit
   a real :class:`~repro.machine.program.VLIWProgram`
   (:mod:`repro.compiler.vliw_codegen`) executed on the cycle-level
   machine.

:mod:`repro.compiler.models` holds the eight concrete policies;
:mod:`repro.compiler.pipeline` ties everything together.
"""

from repro.compiler.models import MODELS, get_policy
from repro.compiler.pipeline import compile_program, evaluate_model

__all__ = ["MODELS", "compile_program", "evaluate_model", "get_policy"]
