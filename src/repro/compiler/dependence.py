"""Dependence-graph construction for one linearized region.

Produces the precedence edges the list scheduler must respect.  Edge
``(i, j, L)`` means ``cycle(j) >= cycle(i) + L``; latency 0 allows
same-cycle issue (reads happen at the start of a cycle, writes at the
end).

Edge families (with the reasoning each encodes):

**Data**
  * true dependence: consumer >= producer + producer latency;
  * anti dependence (WAR): a use must issue no later than any later def of
    the same register -- with buffering this also guarantees the use reads
    the right storage before a commit or a disjoint-path shadow write can
    overwrite it (a speculative def's earliest possible commit is the tick
    *after* its issue cycle, so a plain latency-0 edge is sufficient);
  * output dependence (WAW): write-back order is preserved
    (``lat(i) - lat(j) + 1``); two defs with *different* predicates in a
    single-shadow machine additionally conflict on the shadow storage, so
    the later def waits for the earlier predicate's resolution (guard
    edges from that predicate's condition-sets).

**Memory**
  The scheduler keeps may-aliasing memory operations in program order
  (store->load 1, load->store 0, store->store 1); the predicated store
  buffer handles the speculation side.  Aliasing is decided by a symbolic
  address-provenance analysis: addresses are ``root + constant`` where a
  root is a region-entry register, a constant, or an unknown; distinct
  known roots are assumed not to alias (a standard evaluation heuristic,
  documented in DESIGN.md), identical roots compare offsets exactly, and
  unknowns alias everything.  Observable outputs form their own chain.
  Operations on provably disjoint control paths never interact.

**Control**
  * guard edges: conditions an instruction may not speculate past impose
    ``instr >= cond_set + 1``; squash-crossed conditions impose
    ``instr >= cond_set`` (state lives only in the pipeline); buffered
    crossings impose nothing -- the paper's mechanism;
  * exits (predicated jumps, retained branches, halts) wait for their own
    conditions, for every producer of a value live into their target, and
    for stores/outputs on their path -- the region-closure rules that let
    the machine squash all remaining speculative state at a transfer;
  * boosting's counter-style commit hardware forces condition-resolving
    points into program order (chain edges).

**Exceptions**
  A condition-set executes ``alw`` even when its home block is deep in the
  region, so it must never consume a value *tainted* by a speculative
  unsafe instruction before that instruction's exception-commit point --
  otherwise a corrupted condition would enter the CCR and recovery could
  not undo it (Section 3.5's correctness argument).  Taint is propagated
  transitively along true dependences, and each tainted condition-set gets
  guard edges for the originating unsafe instruction's predicate.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.compiler.policy import Mechanism, ModelPolicy
from repro.compiler.predication import LinearInstr, LinearRegion, Role
from repro.isa.registers import ZERO_REG


@dataclass
class DepGraph:
    """Precedence edges over a linear region, plus codegen metadata."""

    region: LinearRegion
    edges: list[tuple[int, int, int]] = field(default_factory=list)
    # item index -> set of source-operand positions that read shadow state
    shadow_positions: dict[int, set[int]] = field(default_factory=dict)

    def add(self, producer: int, consumer: int, latency: int) -> None:
        if producer != consumer:
            self.edges.append((producer, consumer, latency))


# ----------------------------------------------------------------------
# Address provenance for the alias heuristic.
# ----------------------------------------------------------------------
_ENTRY = "entry"
_CONST = "const"
_UNKNOWN = "unknown"


def _reaching_def(items: list[LinearInstr], j: int, reg: int) -> int | None:
    """Nearest earlier def of *reg* on a path consistent with item *j*."""
    pred_j = items[j].instr.pred
    for i in range(j - 1, -1, -1):
        if items[i].instr.dest_reg == reg:
            if items[i].instr.pred.disjoint_with(pred_j):
                continue
            return i
    return None


def _provenance(
    items: list[LinearInstr],
    j: int,
    reg: int,
    cache: dict[tuple[int, int], tuple[str, int, int]],
    depth: int = 0,
) -> tuple[str, int, int]:
    """Symbolic value of *reg* as seen by item *j*: (kind, id, offset)."""
    if reg == ZERO_REG:
        return (_CONST, 0, 0)
    key = (j, reg)
    if key in cache:
        return cache[key]
    result: tuple[str, int, int]
    i = _reaching_def(items, j, reg)
    if i is None:
        result = (_ENTRY, reg, 0)
    elif depth > 32 or not items[j].instr.pred.implies(items[i].instr.pred):
        # A shared-join input may come from either arm: unknown value.
        result = (_UNKNOWN, items[i].instr.uid, 0)
    else:
        instr = items[i].instr
        if instr.opcode == "li":
            result = (_CONST, 0, instr.imm or 0)
        elif instr.opcode == "mov":
            result = _provenance(items, i, instr.src_regs[0], cache, depth + 1)
        elif instr.opcode == "addi":
            kind, ident, offset = _provenance(
                items, i, instr.src_regs[0], cache, depth + 1
            )
            result = (kind, ident, offset + (instr.imm or 0))
        else:
            result = (_UNKNOWN, instr.uid, 0)
    cache[key] = result
    return result


def _may_alias(
    a: tuple[str, int, int], b: tuple[str, int, int]
) -> bool:
    kind_a, id_a, off_a = a
    kind_b, id_b, off_b = b
    if kind_a == _UNKNOWN or kind_b == _UNKNOWN:
        return True
    if (kind_a, id_a) == (kind_b, id_b):
        return off_a == off_b
    # Distinct known roots: assumed distinct allocations.
    return False


def _address_of(
    items: list[LinearInstr],
    j: int,
    cache: dict[tuple[int, int], tuple[str, int, int]],
) -> tuple[str, int, int]:
    instr = items[j].instr
    if instr.opcode == "ld":
        base = instr.src_regs[0]
    else:  # st
        base = instr.src_regs[1]
    kind, ident, offset = _provenance(items, j, base, cache)
    return (kind, ident, offset + (instr.imm or 0))


# ----------------------------------------------------------------------
# Main construction.
# ----------------------------------------------------------------------
def build_dependence(
    region: LinearRegion,
    policy: ModelPolicy,
    exit_live_in: dict[int, set[int]],
    *,
    single_shadow: bool = True,
) -> DepGraph:
    """Build the dependence graph for *region* under *policy*.

    *exit_live_in* maps original block ids (exit targets) to their live-in
    register sets in the original CFG.
    """
    graph = DepGraph(region=region)
    items = region.items
    tree = region.tree

    cond_set_of: dict[int, int] = {}
    for index, item in enumerate(items):
        if item.role is Role.COND_SET:
            dest = item.instr.dest_creg
            assert dest is not None
            cond_set_of[dest] = index

    # ---- register dependences -----------------------------------------
    # The backward scan distinguishes two producer relations:
    #   * pred(use) implies pred(def): the normal same-path dependence --
    #     the consumer may read the speculative state (``.s``);
    #   * otherwise (non-disjoint, non-implying): a *commit dependence* --
    #     the consumer sits at a shared join (footnote-2 merging) and
    #     "cannot be scheduled until the speculative value is committed or
    #     squashed": it reads the sequential state and waits for every
    #     condition of the producer's predicate to resolve.  The scan then
    #     continues, because defs on the other arm (and the dominating
    #     def) also reach the join.
    # Path relations are decided with the *home* predicate of the item's
    # tree node, not the instruction's own predicate: condition-sets are
    # re-predicated ``alw`` but still belong to their home path, and
    # shared-join items carry the merged (shorter) predicate.
    def home_pred(index: int):
        return tree.nodes[items[index].node_id].pred

    reaching: dict[int, dict[int, int | None]] = {}
    for j, item in enumerate(items):
        instr = item.instr
        reaching[j] = {}
        pred_j = home_pred(j)
        for number, reg in enumerate(instr.src_regs):
            if reg == ZERO_REG:
                continue
            final_def: int | None = None
            for i in range(j - 1, -1, -1):
                other = items[i].instr
                if other.dest_reg != reg:
                    continue
                other_pred = home_pred(i)
                if other_pred.disjoint_with(pred_j):
                    continue
                if pred_j.implies(other_pred):
                    final_def = i
                    break
                # Commit dependence on a shared-join input.
                graph.add(i, j, other.latency)
                for cond, _ in other_pred.terms:
                    if cond in cond_set_of:
                        graph.add(cond_set_of[cond], j, 1)
            reaching[j][number] = final_def
            if final_def is None:
                continue
            producer = items[final_def].instr
            graph.add(final_def, j, producer.latency)
            if not producer.pred.is_always:
                positions = item.instr.source_positions
                graph.shadow_positions.setdefault(j, set()).add(
                    positions[number]
                )

    for j, item in enumerate(items):
        dest = item.instr.dest_reg
        if dest is None or dest == ZERO_REG:
            continue
        for i in range(j):
            other = items[i].instr
            # Anti dependence: earlier use, later def.
            if dest in other.src_regs:
                graph.add(i, j, 0)
            # Output dependence: earlier def of the same register.
            if other.dest_reg == dest:
                graph.add(i, j, max(0, other.latency - item.instr.latency + 1))
                if (
                    single_shadow
                    and not other.pred.is_always
                    and other.pred != item.instr.pred
                ):
                    # Single-shadow conflict: wait for the earlier value's
                    # resolution.
                    for cond, _ in other.pred.terms:
                        if cond in cond_set_of:
                            graph.add(cond_set_of[cond], j, 1)

    # ---- memory dependences --------------------------------------------
    address_cache: dict[tuple[int, int], tuple[str, int, int]] = {}
    memory_items = [
        j
        for j, item in enumerate(items)
        if item.instr.opcode in ("ld", "st")
    ]
    for position, j in enumerate(memory_items):
        b = items[j].instr
        addr_j = _address_of(items, j, address_cache)
        for i in memory_items[:position]:
            a = items[i].instr
            if a.opcode == "ld" and b.opcode == "ld":
                continue
            if a.pred.disjoint_with(b.pred):
                continue
            if not _may_alias(
                _address_of(items, i, address_cache), addr_j
            ):
                continue
            if a.opcode == "st" and b.opcode == "ld":
                graph.add(i, j, 1)
            elif a.opcode == "ld" and b.opcode == "st":
                graph.add(i, j, 0)
            else:
                graph.add(i, j, 1)

    out_items = [
        j for j, item in enumerate(items) if item.instr.opcode == "out"
    ]
    for previous, current in zip(out_items, out_items[1:]):
        graph.add(previous, current, 1)

    # ---- control / guard edges -----------------------------------------
    for j, item in enumerate(items):
        instr = item.instr
        if item.role in (Role.EXIT, Role.BRANCH, Role.HALT):
            for cond, _ in instr.pred.terms:
                if cond in cond_set_of:
                    graph.add(cond_set_of[cond], j, 1)
            if item.role is Role.BRANCH:
                for creg in instr.src_cregs:
                    if creg in cond_set_of:
                        graph.add(cond_set_of[creg], j, 1)
            continue
        if instr.pred.is_always:
            continue
        rule = policy.rule_for(instr)
        terms = list(instr.pred.terms)  # sorted by index = shallow->deep
        crossed = min(rule.depth, len(terms))
        guarded = terms[: len(terms) - crossed]
        crossed_terms = terms[len(terms) - crossed :]
        for cond, _ in guarded:
            if cond in cond_set_of:
                graph.add(cond_set_of[cond], j, 1)
        if rule.mechanism is Mechanism.SQUASH:
            for cond, _ in crossed_terms:
                if cond in cond_set_of:
                    graph.add(cond_set_of[cond], j, 0)
        elif rule.mechanism is Mechanism.RENAME:
            # Not renamed by the transform (no free register): guard.
            for cond, _ in crossed_terms:
                if cond in cond_set_of:
                    graph.add(cond_set_of[cond], j, 1)

    if policy.ordered_cond_sets:
        resolving = [
            j
            for j, item in enumerate(items)
            if item.role is (Role.BRANCH if not policy.eliminate_branches
                             else Role.COND_SET)
        ]
        for previous, current in zip(resolving, resolving[1:]):
            graph.add(previous, current, 1)

    # ---- exception taint ------------------------------------------------
    speculative_unsafe: set[int] = set()
    for j, item in enumerate(items):
        instr = item.instr
        if instr.is_unsafe and not instr.pred.is_always:
            rule = policy.rule_for(instr)
            if rule.depth > 0 and rule.mechanism is Mechanism.BUFFER:
                speculative_unsafe.add(j)

    taint: dict[int, set[int]] = {}
    for j, item in enumerate(items):
        origins: set[int] = set()
        for number, i in reaching.get(j, {}).items():
            if i is None:
                continue
            origins |= taint.get(i, set())
            if i in speculative_unsafe:
                origins.add(i)
        taint[j] = origins
        if item.role is Role.COND_SET and origins:
            for origin in origins:
                graph.add(origin, j, items[origin].instr.latency)
                for cond, _ in items[origin].instr.pred.terms:
                    if cond in cond_set_of:
                        graph.add(cond_set_of[cond], j, 1)

    # ---- region-exit closure ---------------------------------------------
    exit_items = [
        j
        for j, item in enumerate(items)
        if item.role in (Role.EXIT, Role.BRANCH, Role.HALT)
    ]
    # With pure tail duplication exit predicates are pairwise disjoint, so
    # at most one can be true.  Equivalent-join sharing weakens this: a
    # shared join's exit conditions are computed ``alw`` and hold garbage
    # on paths that left through an arm's side exit, so both could read
    # true.  Program order decides: a later exit may only issue after
    # every earlier non-disjoint exit has had its chance to transfer.
    for position, e in enumerate(exit_items):
        for earlier in exit_items[:position]:
            if not items[earlier].instr.pred.disjoint_with(
                items[e].instr.pred
            ):
                graph.add(earlier, e, 1)

    for e in exit_items:
        exit_item = items[e]
        live: set[int] = set()
        for node_id, _arm in exit_item.exit_keys:
            for exit_ in tree.nodes[node_id].exits:
                live |= exit_live_in.get(exit_.target_origin, set())
        exit_pred = exit_item.instr.pred
        exit_conditions = exit_pred.conditions
        for i in range(e):
            other = items[i]
            if other.role in (Role.EXIT, Role.BRANCH, Role.HALT):
                continue
            if home_pred(i).disjoint_with(exit_pred):
                continue
            contributes = False
            dest = other.instr.dest_reg
            if dest is not None and dest in live:
                graph.add(i, e, other.instr.latency)
                contributes = True
            elif dest is not None:
                # The register file at halt is architecturally observable,
                # and bundles past a taken transfer never issue: a register
                # write on the exit's path may not sink below the exit even
                # when its value is dead in the target (latency 0 -- the
                # transfer/halt flush commits TRUE in-flight results).
                graph.add(i, e, 0)
                contributes = True
            if other.instr.opcode in ("st", "out"):
                graph.add(i, e, 0)
                contributes = True
            if contributes:
                # Closure: the contributor's own conditions must resolve
                # before the exit, or the transfer would squash it.  With
                # pure tail duplication the exit predicate already covers
                # them; with shared joins (footnote 2) the exit predicate
                # is shorter than the arm producers' -- these edges are
                # the commit dependences the paper attributes to region
                # predicating.
                for cond, _ in home_pred(i).terms:
                    if cond not in exit_conditions and cond in cond_set_of:
                        graph.add(cond_set_of[cond], e, 1)
    return graph
