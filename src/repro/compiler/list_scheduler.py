"""Resource-constrained list scheduling.

Classic critical-path list scheduling over the region dependence graph:
priority is the longest latency-weighted path to any sink, ties broken by
program order (which keeps schedules deterministic and close to the
source's intent).  Resources are the machine's issue width and per-class
function-unit counts.

Latency-0 edges permit same-cycle issue (the machine reads operands at the
start of a cycle and writes at the end), which is how squash-crossed
conditions and anti-dependences behave.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from repro.compiler.dependence import DepGraph
from repro.core.exceptions import ScheduleViolation
from repro.isa.instruction import Instruction
from repro.isa.opcodes import FuClass
from repro.machine.config import MachineConfig


@dataclass
class Schedule:
    """The result: issue cycle per item, and the packed bundles."""

    cycle_of: dict[int, int]  # item index -> cycle (0-based)
    bundles: list[list[int]] = field(default_factory=list)  # item indices

    @property
    def length(self) -> int:
        return len(self.bundles)


def _priorities(
    count: int, edges: list[tuple[int, int, int]], instrs: list[Instruction]
) -> list[int]:
    """Longest path (by latency, min 1 per hop) from each node to a sink."""
    outgoing: dict[int, list[tuple[int, int]]] = {i: [] for i in range(count)}
    for producer, consumer, latency in edges:
        outgoing[producer].append((consumer, max(latency, 1)))
    height = [0] * count
    for i in range(count - 1, -1, -1):
        best = instrs[i].latency
        for consumer, latency in outgoing[i]:
            if consumer > i:
                best = max(best, latency + height[consumer])
        height[i] = best
    return height


def list_schedule(graph: DepGraph, config: MachineConfig) -> Schedule:
    """Schedule *graph* onto *config*'s resources."""
    items = graph.region.items
    count = len(items)
    instrs = [item.instr for item in items]

    incoming: dict[int, list[tuple[int, int]]] = {i: [] for i in range(count)}
    outgoing: dict[int, list[tuple[int, int]]] = {i: [] for i in range(count)}
    for producer, consumer, latency in graph.edges:
        if producer >= consumer and producer == consumer:
            continue
        if consumer < producer:
            # A reversed edge would make the graph cyclic with program
            # order; the builders never produce one except use-before-def
            # style anti edges, which are still forward edges by index.
            raise ScheduleViolation(
                f"backward dependence edge {producer}->{consumer}"
            )
        incoming[consumer].append((producer, latency))
        outgoing[producer].append((consumer, latency))

    height = _priorities(count, graph.edges, instrs)
    unscheduled_preds = {i: len(incoming[i]) for i in range(count)}
    earliest = [0] * count
    # Min-heap by (-priority, program order).
    ready: list[tuple[int, int]] = []
    for i in range(count):
        if unscheduled_preds[i] == 0:
            heapq.heappush(ready, (-height[i], i))

    cycle_of: dict[int, int] = {}
    bundles: list[list[int]] = []
    cycle = 0
    deferred: list[tuple[int, int]] = []
    scheduled = 0
    while scheduled < count:
        issue_used = 0
        fu_used: dict[FuClass, int] = {}
        bundle: list[int] = []
        deferred.clear()
        while ready:
            priority, i = heapq.heappop(ready)
            if earliest[i] > cycle:
                deferred.append((priority, i))
                continue
            fu = instrs[i].fu
            limit = config.fu_count(fu)
            if issue_used >= config.issue_width or (
                limit is not None and fu_used.get(fu, 0) >= limit
            ):
                deferred.append((priority, i))
                continue
            # Same-cycle (latency 0) dependences: the producer must already
            # be placed in this or an earlier cycle -- guaranteed because a
            # consumer only becomes ready once all producers are scheduled.
            bundle.append(i)
            cycle_of[i] = cycle
            issue_used += 1
            fu_used[fu] = fu_used.get(fu, 0) + 1
            scheduled += 1
            for consumer, latency in outgoing[i]:
                earliest[consumer] = max(
                    earliest[consumer], cycle + latency
                )
                unscheduled_preds[consumer] -= 1
                if unscheduled_preds[consumer] == 0:
                    heapq.heappush(ready, (-height[consumer], consumer))
        for entry in deferred:
            heapq.heappush(ready, entry)
        bundles.append(bundle)
        cycle += 1
        if cycle > 10 * count + 64:
            raise ScheduleViolation("list scheduler failed to converge")
    return Schedule(cycle_of=cycle_of, bundles=bundles)
