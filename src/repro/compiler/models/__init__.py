"""The eight evaluated machine/scheduling models (Sections 4.1-4.2).

Each model is a :class:`~repro.compiler.policy.ModelPolicy`; the table
below summarizes how the paper's descriptions map onto policy knobs.
DESIGN.md discusses the modelling choices at length.

===============  ======  ======  ===========  ==============================
model            window  arms    branches     speculation
===============  ======  ======  ===========  ==============================
scalar           --      --      --           none (interpreter baseline)
global           2 blk   trace   retained     safe ops rename-hoisted across
                                              adjacent blocks only
squashing        2 blk   trace   retained     global + unsafe ops cross one
                                              condition by pipeline squash
trace            16 blk  trace   retained     global mechanisms over a full
                                              predicted trace
region           16 blk  both    eliminated   simple predication; squashing
                                              speculation only
boosting         16 blk  trace   retained     everything buffered in shadow
                                              structures up to K branches;
                                              branch resolution stays ordered
trace_pred       16 blk  trace   eliminated   full predicated state buffering
                                              along the predicted path
region_pred      16 blk  both    eliminated   full predicated state buffering
                                              over both paths (this paper)
===============  ======  ======  ===========  ==============================
"""

from __future__ import annotations

from repro.compiler.policy import CrossingRule, Mechanism, ModelPolicy, UNLIMITED

_RENAME_INF = CrossingRule(depth=UNLIMITED, mechanism=Mechanism.RENAME)
_SQUASH_1 = CrossingRule(depth=1, mechanism=Mechanism.SQUASH)
_BUFFER_K = CrossingRule(depth=UNLIMITED, mechanism=Mechanism.BUFFER)
_NONE = CrossingRule.none()

GLOBAL = ModelPolicy(
    name="global",
    both_arms=False,
    window_blocks=2,
    eliminate_branches=False,
    safe=_RENAME_INF,
    unsafe=_NONE,
    load=_NONE,
    store=_NONE,
)

SQUASHING = ModelPolicy(
    name="squashing",
    both_arms=False,
    window_blocks=2,
    eliminate_branches=False,
    safe=_RENAME_INF,
    unsafe=_SQUASH_1,
    load=_SQUASH_1,
    store=_NONE,
)

TRACE = ModelPolicy(
    name="trace",
    both_arms=False,
    window_blocks=16,
    eliminate_branches=False,
    safe=_RENAME_INF,
    unsafe=_SQUASH_1,
    load=_SQUASH_1,
    store=_NONE,
)

REGION = ModelPolicy(
    name="region",
    both_arms=True,
    window_blocks=16,
    eliminate_branches=True,
    safe=CrossingRule(depth=UNLIMITED, mechanism=Mechanism.SQUASH),
    unsafe=_SQUASH_1,
    load=_SQUASH_1,
    store=_NONE,
)

BOOSTING = ModelPolicy(
    name="boosting",
    both_arms=False,
    window_blocks=16,
    eliminate_branches=False,
    safe=_BUFFER_K,
    unsafe=_BUFFER_K,
    load=_BUFFER_K,
    store=_BUFFER_K,
    ordered_cond_sets=True,
)

TRACE_PRED = ModelPolicy(
    name="trace_pred",
    both_arms=False,
    window_blocks=16,
    eliminate_branches=True,
    safe=_BUFFER_K,
    unsafe=_BUFFER_K,
    load=_BUFFER_K,
    store=_BUFFER_K,
    executable=True,
)

REGION_PRED = ModelPolicy(
    name="region_pred",
    both_arms=True,
    window_blocks=16,
    eliminate_branches=True,
    safe=_BUFFER_K,
    unsafe=_BUFFER_K,
    load=_BUFFER_K,
    store=_BUFFER_K,
    executable=True,
)

MODELS: dict[str, ModelPolicy] = {
    policy.name: policy
    for policy in (
        GLOBAL,
        SQUASHING,
        TRACE,
        REGION,
        BOOSTING,
        TRACE_PRED,
        REGION_PRED,
    )
}


def get_policy(name: str) -> ModelPolicy:
    """Look up a model policy by name ('scalar' has no policy)."""
    try:
        return MODELS[name]
    except KeyError:
        raise KeyError(
            f"unknown model {name!r}; choose from {sorted(MODELS)}"
        ) from None
