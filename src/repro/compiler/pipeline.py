"""The compile-and-evaluate pipeline.

``compile_program`` turns a scalar program into scheduled units under a
model policy (region formation -> predication -> renaming -> dependence ->
list scheduling), and -- for the predicating models -- emits executable
VLIW code.

``evaluate_model`` reproduces the paper's methodology end to end for one
(program, model, machine) triple:

1. run the scalar program on a *training* input to profile branches;
2. compile with the profile-driven static predictor;
3. run the scalar program on the *evaluation* input for the baseline
   cycle count and the evaluation trace;
4. count the scheduled code's cycles against the evaluation trace
   (and, for executable models, actually run the code on the cycle-level
   machine, checking architectural equivalence with the scalar run).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.branch_prediction import StaticPredictor
from repro.compiler.dependence import DepGraph, build_dependence
from repro.compiler.list_scheduler import list_schedule
from repro.compiler.models import get_policy
from repro.compiler.policy import Mechanism, ModelPolicy
from repro.compiler.predication import linearize
from repro.compiler.regiontree import grow_region, merge_equivalent_joins
from repro.compiler.rename import apply_renaming
from repro.compiler.unit import CycleCount, ScheduledCode, ScheduledUnit, make_unit
from repro.compiler.vliw_codegen import emit_vliw
from repro.ir.cfg import CFG, build_cfg
from repro.ir.dataflow import compute_liveness
from repro.ir.dominators import compute_dominators
from repro.ir.loops import find_natural_loops
from repro.isa.program import Program
from repro.machine.config import MachineConfig
from repro.machine.program import VLIWProgram
from repro.machine.scalar import ScalarRun, run_scalar
from repro.machine.vliw import VLIWMachine, VLIWResult
from repro.obs.metrics import NULL_SINK, MetricsSink
from repro.obs.trace_events import CycleTraceRecorder
from repro.sim.memory import Memory


@dataclass
class CompiledProgram:
    """Everything compilation produced for one model."""

    policy: ModelPolicy
    cfg: CFG
    code: ScheduledCode
    vliw: VLIWProgram | None

    def unit_count(self) -> int:
        return len(self.code.units)


def compile_program(
    program: Program,
    model: str | ModelPolicy,
    config: MachineConfig,
    predictor: StaticPredictor,
) -> CompiledProgram:
    """Compile *program* under *model* for *config*."""
    policy = get_policy(model) if isinstance(model, str) else model
    policy = policy.with_depth(config.ccr_entries, config.speculation_depth)

    cfg = build_cfg(program)
    liveness = compute_liveness(cfg)
    exit_live_in = {
        bid: set(liveness.blocks[bid].live_in_regs) for bid in cfg.blocks
    }
    dominators = compute_dominators(cfg)
    loop_headers = frozenset(
        loop.header for loop in find_natural_loops(cfg, dominators)
    )
    # The region-growth benefit heuristic is resource-aware: a narrow
    # machine cannot afford to fill issue slots with low-probability arms,
    # so duplication is restricted to likelier arms as width shrinks.
    min_arm_probability = max(
        policy.min_arm_probability, 1.0 / config.issue_width
    )
    uses_renaming = any(
        rule.mechanism is Mechanism.RENAME and rule.depth > 0
        for rule in (policy.safe, policy.unsafe, policy.load, policy.store)
    )
    single_shadow = config.shadow_capacity == 1

    units: dict[int, ScheduledUnit] = {}
    graphs: dict[int, DepGraph] = {}
    worklist = [cfg.entry]
    while worklist:
        header = worklist.pop()
        if header in units:
            continue
        tree = grow_region(
            cfg,
            header,
            both_arms=policy.both_arms,
            window_blocks=policy.window_blocks,
            max_conditions=config.ccr_entries,
            predictor=predictor,
            min_arm_probability=min_arm_probability,
            loop_headers=loop_headers,
        )
        if policy.share_equivalent_joins:
            merge_equivalent_joins(tree, cfg, dominators)
        region = linearize(
            tree, cfg, eliminate_branches=policy.eliminate_branches
        )
        if uses_renaming:
            apply_renaming(region, policy, exit_live_in)
        graph = build_dependence(
            region, policy, exit_live_in, single_shadow=single_shadow
        )
        schedule = list_schedule(graph, config)
        units[header] = make_unit(tree, region, schedule)
        graphs[header] = graph
        worklist.extend(tree.exit_targets())

    code = ScheduledCode(units, cfg)
    vliw = (
        emit_vliw(units, graphs, cfg.entry, name=f"{program.name}:{policy.name}")
        if policy.executable
        else None
    )
    return CompiledProgram(policy=policy, cfg=cfg, code=code, vliw=vliw)


@dataclass
class ModelEvaluation:
    """Cycle counts and validation results for one model run."""

    model: str
    scalar: ScalarRun
    analytic: CycleCount
    machine: VLIWResult | None
    compiled: CompiledProgram

    @property
    def cycles(self) -> int:
        """The headline cycle count (machine-measured when available)."""
        if self.machine is not None:
            return self.machine.cycles
        return self.analytic.cycles

    @property
    def speedup(self) -> float:
        return self.scalar.cycles / self.cycles


def evaluate_model(
    program: Program,
    model: str | ModelPolicy,
    config: MachineConfig,
    *,
    train_memory: Memory,
    eval_memory: Memory,
    fault_handler=None,
    run_machine: bool | None = None,
    max_steps: int | None = None,
    sink: MetricsSink = NULL_SINK,
    tracer: CycleTraceRecorder | None = None,
    machine_runner=None,
) -> ModelEvaluation:
    """The full paper methodology for one (program, model, machine) triple.

    *sink* and *tracer* instrument the cycle-level machine run only (the
    scalar baseline runs un-instrumented); both default to off.

    *machine_runner*, when given, is called as ``machine_runner(machine)
    -> VLIWResult`` in place of ``machine.run()`` -- the hook the
    checkpoint layer uses to run the machine with periodic snapshots,
    resume it from a prior snapshot (the machine exposes its program,
    config, sink and tracer for reconstruction), or stop it gracefully
    on a signal.  The architectural-equivalence check still applies to
    whatever result the runner returns.
    """
    cfg = build_cfg(program)
    train = run_scalar(
        program, cfg, train_memory, fault_handler=fault_handler,
        max_steps=max_steps,
    )
    predictor = StaticPredictor.from_trace(train.trace)

    compiled = compile_program(program, model, config, predictor)

    evaluation = run_scalar(
        program, cfg, eval_memory.clone(), fault_handler=fault_handler,
        max_steps=max_steps,
    )
    analytic = compiled.code.count_cycles(evaluation.trace, config)

    machine_result: VLIWResult | None = None
    should_run = (
        compiled.vliw is not None if run_machine is None else run_machine
    )
    if should_run and compiled.vliw is not None:
        machine = VLIWMachine(
            compiled.vliw,
            config,
            eval_memory.clone(),
            fault_handler=fault_handler,
            sink=sink,
            tracer=tracer,
        )
        machine_result = (
            machine.run() if machine_runner is None else machine_runner(machine)
        )
        if machine_result.architectural_output != evaluation.output:
            raise AssertionError(
                f"{program.name}/{compiled.policy.name}: scheduled code "
                f"diverged from scalar semantics: "
                f"{machine_result.architectural_output[:8]} != "
                f"{evaluation.output[:8]}"
            )
    return ModelEvaluation(
        model=compiled.policy.name,
        scalar=evaluation,
        analytic=analytic,
        machine=machine_result,
        compiled=compiled,
    )
