"""Scheduling-model policies.

A :class:`ModelPolicy` captures everything that distinguishes the paper's
eight evaluated models: the scheduling window shape, whether branches are
eliminated by predication, and -- per operation class -- how many branch
conditions an instruction may speculatively cross and by what mechanism.

Mechanisms:

* ``rename`` -- compiler-only: the instruction's destination is renamed to
  a dead register and executed unconditionally; a predicated copy restores
  the value at the home point (the paper's Section 2.1 legal-motion
  transform).  Needs no hardware.
* ``squash`` -- squashing speculation: the instruction issues while its
  conditions are still being computed and the pipeline squashes the write
  if they resolve against it.  State lives only in the pipeline, so the
  instruction may issue no earlier than the cycle its condition is
  computed (a latency-0 edge from the condition-set).
* ``buffer`` -- predicated state buffering (this paper's mechanism, and
  boosting's shadow structures): results are buffered with commit
  conditions; crossed conditions impose no issue-order constraint at all.

Conditions an instruction is *not* allowed to cross get guard edges
(latency 1 from the condition-set): the instruction issues only after its
predicate is specified.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Mechanism(enum.Enum):
    RENAME = "rename"
    SQUASH = "squash"
    BUFFER = "buffer"


@dataclass(frozen=True, slots=True)
class CrossingRule:
    """How one operation class speculates past branch conditions."""

    depth: int  # conditions the op may cross (large number = unlimited)
    mechanism: Mechanism = Mechanism.SQUASH

    @staticmethod
    def none() -> CrossingRule:
        return CrossingRule(depth=0)


UNLIMITED = 10**6


@dataclass(frozen=True, slots=True)
class ModelPolicy:
    """Full policy of one evaluated model."""

    name: str
    both_arms: bool  # region window (else trace/predicted-path window)
    window_blocks: int  # max blocks per scheduling unit
    eliminate_branches: bool  # predicated exits instead of real branches
    safe: CrossingRule  # safe ALU ops
    unsafe: CrossingRule  # div/rem
    load: CrossingRule  # loads (unsafe + 2-cycle latency)
    store: CrossingRule  # stores and observable output
    max_conditions: int = 4  # CCR entries available to a unit (K)
    ordered_cond_sets: bool = False  # counter-predicate restriction
    min_arm_probability: float = 0.25  # region growth: skip rarer arms
    executable: bool = False  # emits real VLIW code for the machine
    # Footnote-2 option: share join blocks equivalent to their branch
    # instead of duplicating them (introduces commit dependences).
    share_equivalent_joins: bool = False

    def rule_for(self, instruction) -> CrossingRule:
        """The crossing rule governing *instruction*."""
        if instruction.is_store or instruction.opcode == "out":
            return self.store
        if instruction.is_load:
            return self.load
        if instruction.is_unsafe:
            return self.unsafe
        return self.safe

    def with_depth(self, max_conditions: int, crossing: int) -> ModelPolicy:
        """Clone with a different CCR size / speculation depth (Figure 8)."""

        def clamp(rule: CrossingRule) -> CrossingRule:
            if rule.depth == 0:
                return rule
            return CrossingRule(
                depth=min(rule.depth, crossing), mechanism=rule.mechanism
            )

        return ModelPolicy(
            name=self.name,
            both_arms=self.both_arms,
            window_blocks=self.window_blocks,
            eliminate_branches=self.eliminate_branches,
            safe=clamp(self.safe),
            unsafe=clamp(self.unsafe),
            load=clamp(self.load),
            store=clamp(self.store),
            max_conditions=max_conditions,
            ordered_cond_sets=self.ordered_cond_sets,
            min_arm_probability=self.min_arm_probability,
            executable=self.executable,
            share_equivalent_joins=self.share_equivalent_joins,
        )
