"""Scheduled units and the trace-driven cycle counter.

The paper counts cycles for the scheduled machine "using the trace
information of the R3000 code by pixie".  Our equivalent: every scheduled
region knows, for each of its exits, the cycle of the departing jump (or
retained branch); the counter walks the scalar dynamic trace through the
region trees, charging each region visit its departure cycle + 1 and the
configured taken-transfer penalty.

Because the dependence builder gives every exit closure edges (conditions,
live-out producers, stores), the schedule itself guarantees everything an
early exit needs has issued -- no compensation-code accounting is needed
(DESIGN.md discusses this modelling choice for the trace-scheduling
baseline).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.compiler.list_scheduler import Schedule
from repro.compiler.predication import LinearRegion, Role
from repro.compiler.regiontree import RegionTree
from repro.ir.cfg import CFG
from repro.machine.config import MachineConfig
from repro.sim.trace import DynamicTrace


@dataclass
class ScheduledUnit:
    """One region's schedule plus the exit-cycle table."""

    tree: RegionTree
    region: LinearRegion
    schedule: Schedule
    # (node_id, arm_value) -> issue cycle of the departing control point.
    exit_cycle: dict[tuple[int, bool | None], int] = field(default_factory=dict)
    halt_cycle: dict[int, int] = field(default_factory=dict)  # node_id -> cycle

    @property
    def header_origin(self) -> int:
        return self.tree.header_origin

    @property
    def length(self) -> int:
        return self.schedule.length


def make_unit(
    tree: RegionTree, region: LinearRegion, schedule: Schedule
) -> ScheduledUnit:
    """Assemble a unit, extracting exit/halt cycles from the schedule."""
    unit = ScheduledUnit(tree=tree, region=region, schedule=schedule)
    for index, item in enumerate(region.items):
        cycle = schedule.cycle_of[index]
        if item.role in (Role.EXIT, Role.BRANCH):
            for key in item.exit_keys:
                unit.exit_cycle[key] = cycle
        elif item.role is Role.HALT:
            unit.halt_cycle[item.node_id] = cycle
    return unit


class TraceWalkError(RuntimeError):
    """The dynamic trace and the scheduled code disagree (a compiler bug)."""


@dataclass
class CycleCount:
    """Result of a trace-driven count."""

    cycles: int
    region_entries: int
    # Finite-BTB model statistics (both zero under the paper's optimistic
    # infinite-BTB assumption, where no buffer is modelled at all).
    btb_hits: int = 0
    btb_misses: int = 0

    @property
    def btb_hit_rate(self) -> float:
        total = self.btb_hits + self.btb_misses
        return self.btb_hits / total if total else 1.0


class ScheduledCode:
    """All units of a compiled program, keyed by header origin block."""

    def __init__(self, units: dict[int, ScheduledUnit], cfg: CFG):
        self.units = units
        self.cfg = cfg

    def count_cycles(
        self, trace: DynamicTrace, config: MachineConfig
    ) -> CycleCount:
        """Walk *trace* through the scheduled units and count cycles."""
        from repro.machine.btb import BranchTargetBuffer

        blocks = trace.blocks
        btb = (
            BranchTargetBuffer(config.btb_entries)
            if config.btb_entries is not None
            else None
        )
        total = 0
        entries = 0
        position = 0
        previous_header: int | None = None
        while position < len(blocks):
            header = blocks[position]
            unit = self.units.get(header)
            if unit is None:
                raise TraceWalkError(f"no unit headed by block {header}")
            entries += 1
            cycles, consumed = self._walk_unit(unit, blocks, position)
            total += cycles
            if btb is not None and not btb.access((previous_header, header)):
                total += config.taken_penalty_indirect
            else:
                total += config.taken_penalty_btb
            previous_header = header
            position += consumed
        return CycleCount(
            cycles=total,
            region_entries=entries,
            btb_hits=btb.hits if btb is not None else 0,
            btb_misses=btb.misses if btb is not None else 0,
        )

    def _walk_unit(
        self, unit: ScheduledUnit, blocks: list[int], start: int
    ) -> tuple[int, int]:
        """Cycles spent in one visit of *unit*, and blocks consumed."""
        tree = unit.tree
        node = tree.nodes[tree.root]
        consumed = 1
        while True:
            block = self.cfg.blocks[node.origin]
            terminator = block.terminator

            if terminator is not None and terminator.opcode == "halt":
                return unit.halt_cycle[node.node_id] + 1, consumed

            position = start + consumed
            if position >= len(blocks):
                # Trace ended without halt (non-halting program tail).
                return unit.length, consumed

            next_origin = blocks[position]
            arm = self._arm_for(node, block, next_origin)
            child_id = node.children.get(arm)
            if child_id is not None and tree.nodes[child_id].origin == next_origin:
                node = tree.nodes[child_id]
                consumed += 1
                continue
            key = (node.node_id, arm)
            if key in unit.exit_cycle:
                return unit.exit_cycle[key] + 1, consumed
            raise TraceWalkError(
                f"block {node.origin}: no child or exit for successor "
                f"{next_origin} (arm {arm})"
            )

    def _arm_for(self, node, block, next_origin: int) -> bool | None:
        """Which arm of *node* leads to *next_origin*."""
        if node.cond_index is None:
            return True if node.children else None
        if block.taken_target == next_origin:
            return node.taken_value
        if block.fall_through == next_origin:
            return not node.taken_value
        raise TraceWalkError(
            f"block {node.origin}: successor {next_origin} matches neither arm"
        )
