"""Register renaming for legal speculative motion (Section 2.1).

Compiler-only models (global / squashing / trace scheduling) cannot buffer
speculative state in hardware; they make an illegal upward motion legal by
renaming:

    "the compiler assigns a register which is not live on the side-effects
    causing path as the destination register [and] inserts an instruction
    which copies the value from the newly assigned register to the
    original destination register"

This pass rewrites every eligible instruction (safe, renameable, within
its policy's crossing depth) into

* the instruction itself with an ``alw`` predicate and a fresh dead
  destination register (it now executes unconditionally -- no guard
  edges), and
* a predicated ``mov home_dest, fresh`` copy at the original position,
  which carries the original control dependence.

Copy propagation then rewrites in-region consumers to read the fresh
register directly, and the copy is deleted when the home destination is
dead at every reachable exit (the paper's copy elimination) -- otherwise
it stays and costs its issue slot, exactly the price the paper's models
pay.

Renaming stops when the dead-register pool is exhausted: that is the
register-pressure constraint the paper identifies as the cost of
compiler-only speculation.
"""

from __future__ import annotations

from repro.compiler.policy import Mechanism, ModelPolicy
from repro.compiler.predication import LinearInstr, LinearRegion, Role
from repro.core.predicate import ALWAYS
from repro.isa.instruction import Instruction
from repro.isa.operands import Reg
from repro.isa.registers import NUM_REGS, ZERO_REG


def _free_register_pool(
    region: LinearRegion, exit_live_in: dict[int, set[int]]
) -> list[int]:
    """Registers dead everywhere the region can observe."""
    used: set[int] = set()
    for item in region.items:
        instr = item.instr
        if instr.dest_reg is not None:
            used.add(instr.dest_reg)
        used.update(instr.src_regs)
    live_out: set[int] = set()
    for exit_ in region.tree.all_exits():
        live_out |= exit_live_in.get(exit_.target_origin, set())
    return [
        reg
        for reg in range(NUM_REGS - 1, 0, -1)
        if reg != ZERO_REG and reg not in used and reg not in live_out
    ]


def _reaches(items: list[LinearInstr], def_index: int, use_index: int, reg: int) -> bool:
    """Whether *def_index*'s def of *reg* reaches *use_index*."""
    use_pred = items[use_index].instr.pred
    for i in range(use_index - 1, def_index, -1):
        other = items[i].instr
        if other.dest_reg == reg and not other.pred.disjoint_with(use_pred):
            return False
    return not items[def_index].instr.pred.disjoint_with(use_pred)


def apply_renaming(
    region: LinearRegion,
    policy: ModelPolicy,
    exit_live_in: dict[int, set[int]],
) -> LinearRegion:
    """Rewrite *region* in place applying rename-hoisting; returns it."""
    pool = _free_register_pool(region, exit_live_in)
    items = region.items

    index = 0
    while index < len(items):
        item = items[index]
        instr = item.instr
        rule = policy.rule_for(instr)
        eligible = (
            item.role is Role.BODY
            and item.renamable
            and rule.mechanism is Mechanism.RENAME
            and not instr.pred.is_always
            and instr.pred.depth <= rule.depth
            and not instr.is_unsafe
            and instr.dest_reg is not None
            and instr.dest_reg != ZERO_REG
            and not instr.is_store
            and instr.opcode != "out"
        )
        if not eligible or not pool:
            index += 1
            continue

        fresh = pool.pop()
        home_dest = instr.dest_reg
        home_pred = instr.pred

        hoisted = instr.rename_reg(home_dest, fresh, dest=True, srcs=False)
        hoisted = hoisted.replace(pred=ALWAYS)
        items[index] = LinearInstr(
            instr=hoisted,
            node_id=item.node_id,
            role=Role.BODY,
            renamable=False,
        )
        copy = LinearInstr(
            instr=Instruction(
                "mov", (Reg(home_dest), Reg(fresh)), pred=home_pred
            ),
            node_id=item.node_id,
            role=Role.BODY,
            renamable=False,
        )
        items.insert(index + 1, copy)

        # Copy propagation: in-region consumers whose reaching def is the
        # copy read the fresh register directly (and thereby lose the
        # guard chain).  `_reaches` is path-sensitive, so defs on disjoint
        # paths do not stop propagation for this path.
        for j in range(index + 2, len(items)):
            consumer = items[j]
            if home_dest in consumer.instr.src_regs and _reaches(
                items, index + 1, j, home_dest
            ):
                items[j] = LinearInstr(
                    instr=consumer.instr.rename_reg(
                        home_dest, fresh, dest=False, srcs=True
                    ),
                    node_id=consumer.node_id,
                    role=consumer.role,
                    exit_keys=consumer.exit_keys,
                    renamable=consumer.renamable,
                )

        # Dead-copy elimination: delete the copy when the home register is
        # dead at every exit the copy's path can reach (in-region readers
        # were just rewritten to the fresh register).
        live_anywhere = any(
            home_dest in exit_live_in.get(exit_.target_origin, set())
            for exit_ in region.tree.all_exits()
            if not exit_.pred.disjoint_with(home_pred)
        )
        if not live_anywhere:
            items.pop(index + 1)
        index += 1
    return region
