"""Loop unrolling -- the paper's future-work experiment.

Section 4.2.2 closes: "Speculative execution past eight conditions or
eight duplications of resources, however, produces little impact on
performance in our current evaluation. We believe that other compilation
techniques which expose more parallelism (e.g. loop unrolling) may be
required to exploit more parallelism."

This pass makes that claim testable.  It unrolls natural loops at the CFG
level by replicating the loop body: back edges of copy *i* are rewired to
the header copy of iteration *i+1*, and the final copy's back edges return
to the original header.  Every copy keeps its loop-exit edges, so the
transform is trip-count oblivious and semantics preserving for any
dynamic iteration count (verified by property tests).

After unrolling, the original header still heads the (now longer) loop --
the region former's loop barrier applies to it alone, so one region can
cover several original iterations' worth of control flow, which is
exactly the extra parallelism the deeper/wider machines of Figure 8 need.

Only self-contained loops are unrolled: every body block must branch
within the body or out of the loop, and the body must not contain ``out``
... actually observable effects are fine -- the copies preserve program
order.  Loops whose body contains an inner loop header are left alone
(inner loops are unrolled first, outermost last, by processing loops in
increasing body size).
"""

from __future__ import annotations

from repro.ir.cfg import CFG
from repro.ir.dominators import compute_dominators
from repro.ir.loops import find_natural_loops


def unroll_loops(cfg: CFG, factor: int, *, max_body_blocks: int = 12) -> CFG:
    """Return a new CFG with every eligible natural loop unrolled.

    ``factor`` is the total number of body copies (1 = no change).  Loops
    larger than *max_body_blocks* are left alone (code-size guard).
    """
    if factor < 1:
        raise ValueError("unroll factor must be >= 1")
    result = cfg.clone()
    if factor == 1:
        return result

    # Innermost-first: loops sorted by increasing body size; re-analyze
    # after each transform because block ids change.
    progress = True
    # Track processed loops by header *origin* so the copies a transform
    # creates (which carry the same origin) are never re-unrolled.
    unrolled_origins: set[int] = set()
    while progress:
        progress = False
        dominators = compute_dominators(result)
        loops = sorted(
            find_natural_loops(result, dominators), key=lambda l: l.size
        )
        fresh_headers = {
            loop.header
            for loop in loops
            if result.blocks[loop.header].origin not in unrolled_origins
        }
        for loop in loops:
            origin = result.blocks[loop.header].origin
            if origin in unrolled_origins:
                continue
            if loop.size > max_body_blocks:
                unrolled_origins.add(origin)  # too big: never retry
                continue
            if (fresh_headers - {loop.header}) & loop.body:
                continue  # unroll inner loops first
            _unroll_one(result, loop.header, loop.body, factor)
            unrolled_origins.add(origin)
            progress = True
            break  # re-analyze from scratch
    result.remove_unreachable()
    return result


def _unroll_one(cfg: CFG, header: int, body: set[int], factor: int) -> None:
    """Unroll one loop in place."""
    copies: list[dict[int, int]] = []  # per extra iteration: old bid -> new
    for _ in range(factor - 1):
        mapping: dict[int, int] = {}
        for bid in body:
            source = cfg.blocks[bid]
            block = cfg.new_block(list(source.instructions), origin=source.origin)
            block.taken_target = source.taken_target
            block.fall_through = source.fall_through
            mapping[bid] = block.bid
        copies.append(mapping)

    def retarget(block, successor: int, mapping: dict[int, int], next_header: int):
        if successor == header:
            return next_header
        return mapping.get(successor, successor)

    # Wire each copy's internal edges; back edges go to the next copy's
    # header (the last copy returns to the original header).
    for index, mapping in enumerate(copies):
        next_header = (
            copies[index + 1][header] if index + 1 < len(copies) else header
        )
        for old_bid, new_bid in mapping.items():
            block = cfg.blocks[new_bid]
            if block.taken_target is not None:
                block.taken_target = retarget(
                    block, block.taken_target, mapping, next_header
                )
            if block.fall_through is not None:
                block.fall_through = retarget(
                    block, block.fall_through, mapping, next_header
                )

    # Original body: back edges now enter the first copy's header.
    first_header = copies[0][header]
    for bid in body:
        block = cfg.blocks[bid]
        if block.taken_target == header:
            block.taken_target = first_header
        if block.fall_through == header:
            block.fall_through = first_header
