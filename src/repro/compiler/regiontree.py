"""Region formation by tail duplication (Section 3.3).

A region is grown from a header block into a *tree* of (possibly
duplicated) basic blocks: every block except the header has exactly one
in-region predecessor, so the header trivially dominates every block and
every block's control dependence is the unique branch-condition path from
the header -- which is exactly the paper's ANDed-predicate limitation.
Join blocks whose multiple paths would violate it are duplicated, the
transform the paper applies when no equivalent block exists.

Growth policy (per model):

* *region* windows (``both_arms=True``) grow both arms of a branch when
  their profiled probability is above ``min_arm_probability`` -- the
  paper's heuristic "function of static branch prediction";
* *trace* windows grow only the predicted arm;
* growth stops at loop back edges (the target re-enters the region through
  its header, the paper's execution model), at already-included blocks on
  the current path, at the block budget, and when the unit's CCR budget
  (``max_conditions``) is exhausted.

Every edge that is not grown becomes a :class:`RegionExit` whose target
block will head its own region -- the region former's worklist guarantees
a region exists for every possible entry point.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.analysis.branch_prediction import StaticPredictor
from repro.core.predicate import ALWAYS, Predicate
from repro.ir.cfg import CFG


@dataclass
class RegionExit:
    """One exit edge of the region tree."""

    pred: Predicate
    target_origin: int
    from_node: int


@dataclass
class TreeNode:
    """One (possibly duplicated) block instance inside a region."""

    node_id: int
    origin: int
    pred: Predicate
    parent: int | None = None
    # For branch nodes: the CCR entry allocated to this block's branch and
    # the condition value that corresponds to the *taken* edge (False for
    # brf).  None for non-branch nodes.
    cond_index: int | None = None
    taken_value: bool | None = None
    # Children keyed by branch-condition value; single-successor chains use
    # the key True.
    children: dict[bool, int] = field(default_factory=dict)
    exits: list[RegionExit] = field(default_factory=list)


@dataclass
class RegionTree:
    """A grown region: tree nodes plus the exit set."""

    header_origin: int
    nodes: dict[int, TreeNode] = field(default_factory=dict)
    root: int = 0
    conditions_used: int = 0

    def all_exits(self) -> list[RegionExit]:
        return [exit_ for node in self.nodes.values() for exit_ in node.exits]

    def exit_targets(self) -> set[int]:
        return {exit_.target_origin for exit_ in self.all_exits()}

    def path_nodes(self, node_id: int) -> list[int]:
        """Node ids from the root down to *node_id* (inclusive)."""
        path = []
        current: int | None = node_id
        while current is not None:
            path.append(current)
            current = self.nodes[current].parent
        path.reverse()
        return path

    def block_count(self) -> int:
        return len(self.nodes)


def merge_equivalent_joins(tree: RegionTree, cfg: CFG, dominators) -> int:
    """Share join blocks that are *equivalent* to their branch (footnote 2).

    "If there exists a join block which has multiple paths from the header
    block, and if the join block has an equivalent block [X dom Y and Y
    pdom X], then the region is also subject to the predicate limitation
    since the control dependence of the join block is the same as the
    control dependence of the equivalent block."

    For every branch node whose two arms reconverge at a block that is
    equivalent to the branch block (in the original CFG), the duplicated
    join subtrees are merged into one: the surviving copy's predicates
    drop the branch condition (its control dependence is the branch
    node's own), and both arms continue into it.  The region becomes a
    DAG; consumers in the shared join acquire *commit dependences* on the
    arm definitions, which the dependence builder models -- the exact
    trade-off the paper discusses in Section 4.2.2.

    Returns the number of joins merged.
    """
    merged = 0
    changed = True
    while changed:
        changed = False
        for node in list(tree.nodes.values()):
            if node.node_id not in tree.nodes:
                continue  # deleted by an earlier merge this sweep
            if node.cond_index is None or len(node.children) != 2:
                continue
            if _merge_under(tree, dominators, node):
                merged += 1
                changed = True
                break
    return merged


def _descendants(tree: RegionTree, root_id: int) -> list[int]:
    """All node ids reachable from *root_id* (inclusive, deduplicated)."""
    order: list[int] = []
    seen: set[int] = set()
    worklist = [root_id]
    while worklist:
        node_id = worklist.pop()
        if node_id in seen or node_id not in tree.nodes:
            continue
        seen.add(node_id)
        order.append(node_id)
        worklist.extend(tree.nodes[node_id].children.values())
    return order


def _merge_under(tree: RegionTree, dominators, branch) -> bool:
    """Try to unify duplicated equivalent-join copies below *branch*.

    Only the *shallow* reconvergence shapes are merged -- the join copy
    hangs directly off an arm (triangle) or off a non-branching arm block
    (diamond).  Joins nested below further branches stay duplicated: their
    copies sit under different inner conditions, and sharing them would
    need conditions-to-the-join tracking that the paper resolves the
    other way ("the compiler duplicates the join block to avoid this
    constraint").
    """
    shallow: list[int] = []
    for child_id in branch.children.values():
        child = tree.nodes[child_id]
        if dominators.equivalent(branch.origin, child.origin):
            shallow.append(child_id)
        elif child.cond_index is None and set(child.children) == {True}:
            grand_id = child.children[True]
            if dominators.equivalent(
                branch.origin, tree.nodes[grand_id].origin
            ):
                shallow.append(grand_id)
    by_origin: dict[int, list[int]] = {}
    for node_id in shallow:
        by_origin.setdefault(tree.nodes[node_id].origin, []).append(node_id)
    for origin, copies in by_origin.items():
        tops = sorted(set(copies))
        if len(tops) < 2:
            continue
        canonical = tops[0]
        # The canonical copy's control dependence becomes the branch
        # node's own: strip every condition that is not the branch's path.
        keep = set(branch.pred.conditions)
        _strip_conditions(tree, canonical, keep)
        for duplicate in tops[1:]:
            for parent_id in list(tree.nodes):
                parent = tree.nodes.get(parent_id)
                if parent is None:
                    continue
                for key, child_id in list(parent.children.items()):
                    if child_id == duplicate:
                        parent.children[key] = canonical
            _delete_subtree(tree, duplicate)
        return True
    return False


def _strip_conditions(tree: RegionTree, root_id: int, keep: set[int]) -> None:
    """Drop every condition outside *keep* ∪ (those allocated inside the
    subtree itself) from the subtree's predicates."""
    inside = {
        tree.nodes[node_id].cond_index
        for node_id in _descendants(tree, root_id)
        if tree.nodes[node_id].cond_index is not None
    }
    allowed = keep | inside

    def strip(pred: Predicate) -> Predicate:
        return Predicate({i: v for i, v in pred.terms if i in allowed})

    for node_id in _descendants(tree, root_id):
        node = tree.nodes[node_id]
        node.pred = strip(node.pred)
        for exit_ in node.exits:
            exit_.pred = strip(exit_.pred)


def _delete_subtree(tree: RegionTree, root_id: int) -> None:
    worklist = [root_id]
    while worklist:
        node_id = worklist.pop()
        node = tree.nodes.pop(node_id, None)
        if node is not None:
            worklist.extend(node.children.values())


def _branch_condition_available(cfg: CFG, bid: int) -> bool:
    """A branch block is predicable iff the condition-set feeding its
    branch lives in the same block (our workload codegen guarantees this
    for hot branches; cold ones simply head their own region)."""
    block = cfg.blocks[bid]
    terminator = block.terminator
    if terminator is None or not terminator.is_conditional_branch:
        return True
    creg = terminator.src_cregs[0]
    return any(
        instruction.dest_creg == creg for instruction in block.body
    )


def grow_region(
    cfg: CFG,
    header: int,
    *,
    both_arms: bool,
    window_blocks: int,
    max_conditions: int,
    predictor: StaticPredictor,
    min_arm_probability: float = 0.15,
    loop_headers: frozenset[int] = frozenset(),
) -> RegionTree:
    """Grow one region tree from *header* under the given policy.

    *loop_headers* are never grown into: a trace "begins with the loop
    head and ends in the loop tail", and regions likewise stop at loop
    boundaries -- the loop head seeds its own region and every back edge
    re-enters it through a region transfer.
    """
    tree = RegionTree(header_origin=header)
    ids = itertools.count()

    def new_node(origin: int, pred: Predicate, parent: int | None) -> TreeNode:
        node = TreeNode(
            node_id=next(ids), origin=origin, pred=pred, parent=parent
        )
        tree.nodes[node.node_id] = node
        return node

    root = new_node(header, ALWAYS, None)
    tree.root = root.node_id

    def includable(target: int, path_origins: set[int]) -> bool:
        if target in path_origins:
            return False  # back edge or path cycle: exit instead
        if target in loop_headers and target != header:
            return False  # regions never span loop boundaries
        if tree.block_count() >= window_blocks:
            return False
        return True

    def grow(node: TreeNode, path_origins: set[int]) -> None:
        block = cfg.blocks[node.origin]
        terminator = block.terminator

        if terminator is not None and terminator.opcode == "halt":
            return  # halting leaf: no successors, no exits

        if terminator is None or terminator.opcode == "jmp":
            successor = (
                block.taken_target
                if terminator is not None
                else block.fall_through
            )
            if successor is None:
                return
            if includable(successor, path_origins):
                child = new_node(successor, node.pred, node.node_id)
                node.children[True] = child.node_id
                grow(child, path_origins | {successor})
            else:
                node.exits.append(
                    RegionExit(node.pred, successor, node.node_id)
                )
            return

        # Conditional branch block.
        assert terminator.is_conditional_branch
        can_predicate = (
            tree.conditions_used < max_conditions
            and _branch_condition_available(cfg, node.origin)
        )
        if not can_predicate:
            # The whole block cannot stay in the region as a branch node:
            # if it is the root we keep it as a degenerate two-exit node
            # only when a condition is available; otherwise both arms exit
            # through the *block itself* heading its own region.
            if node.parent is None:
                raise ValueError(
                    f"block {node.origin}: branch condition not predicable "
                    "(condition-set must live in the branch block)"
                )
            # Undo the inclusion: the parent exits to this block instead.
            parent = tree.nodes[node.parent]
            for key, child_id in list(parent.children.items()):
                if child_id == node.node_id:
                    del parent.children[key]
                    pred = node.pred
                    parent.exits.append(
                        RegionExit(pred, node.origin, parent.node_id)
                    )
            del tree.nodes[node.node_id]
            return

        cond_index = tree.conditions_used
        tree.conditions_used += 1
        node.cond_index = cond_index
        node.taken_value = terminator.opcode == "br"

        taken_prob = predictor.probability(terminator.uid)
        arms = [
            (node.taken_value, block.taken_target, taken_prob),
            (not node.taken_value, block.fall_through, 1.0 - taken_prob),
        ]
        # Trace windows grow only the more probable arm.
        if not both_arms:
            arms.sort(key=lambda arm: -arm[2])
            arms = [arms[0], (arms[1][0], arms[1][1], -1.0)]

        for value, target, probability in arms:
            arm_pred = node.pred.conjoin(cond_index, value)
            if target is None:
                continue
            wanted = probability >= (min_arm_probability if both_arms else 0.0)
            if wanted and includable(target, path_origins):
                child = new_node(target, arm_pred, node.node_id)
                node.children[value] = child.node_id
                grow(child, path_origins | {target})
            else:
                node.exits.append(
                    RegionExit(arm_pred, target, node.node_id)
                )

    grow(root, {header})
    return tree
