"""Linearization and predicate assignment.

Turns a :class:`~repro.compiler.regiontree.RegionTree` into a
:class:`LinearRegion`: the region's instructions in program order, each
carrying its path predicate, with the condition-set feeding every region
branch re-indexed onto its allocated CCR entry and re-predicated ``alw``
(the paper: "the predicate of a condition-set instruction is alw
regardless of its control dependence because the compiler does not
re-allocate an entry of CCR").

Two flavours, selected by the model policy:

* ``eliminate_branches=True`` (predicating models, and the
  region-scheduling model's simple predication): every control transfer
  inside the region disappears; each exit edge becomes a predicated
  ``jmp`` whose predicate is the full path condition of that exit.
* ``eliminate_branches=False`` (global / squashing / trace scheduling /
  boosting): the original conditional branches remain (re-indexed onto
  CCR entries so the dependence builder can reason about them uniformly);
  their untaken continuation is the included child, and exits through
  either arm cost the branch's issue slot.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.compiler.regiontree import RegionTree, TreeNode
from repro.core.predicate import ALWAYS, Predicate
from repro.ir.cfg import CFG
from repro.isa.instruction import Instruction
from repro.isa.operands import CReg, Label


class Role(enum.Enum):
    BODY = "body"
    COND_SET = "cond_set"
    BRANCH = "branch"  # retained conditional branch (restricted models)
    EXIT = "exit"  # predicated exit jump
    HALT = "halt"


@dataclass
class LinearInstr:
    """One region instruction in program order, with metadata."""

    instr: Instruction
    node_id: int
    role: Role
    # For EXIT/BRANCH: the (node_id, arm_value) keys this control point
    # serves as the region-departure point for.
    exit_keys: tuple[tuple[int, bool | None], ...] = ()
    renamable: bool = True


@dataclass
class LinearRegion:
    """A linearized, predicated region ready for dependence analysis."""

    tree: RegionTree
    items: list[LinearInstr] = field(default_factory=list)
    conditions_used: int = 0

    def instructions(self) -> list[Instruction]:
        return [item.instr for item in self.items]


def _branch_cond_set_position(block_body: list[Instruction], creg: int) -> int | None:
    """Index of the last condition-set in *block_body* writing *creg*."""
    for position in range(len(block_body) - 1, -1, -1):
        if block_body[position].dest_creg == creg:
            return position
    return None


def linearize(
    tree: RegionTree,
    cfg: CFG,
    *,
    eliminate_branches: bool,
) -> LinearRegion:
    """Linearize *tree* in pre-order with predicates assigned."""
    region = LinearRegion(tree=tree, conditions_used=tree.conditions_used)

    def emit_node(node: TreeNode) -> None:
        block = cfg.blocks[node.origin]
        body = block.body
        terminator = block.terminator

        cond_position: int | None = None
        if (
            node.cond_index is not None
            and terminator is not None
            and terminator.is_conditional_branch
        ):
            cond_position = _branch_cond_set_position(
                body, terminator.src_cregs[0]
            )

        for position, instruction in enumerate(body):
            if position == cond_position:
                # Re-index onto the allocated CCR entry; alw predicate.
                assert node.cond_index is not None
                operands = tuple(
                    CReg(node.cond_index)
                    if role == "cd"
                    else operand
                    for operand, role in zip(
                        instruction.operands, instruction.info.signature
                    )
                )
                region.items.append(
                    LinearInstr(
                        instr=instruction.replace(
                            operands=operands, pred=ALWAYS
                        ),
                        node_id=node.node_id,
                        role=Role.COND_SET,
                    )
                )
                continue
            region.items.append(
                LinearInstr(
                    instr=instruction.replace(pred=node.pred),
                    node_id=node.node_id,
                    role=Role.BODY,
                )
            )

        if terminator is not None and terminator.opcode == "halt":
            region.items.append(
                LinearInstr(
                    instr=terminator.replace(pred=node.pred),
                    node_id=node.node_id,
                    role=Role.HALT,
                )
            )
            return

        exit_by_arm = {
            _arm_value_of(node, exit_.pred): exit_ for exit_ in node.exits
        }

        if (
            terminator is not None
            and terminator.is_conditional_branch
            and not eliminate_branches
        ):
            # Retained branch: serves as the departure point of both arms.
            assert node.cond_index is not None
            operands = tuple(
                CReg(node.cond_index) if role == "cu" else operand
                for operand, role in zip(
                    terminator.operands, terminator.info.signature
                )
            )
            keys = tuple(
                (node.node_id, value) for value in exit_by_arm
            )
            region.items.append(
                LinearInstr(
                    instr=terminator.replace(
                        operands=operands, pred=node.pred
                    ),
                    node_id=node.node_id,
                    role=Role.BRANCH,
                    exit_keys=keys,
                    renamable=False,
                )
            )
        elif eliminate_branches:
            for value, exit_ in exit_by_arm.items():
                region.items.append(
                    LinearInstr(
                        instr=Instruction(
                            "jmp",
                            (Label(f"B{exit_.target_origin}"),),
                            pred=exit_.pred,
                        ),
                        node_id=node.node_id,
                        role=Role.EXIT,
                        exit_keys=((node.node_id, value),),
                        renamable=False,
                    )
                )
        else:
            # Restricted model, non-branch exits (jmp / fall-through leaf).
            for value, exit_ in exit_by_arm.items():
                region.items.append(
                    LinearInstr(
                        instr=Instruction(
                            "jmp",
                            (Label(f"B{exit_.target_origin}"),),
                            pred=exit_.pred,
                        ),
                        node_id=node.node_id,
                        role=Role.EXIT,
                        exit_keys=((node.node_id, value),),
                        renamable=False,
                    )
                )

        for value in sorted(node.children, reverse=True):
            child_id = node.children[value]
            parents_remaining[child_id] -= 1
            if parents_remaining[child_id] == 0:
                emit_node(tree.nodes[child_id])

    # Shared join nodes (footnote-2 merging) have two in-region parents;
    # they are emitted only after every parent's instructions, keeping the
    # linear order a topological order of the region DAG.
    parents_remaining = {node_id: 0 for node_id in tree.nodes}
    for node in tree.nodes.values():
        for child_id in node.children.values():
            parents_remaining[child_id] += 1

    emit_node(tree.nodes[tree.root])
    return region


def _arm_value_of(node: TreeNode, exit_pred: Predicate) -> bool | None:
    """Which arm of *node* an exit predicate departs through."""
    if node.cond_index is None:
        return None
    return exit_pred.required(node.cond_index)
