"""The regression gate: compare two bench artifacts benchmark by benchmark.

The decision variable is the **median wall time** per iteration, the
most noise-resistant of the reported statistics (min is gameable by a
single lucky sample; mean drags in scheduler tails that MAD rejection
already tried to clip).  For each benchmark present in both artifacts::

    ratio = new_median_ns / old_median_ns

    ratio > 1 + threshold  ->  regression   (gate fails)
    ratio < 1 - threshold  ->  improvement  (reported, gate passes)
    otherwise              ->  ok           (within noise)

Benchmarks present in only one artifact are reported as ``added`` /
``removed`` and never fail the gate -- growing the suite must not be
punished.  Comparing artifacts recorded on different hosts, or a
``--quick`` run against a full-length one, is legal but loudly flagged:
such deltas measure the environment, not the code.

:func:`render_table` prints the per-benchmark delta table the CLI
shows; :func:`Comparison.failed` is what drives the non-zero exit.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Default noise tolerance: 10% on the median.
DEFAULT_THRESHOLD = 0.10

#: Per-benchmark statuses, in the order the table groups them.
STATUSES = ("regression", "improvement", "ok", "added", "removed")


@dataclass(frozen=True)
class Delta:
    """One benchmark's old-vs-new comparison."""

    name: str
    status: str  # one of STATUSES
    old_median_ns: float | None
    new_median_ns: float | None
    ratio: float | None  # new/old; None when only one side exists

    @property
    def speedup(self) -> float | None:
        """old/new -- >1 means the new code is faster."""
        if self.ratio in (None, 0):
            return None
        return 1.0 / self.ratio


@dataclass(frozen=True)
class Comparison:
    """The full gate verdict for an OLD -> NEW artifact pair."""

    threshold: float
    deltas: tuple[Delta, ...]
    host_mismatch: bool
    quick_mismatch: bool

    @property
    def regressions(self) -> tuple[Delta, ...]:
        return tuple(d for d in self.deltas if d.status == "regression")

    @property
    def improvements(self) -> tuple[Delta, ...]:
        return tuple(d for d in self.deltas if d.status == "improvement")

    @property
    def failed(self) -> bool:
        return bool(self.regressions)

    def counts(self) -> dict[str, int]:
        tally = {status: 0 for status in STATUSES}
        for delta in self.deltas:
            tally[delta.status] += 1
        return tally


def classify(
    old_median_ns: float, new_median_ns: float, threshold: float
) -> str:
    """Classify one benchmark's median shift against *threshold*."""
    if new_median_ns > old_median_ns * (1.0 + threshold):
        return "regression"
    if new_median_ns < old_median_ns * (1.0 - threshold):
        return "improvement"
    return "ok"


def compare_artifacts(
    old: dict, new: dict, *, threshold: float = DEFAULT_THRESHOLD
) -> Comparison:
    """Compare two validated ``repro-bench/v1`` documents."""
    if not 0 < threshold < 1:
        raise ValueError("threshold must be in (0, 1)")
    old_benchmarks = old["benchmarks"]
    new_benchmarks = new["benchmarks"]
    deltas: list[Delta] = []
    for name in sorted(set(old_benchmarks) | set(new_benchmarks)):
        old_record = old_benchmarks.get(name)
        new_record = new_benchmarks.get(name)
        if old_record is None:
            deltas.append(
                Delta(name, "added", None, new_record["ns"]["median"], None)
            )
            continue
        if new_record is None:
            deltas.append(
                Delta(name, "removed", old_record["ns"]["median"], None, None)
            )
            continue
        old_median = old_record["ns"]["median"]
        new_median = new_record["ns"]["median"]
        deltas.append(
            Delta(
                name,
                classify(old_median, new_median, threshold),
                old_median,
                new_median,
                new_median / old_median,
            )
        )
    return Comparison(
        threshold=threshold,
        deltas=tuple(deltas),
        host_mismatch=old["host"] != new["host"],
        quick_mismatch=old["quick"] != new["quick"],
    )


def _format_ns(value: float | None) -> str:
    if value is None:
        return "-"
    if value >= 1e9:
        return f"{value / 1e9:.3f}s"
    if value >= 1e6:
        return f"{value / 1e6:.2f}ms"
    if value >= 1e3:
        return f"{value / 1e3:.2f}us"
    return f"{value:.0f}ns"


_MARKS = {
    "regression": "!",
    "improvement": "+",
    "ok": " ",
    "added": "A",
    "removed": "R",
}


def render_table(comparison: Comparison) -> str:
    """The per-benchmark delta table, regressions first."""
    lines = [
        f"{'':1} {'benchmark':<34} {'old median':>10} {'new median':>10} "
        f"{'delta':>8}  status"
    ]
    ordered = sorted(
        comparison.deltas,
        key=lambda d: (STATUSES.index(d.status), d.name),
    )
    for delta in ordered:
        if delta.ratio is None:
            shift = "-"
        else:
            shift = f"{(delta.ratio - 1.0) * 100:+.1f}%"
        lines.append(
            f"{_MARKS[delta.status]:1} {delta.name:<34} "
            f"{_format_ns(delta.old_median_ns):>10} "
            f"{_format_ns(delta.new_median_ns):>10} "
            f"{shift:>8}  {delta.status}"
        )
    tally = comparison.counts()
    summary = ", ".join(
        f"{count} {status}" for status, count in tally.items() if count
    )
    lines.append(f"threshold ±{comparison.threshold:.0%}: {summary}")
    if comparison.host_mismatch:
        lines.append(
            "warning: artifacts were recorded on different hosts -- "
            "deltas reflect the environment, not just the code"
        )
    if comparison.quick_mismatch:
        lines.append(
            "warning: comparing a --quick run against a full-length run"
        )
    return "\n".join(lines)
