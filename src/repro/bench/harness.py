"""Steady-state timing harness for the simulator benchmarks.

The repo's value scales with how many simulated cycles per second the
Python engines deliver, so measurements must be trustworthy enough to
gate regressions on.  The harness therefore follows the standard
steady-state recipe:

* **warmup iterations** run the benchmark body before any sample is
  recorded, so allocator warmup, bytecode specialization and cold
  caches are not charged to the first timed sample;
* the **garbage collector is pinned off** during the timed section
  (restored afterwards), so a collection triggered by an earlier test
  cannot land inside one sample and masquerade as a regression;
* samples are cleaned by **MAD-based outlier rejection** (modified
  z-score over the median absolute deviation -- robust against the
  asymmetric, long-right-tail noise of shared CI runners);
* the report carries **min / median / mean ± CI** wall times *and* the
  domain throughput (simulated cycles/sec, interpreter steps/sec,
  compiled ops/sec), because "cycles per second" is the quantity the
  ROADMAP north-star talks about, not milliseconds of Python.

Timing uses :func:`time.perf_counter_ns` -- the same clock (and unit)
the experiment runner's per-cell telemetry reports, so bench numbers
and runner numbers compare directly.
"""

from __future__ import annotations

import gc
import statistics
import time
from collections.abc import Callable
from dataclasses import dataclass, field

#: Modified z-score threshold for MAD outlier rejection (the customary
#: Iglewicz--Hoaglin cutoff).
MAD_Z_THRESHOLD = 3.5

#: Scale factor making the MAD a consistent estimator of the standard
#: deviation under normality (1 / Phi^-1(3/4)).
MAD_SCALE = 1.4826

#: Student-t is overkill for n >= 5 samples; the normal quantile is the
#: customary CI multiplier for benchmark reporting.
CI95_Z = 1.96


@dataclass(frozen=True)
class TimingStats:
    """Robust summary of one benchmark's kept samples (nanoseconds)."""

    samples: int
    rejected: int
    min: int
    median: float
    mean: float
    stdev: float
    ci95: float

    def to_dict(self) -> dict:
        return {
            "samples": self.samples,
            "rejected": self.rejected,
            "min": self.min,
            "median": self.median,
            "mean": self.mean,
            "stdev": self.stdev,
            "ci95": self.ci95,
        }


@dataclass(frozen=True)
class Measurement:
    """One benchmark's complete measurement: timing + domain throughput."""

    name: str
    suite: str
    unit: str  # the domain work unit: "cycles", "steps", "ops", ...
    iterations: int
    warmup: int
    work_per_iteration: int
    ns: TimingStats
    raw_ns: tuple[int, ...] = field(repr=False)

    @property
    def throughput_median(self) -> float:
        """Work units per second at the median sample."""
        return self.work_per_iteration / (self.ns.median / 1e9)

    @property
    def throughput_best(self) -> float:
        """Work units per second at the fastest sample."""
        return self.work_per_iteration / (self.ns.min / 1e9)

    def to_dict(self) -> dict:
        """The ``repro-bench/v1`` per-benchmark record."""
        return {
            "suite": self.suite,
            "unit": self.unit,
            "iterations": self.iterations,
            "warmup": self.warmup,
            "work_per_iteration": self.work_per_iteration,
            "ns": self.ns.to_dict(),
            "throughput": {
                "unit": f"{self.unit}/sec",
                "median": self.throughput_median,
                "best": self.throughput_best,
            },
        }


def reject_outliers(samples: list[int]) -> tuple[list[int], int]:
    """Drop samples whose modified z-score exceeds the MAD cutoff.

    Returns ``(kept, rejected_count)``.  With a zero MAD (identical
    samples up to clock resolution) every sample is kept -- there is no
    spread to judge outliers against.
    """
    if len(samples) < 3:
        return list(samples), 0
    med = statistics.median(samples)
    mad = statistics.median(abs(sample - med) for sample in samples)
    if mad == 0:
        return list(samples), 0
    cutoff = MAD_Z_THRESHOLD * MAD_SCALE * mad
    kept = [sample for sample in samples if abs(sample - med) <= cutoff]
    return kept, len(samples) - len(kept)


def summarize(samples: list[int]) -> TimingStats:
    """MAD-clean *samples* (nanoseconds) and summarize the survivors."""
    if not samples:
        raise ValueError("cannot summarize an empty sample set")
    kept, rejected = reject_outliers(samples)
    mean = statistics.fmean(kept)
    stdev = statistics.stdev(kept) if len(kept) > 1 else 0.0
    return TimingStats(
        samples=len(kept),
        rejected=rejected,
        min=min(kept),
        median=statistics.median(kept),
        mean=mean,
        stdev=stdev,
        ci95=CI95_Z * stdev / len(kept) ** 0.5 if len(kept) > 1 else 0.0,
    )


def time_iterations(
    fn: Callable[[], int], iterations: int, warmup: int
) -> tuple[list[int], int]:
    """Run *fn* ``warmup + iterations`` times; time the last *iterations*.

    *fn* returns its work-unit count (simulated cycles, interpreter
    steps, ...).  The simulators are deterministic, so every iteration
    must report the same work; a drift is a bug in the benchmark body
    and raises immediately rather than silently skewing throughput.

    GC is disabled around the timed section and restored afterwards.
    """
    work: int | None = None
    for _ in range(warmup):
        work = fn()
    samples: list[int] = []
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(iterations):
            start = time.perf_counter_ns()
            iteration_work = fn()
            samples.append(time.perf_counter_ns() - start)
            if work is None:
                work = iteration_work
            elif iteration_work != work:
                raise RuntimeError(
                    f"benchmark work drifted between iterations: "
                    f"{iteration_work} != {work}"
                )
    finally:
        if gc_was_enabled:
            gc.enable()
            gc.collect()
    assert work is not None
    return samples, work


def run_measurement(
    *,
    name: str,
    suite: str,
    unit: str,
    fn: Callable[[], int],
    iterations: int,
    warmup: int,
) -> Measurement:
    """Measure one benchmark body end to end."""
    if iterations < 1:
        raise ValueError("need at least one timed iteration")
    samples, work = time_iterations(fn, iterations, warmup)
    if work <= 0:
        raise RuntimeError(
            f"benchmark {name!r} reported non-positive work: {work}"
        )
    return Measurement(
        name=name,
        suite=suite,
        unit=unit,
        iterations=iterations,
        warmup=warmup,
        work_per_iteration=work,
        ns=summarize(samples),
        raw_ns=tuple(samples),
    )
