"""The registered benchmark suites.

Two tiers, mirroring how the simulators are actually exercised:

* **micro** -- the hot primitives the profiler attributes machine time
  to: predicate evaluation against the CCR, the register-file
  commit/squash sweep, store-buffer search, the bundle issue loop, and
  region scheduling.  Each body is sized to run a few milliseconds so
  clock resolution is never a factor.  The suite also carries the
  instrumented-vs-uninstrumented tick pair that enforces the
  observability layer's NULL_SINK zero-cost claim.
* **macro** -- every workload end to end on each engine (functional
  interpreter, scalar baseline machine, and the two executable
  predicating models on the cycle-level VLIW machine), plus
  compile-only and checkpoint-snapshot cost.

Throughput denominators come from the domain, not the wall clock: a
macro machine cell's work is its simulated cycle count, cross-checked
against the observability layer's ``machine.cycles`` counter during an
untimed calibration run (the bench subsystem consumes the
:class:`~repro.obs.metrics.CounterSink` rather than trusting the
benchmark body to count for itself).  Interpreter cells report steps,
compile cells report scheduled ops.

Registered benchmarks are deterministic in everything but wall time:
iteration counts are fixed per (benchmark, quick) pair, and bodies
re-run identical simulated work every iteration (the harness enforces
this).
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

from repro.bench.harness import Measurement, run_measurement

SUITES = ("micro", "macro")

#: Executable predicating models measured by the macro suite.
MACRO_MODELS = ("region_pred", "trace_pred")

#: Snapshots taken per iteration of the checkpoint-cost benchmark.
SNAPSHOTS_PER_ITERATION = 10


@dataclass(frozen=True)
class BenchDef:
    """One registered benchmark.

    ``setup`` builds all untimed state (programs, compiled code,
    memories) and returns the timed body; the body returns its work-unit
    count, which must be identical every iteration.
    """

    name: str
    suite: str
    unit: str
    setup: Callable[[], Callable[[], int]]
    iterations: int
    warmup: int
    quick_iterations: int
    quick_warmup: int

    def run(self, *, quick: bool = False) -> Measurement:
        return run_measurement(
            name=self.name,
            suite=self.suite,
            unit=self.unit,
            fn=self.setup(),
            iterations=self.quick_iterations if quick else self.iterations,
            warmup=self.quick_warmup if quick else self.warmup,
        )


_REGISTRY: dict[str, BenchDef] = {}


def register(
    name: str,
    suite: str,
    unit: str,
    *,
    iterations: int,
    warmup: int,
    quick_iterations: int = 2,
    quick_warmup: int = 1,
) -> Callable[[Callable[[], Callable[[], int]]], Callable]:
    """Decorator registering *setup* as the benchmark *name*."""
    if suite not in SUITES:
        raise ValueError(f"unknown suite {suite!r}")

    def wrap(setup: Callable[[], Callable[[], int]]):
        if name in _REGISTRY:
            raise ValueError(f"duplicate benchmark {name!r}")
        _REGISTRY[name] = BenchDef(
            name=name,
            suite=suite,
            unit=unit,
            setup=setup,
            iterations=iterations,
            warmup=warmup,
            quick_iterations=quick_iterations,
            quick_warmup=quick_warmup,
        )
        return setup

    return wrap


def all_benchmarks(
    suite: str = "all", *, filter_substring: str | None = None
) -> list[BenchDef]:
    """Registered benchmarks of *suite* (``micro``/``macro``/``all``),
    in registration order, optionally filtered by name substring."""
    if suite not in SUITES and suite != "all":
        raise ValueError(f"unknown suite {suite!r}")
    return [
        bench
        for bench in _REGISTRY.values()
        if (suite == "all" or bench.suite == suite)
        and (filter_substring is None or filter_substring in bench.name)
    ]


def get_benchmark(name: str) -> BenchDef:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(f"unknown benchmark {name!r}") from None


# ----------------------------------------------------------------------
# Micro suite.
# ----------------------------------------------------------------------
@register(
    "micro.predicate_eval", "micro", "evals", iterations=30, warmup=3,
    quick_iterations=5,
)
def _predicate_eval() -> Callable[[], int]:
    """Tri-state predicate evaluation against live CCR contents --
    the single most frequent operation in the machine's control path."""
    from repro.core.ccr import CCR
    from repro.core.predicate import parse_predicate

    predicates = [
        parse_predicate(text)
        for text in (
            "alw", "c0", "!c0", "c0&c1", "c0&!c1", "!c0&c2",
            "c0&c1&c2", "c0&!c1&c3", "c1&c2&!c3", "c0&c1&c2&c3",
        )
    ]
    ccr = CCR(8)
    ccr.set(0, True)
    ccr.set(1, False)
    ccr.set(2, True)
    rounds = 2_000

    def body() -> int:
        evals = 0
        for _ in range(rounds):
            for predicate in predicates:
                predicate.evaluate(ccr.values())
                evals += 1
        return evals

    return body


@register(
    "micro.ccr_commit_sweep", "micro", "writes", iterations=30, warmup=3,
    quick_iterations=5,
)
def _ccr_commit_sweep() -> Callable[[], int]:
    """Buffer speculative writes, decide their condition, and run the
    per-cycle commit/squash hardware (half commit, half squash)."""
    from repro.core.ccr import CCR
    from repro.core.predicate import Predicate
    from repro.core.regfile import PredicatedRegisterFile

    commit_pred = Predicate({0: True})
    squash_pred = Predicate({0: False})
    rounds = 150

    def body() -> int:
        regfile = PredicatedRegisterFile(32, shadow_capacity=None)
        ccr = CCR(8)
        writes = 0
        for round_number in range(rounds):
            for reg in range(1, 9):
                regfile.write_speculative(reg, round_number, commit_pred)
                regfile.write_speculative(reg + 8, round_number, squash_pred)
                writes += 2
            ccr.set(0, True)
            regfile.tick(ccr)
            ccr.reset()
        return writes

    return body


@register(
    "micro.store_buffer_search", "micro", "lookups", iterations=30, warmup=3,
    quick_iterations=5,
)
def _store_buffer_search() -> Callable[[], int]:
    """Store-to-load forwarding search over a loaded buffer: newest-first
    scan with predicate implication and disjointness tests."""
    from repro.core.predicate import ALWAYS, Predicate
    from repro.core.store_buffer import PredicatedStoreBuffer

    spec_pred = Predicate({0: True})
    reader_pred = Predicate({0: True, 1: True})  # implies spec_pred
    other_pred = Predicate({0: False})  # disjoint with reader_pred

    buffer = PredicatedStoreBuffer(16)
    for slot in range(6):
        buffer.append(100 + slot, slot, ALWAYS, speculative=False)
    for slot in range(4):
        buffer.append(200 + slot, slot, spec_pred, speculative=True)
    for slot in range(4):
        buffer.append(300 + slot, slot, other_pred, speculative=True)
    rounds = 400
    addresses = (100, 105, 202, 303, 999, 104, 201, 300)

    def body() -> int:
        lookups = 0
        for _ in range(rounds):
            for address in addresses:
                pred = ALWAYS if address < 200 else reader_pred
                if 300 <= address < 400 or address == 999:
                    pred = other_pred
                buffer.lookup(address, pred)
                lookups += 1
        return lookups

    return body


def _compiled(workload_name: str, model: str):
    """Compile *workload* under *model* the way the evaluation does."""
    from repro.analysis.branch_prediction import StaticPredictor
    from repro.compiler import compile_program
    from repro.ir import build_cfg
    from repro.machine.config import base_machine
    from repro.machine.scalar import run_scalar
    from repro.workloads import get_workload

    workload = get_workload(workload_name)
    cfg = build_cfg(workload.program)
    train = run_scalar(workload.program, cfg, workload.train_memory())
    predictor = StaticPredictor.from_trace(train.trace)
    compiled = compile_program(
        workload.program, model, base_machine(), predictor
    )
    return workload, predictor, compiled


@register(
    "micro.bundle_issue", "micro", "cycles", iterations=30, warmup=3,
    quick_iterations=5,
)
def _bundle_issue() -> Callable[[], int]:
    """The machine's bundle issue loop on the smallest workload --
    dominated by per-op predicate verdicts and operand reads."""
    from repro.machine.config import base_machine
    from repro.machine.vliw import VLIWMachine

    workload, _, compiled = _compiled("li", "region_pred")
    assert compiled.vliw is not None
    config = base_machine()
    memory = workload.eval_memory()
    runs = 3

    def body() -> int:
        cycles = 0
        for _ in range(runs):
            machine = VLIWMachine(compiled.vliw, config, memory.clone())
            cycles += machine.run().cycles
        return cycles

    return body


@register(
    "micro.region_schedule", "micro", "ops", iterations=15, warmup=2,
    quick_iterations=3,
)
def _region_schedule() -> Callable[[], int]:
    """Region formation, predication and list scheduling (compile hot
    path), measured on the branchiest kernel."""
    from repro.analysis.branch_prediction import StaticPredictor
    from repro.compiler import compile_program
    from repro.ir import build_cfg
    from repro.machine.config import base_machine
    from repro.machine.scalar import run_scalar
    from repro.workloads import get_workload

    workload = get_workload("espresso")
    cfg = build_cfg(workload.program)
    train = run_scalar(workload.program, cfg, workload.train_memory())
    predictor = StaticPredictor.from_trace(train.trace)
    config = base_machine()

    def body() -> int:
        compiled = compile_program(
            workload.program, "region_pred", config, predictor
        )
        return sum(
            len(unit.region.items) for unit in compiled.code.units.values()
        )

    return body


_OBS_STATE: list = []


def _loaded_regfile_and_ccr():
    """A register file mid-flight: some decided, some undecided state.

    The *same* instance is served to both obs benchmarks -- allocation
    locality varies enough between instances to swamp the guard
    overhead the pair exists to expose.  Safe to share: every buffered
    predicate stays UNSPEC, so ticking never mutates the file.
    """
    if not _OBS_STATE:
        from repro.core.ccr import CCR
        from repro.core.predicate import Predicate
        from repro.core.regfile import PredicatedRegisterFile

        regfile = PredicatedRegisterFile(32, shadow_capacity=None)
        undecided = Predicate({5: True})  # c5 never set: writes are held
        for reg in range(1, 13):
            regfile.write_speculative(reg, reg * 7, undecided)
        ccr = CCR(8)
        ccr.set(0, True)
        _OBS_STATE.append((regfile, ccr))
    return _OBS_STATE[0]


@register(
    "micro.obs_null_sink_tick", "micro", "ticks", iterations=30, warmup=3,
    quick_iterations=5,
)
def _obs_null_sink_tick() -> Callable[[], int]:
    """The production commit-hardware tick with the default NULL_SINK:
    its only instrumentation cost is the ``sink.enabled`` guard sites."""
    regfile, ccr = _loaded_regfile_and_ccr()
    rounds = 2_000

    def body() -> int:
        for _ in range(rounds):
            regfile.tick(ccr)
        return rounds

    return body


@register(
    "micro.obs_uninstrumented_tick", "micro", "ticks", iterations=30,
    warmup=3, quick_iterations=5,
)
def _obs_uninstrumented_tick() -> Callable[[], int]:
    """The uninstrumented timing reference for the zero-cost claim: the
    same commit hardware invoked below the sink guard sites
    (:meth:`PredicatedRegisterFile._tick_core`)."""
    regfile, ccr = _loaded_regfile_and_ccr()
    rounds = 2_000

    def body() -> int:
        for _ in range(rounds):
            regfile._tick_core(ccr)
        return rounds

    return body


# ----------------------------------------------------------------------
# Macro suite.
# ----------------------------------------------------------------------
def _macro_interpreter(workload_name: str) -> Callable[[], Callable[[], int]]:
    def setup() -> Callable[[], int]:
        from repro.sim.interpreter import run_program
        from repro.workloads import get_workload

        workload = get_workload(workload_name)
        memory = workload.eval_memory()

        def body() -> int:
            return run_program(workload.program, memory.clone()).steps

        return body

    return setup


def _macro_scalar(workload_name: str) -> Callable[[], Callable[[], int]]:
    def setup() -> Callable[[], int]:
        from repro.ir import build_cfg
        from repro.machine.scalar import run_scalar
        from repro.workloads import get_workload

        workload = get_workload(workload_name)
        cfg = build_cfg(workload.program)
        memory = workload.eval_memory()

        def body() -> int:
            return run_scalar(workload.program, cfg, memory.clone()).cycles

        return body

    return setup


def _macro_machine(
    workload_name: str, model: str
) -> Callable[[], Callable[[], int]]:
    def setup() -> Callable[[], int]:
        from repro.machine.config import base_machine
        from repro.machine.vliw import VLIWMachine
        from repro.obs.metrics import CounterSink

        workload, _, compiled = _compiled(workload_name, model)
        assert compiled.vliw is not None
        config = base_machine()
        memory = workload.eval_memory()

        # Calibration: one untimed instrumented run.  The observability
        # layer's cycle counter is the authoritative work denominator,
        # and must reconcile exactly with the machine's own count.
        sink = CounterSink()
        calibration = VLIWMachine(
            compiled.vliw, config, memory.clone(), sink=sink
        ).run()
        if sink.counter("machine.cycles") != calibration.cycles:
            raise RuntimeError(
                f"{workload_name}/{model}: counter disagrees with machine "
                f"({sink.counter('machine.cycles')} != {calibration.cycles})"
            )

        def body() -> int:
            machine = VLIWMachine(compiled.vliw, config, memory.clone())
            return machine.run().cycles

        return body

    return setup


def _macro_compile(workload_name: str) -> Callable[[], Callable[[], int]]:
    def setup() -> Callable[[], int]:
        from repro.analysis.branch_prediction import StaticPredictor
        from repro.compiler import compile_program
        from repro.ir import build_cfg
        from repro.machine.config import base_machine
        from repro.machine.scalar import run_scalar
        from repro.workloads import get_workload

        workload = get_workload(workload_name)
        cfg = build_cfg(workload.program)
        train = run_scalar(workload.program, cfg, workload.train_memory())
        predictor = StaticPredictor.from_trace(train.trace)
        config = base_machine()

        def body() -> int:
            compiled = compile_program(
                workload.program, "region_pred", config, predictor
            )
            return sum(
                len(unit.region.items)
                for unit in compiled.code.units.values()
            )

        return body

    return setup


def _register_macro_suite() -> None:
    from repro.workloads import all_workloads

    for workload in all_workloads():
        name = workload.name
        register(
            f"macro.{name}.interpreter", "macro", "steps",
            iterations=7, warmup=2,
        )(_macro_interpreter(name))
        register(
            f"macro.{name}.scalar", "macro", "cycles",
            iterations=7, warmup=2,
        )(_macro_scalar(name))
        for model in MACRO_MODELS:
            register(
                f"macro.{name}.{model}", "macro", "cycles",
                iterations=7, warmup=2,
            )(_macro_machine(name, model))
        register(
            f"macro.{name}.compile", "macro", "ops",
            iterations=7, warmup=1,
        )(_macro_compile(name))


@register(
    "macro.ckpt_snapshot", "macro", "snapshots", iterations=15, warmup=2,
    quick_iterations=3,
)
def _ckpt_snapshot() -> Callable[[], int]:
    """Cost of capturing (and sealing) one mid-run machine snapshot --
    the checkpoint layer's per-period overhead."""
    from repro.ckpt.state import snapshot_vliw
    from repro.machine.config import base_machine
    from repro.machine.vliw import VLIWMachine

    workload, _, compiled = _compiled("compress", "region_pred")
    assert compiled.vliw is not None
    machine = VLIWMachine(compiled.vliw, base_machine(), workload.eval_memory())
    for _ in range(500):  # park the machine mid-run, speculative state live
        if not machine.step():
            break

    def body() -> int:
        for _ in range(SNAPSHOTS_PER_ITERATION):
            snapshot_vliw(machine)
        return SNAPSHOTS_PER_ITERATION

    return body


_register_macro_suite()
