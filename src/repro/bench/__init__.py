"""Simulator performance benchmarking and regression gating.

``harness`` does the steady-state timing, ``suites`` registers the
micro/macro benchmark bodies, ``artifact`` defines the
``repro-bench/v1`` JSON envelope, and ``gate`` compares two artifacts
and decides pass/fail.  Driven by ``repro bench run`` / ``repro bench
compare``; methodology in DESIGN.md §10.
"""

from repro.bench.artifact import (
    SCHEMA,
    BenchArtifactError,
    dumps_artifact,
    host_fingerprint,
    load_artifact,
    make_artifact,
    merge_artifacts,
    validate_artifact,
    write_artifact,
)
from repro.bench.gate import (
    DEFAULT_THRESHOLD,
    Comparison,
    Delta,
    compare_artifacts,
    render_table,
)
from repro.bench.harness import (
    Measurement,
    TimingStats,
    reject_outliers,
    run_measurement,
    summarize,
    time_iterations,
)
from repro.bench.suites import (
    MACRO_MODELS,
    SUITES,
    BenchDef,
    all_benchmarks,
    get_benchmark,
)

__all__ = [
    "SCHEMA",
    "BenchArtifactError",
    "dumps_artifact",
    "host_fingerprint",
    "load_artifact",
    "make_artifact",
    "merge_artifacts",
    "validate_artifact",
    "write_artifact",
    "DEFAULT_THRESHOLD",
    "Comparison",
    "Delta",
    "compare_artifacts",
    "render_table",
    "Measurement",
    "TimingStats",
    "reject_outliers",
    "run_measurement",
    "summarize",
    "time_iterations",
    "MACRO_MODELS",
    "SUITES",
    "BenchDef",
    "all_benchmarks",
    "get_benchmark",
]
