"""Versioned JSON artifacts for benchmark results (``repro-bench/v1``).

The envelope::

    {
      "schema": "repro-bench/v1",
      "quick": false,                # --quick iteration counts in effect
      "host": {                      # where the numbers were taken
        "python": "3.12.3",
        "implementation": "CPython",
        "platform": "Linux-...-x86_64",
        "machine": "x86_64",
        "cpu_count": 8
      },
      "benchmarks": {
        "macro.compress.region_pred": {
          "suite": "macro",
          "unit": "cycles",
          "iterations": 7,
          "warmup": 2,
          "work_per_iteration": 12345,
          "ns": {"samples":..,"rejected":..,"min":..,"median":..,
                 "mean":..,"stdev":..,"ci95":..},
          "throughput": {"unit": "cycles/sec", "median":.., "best":..}
        },
        ...
      }
    }

Host fingerprints make cross-machine comparisons honest: the gate
(:mod:`repro.bench.gate`) warns when OLD and NEW were taken on
different hosts, because a delta between hosts measures the hardware,
not the code.  Serialization is canonical (sorted keys, two-space
indent, trailing newline) like every other artifact in the repo, so
``BENCH_*.json`` files diff cleanly in version control.  Raw samples
are deliberately *not* persisted -- the summary statistics are the
contract; raw nanoseconds would churn every commit.
"""

from __future__ import annotations

import json
import math
import os
import platform
from pathlib import Path

from repro.bench.harness import Measurement

#: Envelope identifier; bump the suffix on breaking payload changes.
SCHEMA = "repro-bench/v1"

_STATS_KEYS = frozenset(
    {"samples", "rejected", "min", "median", "mean", "stdev", "ci95"}
)
_THROUGHPUT_KEYS = frozenset({"unit", "median", "best"})
_RECORD_KEYS = frozenset(
    {"suite", "unit", "iterations", "warmup", "work_per_iteration", "ns",
     "throughput"}
)


class BenchArtifactError(ValueError):
    """A bench artifact document violates the schema."""


def host_fingerprint() -> dict:
    """Identify the machine the numbers were taken on."""
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count() or 1,
    }


def _check_number(record_name: str, path: str, value, *, integer=False):
    kinds = (int,) if integer else (int, float)
    if isinstance(value, bool) or not isinstance(value, kinds):
        raise BenchArtifactError(
            f"{record_name}: {path} must be a number, got {value!r}"
        )
    if isinstance(value, float) and not math.isfinite(value):
        raise BenchArtifactError(
            f"{record_name}: {path} is non-finite ({value!r})"
        )
    if value < 0:
        raise BenchArtifactError(
            f"{record_name}: {path} is negative ({value!r})"
        )


def _check_record(name: str, record: object) -> None:
    if not isinstance(record, dict) or set(record) != _RECORD_KEYS:
        raise BenchArtifactError(
            f"benchmark {name!r}: record keys must be "
            f"{sorted(_RECORD_KEYS)}"
        )
    if not isinstance(record["suite"], str) or not record["suite"]:
        raise BenchArtifactError(f"benchmark {name!r}: bad suite")
    if not isinstance(record["unit"], str) or not record["unit"]:
        raise BenchArtifactError(f"benchmark {name!r}: bad unit")
    for key in ("iterations", "warmup", "work_per_iteration"):
        _check_number(name, key, record[key], integer=True)
    if record["iterations"] < 1:
        raise BenchArtifactError(f"benchmark {name!r}: iterations < 1")
    if record["work_per_iteration"] < 1:
        raise BenchArtifactError(
            f"benchmark {name!r}: work_per_iteration < 1"
        )
    stats = record["ns"]
    if not isinstance(stats, dict) or set(stats) != _STATS_KEYS:
        raise BenchArtifactError(
            f"benchmark {name!r}: ns keys must be {sorted(_STATS_KEYS)}"
        )
    for key, value in stats.items():
        _check_number(name, f"ns.{key}", value)
    if stats["median"] <= 0:
        raise BenchArtifactError(f"benchmark {name!r}: ns.median <= 0")
    throughput = record["throughput"]
    if not isinstance(throughput, dict) or set(throughput) != _THROUGHPUT_KEYS:
        raise BenchArtifactError(
            f"benchmark {name!r}: throughput keys must be "
            f"{sorted(_THROUGHPUT_KEYS)}"
        )
    if throughput["unit"] != f"{record['unit']}/sec":
        raise BenchArtifactError(
            f"benchmark {name!r}: throughput unit "
            f"{throughput['unit']!r} does not match unit {record['unit']!r}"
        )
    for key in ("median", "best"):
        _check_number(name, f"throughput.{key}", throughput[key])


def validate_artifact(document: object) -> None:
    """Raise :class:`BenchArtifactError` unless *document* is valid."""
    if not isinstance(document, dict):
        raise BenchArtifactError("bench artifact must be a JSON object")
    if document.get("schema") != SCHEMA:
        raise BenchArtifactError(
            f"schema mismatch: {document.get('schema')!r} != {SCHEMA!r}"
        )
    if not isinstance(document.get("quick"), bool):
        raise BenchArtifactError("quick must be a boolean")
    host = document.get("host")
    if not isinstance(host, dict) or not host:
        raise BenchArtifactError("host must be a non-empty object")
    for key in ("python", "implementation", "platform", "machine"):
        if not isinstance(host.get(key), str) or not host[key]:
            raise BenchArtifactError(f"host.{key} must be a non-empty string")
    if not isinstance(host.get("cpu_count"), int) or host["cpu_count"] < 1:
        raise BenchArtifactError("host.cpu_count must be a positive integer")
    benchmarks = document.get("benchmarks")
    if not isinstance(benchmarks, dict) or not benchmarks:
        raise BenchArtifactError("benchmarks must be a non-empty object")
    for name, record in benchmarks.items():
        if not isinstance(name, str) or not name:
            raise BenchArtifactError("benchmark names must be strings")
        _check_record(name, record)


def make_artifact(
    measurements: list[Measurement], *, quick: bool = False
) -> dict:
    """Build (and validate) the bench artifact for *measurements*."""
    if not measurements:
        raise BenchArtifactError("no measurements to record")
    names = [m.name for m in measurements]
    if len(set(names)) != len(names):
        raise BenchArtifactError("duplicate benchmark names in run")
    document = {
        "schema": SCHEMA,
        "quick": quick,
        "host": host_fingerprint(),
        "benchmarks": {m.name: m.to_dict() for m in measurements},
    }
    validate_artifact(document)
    return document


def merge_artifacts(base: dict, overlay: dict) -> dict:
    """Merge two runs from the *same host*: overlay's benchmarks win.

    Lets a slow macro run be refreshed without re-running micro (or a
    single benchmark be re-measured into an existing artifact).  The
    result is re-validated; merging runs from different hosts is
    refused because the combined numbers would be incomparable.
    """
    validate_artifact(base)
    validate_artifact(overlay)
    if base["host"] != overlay["host"]:
        raise BenchArtifactError(
            "refusing to merge artifacts from different hosts"
        )
    if base["quick"] != overlay["quick"]:
        raise BenchArtifactError(
            "refusing to merge quick and full-length artifacts"
        )
    merged = {
        "schema": SCHEMA,
        "quick": overlay["quick"],
        "host": overlay["host"],
        "benchmarks": {**base["benchmarks"], **overlay["benchmarks"]},
    }
    validate_artifact(merged)
    return merged


def dumps_artifact(document: dict) -> str:
    """Canonical serialization: deterministic bytes for identical data."""
    return json.dumps(document, sort_keys=True, indent=2) + "\n"


def write_artifact(path: str | Path, document: dict) -> Path:
    """Validate and write *document* to *path*; returns the path."""
    validate_artifact(document)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(dumps_artifact(document))
    return path


def load_artifact(path: str | Path) -> dict:
    """Read and validate a bench artifact document."""
    try:
        document = json.loads(Path(path).read_text())
    except json.JSONDecodeError as error:
        raise BenchArtifactError(f"{path}: not JSON ({error})") from error
    validate_artifact(document)
    return document
