"""Structured cycle traces in Chrome/Perfetto ``trace_event`` format.

The recorder turns the predicating machine's cycle-by-cycle activity into
a JSON array of trace events that loads directly in Perfetto
(https://ui.perfetto.dev) or ``chrome://tracing``:

* one *track* (thread) per function-unit class -- ``alu``, ``branch``,
  ``load``, ``store`` -- holding a duration event per issued operation
  (``ts`` = issue cycle, ``dur`` = latency, 1 cycle = 1 us);
* a ``ccr`` track of instant events, one per condition-set commit;
* a ``mode`` track with one span per recovery-mode episode;
* a ``region`` track with one span per region visit, so a region's
  schedule can be inspected against the attribution table.

Squashed issues are recorded with ``verdict: "FALSE"`` in their args (and
zero-latency duration) so wasted slots are visible on the same timeline.
"""

from __future__ import annotations

import json
from pathlib import Path

#: Track ids, in display order.  FU tracks first, state tracks after.
TRACKS = ("alu", "branch", "load", "store", "ccr", "mode", "region")

_PID = 1  # single simulated process


class CycleTraceRecorder:
    """Collects trace events during one machine run.

    *pid* / *process* parametrize the Perfetto process row so two
    recorders (e.g. machine vs scalar golden model) can be merged into a
    single trace for visual diffing; the defaults keep single-run traces
    byte-identical to the historical output.
    """

    def __init__(
        self,
        name: str = "vliw",
        *,
        pid: int = _PID,
        process: str = "vliw-machine",
    ) -> None:
        self.name = name
        self.pid = pid
        self.events: list[dict] = []
        self._tids: dict[str, int] = {}
        self.events.append(
            {
                "ph": "M",
                "pid": self.pid,
                "tid": 0,
                "name": "process_name",
                "args": {"name": f"{process}:{name}"},
            }
        )
        for track in TRACKS:
            self._tid(track)

    def _tid(self, track: str) -> int:
        tid = self._tids.get(track)
        if tid is None:
            tid = self._tids[track] = len(self._tids) + 1
            self.events.append(
                {
                    "ph": "M",
                    "pid": self.pid,
                    "tid": tid,
                    "name": "thread_name",
                    "args": {"name": track},
                }
            )
        return tid

    # ------------------------------------------------------------------
    # Recording.
    # ------------------------------------------------------------------
    def op(
        self,
        cycle: int,
        track: str,
        name: str,
        duration: int = 1,
        args: dict | None = None,
    ) -> None:
        """A duration event: one issued operation on an FU track."""
        event = {
            "ph": "X",
            "pid": self.pid,
            "tid": self._tid(track),
            "name": name,
            "ts": cycle,
            "dur": max(duration, 1),
        }
        if args:
            event["args"] = args
        self.events.append(event)

    def instant(
        self, cycle: int, track: str, name: str, args: dict | None = None
    ) -> None:
        """An instant event (CCR condition commits)."""
        event = {
            "ph": "i",
            "pid": self.pid,
            "tid": self._tid(track),
            "name": name,
            "ts": cycle,
            "s": "t",  # thread-scoped instant
        }
        if args:
            event["args"] = args
        self.events.append(event)

    def span(
        self,
        track: str,
        name: str,
        start_cycle: int,
        end_cycle: int,
        args: dict | None = None,
    ) -> None:
        """A closed interval on a state track (recovery episode, region
        visit).  Zero-length visits still render as 1-cycle slivers."""
        self.op(
            start_cycle,
            track,
            name,
            duration=max(end_cycle - start_cycle, 1),
            args=args,
        )

    # ------------------------------------------------------------------
    # Export.
    # ------------------------------------------------------------------
    def track_names(self) -> list[str]:
        return list(self._tids)

    def to_json(self) -> str:
        """The bare ``trace_event`` array form Perfetto accepts."""
        return json.dumps(self.events, indent=1) + "\n"

    def write(self, path: str | Path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_json())
        return path


def validate_trace_events(document: object) -> list[str]:
    """Check a loaded trace document; returns the declared track names.

    Raises ``ValueError`` on malformed documents.  Used by tests and the
    CI smoke job.
    """
    if not isinstance(document, list):
        raise ValueError("trace must be a JSON array of events")
    tracks = []
    for index, event in enumerate(document):
        if not isinstance(event, dict):
            raise ValueError(f"event {index} is not an object")
        if "ph" not in event or "pid" not in event:
            raise ValueError(f"event {index} lacks ph/pid")
        if event["ph"] in ("X", "i") and "ts" not in event:
            raise ValueError(f"event {index} lacks ts")
        if event["ph"] == "M" and event.get("name") == "thread_name":
            tracks.append(event["args"]["name"])
    return tracks
