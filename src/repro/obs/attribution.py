"""Per-region and per-original-block cycle attribution.

The predicating machine attributes every cycle it spends to the region
(scheduling unit) whose bundle range the PC was in when the cycle was
charged -- including stall cycles, recovery-mode re-execution, and
taken-transfer penalty cycles (charged to the *departing* region, the
documented boundary convention).  Region labels are the scheduler's
``B<origin>`` names, so each row maps straight back to the original CFG
block that headed the region; per-op provenance recorded by the code
emitter additionally attributes issued operations to the (possibly
duplicated) original block each op came from.

The invariant tests rely on: summed region cycles equal the machine's
reported cycle count exactly, because every ``cycle += n`` site in the
machine attributes as it charges.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.obs.metrics import CounterSink

#: Keyed counter families the machine emits (family/<region-label>).
REGION_CYCLES = "region.cycles"
REGION_BUNDLES = "region.bundles"
REGION_OPS = "region.ops"
BLOCK_OPS = "block.ops"  # keyed by original-block id (provenance)


@dataclass(frozen=True)
class RegionRow:
    """One region's share of the execution."""

    label: str
    origin_block: int | None  # parsed from the scheduler's B<origin> label
    cycles: int
    bundles: int
    ops: int
    share: float  # fraction of total machine cycles


@dataclass
class AttributionReport:
    """The "top regions by cycles" view plus per-block op counts."""

    total_cycles: int
    rows: list[RegionRow]
    block_ops: dict[str, int]  # original-block key -> issued ops

    @property
    def attributed_cycles(self) -> int:
        return sum(row.cycles for row in self.rows)

    def reconciles(self) -> bool:
        """Attribution must account for every machine cycle."""
        return self.attributed_cycles == self.total_cycles

    def top(self, limit: int | None = None) -> list[RegionRow]:
        return self.rows if limit is None else self.rows[:limit]

    def render(self, limit: int | None = 10) -> str:
        lines = [
            "top regions by cycles "
            f"(total {self.total_cycles}, attributed {self.attributed_cycles})",
            f"{'region':>8} {'block':>6} {'cycles':>10} {'share':>7} "
            f"{'bundles':>8} {'ops':>8}",
        ]
        for row in self.top(limit):
            block = "-" if row.origin_block is None else str(row.origin_block)
            lines.append(
                f"{row.label:>8} {block:>6} {row.cycles:>10} "
                f"{row.share:>6.1%} {row.bundles:>8} {row.ops:>8}"
            )
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "total_cycles": self.total_cycles,
            "attributed_cycles": self.attributed_cycles,
            "regions": [
                {
                    "label": row.label,
                    "origin_block": row.origin_block,
                    "cycles": row.cycles,
                    "bundles": row.bundles,
                    "ops": row.ops,
                    "share": row.share,
                }
                for row in self.rows
            ],
            "block_ops": dict(self.block_ops),
        }


def _origin_of(label: str) -> int | None:
    """Original CFG block id from a scheduler region label (``B<n>``)."""
    if label.startswith("B") and label[1:].isdigit():
        return int(label[1:])
    return None


def attribute_regions(sink: CounterSink) -> AttributionReport:
    """Build the attribution report from a machine run's counters."""
    total = sink.counter("machine.cycles")
    cycles = sink.keyed(REGION_CYCLES)
    bundles = sink.keyed(REGION_BUNDLES)
    ops = sink.keyed(REGION_OPS)
    rows = [
        RegionRow(
            label=label,
            origin_block=_origin_of(label),
            cycles=count,
            bundles=bundles.get(label, 0),
            ops=ops.get(label, 0),
            share=count / total if total else 0.0,
        )
        for label, count in cycles.items()
    ]
    rows.sort(key=lambda row: (-row.cycles, row.label))
    return AttributionReport(
        total_cycles=total, rows=rows, block_ops=sink.keyed(BLOCK_OPS)
    )
