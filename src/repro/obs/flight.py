"""Bounded ring-buffer flight recorder for architectural events.

The recorder captures the *mechanism* timeline the paper's predicated
state buffering runs on: bundle issue, CCR writes, shadow-regfile
commit/squash, store-buffer insert/search/retire, fault raises, and
recovery entry/exit.  Each event is stamped with the cycle, pc, region,
and (where meaningful) the predicate vector under which it happened.

Like :mod:`repro.obs.metrics`, the disabled state is the base class:
``FlightRecorder.enabled`` is ``False`` and every hook is a no-op, so
hot paths guard with ``if recorder.enabled:`` (or a cached boolean) and
pay only a predictable branch when forensics are off.  ``RingRecorder``
keeps the last *capacity* events in a ``deque(maxlen=...)`` -- memory
stays O(capacity) no matter how long the run is, which is the whole
point of a flight recorder: you read it backwards from the crash.
"""

from __future__ import annotations

from collections import deque
from dataclasses import asdict, dataclass

__all__ = [
    "DEFAULT_CAPACITY",
    "FlightEvent",
    "FlightRecorder",
    "NullRecorder",
    "NULL_RECORDER",
    "RingRecorder",
]

#: Default ring capacity: large enough to hold the whole tail of any
#: synthetic repro case, small enough to stay cheap on long sweeps.
DEFAULT_CAPACITY = 4096


@dataclass(frozen=True, slots=True)
class FlightEvent:
    """One architectural event, stamped with where/when it happened."""

    seq: int
    cycle: int
    pc: int
    region: str | None
    kind: str
    detail: str
    pred: str | None = None

    def describe(self) -> str:
        where = f"{self.region or '?'}@pc{self.pc}"
        pred = f" [{self.pred}]" if self.pred else ""
        return (
            f"#{self.seq:<6} cyc={self.cycle:<6} {where:<10} "
            f"{self.kind:<16} {self.detail}{pred}"
        )

    def to_dict(self) -> dict:
        return asdict(self)


class FlightRecorder:
    """Disabled-recorder protocol: every hook is a no-op.

    Mirrors :class:`repro.obs.metrics.MetricsSink`: the base class *is*
    the disabled implementation, and ``enabled`` is a class attribute so
    the guard is a plain attribute load.
    """

    enabled: bool = False

    #: Sequence number of the next event; 0 when nothing was recorded.
    seq: int = 0

    def record(
        self,
        cycle: int,
        pc: int,
        region: str | None,
        kind: str,
        detail: str,
        pred: str | None = None,
    ) -> None:
        return None

    def events(self) -> list[FlightEvent]:
        return []

    def window(self, anchor_seq: int, k: int) -> list[FlightEvent]:
        return []


class NullRecorder(FlightRecorder):
    """Explicit do-nothing recorder (the shared default)."""


#: Shared disabled recorder: safe default argument everywhere.
NULL_RECORDER = NullRecorder()


class RingRecorder(FlightRecorder):
    """Keeps the most recent *capacity* events in a bounded ring."""

    enabled = True

    def __init__(self, capacity: int = DEFAULT_CAPACITY, source: str = "") -> None:
        if capacity < 1:
            raise ValueError(f"flight recorder capacity must be >= 1: {capacity}")
        self.capacity = capacity
        self.source = source
        self.seq = 0
        self._ring: deque[FlightEvent] = deque(maxlen=capacity)

    def __len__(self) -> int:
        return len(self._ring)

    def record(
        self,
        cycle: int,
        pc: int,
        region: str | None,
        kind: str,
        detail: str,
        pred: str | None = None,
    ) -> None:
        self._ring.append(
            FlightEvent(self.seq, cycle, pc, region, kind, detail, pred)
        )
        self.seq += 1

    @property
    def dropped(self) -> int:
        """Events evicted from the ring so far."""
        return self.seq - len(self._ring)

    def events(self) -> list[FlightEvent]:
        return list(self._ring)

    def window(self, anchor_seq: int, k: int) -> list[FlightEvent]:
        """Events with seq in ``[anchor-k, anchor+k]`` still in the ring."""
        lo, hi = anchor_seq - k, anchor_seq + k
        return [event for event in self._ring if lo <= event.seq <= hi]

    def to_dicts(self) -> list[dict]:
        return [event.to_dict() for event in self._ring]
