"""A single-line live progress meter for long sweeps (``--progress``).

Strictly stderr-only and carriage-return based: stdout artifacts stay
byte-identical whether or not the meter is on, and piping stderr to a
file degrades to one line per update rather than terminal garbage.

    meter = ProgressLine("fuzz")
    for ... : meter.update(done, total, detail="3 diverged")
    meter.finish()
"""

from __future__ import annotations

import sys
import time


def _fmt_seconds(seconds: float) -> str:
    if seconds >= 3600:
        return f"{seconds / 3600:.1f}h"
    if seconds >= 60:
        return f"{seconds / 60:.1f}m"
    return f"{seconds:.0f}s"


class ProgressLine:
    """Renders ``[label] done/total (pct) detail elapsed E eta T``.

    The line rewrites itself in place via ``\\r``; :meth:`finish` ends it
    with a newline.  Updates are throttled to ~10/s so a fast loop does
    not spend its time painting the terminal (the final state is always
    painted by :meth:`finish`).
    """

    def __init__(self, label: str, *, stream=None, min_interval: float = 0.1):
        self.label = label
        self.stream = stream if stream is not None else sys.stderr
        self.min_interval = min_interval
        self._t0 = time.monotonic()
        self._last_paint = 0.0
        self._last_width = 0
        self._last_args: tuple[int, int, str] | None = None

    def update(self, done: int, total: int, detail: str = "") -> None:
        self._last_args = (done, total, detail)
        now = time.monotonic()
        if now - self._last_paint < self.min_interval and done < total:
            return
        self._paint(done, total, detail, now)

    def _paint(self, done: int, total: int, detail: str, now: float) -> None:
        self._last_paint = now
        elapsed = now - self._t0
        if 0 < done <= total:
            eta = _fmt_seconds(elapsed / done * (total - done))
        else:
            eta = "?"
        pct = f"{done / total:.0%}" if total else "-"
        parts = [f"[{self.label}] {done}/{total} ({pct})"]
        if detail:
            parts.append(detail)
        parts.append(f"elapsed {_fmt_seconds(elapsed)} eta {eta}")
        line = "  ".join(parts)
        pad = max(0, self._last_width - len(line))
        self._last_width = len(line)
        self.stream.write("\r" + line + " " * pad)
        self.stream.flush()

    def finish(self) -> None:
        """Paint the final state and terminate the line."""
        if self._last_args is not None:
            self._paint(*self._last_args, time.monotonic())
        self.stream.write("\n")
        self.stream.flush()
