"""Structured JSONL run logging (the ``--log-json`` CLI flag).

Long experiment and fuzz runs produce terminal output built for humans;
this module emits the same milestones as machine-readable JSON Lines so
runs can be post-processed (dashboards, failure triage, joining bench
samples across nights) without scraping stdout.

One record per line::

    {"run_id": "...", "seq": 3, "kind": "fuzz.campaign",
     "t": 12.081, "seed": 7, "index": 3, "equivalent": true}

* ``run_id`` ties every line of one process run together;
* ``seq`` is a per-run monotonic counter (stable sort key);
* ``t`` is seconds since the log was opened (monotonic clock);
* ``kind`` is a dotted event name (``run.start``, ``experiment.cell``,
  ``fuzz.campaign``, ``bench.sample``, ``run.end``, ...); remaining
  fields are event-specific and must be JSON-native.

The null object pattern mirrors :mod:`repro.obs.metrics`: the base
:class:`RunLog` *is* the disabled implementation and call sites guard
with ``log.enabled`` where building the field dict is itself non-free.
"""

from __future__ import annotations

import itertools
import json
import os
import time
from pathlib import Path

#: Distinguishes logs opened by one process within the same second.
_OPEN_COUNTER = itertools.count()


class RunLog:
    """No-op run log; the base class is the disabled implementation."""

    enabled: bool = False

    def event(self, kind: str, **fields) -> None:
        """Record one event (no-op here)."""

    def close(self) -> None:
        """Flush and release the sink (no-op here)."""

    def __enter__(self) -> "RunLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class NullRunLog(RunLog):
    """Explicit name for the disabled log."""


#: Shared default instance; callers treat it as immutable.
NULL_RUN_LOG = NullRunLog()


class JsonlRunLog(RunLog):
    """Appends one JSON object per event to *path*.

    The file is opened in append mode so several commands can share one
    log; ``run_id`` (epoch seconds + pid + per-process open counter)
    distinguishes their lines.  Every line is flushed as written --
    a killed run keeps everything logged before the signal.
    """

    enabled = True

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.run_id = (
            f"{int(time.time())}-{os.getpid()}-{next(_OPEN_COUNTER)}"
        )
        self._t0 = time.monotonic()
        self._seq = 0
        self._file = open(self.path, "a", encoding="utf-8")
        self.event("run.start", pid=os.getpid())

    def event(self, kind: str, **fields) -> None:
        if self._file is None:
            return
        record = {
            "run_id": self.run_id,
            "seq": self._seq,
            "kind": kind,
            "t": round(time.monotonic() - self._t0, 6),
        }
        record.update(fields)
        self._seq += 1
        self._file.write(json.dumps(record) + "\n")
        self._file.flush()

    def close(self) -> None:
        if self._file is not None:
            self.event("run.end")
            self._file.close()
            self._file = None


def read_runlog(path: str | Path) -> list[dict]:
    """Parse a JSONL run log back into records (tests, post-processing)."""
    records = []
    with open(path, encoding="utf-8") as handle:
        for number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as error:
                raise ValueError(f"{path}:{number}: bad JSON line: {error}")
            if not isinstance(record, dict) or "kind" not in record:
                raise ValueError(f"{path}:{number}: not a run-log record")
            records.append(record)
    return records
