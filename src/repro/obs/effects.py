"""Canonical committed-effect streams and their comparison.

An *effect* is a change to architectural state: a register write that
committed, a memory word retired from the store buffer, an ``out``, or a
handled fault.  The scalar interpreter emits effects directly as it
executes; the VLIW machine emits them from the paper's commit points --
shadow-regfile commits (CCR-decided TRUE verdicts), non-speculative
write-backs, and store-buffer retirement/drain.  Squashed state never
appears: the stream is the committed boundary of Colvin/Winter-style
speculative semantics.

Comparing the two sides needs care, because the scheduler is allowed to
reorder some effects without changing architectural meaning:

* ``out`` effects form a dependence chain (``compiler/dependence.py``),
  so the ordered out stream is schedule-invariant -> compared strictly.
* Memory operations are ordered only when they may alias.  Stores to the
  *same* address always may-alias, so the per-address sequence of values
  is schedule-invariant -> compared per address; cross-address
  interleaving is not compared.
* Register commit order across different registers depends on write-back
  latency and bundle packing, and ``supersede_pending`` legitimately
  collapses buffered writes -- so register effects are forensic context
  only; architectural register equality is judged on the *final*
  register file.
* Handled faults are replayed by the recovery engine at a
  schedule-dependent time, so they are reported but never compared.

``first_divergence`` applies those rules in the oracle's severity order
(output, then registers, then memory) and hands back the first effect
that disagrees, ready to anchor a flight-recorder window.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs.flight import NULL_RECORDER, FlightRecorder

__all__ = [
    "Effect",
    "EffectStream",
    "EffectDivergence",
    "first_divergence",
]


@dataclass(frozen=True, slots=True)
class Effect:
    """One committed architectural effect."""

    seq: int
    kind: str  # "reg" | "mem" | "out" | "fault"
    locus: str  # "r5" | "mem[516]" | "out[3]" | "pagefault@516"
    key: int | str  # register index / address / out ordinal / fault kind
    value: int
    cycle: int
    pc: int
    region: str | None
    pred: str | None = None
    flight_seq: int | None = None

    def describe(self) -> str:
        where = f"{self.region or '?'}@pc{self.pc}"
        pred = f" [{self.pred}]" if self.pred else ""
        return (
            f"e{self.seq:<5} cyc={self.cycle:<6} {where:<10} "
            f"{self.locus} = {self.value}{pred}"
        )

    def to_dict(self) -> dict:
        return {
            "seq": self.seq,
            "kind": self.kind,
            "locus": self.locus,
            "key": self.key,
            "value": self.value,
            "cycle": self.cycle,
            "pc": self.pc,
            "region": self.region,
            "pred": self.pred,
            "flight_seq": self.flight_seq,
        }


class EffectStream:
    """Ordered committed effects from one side of an execution.

    When a live :class:`~repro.obs.flight.FlightRecorder` is attached,
    each effect remembers the recorder's latest sequence number so a
    +/-K event window can be cut around it later.
    """

    def __init__(
        self, side: str, recorder: FlightRecorder = NULL_RECORDER
    ) -> None:
        self.side = side
        self.recorder = recorder
        self.effects: list[Effect] = []
        self._out_count = 0

    def __len__(self) -> int:
        return len(self.effects)

    def __iter__(self):
        return iter(self.effects)

    # ---- emission ------------------------------------------------------

    def _emit(
        self,
        kind: str,
        locus: str,
        key: int | str,
        value: int,
        cycle: int,
        pc: int,
        region: str | None,
        pred: str | None,
    ) -> None:
        flight_seq = self.recorder.seq - 1 if self.recorder.enabled else None
        self.effects.append(
            Effect(
                seq=len(self.effects),
                kind=kind,
                locus=locus,
                key=key,
                value=value,
                cycle=cycle,
                pc=pc,
                region=region,
                pred=pred,
                flight_seq=flight_seq,
            )
        )

    def emit_reg(
        self,
        reg: int,
        value: int,
        *,
        cycle: int,
        pc: int,
        region: str | None,
        pred: str | None = None,
    ) -> None:
        self._emit("reg", f"r{reg}", reg, value, cycle, pc, region, pred)

    def emit_mem(
        self,
        address: int,
        value: int,
        *,
        cycle: int,
        pc: int,
        region: str | None,
        pred: str | None = None,
    ) -> None:
        self._emit("mem", f"mem[{address}]", address, value, cycle, pc, region, pred)

    def emit_out(
        self,
        value: int,
        *,
        cycle: int,
        pc: int,
        region: str | None,
        pred: str | None = None,
    ) -> None:
        ordinal = self._out_count
        self._out_count += 1
        self._emit("out", f"out[{ordinal}]", ordinal, value, cycle, pc, region, pred)

    def emit_fault(
        self,
        kind: str,
        address: int,
        *,
        cycle: int,
        pc: int,
        region: str | None,
        pred: str | None = None,
    ) -> None:
        self._emit("fault", f"{kind}@{address}", kind, address, cycle, pc, region, pred)

    # ---- views ---------------------------------------------------------

    def of_kind(self, kind: str) -> list[Effect]:
        return [effect for effect in self.effects if effect.kind == kind]

    def outs(self) -> list[Effect]:
        return self.of_kind("out")

    def mem_by_address(self) -> dict[int, list[Effect]]:
        grouped: dict[int, list[Effect]] = {}
        for effect in self.effects:
            if effect.kind == "mem":
                grouped.setdefault(effect.key, []).append(effect)
        return grouped

    def last_reg_effect(self, reg: int) -> Effect | None:
        for effect in reversed(self.effects):
            if effect.kind == "reg" and effect.key == reg:
                return effect
        return None

    def last_effect(self) -> Effect | None:
        return self.effects[-1] if self.effects else None

    def to_dicts(self) -> list[dict]:
        return [effect.to_dict() for effect in self.effects]


@dataclass(frozen=True)
class EffectDivergence:
    """The first architecturally meaningful disagreement."""

    channel: str  # "out" | "register" | "memory"
    locus: str
    index: int  # ordinal within the channel (out index / nth store / reg)
    expected: int | None  # scalar side, None = effect missing
    actual: int | None  # machine side, None = effect missing
    scalar_effect: Effect | None
    machine_effect: Effect | None

    def describe(self) -> str:
        def side(label: str, effect: Effect | None, value: int | None) -> str:
            if effect is None:
                shown = "<absent>" if value is None else str(value)
                return f"{label}: {shown}"
            return (
                f"{label}: {effect.value} at cyc={effect.cycle} "
                f"pc={effect.pc} region={effect.region or '?'}"
            )

        return (
            f"first divergent effect: {self.channel} {self.locus}\n"
            f"  {side('scalar ', self.scalar_effect, self.expected)}\n"
            f"  {side('machine', self.machine_effect, self.actual)}"
        )

    def to_dict(self) -> dict:
        return {
            "channel": self.channel,
            "locus": self.locus,
            "index": self.index,
            "expected": self.expected,
            "actual": self.actual,
            "scalar_effect": (
                self.scalar_effect.to_dict() if self.scalar_effect else None
            ),
            "machine_effect": (
                self.machine_effect.to_dict() if self.machine_effect else None
            ),
        }


def _first_sequence_mismatch(
    expected: list[Effect], actual: list[Effect]
) -> int | None:
    """Index of the first disagreement between two effect sequences."""
    for index, (want, got) in enumerate(zip(expected, actual)):
        if want.value != got.value:
            return index
    if len(expected) != len(actual):
        return min(len(expected), len(actual))
    return None


def first_divergence(
    scalar: EffectStream,
    machine: EffectStream,
    *,
    scalar_registers: dict[int, int] | None = None,
    machine_registers: dict[int, int] | None = None,
) -> EffectDivergence | None:
    """First schedule-invariant disagreement between the two streams.

    Checks, in the oracle's severity order: the ordered ``out`` stream,
    the final register files (when provided), then per-address store
    sequences.  Returns ``None`` when every channel agrees.
    """
    # Output stream: strictly ordered, compared value by value.
    scalar_outs = scalar.outs()
    machine_outs = machine.outs()
    index = _first_sequence_mismatch(scalar_outs, machine_outs)
    if index is not None:
        want = scalar_outs[index] if index < len(scalar_outs) else None
        got = machine_outs[index] if index < len(machine_outs) else None
        anchor_scalar = want or scalar.last_effect()
        anchor_machine = got or machine.last_effect()
        return EffectDivergence(
            channel="out",
            locus=f"out[{index}]",
            index=index,
            expected=want.value if want else None,
            actual=got.value if got else None,
            scalar_effect=anchor_scalar,
            machine_effect=anchor_machine,
        )

    # Final register file: commit *order* across registers is schedule
    # dependent, so only the architectural end state is compared.
    if scalar_registers is not None and machine_registers is not None:
        for reg in sorted(set(scalar_registers) | set(machine_registers)):
            want_value = scalar_registers.get(reg, 0)
            got_value = machine_registers.get(reg, 0)
            if want_value != got_value:
                return EffectDivergence(
                    channel="register",
                    locus=f"r{reg}",
                    index=reg,
                    expected=want_value,
                    actual=got_value,
                    scalar_effect=scalar.last_reg_effect(reg),
                    machine_effect=machine.last_reg_effect(reg),
                )

    # Memory: per-address store sequences (same-address stores always
    # may-alias, so their order is schedule-invariant).
    scalar_mem = scalar.mem_by_address()
    machine_mem = machine.mem_by_address()
    for address in sorted(set(scalar_mem) | set(machine_mem)):
        want_stores = scalar_mem.get(address, [])
        got_stores = machine_mem.get(address, [])
        index = _first_sequence_mismatch(want_stores, got_stores)
        if index is None:
            continue
        want = want_stores[index] if index < len(want_stores) else None
        got = got_stores[index] if index < len(got_stores) else None
        return EffectDivergence(
            channel="memory",
            locus=f"mem[{address}]",
            index=index,
            expected=want.value if want else None,
            actual=got.value if got else None,
            scalar_effect=want or scalar.last_effect(),
            machine_effect=got or machine.last_effect(),
        )

    return None
