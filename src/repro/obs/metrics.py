"""Metrics sinks: named counters and histograms for the simulator stack.

The observability layer is pull-free: instrumented components *push*
increments into a :class:`MetricsSink` they were handed at construction.
The default sink is :data:`NULL_SINK`, whose methods are no-ops and whose
``enabled`` flag is False -- hot paths guard their instrumentation with
``if sink.enabled:`` so a production run pays one attribute test, not a
call, per would-be sample.  :class:`CounterSink` is the collecting
implementation behind ``repro profile`` and the observability tests.

Counter naming convention (documented in DESIGN.md "Observability"):

* dotted component namespaces -- ``machine.cycles``, ``regfile.commits``,
  ``storebuffer.squashes``, ``btb.hits``, ``scalar.instructions``;
* *keyed* families append ``/<key>`` -- ``region.cycles/B0``,
  ``block.ops/B3`` -- so per-region attribution rides the same sink as
  the scalar counters.

Histograms are exact value->count maps (occupancies and slot counts are
small integers), with summary statistics computed at export time.
"""

from __future__ import annotations

from collections import Counter


class MetricsSink:
    """Protocol-by-inheritance base: a sink accepts counts and samples.

    ``enabled`` is a class attribute so the hot-path guard
    ``if sink.enabled:`` costs a plain attribute lookup.
    """

    enabled: bool = False

    def count(self, name: str, amount: int = 1) -> None:
        """Add *amount* to the counter *name*."""

    def observe(self, name: str, value: int) -> None:
        """Record one sample of *value* in the histogram *name*."""


class NullSink(MetricsSink):
    """The default sink: every call is a no-op (and callers skip even
    the call when they check ``enabled`` first)."""


#: Shared default instance -- components default to this, never to None.
NULL_SINK = NullSink()


class CounterSink(MetricsSink):
    """Collects named counters and histograms in memory."""

    enabled = True

    def __init__(self) -> None:
        self.counters: Counter[str] = Counter()
        self.histograms: dict[str, Counter[int]] = {}

    def count(self, name: str, amount: int = 1) -> None:
        self.counters[name] += amount

    def observe(self, name: str, value: int) -> None:
        histogram = self.histograms.get(name)
        if histogram is None:
            histogram = self.histograms[name] = Counter()
        histogram[value] += 1

    # ------------------------------------------------------------------
    # Reading the collected data.
    # ------------------------------------------------------------------
    def counter(self, name: str, default: int = 0) -> int:
        return self.counters.get(name, default)

    def keyed(self, family: str) -> dict[str, int]:
        """All counters of the family ``<family>/<key>``, keyed by key."""
        prefix = family + "/"
        return {
            name[len(prefix):]: value
            for name, value in self.counters.items()
            if name.startswith(prefix)
        }

    def histogram_summary(self, name: str) -> dict:
        """Count/min/max/mean plus the raw value->count map."""
        histogram = self.histograms.get(name, Counter())
        total = sum(histogram.values())
        if not total:
            return {"count": 0, "min": 0, "max": 0, "mean": 0.0, "values": {}}
        weighted = sum(value * times for value, times in histogram.items())
        return {
            "count": total,
            "min": min(histogram),
            "max": max(histogram),
            "mean": weighted / total,
            "values": {str(value): histogram[value] for value in sorted(histogram)},
        }

    # ------------------------------------------------------------------
    # Checkpoint state extraction.
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Exact sink contents (raw value->count histograms, no summary
        statistics), so a checkpoint restore reproduces the sink bit for
        bit rather than approximately."""
        return {
            "counters": {
                name: self.counters[name] for name in sorted(self.counters)
            },
            "histograms": {
                name: {
                    str(value): histogram[value]
                    for value in sorted(histogram)
                }
                for name, histogram in sorted(self.histograms.items())
            },
        }

    def load_state(self, state: dict) -> None:
        """Replace this sink's contents with a :meth:`state_dict` capture."""
        self.counters = Counter(
            {name: value for name, value in state["counters"].items()}
        )
        self.histograms = {
            name: Counter(
                {int(value): times for value, times in histogram.items()}
            )
            for name, histogram in state["histograms"].items()
        }

    def to_dict(self) -> dict:
        """JSON-native snapshot: the ``metrics`` payload of artifacts
        and of ``repro profile --json``."""
        return {
            "counters": {
                name: self.counters[name] for name in sorted(self.counters)
            },
            "histograms": {
                name: self.histogram_summary(name)
                for name in sorted(self.histograms)
            },
        }
