"""Failure diagnostics: machine-state snapshots attached to aborts.

When the cycle-level machine hits a hard limit (the cycle budget, a
store-buffer deadlock, or issue running off the end of the program), a
bare message is useless for debugging a scheduler: you need to know
*where* the machine was and *what* it was doing.
:class:`MachineSnapshot` captures the architectural position (cycle, PC,
mode, RPC/EPC), buffer occupancies, and the last issued bundles;
:class:`MachineAbort`, :class:`StoreBufferDeadlock` and
:class:`ProgramOverrun` carry it on the exception.
:class:`InterpreterSnapshot` is the scalar-side analogue, carried by
``StepLimitExceeded`` when the interpreter blows its step budget.

``StoreBufferDeadlock`` and ``ProgramOverrun`` subclass
``ScheduleViolation`` (both are the compiler's fault) so existing
handlers keep working, while ``MachineAbort`` subclasses
``RuntimeError`` like the bare cycle-limit message it replaces.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.exceptions import ScheduleViolation

#: How many recently issued bundles a snapshot retains.
SNAPSHOT_BUNDLES = 16


@dataclass(frozen=True)
class IssuedBundle:
    """One recently issued bundle, pre-rendered for the snapshot."""

    cycle: int
    pc: int
    ops: tuple[str, ...]


@dataclass(frozen=True)
class MachineSnapshot:
    """The machine's state at the instant of an abort."""

    cycle: int
    pc: int
    mode: str
    rpc: int
    epc: int | None
    shadow_occupancy: int
    store_buffer_occupancy: int
    in_flight: int
    last_bundles: tuple[IssuedBundle, ...]

    def describe(self) -> str:
        lines = [
            f"cycle={self.cycle} pc={self.pc} mode={self.mode} "
            f"rpc={self.rpc} epc={self.epc}",
            f"shadow entries={self.shadow_occupancy} "
            f"store-buffer entries={self.store_buffer_occupancy} "
            f"in-flight results={self.in_flight}",
        ]
        if self.last_bundles:
            lines.append(f"last {len(self.last_bundles)} issued bundles:")
            for issued in self.last_bundles:
                ops = " ; ".join(issued.ops) or "nop"
                lines.append(
                    f"  cycle {issued.cycle:>8} pc {issued.pc:>5}: {ops}"
                )
        return "\n".join(lines)


class MachineAbort(RuntimeError):
    """The machine gave up (cycle budget); carries the state snapshot."""

    def __init__(self, message: str, snapshot: MachineSnapshot):
        super().__init__(f"{message}\n{snapshot.describe()}")
        self.snapshot = snapshot


class StoreBufferDeadlock(ScheduleViolation):
    """Retirement can never progress; carries the state snapshot."""

    def __init__(self, message: str, snapshot: MachineSnapshot):
        super().__init__(f"{message}\n{snapshot.describe()}")
        self.snapshot = snapshot


class ProgramOverrun(ScheduleViolation):
    """Issue ran past the last bundle without a halt; carries the
    snapshot (a scheduler that drops the halt or mis-links a transfer)."""

    def __init__(self, message: str, snapshot: MachineSnapshot):
        super().__init__(f"{message}\n{snapshot.describe()}")
        self.snapshot = snapshot


@dataclass(frozen=True)
class InterpreterSnapshot:
    """The scalar interpreter's state when it blew its step budget."""

    pc: int
    steps: int
    scalar_cycles: int
    recent_blocks: tuple[int, ...]  # last distinct CFG blocks entered

    def describe(self) -> str:
        lines = [
            f"pc={self.pc} steps={self.steps} "
            f"scalar_cycles={self.scalar_cycles}"
        ]
        if self.recent_blocks:
            path = " -> ".join(f"B{block}" for block in self.recent_blocks)
            lines.append(f"last blocks entered: {path}")
        return "\n".join(lines)
