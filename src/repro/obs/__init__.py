"""Microarchitectural observability: metrics, traces, forensics, logging.

The subsystem's pieces are all near-zero-cost when unused:

* :mod:`repro.obs.metrics` -- the :class:`MetricsSink` protocol with the
  no-op :data:`NULL_SINK` default and the collecting
  :class:`CounterSink`;
* :mod:`repro.obs.trace_events` -- a Perfetto/Chrome ``trace_event``
  recorder (:class:`CycleTraceRecorder`) producing one track per FU
  class plus CCR/mode/region tracks;
* :mod:`repro.obs.attribution` -- per-region / per-original-block cycle
  attribution built from the keyed counter families the machine emits;
* :mod:`repro.obs.diagnostics` -- machine-state snapshots carried on
  abort exceptions;
* :mod:`repro.obs.flight` -- bounded ring-buffer flight recorder of
  architectural events (issue, CCR writes, commits/squashes, store
  buffer traffic, faults, recovery episodes);
* :mod:`repro.obs.effects` -- the canonical committed-effect stream the
  lockstep differ (``repro diff-trace``) aligns across models;
* :mod:`repro.obs.runlog` -- structured JSONL run logging behind the
  global ``--log-json`` CLI flag.

Counter names are part of the public surface and documented in
DESIGN.md ("Observability").
"""

from repro.obs.attribution import (
    AttributionReport,
    RegionRow,
    attribute_regions,
)
from repro.obs.diagnostics import (
    InterpreterSnapshot,
    MachineAbort,
    MachineSnapshot,
    ProgramOverrun,
    StoreBufferDeadlock,
)
from repro.obs.effects import (
    Effect,
    EffectDivergence,
    EffectStream,
    first_divergence,
)
from repro.obs.flight import (
    NULL_RECORDER,
    FlightEvent,
    FlightRecorder,
    NullRecorder,
    RingRecorder,
)
from repro.obs.metrics import NULL_SINK, CounterSink, MetricsSink, NullSink
from repro.obs.runlog import NULL_RUN_LOG, JsonlRunLog, RunLog
from repro.obs.trace_events import CycleTraceRecorder, validate_trace_events

__all__ = [
    "AttributionReport",
    "CounterSink",
    "CycleTraceRecorder",
    "Effect",
    "EffectDivergence",
    "EffectStream",
    "FlightEvent",
    "FlightRecorder",
    "InterpreterSnapshot",
    "JsonlRunLog",
    "MachineAbort",
    "MachineSnapshot",
    "MetricsSink",
    "NULL_RECORDER",
    "NULL_RUN_LOG",
    "NULL_SINK",
    "NullRecorder",
    "NullSink",
    "ProgramOverrun",
    "RegionRow",
    "RingRecorder",
    "RunLog",
    "StoreBufferDeadlock",
    "attribute_regions",
    "first_divergence",
    "validate_trace_events",
]
