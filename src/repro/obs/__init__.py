"""Microarchitectural observability: metrics, cycle traces, attribution.

The subsystem has four pieces, all near-zero-cost when unused:

* :mod:`repro.obs.metrics` -- the :class:`MetricsSink` protocol with the
  no-op :data:`NULL_SINK` default and the collecting
  :class:`CounterSink`;
* :mod:`repro.obs.trace_events` -- a Perfetto/Chrome ``trace_event``
  recorder (:class:`CycleTraceRecorder`) producing one track per FU
  class plus CCR/mode/region tracks;
* :mod:`repro.obs.attribution` -- per-region / per-original-block cycle
  attribution built from the keyed counter families the machine emits;
* :mod:`repro.obs.diagnostics` -- machine-state snapshots carried on
  abort exceptions.

Counter names are part of the public surface and documented in
DESIGN.md ("Observability").
"""

from repro.obs.attribution import (
    AttributionReport,
    RegionRow,
    attribute_regions,
)
from repro.obs.diagnostics import (
    InterpreterSnapshot,
    MachineAbort,
    MachineSnapshot,
    ProgramOverrun,
    StoreBufferDeadlock,
)
from repro.obs.metrics import NULL_SINK, CounterSink, MetricsSink, NullSink
from repro.obs.trace_events import CycleTraceRecorder, validate_trace_events

__all__ = [
    "AttributionReport",
    "CounterSink",
    "CycleTraceRecorder",
    "InterpreterSnapshot",
    "MachineAbort",
    "MachineSnapshot",
    "MetricsSink",
    "NULL_SINK",
    "NullSink",
    "ProgramOverrun",
    "RegionRow",
    "StoreBufferDeadlock",
    "attribute_regions",
    "validate_trace_events",
]
