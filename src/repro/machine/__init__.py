"""Cycle-level machine models.

* :mod:`repro.machine.config` -- machine configurations (the paper's base
  4-issue VLIW: 4 ALUs, 4 branch units, 2 load units, 1 store unit, K=4
  CCR entries; plus the Figure 8 full-issue machines).
* :mod:`repro.machine.program` -- the VLIW program form: bundles, labels,
  region boundaries.
* :mod:`repro.machine.btb` -- the branch-penalty model (the paper's
  optimistic BTB assumption).
* :mod:`repro.machine.vliw` -- the predicating VLIW machine: in-order
  issue, control path, predicated register file and store buffer,
  future-condition exception recovery.
* :mod:`repro.machine.scalar` -- the scalar (R3000 stand-in) baseline.
"""

from repro.machine.config import MachineConfig
from repro.machine.program import Bundle, VLIWProgram
from repro.machine.vliw import VLIWMachine, VLIWResult

__all__ = [
    "Bundle",
    "MachineConfig",
    "VLIWMachine",
    "VLIWProgram",
    "VLIWResult",
]
