"""The scalar baseline machine (the paper's MIPS R3000 stand-in).

The paper measures speedups against R3000 cycle counts collected by pixie.
Our equivalent: run the scalar program through the functional interpreter,
whose timing model charges one cycle per instruction, a one-cycle load-use
interlock stall, and a one-cycle taken-transfer penalty.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir.cfg import CFG
from repro.isa.program import Program
from repro.obs.metrics import NULL_SINK, MetricsSink
from repro.sim.interpreter import FaultHandler, run_program
from repro.sim.memory import Memory
from repro.sim.trace import DynamicTrace


@dataclass
class ScalarRun:
    """Cycle count and dynamic behaviour of one scalar execution."""

    cycles: int
    instructions: int
    trace: DynamicTrace
    output: tuple[int, ...]


def run_scalar(
    program: Program,
    cfg: CFG,
    memory: Memory,
    *,
    fault_handler: FaultHandler | None = None,
    max_steps: int | None = None,
    sink: MetricsSink = NULL_SINK,
) -> ScalarRun:
    """Execute *program* on the scalar machine; returns cycles and trace."""
    kwargs = {} if max_steps is None else {"max_steps": max_steps}
    result = run_program(
        program, memory, cfg=cfg, fault_handler=fault_handler, sink=sink,
        **kwargs
    )
    assert result.trace is not None
    return ScalarRun(
        cycles=result.scalar_cycles,
        instructions=result.steps,
        trace=result.trace,
        output=result.architectural_output,
    )
