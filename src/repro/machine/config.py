"""Machine configurations.

The paper's base machine (Section 4): a 4-issue VLIW with four ALUs, four
branch units, two load units, one store unit, a 4-entry CCR, load latency
2, everything else latency 1.  Figure 8 additionally evaluates *full-issue*
machines -- "a machine with fully duplicated resources such as function
units, register ports, and D-cache ports" -- at issue widths 2, 4 and 8
and speculation depths (allowed dependent conditions) 1, 2, 4 and 8.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.opcodes import FuClass


@dataclass(frozen=True, slots=True)
class MachineConfig:
    """Static parameters of one evaluated machine."""

    issue_width: int = 4
    num_alu: int = 4
    num_branch: int = 4
    num_load: int = 2
    num_store: int = 1
    ccr_entries: int = 4
    max_speculation_depth: int | None = None  # None = up to ccr_entries
    shadow_capacity: int | None = 1
    store_buffer_capacity: int = 32
    taken_penalty_btb: int = 0  # BTB-predictable transfer (optimistic)
    taken_penalty_indirect: int = 1  # register-indirect transfer
    # None = the paper's optimistic infinite BTB; an integer enables the
    # finite direct-mapped model (misses pay taken_penalty_indirect).
    btb_entries: int | None = None

    def __post_init__(self) -> None:
        if self.issue_width < 1:
            raise ValueError("issue width must be >= 1")
        if self.ccr_entries < 1:
            raise ValueError("CCR needs at least one entry")
        if (
            self.max_speculation_depth is not None
            and not 0 <= self.max_speculation_depth <= self.ccr_entries
        ):
            raise ValueError("speculation depth must be within CCR size")

    @property
    def speculation_depth(self) -> int:
        """Max dependent branch conditions a speculative motion may cross."""
        if self.max_speculation_depth is None:
            return self.ccr_entries
        return self.max_speculation_depth

    def fu_count(self, fu: FuClass) -> int | None:
        """Units available for *fu* (None = unconstrained)."""
        if fu is FuClass.ALU:
            return self.num_alu
        if fu is FuClass.BRANCH:
            return self.num_branch
        if fu is FuClass.LOAD:
            return self.num_load
        if fu is FuClass.STORE:
            return self.num_store
        return None


def base_machine(**overrides) -> MachineConfig:
    """The paper's default 4-issue machine."""
    return MachineConfig(**overrides)


def full_issue_machine(
    issue_width: int, speculation_depth: int, **overrides
) -> MachineConfig:
    """A Figure 8 machine: every resource duplicated *issue_width* times."""
    params = dict(
        issue_width=issue_width,
        num_alu=issue_width,
        num_branch=issue_width,
        num_load=issue_width,
        num_store=issue_width,
        ccr_entries=max(speculation_depth, 1),
        max_speculation_depth=speculation_depth,
        store_buffer_capacity=max(32, 8 * issue_width),
    )
    params.update(overrides)
    return MachineConfig(**params)


def scalar_machine() -> MachineConfig:
    """A single-issue machine with one of each unit (the scalar shape)."""
    return MachineConfig(
        issue_width=1,
        num_alu=1,
        num_branch=1,
        num_load=1,
        num_store=1,
        ccr_entries=1,
        max_speculation_depth=0,
    )
