"""The predicating VLIW machine (Figure 1), cycle by cycle.

Each cycle proceeds in the order the paper's Table 1 walkthrough implies:

1. **Commit tick** -- the per-entry hardware of the predicated register
   file and store buffer re-evaluates every buffered predicate against the
   CCR (whose conditions were updated at the end of the previous cycle)
   and commits or squashes buffered state.  Valid non-speculative store
   buffer heads retire to the D-cache.
2. **Issue** -- the bundle at PC issues.  The control path evaluates each
   operation's predicate: TRUE executes non-speculatively, FALSE squashes
   at issue, UNSPEC executes speculatively (results are routed to the
   speculative state at writeback).  Control transfers must be specified
   at issue.
3. **End of cycle** -- condition-set results update the CCR; then the
   *combinational* exception check runs: if any buffered E flag's
   predicate became TRUE, the CCR update is suppressed (the new value goes
   to the future CCR), all speculative state is invalidated, and the
   machine rolls back to the RPC in recovery mode (Section 3.5).
   Otherwise due writebacks are applied (each re-evaluating its predicate:
   TRUE to the sequential state, UNSPEC to the shadow, FALSE discarded)
   and a taken transfer updates PC, resets the CCR and records the RPC.

**Recovery mode** issues the same bundles from the RPC, squashing every
instruction whose predicate is decided (TRUE or FALSE) by the *current
condition* held in the CCR, and re-executing the rest speculatively.  A
fault re-raised during recovery is decided against the *future condition*:
TRUE invokes the fault handler (which repairs state; the access then
retries), FALSE is ignored, UNSPEC is buffered again.  Recovery ends after
re-issuing the commit-point bundle (EPC); the future condition is then
copied into the CCR and normal execution resumes at EPC+1.

Two deliberate timing simplifications, both documented in DESIGN.md:

* a *faulting* speculative operation buffers its E flag at the end of its
  issue cycle rather than after its full latency, so exception commits are
  always detected by the combinational check (faults are rare; this does
  not perturb the non-faulting timing the evaluation measures);
* at a recovery trigger or region transfer, in-flight results whose
  predicate is TRUE under the pre-trigger CCR complete immediately, and
  the remainder are discarded.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Callable
from dataclasses import dataclass, field

from repro.core.ccr import CCR
from repro.core.control_path import ControlPath
from repro.core.exceptions import (
    FaultKind,
    FaultRecord,
    MachineMode,
    ScheduleViolation,
    UnhandledFault,
)
from repro.core.predicate import ALWAYS, PredValue, Predicate
from repro.core.regfile import CommitEvents, PredicatedRegisterFile
from repro.core.store_buffer import PredicatedStoreBuffer
from repro.isa.instruction import Instruction
from repro.isa.opcodes import FuClass
from repro.isa.registers import NUM_REGS
from repro.isa.semantics import (
    ArithmeticFault,
    effective_address,
    eval_alu,
    eval_cond,
)
from repro.isa.printer import format_instruction
from repro.machine.btb import BranchTargetBuffer
from repro.machine.config import MachineConfig
from repro.machine.program import VLIWProgram
from repro.obs.diagnostics import (
    SNAPSHOT_BUNDLES,
    IssuedBundle,
    MachineAbort,
    MachineSnapshot,
    ProgramOverrun,
    StoreBufferDeadlock,
)
from repro.obs.effects import EffectStream
from repro.obs.flight import NULL_RECORDER, FlightRecorder
from repro.obs.metrics import NULL_SINK, MetricsSink
from repro.obs.trace_events import CycleTraceRecorder
from repro.sim.memory import Memory, MemoryFault
from repro.taint.tags import TaintTag, merge_taint, rekind_address
from repro.taint.track import NULL_TAINT, TaintTracker

FaultHandler = Callable[[FaultRecord, "VLIWMachine"], bool]

DEFAULT_MAX_CYCLES = 50_000_000
_MAX_CONSECUTIVE_STALLS = 1_000


@dataclass
class _InFlight:
    """A result waiting for its writeback cycle.

    A faulting speculative access flies with its E flag attached so the
    writeback lands in the shadow regfile at the same cycle a clean
    access would -- landing it early would let an earlier-in-program-order
    write from the same bundle supersede it in the wrong direction.
    """

    due_cycle: int
    reg: int
    value: int
    pred: Predicate
    fault: FaultRecord | None = None
    taint: frozenset[TaintTag] | None = None


@dataclass
class CycleEvents:
    """What one cycle did -- the rows of the paper's Table 1."""

    cycle: int
    sequential_writes: list[int] = field(default_factory=list)
    speculative_writes: list[tuple[str, str]] = field(default_factory=list)
    committed: list[str] = field(default_factory=list)
    squashed: list[str] = field(default_factory=list)
    ccr_sets: list[tuple[int, bool]] = field(default_factory=list)


@dataclass
class VLIWResult:
    """Architectural outcome of one VLIW run."""

    output: list[int]
    registers: tuple[int, ...]
    memory: Memory
    cycles: int
    bundles_issued: int
    _issued_ops: int
    recoveries: int
    handled_faults: int
    squashed_ops: int
    speculative_ops: int

    @property
    def architectural_output(self) -> tuple[int, ...]:
        return tuple(self.output)

    @property
    def ipc(self) -> float:
        """Useful operations per cycle (squashed issues excluded)."""
        if self.cycles == 0:
            return 0.0
        return (self.useful_ops) / self.cycles

    @property
    def useful_ops(self) -> int:
        """Issued operations that were not squashed at issue."""
        return max(0, self._issued_ops - self.squashed_ops)


class VLIWMachine:
    """In-order N-issue machine with predicated state buffering."""

    def __init__(
        self,
        program: VLIWProgram,
        config: MachineConfig,
        memory: Memory | None = None,
        *,
        fault_handler: FaultHandler | None = None,
        max_cycles: int = DEFAULT_MAX_CYCLES,
        record_events: bool = False,
        sink: MetricsSink = NULL_SINK,
        tracer: CycleTraceRecorder | None = None,
        flight: FlightRecorder = NULL_RECORDER,
        effects: EffectStream | None = None,
        taint: TaintTracker = NULL_TAINT,
    ):
        program.validate()
        self.program = program
        self.config = config
        self.memory = memory if memory is not None else Memory()
        self.fault_handler = fault_handler
        self.max_cycles = max_cycles
        self.sink = sink
        self.tracer = tracer
        self.flight = flight
        self.effects = effects
        self.taint = taint

        self.ccr = CCR(config.ccr_entries)
        self.control_path = ControlPath(self.ccr)
        self.regfile = PredicatedRegisterFile(
            NUM_REGS, shadow_capacity=config.shadow_capacity, sink=sink
        )
        self.store_buffer = PredicatedStoreBuffer(
            config.store_buffer_capacity, sink=sink
        )
        self.output: list[int] = []

        self.pc = 0
        self.rpc = 0
        self.cycle = 0
        self.mode = MachineMode.NORMAL
        self.future_ccr: CCR | None = None
        self.epc: int | None = None

        self._in_flight: list[_InFlight] = []
        self._region_starts = program.region_starts()
        # Store-buffer demand per bundle is static: precompute it so the
        # per-cycle stall check is two comparisons, not an opcode scan.
        self._bundle_store_ops = [
            sum(1 for op in bundle if op.opcode in ("st", "out"))
            for bundle in program.bundles
        ]
        # Conservative "might a speculative fault be buffered?" flag.
        # Faults are rare; ``_exception_commits`` short-circuits on this
        # and re-scans (self-clearing it) only while it is raised.  Any
        # code that plants an E flag outside the machine's own buffering
        # paths (e.g. the fault injector) must raise it again.
        self._maybe_fault = True
        self._btb = (
            BranchTargetBuffer(config.btb_entries, sink=sink)
            if config.btb_entries is not None
            else None
        )

        # Observability.  ``_observing`` guards every hot-path hook so a
        # NullSink run with no tracer pays one boolean test per site;
        # ``_forensics`` does the same for the flight recorder and the
        # committed-effect stream.
        self._observing = sink.enabled or tracer is not None
        self._forensics = flight.enabled or effects is not None
        # Taint follows the same zero-cost convention: one cached bool,
        # one branch per would-be taint site when tracking is off.
        self._taint = taint.enabled
        # Commit-value collection in the regfile tick is opt-in so a
        # forensics-off run never pays the per-commit tuple.
        self.regfile.collect_commit_values = self._forensics
        self._last_issued: deque[tuple[int, int]] = deque(
            maxlen=SNAPSHOT_BUNDLES
        )
        if self._observing or self._forensics or self._taint:
            self._region_of_bundle = [0] * len(program.bundles)
            for index, span in enumerate(program.regions):
                for bundle in range(span.start, span.end):
                    self._region_of_bundle[bundle] = index
        if self._observing:
            self._current_region: int | None = None
            self._region_entry_cycle = 0
            self._recovery_entry_cycle: int | None = None

        # Optional per-cycle event log (the Table 1 view).
        self.events: list[CycleEvents] = []
        self._cycle_events: CycleEvents | None = None
        self._record_events = record_events

        # Statistics.
        self.bundles_issued = 0
        self.issued_ops = 0
        self.recoveries = 0
        self.handled_faults = 0
        self.squashed_ops = 0
        self.speculative_ops = 0

        # Run-loop state.  Promoted from locals of ``run`` so that a
        # checkpoint between any two :meth:`step` calls captures the
        # complete machine (the consecutive-stall count survives a
        # save/restore mid-stall).
        self._stalls = 0
        self._halted = False
        self._result: VLIWResult | None = None

        self._check_resources()

    @property
    def btb(self) -> BranchTargetBuffer | None:
        """The finite BTB, when the config models one."""
        return self._btb

    # ------------------------------------------------------------------
    # Static checks.
    # ------------------------------------------------------------------
    def _check_resources(self) -> None:
        """Reject schedules that oversubscribe the machine's resources."""
        for index, bundle in enumerate(self.program.bundles):
            if len(bundle) > self.config.issue_width:
                raise ScheduleViolation(
                    f"bundle {index} exceeds issue width: {len(bundle)}"
                )
            usage: dict[FuClass, int] = {}
            for op in bundle:
                usage[op.fu] = usage.get(op.fu, 0) + 1
            for fu, used in usage.items():
                limit = self.config.fu_count(fu)
                if limit is not None and used > limit:
                    raise ScheduleViolation(
                        f"bundle {index} oversubscribes {fu.value}: {used} > {limit}"
                    )

    # ------------------------------------------------------------------
    # Main loop.
    # ------------------------------------------------------------------
    def run(self) -> VLIWResult:
        while self.step():
            pass
        return self.result()

    def step(self) -> bool:
        """Advance the machine by one cycle.

        Returns True while the machine is still running; the first call
        that executes the halting bundle finalizes the run (drains the
        store buffer, closes observation) and returns False, as does any
        call after halt.  ``step`` boundaries are exactly the machine's
        cycle boundaries, which is what makes the checkpoint layer's
        save-anywhere guarantee well-defined.
        """
        if self._halted:
            return False
        if self.cycle >= self.max_cycles:
            raise MachineAbort(
                f"{self.program.name}: exceeded {self.max_cycles} cycles",
                self.snapshot(),
            )
        if self.pc >= len(self.program.bundles):
            raise ProgramOverrun(
                "ran off the end of the program", self.snapshot()
            )

        self.cycle += 1
        if self._observing:
            self._observe_cycle()
        if self._record_events:
            self._cycle_events = CycleEvents(cycle=self.cycle)
            self.events.append(self._cycle_events)
        self._tick()

        bundle = self.program.bundles[self.pc]
        if self._must_stall(bundle):
            self._stalls += 1
            if self._observing:
                self.sink.count("machine.stall_cycles")
            if self._stalls > _MAX_CONSECUTIVE_STALLS:
                raise StoreBufferDeadlock(
                    "store buffer deadlock", self.snapshot()
                )
            self._apply_due_writebacks(self.ccr)
            return True
        self._stalls = 0

        if self._issue_and_finish(bundle):
            self._finalize()
            return False
        return True

    @property
    def halted(self) -> bool:
        return self._halted

    def _finalize(self) -> None:
        self._halted = True
        self._drain_at_halt()
        if self._observing:
            self._close_observation()
        self._result = VLIWResult(
            output=list(self.output),
            registers=self.regfile.sequential_snapshot(),
            memory=self.memory,
            cycles=self.cycle,
            bundles_issued=self.bundles_issued,
            _issued_ops=self.issued_ops,
            recoveries=self.recoveries,
            handled_faults=self.handled_faults,
            squashed_ops=self.squashed_ops,
            speculative_ops=self.speculative_ops,
        )

    def result(self) -> VLIWResult:
        """The architectural outcome; only available once halted."""
        if self._result is None:
            raise RuntimeError("machine has not halted yet")
        return self._result

    def _tick(self) -> None:
        rf_events = self.regfile.tick(self.ccr)
        sb_events = self.store_buffer.tick(self.ccr, self.memory, self.output)
        if self._forensics:
            self._forensic_tick(rf_events, sb_events)
        if self._taint and rf_events.committed:
            # Shadow entries confirmed TRUE moved to sequential storage
            # with their taint declassified (the committed value equals
            # sequential execution's); drop any stale sequential taint.
            reg_taint = self.taint.reg_taint
            for reg in rf_events.committed:
                reg_taint.pop(reg, None)
        if self._taint and (rf_events.declassified or sb_events.declassified):
            self.taint.declassify(
                rf_events.declassified + sb_events.declassified
            )
        if self._cycle_events is not None:
            self._cycle_events.committed += [f"r{r}" for r in rf_events.committed]
            self._cycle_events.squashed += [f"r{r}" for r in rf_events.squashed]
            self._cycle_events.committed += [f"sb{s}" for s in sb_events.committed]
            self._cycle_events.squashed += [f"sb{s}" for s in sb_events.squashed]
        if rf_events.detected_faults or sb_events.detected_faults:
            # The combinational end-of-cycle check catches every commit of a
            # buffered E flag before the tick can see it.
            raise AssertionError(
                "exception commit escaped the combinational check"
            )

    def _must_stall(self, bundle) -> bool:
        needs_buffer = self._bundle_store_ops[self.pc]
        return needs_buffer > 0 and (
            len(self.store_buffer) + needs_buffer
            > self.store_buffer.capacity
        )

    # ------------------------------------------------------------------
    # Observability.
    # ------------------------------------------------------------------
    def snapshot(self) -> MachineSnapshot:
        """The machine's current state, for abort diagnostics."""
        recent = tuple(
            IssuedBundle(
                cycle=cycle,
                pc=pc,
                ops=tuple(
                    format_instruction(op) for op in self.program.bundles[pc]
                ),
            )
            for cycle, pc in self._last_issued
        )
        return MachineSnapshot(
            cycle=self.cycle,
            pc=self.pc,
            mode=self.mode.value,
            rpc=self.rpc,
            epc=self.epc,
            shadow_occupancy=self.regfile.shadow_occupancy(),
            store_buffer_occupancy=len(self.store_buffer),
            in_flight=len(self._in_flight),
            last_bundles=recent,
        )

    def _region_label(self, region_index: int) -> str:
        return self.program.regions[region_index].label

    def _observe_cycle(self) -> None:
        """Attribute the cycle just charged to the region holding PC."""
        region_index = self._region_of_bundle[self.pc]
        if region_index != self._current_region:
            self._note_region_change(region_index)
        self.sink.count("machine.cycles")
        self.sink.count(f"region.cycles/{self._region_label(region_index)}")
        if self.mode is MachineMode.RECOVERY:
            self.sink.count("machine.recovery.cycles")

    def _note_region_change(self, region_index: int) -> None:
        if self.tracer is not None and self._current_region is not None:
            self.tracer.span(
                "region",
                self._region_label(self._current_region),
                self._region_entry_cycle,
                self.cycle,
            )
        self._current_region = region_index
        self._region_entry_cycle = self.cycle

    def _observe_issue(self, bundle) -> None:
        label = self._region_label(self._region_of_bundle[self.pc])
        self.sink.count("machine.bundles")
        self.sink.count("machine.ops.issued", len(bundle))
        self.sink.count(f"region.bundles/{label}")
        self.sink.count(f"region.ops/{label}", len(bundle))
        self.sink.observe("machine.issue_slots", len(bundle))
        provenance = self.program.provenance
        if provenance is not None:
            for origin in provenance[self.pc]:
                self.sink.count(f"block.ops/B{origin}")

    def _observe_op(
        self, op: Instruction, verdict: PredValue, squashed: bool
    ) -> None:
        if squashed:
            self.sink.count("machine.ops.squashed")
        elif verdict is PredValue.UNSPEC:
            self.sink.count("machine.ops.speculative")
        if self.tracer is not None:
            self.tracer.op(
                self.cycle,
                op.fu.value,
                op.opcode,
                duration=1 if squashed else op.latency,
                args={
                    "instr": format_instruction(op),
                    "pred": str(op.pred),
                    "verdict": "SQUASHED" if squashed else verdict.name,
                    "pc": self.pc,
                },
            )

    def _close_observation(self) -> None:
        """Flush open tracer spans at halt."""
        if self.tracer is None:
            return
        if self._current_region is not None:
            self.tracer.span(
                "region",
                self._region_label(self._current_region),
                self._region_entry_cycle,
                self.cycle + 1,
            )
            self._current_region = None
        if self._recovery_entry_cycle is not None:
            self.tracer.span(
                "mode",
                "recovery",
                self._recovery_entry_cycle,
                self.cycle + 1,
            )
            self._recovery_entry_cycle = None

    # ------------------------------------------------------------------
    # Forensics: flight recorder + committed-effect stream.
    #
    # Every call site guards with ``if self._forensics:`` so disabled
    # runs pay one boolean test, mirroring ``_observing``.  Architectural
    # effects are emitted exactly at the paper's commit points: regfile
    # tick commits, non-speculative write-backs, store-buffer retirement
    # and the halt-time drain.
    # ------------------------------------------------------------------
    def _region_name(self) -> str | None:
        if 0 <= self.pc < len(self._region_of_bundle):
            return self._region_label(self._region_of_bundle[self.pc])
        return None

    def _forensic_tick(self, rf_events, sb_events) -> None:
        region = self._region_name()
        cycle, pc = self.cycle, self.pc
        flight = self.flight
        effects = self.effects
        if flight.enabled:
            for reg in rf_events.squashed:
                flight.record(cycle, pc, region, "reg.squash", f"r{reg}")
            for serial in sb_events.committed:
                flight.record(cycle, pc, region, "sb.commit", f"entry {serial}")
            for serial in sb_events.squashed:
                flight.record(cycle, pc, region, "sb.squash", f"entry {serial}")
        for reg, value in rf_events.committed_values:
            if flight.enabled:
                flight.record(
                    cycle, pc, region, "reg.commit", f"r{reg} = {value}"
                )
            if effects is not None:
                effects.emit_reg(reg, value, cycle=cycle, pc=pc, region=region)
        for address, value in sb_events.retired_stores:
            if flight.enabled:
                flight.record(
                    cycle, pc, region, "sb.retire", f"mem[{address}] = {value}"
                )
            if effects is not None:
                effects.emit_mem(
                    address, value, cycle=cycle, pc=pc, region=region
                )
        for value in sb_events.retired_outputs:
            if flight.enabled:
                flight.record(cycle, pc, region, "sb.retire", f"out {value}")
            if effects is not None:
                effects.emit_out(value, cycle=cycle, pc=pc, region=region)

    def _forensic_issue(self, bundle) -> None:
        if not self.flight.enabled:
            return
        ops = "; ".join(format_instruction(op) for op in bundle)
        mode = "[recovery] " if self.mode is MachineMode.RECOVERY else ""
        self.flight.record(
            self.cycle, self.pc, self._region_name(), "issue", f"{mode}{ops}"
        )

    def _forensic_writeback(self, entry: _InFlight, *, shadow: bool) -> None:
        if entry.reg == self.regfile.zero_reg:
            return
        region = self._region_name()
        pred = None if entry.pred.is_always else str(entry.pred)
        if shadow:
            if self.flight.enabled:
                self.flight.record(
                    self.cycle,
                    self.pc,
                    region,
                    "reg.shadow",
                    f"r{entry.reg} = {entry.value}",
                    pred,
                )
            return
        if self.flight.enabled:
            self.flight.record(
                self.cycle,
                self.pc,
                region,
                "reg.write",
                f"r{entry.reg} = {entry.value}",
                pred,
            )
        if self.effects is not None:
            self.effects.emit_reg(
                entry.reg,
                entry.value,
                cycle=self.cycle,
                pc=self.pc,
                region=region,
                pred=pred,
            )

    def _forensic_fault(self, kind: str, fault: FaultRecord, pred=None) -> None:
        where = fault.address if fault.address is not None else "?"
        pred_text = None if pred is None or pred.is_always else str(pred)
        if self.flight.enabled:
            self.flight.record(
                self.cycle,
                self.pc,
                self._region_name(),
                kind,
                f"{fault.kind.value}@{where}",
                pred_text,
            )
        if kind == "fault.handled" and self.effects is not None:
            self.effects.emit_fault(
                fault.kind.value,
                fault.address if fault.address is not None else -1,
                cycle=self.cycle,
                pc=self.pc,
                region=self._region_name(),
                pred=pred_text,
            )

    # ------------------------------------------------------------------
    # Issue.
    # ------------------------------------------------------------------
    def _issue_and_finish(self, bundle) -> bool:
        """Issue *bundle*, run end-of-cycle steps; returns True on halt."""
        self.bundles_issued += 1
        self.issued_ops += len(bundle)
        self._last_issued.append((self.cycle, self.pc))
        if self._observing:
            self._observe_issue(bundle)
        if self._forensics:
            self._forensic_issue(bundle)
        in_recovery = self.mode is MachineMode.RECOVERY
        pending_ccr: list[tuple[int, bool]] = []
        pending_transfer: str | None = None
        halted = False

        for op in bundle:
            verdict = self._verdict(op)
            if in_recovery and verdict is not PredValue.UNSPEC:
                # Recovery squashes everything the current condition decides.
                self.squashed_ops += 1
                if self._observing:
                    self._observe_op(op, verdict, squashed=True)
                continue
            if verdict is PredValue.FALSE:
                self.squashed_ops += 1
                if self._observing:
                    self._observe_op(op, verdict, squashed=True)
                continue
            if verdict is PredValue.UNSPEC:
                self.speculative_ops += 1
            if self._observing:
                self._observe_op(op, verdict, squashed=False)
            result = self._execute(op, verdict)
            if result is not None:
                kind, payload = result
                if kind == "ccr":
                    pending_ccr.append(payload)
                elif kind == "transfer":
                    if pending_transfer is not None:
                        raise ScheduleViolation(
                            "two taken transfers in one bundle"
                        )
                    pending_transfer = payload
                elif kind == "halt":
                    halted = True

        # ---- end of cycle -------------------------------------------------
        # Cloning (and copying back) the CCR is only needed on cycles
        # with condition-set results; on quiet cycles the live register
        # doubles as its own next state, keeping its evaluation memo warm.
        if pending_ccr:
            ccr_next = self.ccr.clone()
            for index, value in pending_ccr:
                ccr_next.set(index, value)
                if self._cycle_events is not None:
                    self._cycle_events.ccr_sets.append((index, value))
                if self._observing:
                    self.sink.count("machine.ccr_sets")
                    if self.tracer is not None:
                        self.tracer.instant(
                            self.cycle, "ccr", f"c{index}={int(value)}"
                        )
                if self._forensics and self.flight.enabled:
                    self.flight.record(
                        self.cycle,
                        self.pc,
                        self._region_name(),
                        "ccr.write",
                        f"c{index} = {int(value)}",
                    )
        else:
            ccr_next = self.ccr

        if self.mode is MachineMode.NORMAL and self._exception_commits(ccr_next):
            # The future CCR must be a private instance even when no
            # condition was set this cycle (CCR-corruption injection can
            # commit an E flag under the *unchanged* register).
            if ccr_next is self.ccr:
                ccr_next = self.ccr.clone()
            self._enter_recovery(ccr_next)
            return False

        if ccr_next is not self.ccr:
            self.ccr.copy_from(ccr_next)
        self._apply_due_writebacks(self.ccr)

        if self.mode is MachineMode.RECOVERY and self.pc == self.epc:
            self._finish_recovery()
            return False

        if halted:
            return True

        if pending_transfer is not None:
            self._transfer(pending_transfer)
        else:
            self.pc += 1
        return False

    def _verdict(self, op: Instruction) -> PredValue:
        verdict = self.control_path.evaluate(op)
        if verdict is PredValue.UNSPEC and op.is_cond_set:
            raise ScheduleViolation(
                f"condition-set issued with unspecified predicate: {op}"
            )
        return verdict

    def _execute(
        self, op: Instruction, verdict: PredValue
    ) -> tuple[str, object] | None:
        """Execute one op; returns a deferred end-of-cycle action."""
        opcode = op.opcode
        if opcode == "nop":
            return None
        if opcode == "halt":
            return ("halt", None)
        if opcode == "jmp":
            return ("transfer", op.target)
        if opcode in ("br", "brf"):
            condition = self.ccr.get(op.src_cregs[0])
            if condition is None:
                raise ScheduleViolation(f"branch on unspecified condition: {op}")
            taken = condition if opcode == "br" else not condition
            return ("transfer", op.target) if taken else None

        speculative = verdict is PredValue.UNSPEC
        if opcode == "ld":
            return self._execute_load(op, speculative)
        if opcode == "st":
            self._execute_store(op, speculative)
            return None
        if opcode == "out":
            value = self._read_src(op, 0)
            taint = None
            if self._taint:
                taint = self._sink_taint(
                    op,
                    self._src_taint(op, 0),
                    speculative,
                    "output",
                    f"out {value}",
                )
            serial = self.store_buffer.append(
                None, value, op.pred, speculative=speculative, taint=taint
            )
            if self._forensics and self.flight.enabled:
                self.flight.record(
                    self.cycle,
                    self.pc,
                    self._region_name(),
                    "sb.insert",
                    f"entry {serial}: out {value}",
                    str(op.pred) if speculative else None,
                )
            return None
        if op.is_cond_set:
            values = self._source_values(op)
            if self._taint:
                taint = self._operand_taint(op)
                if taint is not None:
                    # Propagation, not (by default) a leak: compiled
                    # condition-sets are re-predicated ``alw`` yet keep
                    # their home path, so they legitimately read shadow
                    # state of unresolved speculative loads.
                    self.taint.ccr_write(
                        op.dest_creg,
                        taint,
                        self.cycle,
                        self.pc,
                        self._region_name(),
                    )
            return ("ccr", (op.dest_creg, eval_cond(opcode, *values)))

        # Plain ALU operation.
        values = self._source_values(op)
        try:
            value = eval_alu(opcode, *values)
        except ArithmeticFault as error:
            self._handle_fault(
                op,
                speculative,
                FaultRecord(
                    kind=FaultKind.ARITHMETIC,
                    instruction_uid=op.uid,
                    detail=str(error),
                ),
                retry=lambda: eval_alu(opcode, *self._source_values(op)),
            )
            return None
        self._schedule_writeback(
            op,
            value,
            speculative,
            taint=self._operand_taint(op) if self._taint else None,
        )
        return None

    def _execute_load(
        self, op: Instruction, speculative: bool
    ) -> None:
        address = effective_address(self._read_src(op, 0), op.imm or 0)
        reader_pred = op.pred if speculative else ALWAYS
        forwarded = self.store_buffer.lookup(address, reader_pred)
        if self._forensics and self.flight.enabled:
            outcome = "miss" if forwarded is None else f"hit {forwarded}"
            self.flight.record(
                self.cycle,
                self.pc,
                self._region_name(),
                "sb.lookup",
                f"mem[{address}] {outcome}",
                str(op.pred) if speculative else None,
            )
        if forwarded is not None:
            self._schedule_writeback(
                op,
                forwarded,
                speculative,
                taint=(
                    self._load_taint(op, address, reader_pred, speculative)
                    if self._taint
                    else None
                ),
            )
            return None
        try:
            value = self.memory.load(address)
        except MemoryFault as error:
            self._handle_fault(
                op,
                speculative,
                FaultRecord(
                    kind=FaultKind.MEMORY,
                    instruction_uid=op.uid,
                    address=error.address,
                    detail=str(error),
                ),
                retry=lambda: self.memory.load(address),
            )
            return None
        self._schedule_writeback(
            op,
            value,
            speculative,
            taint=(
                self._load_taint(op, address, reader_pred, speculative)
                if self._taint
                else None
            ),
        )
        return None

    def _execute_store(self, op: Instruction, speculative: bool) -> None:
        value = self._read_src(op, 0)
        address = effective_address(self._read_src(op, 1), op.imm or 0)
        fault: FaultRecord | None = None
        if not self.memory.is_valid(address):
            fault = FaultRecord(
                kind=FaultKind.MEMORY,
                instruction_uid=op.uid,
                address=address,
                detail=f"store to invalid address {address}",
            )
            if not speculative:
                self._handle_nonspeculative_fault(op, fault)
                # The handler repaired state; the store proceeds.
                fault = None
            else:
                decision = self._future_verdict(op)
                if decision is PredValue.TRUE:
                    self._handle_nonspeculative_fault(op, fault)
                    fault = None
                elif decision is PredValue.FALSE:
                    fault = None
        if fault is not None:
            self._maybe_fault = True
            if self._forensics:
                self._forensic_fault("fault.buffer", fault, op.pred)
        taint = None
        if self._taint:
            taint = merge_taint(
                self._src_taint(op, 0),
                rekind_address(self._src_taint(op, 1)),
            )
            taint = self._sink_taint(
                op, taint, speculative, "memory", f"mem[{address}] = {value}"
            )
            if taint is not None and not speculative:
                tracker = self.taint
                tracker.mem_taint[address] = merge_taint(
                    tracker.mem_taint.get(address), taint
                )
        serial = self.store_buffer.append(
            address,
            value,
            op.pred,
            speculative=speculative,
            fault=fault,
            taint=taint,
        )
        if self._forensics and self.flight.enabled:
            self.flight.record(
                self.cycle,
                self.pc,
                self._region_name(),
                "sb.insert",
                f"entry {serial}: mem[{address}] = {value}",
                str(op.pred) if speculative else None,
            )
        if self._cycle_events is not None and speculative:
            self._cycle_events.speculative_writes.append(
                (f"sb{serial}", str(op.pred))
            )

    # ------------------------------------------------------------------
    # Faults.
    # ------------------------------------------------------------------
    def _handle_fault(
        self,
        op: Instruction,
        speculative: bool,
        fault: FaultRecord,
        retry: Callable[[], int],
    ) -> None:
        """Route a fault: trap now (non-speculative) or buffer the E flag.

        In recovery mode a speculative fault is decided against the future
        condition (Section 3.5): TRUE handles it now (the handler repairs
        state and the access retries), FALSE squashes it, UNSPEC buffers
        the E flag again.
        """
        if not speculative:
            self._handle_nonspeculative_fault(op, fault)
            value = retry()  # the handler repaired state; must now succeed
            self._schedule_writeback(op, value, speculative=False)
            return
        decision = self._future_verdict(op)
        if decision is PredValue.TRUE:
            self._handle_nonspeculative_fault(op, fault)
            value = retry()
            self._schedule_writeback(op, value, speculative=True)
        elif decision is PredValue.FALSE:
            self._schedule_writeback(op, 0, speculative=True)
        else:
            if self._forensics:
                self._forensic_fault("fault.buffer", fault, op.pred)
            self._schedule_writeback(op, 0, speculative=True, fault=fault)

    def _future_verdict(self, op: Instruction) -> PredValue:
        """Decide *op*'s fault fate: UNSPEC outside recovery (buffer it)."""
        if self.mode is MachineMode.NORMAL or self.future_ccr is None:
            return PredValue.UNSPEC
        return self.future_ccr.evaluate(op.pred)

    def _handle_nonspeculative_fault(
        self, op: Instruction, fault: FaultRecord
    ) -> None:
        if self.fault_handler is None or not self.fault_handler(fault, self):
            if self._forensics:
                self._forensic_fault("fault.unhandled", fault, op.pred)
            raise UnhandledFault(fault)
        self.handled_faults += 1
        if self._observing:
            self.sink.count("machine.faults.handled")
        if self._forensics:
            self._forensic_fault("fault.handled", fault, op.pred)

    # ------------------------------------------------------------------
    # Operand access and writeback.
    # ------------------------------------------------------------------
    def _read_src(self, op: Instruction, source_number: int) -> int:
        positions = op.source_positions
        position = positions[source_number]
        reg = op.src_regs[source_number]
        return self.regfile.read(
            reg, shadow=position in op.shadow, reader_pred=op.pred
        )

    def _source_values(self, op: Instruction) -> list[int]:
        values = [
            self._read_src(op, number) for number in range(len(op.src_regs))
        ]
        if op.imm is not None:
            values.append(op.imm)
        return values

    # ------------------------------------------------------------------
    # Taint flow.  Every call site is guarded by the cached ``_taint``
    # boolean (the NULL_SINK zero-cost convention), so a taint-off run
    # pays one branch per site and none of these methods execute.
    # ------------------------------------------------------------------
    def _src_taint(
        self, op: Instruction, source_number: int
    ) -> frozenset[TaintTag] | None:
        """The taint the matching :meth:`_read_src` observed: a shadow
        hit's buffered taint, else the sequential register's tracker
        taint."""
        positions = op.source_positions
        reg = op.src_regs[source_number]
        if positions[source_number] in op.shadow:
            hit, taint = self.regfile.shadow_taint(reg, op.pred)
            if hit:
                return taint
        return self.taint.reg_taint.get(reg)

    def _operand_taint(self, op: Instruction) -> frozenset[TaintTag] | None:
        taint: frozenset[TaintTag] | None = None
        for number in range(len(op.src_regs)):
            taint = merge_taint(taint, self._src_taint(op, number))
        return taint

    def _load_taint(
        self,
        op: Instruction,
        address: int,
        reader_pred: Predicate,
        speculative: bool,
    ) -> frozenset[TaintTag] | None:
        """Value taint of a load: the forwarded entry's (or committed
        memory's) taint, plus the address operand's taint re-kinded
        ``address``, plus -- for an UNSPEC load -- a fresh source tag
        (this is the E-flag moment the threat model keys on)."""
        hit, taint = self.store_buffer.lookup_taint(address, reader_pred)
        if not hit:
            taint = self.taint.mem_taint.get(address)
        taint = merge_taint(taint, rekind_address(self._src_taint(op, 0)))
        if speculative:
            taint = merge_taint(
                taint,
                self.taint.source(
                    self.cycle, self.pc, self._region_name(), address
                ),
            )
        return taint

    def _sink_taint(
        self,
        op: Instruction,
        taint: frozenset[TaintTag] | None,
        speculative: bool,
        kind: str,
        detail: str,
    ) -> frozenset[TaintTag] | None:
        """Police tainted data entering a committed sink (store/out).

        Speculative inserts keep their taint buffered (commit
        declassifies, squash discards).  A non-speculative insert of
        tainted data under the ``alw`` predicate is the leak the
        subsystem exists to catch: unconfirmed speculative data bound
        for architectural state.  A *predicated* op whose verdict was
        already TRUE at issue is architecturally confirmed -- compiled
        code reads shadow state this way routinely -- so it declassifies
        instead.
        """
        if taint is None or speculative:
            return taint
        if op.pred.is_always:
            self.taint.leak(
                kind, self.cycle, self.pc, self._region_name(), detail, taint
            )
            return taint
        self.taint.declassify()
        return None

    def _commit_taint(self, entry: _InFlight) -> None:
        """An in-flight result just TRUE-committed to sequential state."""
        tracker = self.taint
        if entry.taint is None:
            tracker.reg_taint.pop(entry.reg, None)
        elif entry.pred.is_always:
            # An always-predicate consumer committed data that depends
            # on a still-unconfirmed speculative load.  Compiled code is
            # clean by construction here (the dependence graph forces
            # ``alw`` consumers onto committed sequential state), so
            # this fires only for hand-scheduled gadgets.
            tracker.leak(
                "register",
                self.cycle,
                self.pc,
                self._region_name(),
                f"r{entry.reg} = {entry.value}",
                entry.taint,
            )
            tracker.reg_taint[entry.reg] = entry.taint
        else:
            # The entry's own predicate resolved TRUE: architecturally
            # confirmed, so the value equals sequential execution's.
            tracker.declassify()
            tracker.reg_taint.pop(entry.reg, None)

    def _schedule_writeback(
        self,
        op: Instruction,
        value: int,
        speculative: bool,
        fault: FaultRecord | None = None,
        taint: frozenset[TaintTag] | None = None,
    ) -> None:
        dest = op.dest_reg
        if dest is None:
            return
        if fault is not None:
            self._maybe_fault = True
        if taint is not None and not speculative and not op.pred.is_always:
            # A predicated op whose verdict was TRUE at issue flies with
            # the ALWAYS predicate below, which would defeat the
            # is_always leak test at commit -- declassify here instead
            # (the op's own speculation is already confirmed).
            self.taint.declassify()
            taint = None
        pred = op.pred if speculative else ALWAYS
        self._in_flight.append(
            _InFlight(
                due_cycle=self.cycle + op.latency - 1,
                reg=dest,
                value=value,
                pred=pred,
                fault=fault,
                taint=taint,
            )
        )

    def _apply_due_writebacks(self, ccr: CCR) -> None:
        still_flying: list[_InFlight] = []
        for entry in self._in_flight:
            if entry.due_cycle > self.cycle:
                still_flying.append(entry)
                continue
            verdict = ccr.evaluate(entry.pred)
            if verdict is PredValue.TRUE:
                if entry.fault is not None:
                    # Unreachable: _exception_commits scans in-flight
                    # faults before any CCR update can make them TRUE.
                    raise AssertionError(
                        "exception commit escaped the combinational check"
                    )
                self.regfile.supersede_pending(entry.reg, ccr)
                self.regfile.write_sequential(entry.reg, entry.value)
                if self._taint:
                    self._commit_taint(entry)
                if self._cycle_events is not None:
                    self._cycle_events.sequential_writes.append(entry.reg)
                if self._forensics:
                    self._forensic_writeback(entry, shadow=False)
            elif verdict is PredValue.UNSPEC:
                self.regfile.write_speculative(
                    entry.reg,
                    entry.value,
                    entry.pred,
                    fault=entry.fault,
                    taint=entry.taint,
                )
                if self._cycle_events is not None:
                    self._cycle_events.speculative_writes.append(
                        (f"r{entry.reg}", str(entry.pred))
                    )
                if self._forensics:
                    self._forensic_writeback(entry, shadow=True)
            # FALSE: discarded.
        self._in_flight = still_flying

    def _flush_in_flight(self) -> None:
        """Complete TRUE-under-current in-flight results; drop the rest."""
        for entry in self._in_flight:
            if entry.fault is None and (
                self.ccr.evaluate(entry.pred) is PredValue.TRUE
            ):
                self.regfile.supersede_pending(entry.reg, self.ccr)
                self.regfile.write_sequential(entry.reg, entry.value)
                if self._taint:
                    self._commit_taint(entry)
                if self._forensics:
                    self._forensic_writeback(entry, shadow=False)
        self._in_flight = []

    # ------------------------------------------------------------------
    # Exception commit and recovery.
    # ------------------------------------------------------------------
    def _exception_commits(self, ccr_next: CCR) -> bool:
        """Would updating the CCR commit any buffered E flag?

        Guarded by ``_maybe_fault``: the flag is raised whenever the
        machine buffers an E flag (or the fault injector plants one) and
        lowered again by a full scan that finds no buffered fault left,
        so fault-free execution pays one boolean test per cycle.
        """
        if not self._maybe_fault:
            return False
        fault_seen = False
        for flying in self._in_flight:
            if flying.fault is not None:
                fault_seen = True
                if ccr_next.evaluate(flying.pred) is PredValue.TRUE:
                    return True
        for entry in self.regfile.entries:
            for write in entry.pending:
                if write.fault is not None:
                    fault_seen = True
                    if ccr_next.evaluate(write.pred) is PredValue.TRUE:
                        return True
        for entry in self.store_buffer.pending_entries():
            if (
                entry.valid
                and entry.speculative
                and entry.fault is not None
            ):
                fault_seen = True
                if ccr_next.evaluate(entry.pred) is PredValue.TRUE:
                    return True
        if not fault_seen:
            self._maybe_fault = False
        return False

    def _enter_recovery(self, ccr_next: CCR) -> None:
        """Suppress the CCR update and roll back to the region top."""
        self.recoveries += 1
        if self._observing:
            self.sink.count("machine.recovery.entries")
            self._recovery_entry_cycle = self.cycle
        self.future_ccr = ccr_next
        self._flush_in_flight()
        self.regfile.invalidate_speculative()
        self.store_buffer.invalidate_speculative()
        self.epc = self.pc
        self.pc = self.rpc
        self.mode = MachineMode.RECOVERY
        if self._forensics and self.flight.enabled:
            self.flight.record(
                self.cycle,
                self.pc,
                self._region_name(),
                "recovery.enter",
                f"rollback to rpc={self.rpc}, epc={self.epc}",
            )

    def _finish_recovery(self) -> None:
        assert self.future_ccr is not None
        if self._observing and self._recovery_entry_cycle is not None:
            if self.tracer is not None:
                self.tracer.span(
                    "mode",
                    "recovery",
                    self._recovery_entry_cycle,
                    self.cycle + 1,
                )
            self._recovery_entry_cycle = None
        self._apply_due_writebacks(self.ccr)
        self.ccr.copy_from(self.future_ccr)
        self.future_ccr = None
        self.mode = MachineMode.NORMAL
        self.pc = self.epc + 1
        self.epc = None
        if self._forensics and self.flight.enabled:
            self.flight.record(
                self.cycle,
                self.pc,
                self._region_name(),
                "recovery.exit",
                f"resume at pc={self.pc}",
            )

    # ------------------------------------------------------------------
    # Transfers and halt.
    # ------------------------------------------------------------------
    def _transfer(self, target: str) -> None:
        destination = self.program.resolve(target)
        self._flush_in_flight()
        if self._forensics and self.flight.enabled:
            kind = (
                "region" if destination in self._region_starts else "local"
            )
            self.flight.record(
                self.cycle,
                self.pc,
                self._region_name(),
                "transfer",
                f"{kind} -> {target} (pc={destination})",
            )
        if destination in self._region_starts:
            # Region transfer: speculative state is closed in the region --
            # anything still pending belongs to an untaken path.
            self.regfile.invalidate_speculative()
            self.store_buffer.invalidate_speculative()
            self.ccr.reset()
            if self._taint:
                # The CCR reset discards the conditions; their taint
                # goes with them.
                self.taint.clear_ccr()
            self.rpc = destination
        if self._btb is not None and not self._btb.access(self.pc):
            penalty = self.config.taken_penalty_indirect
        else:
            penalty = self.config.taken_penalty_btb
        self.cycle += penalty
        if self._observing and penalty:
            # Boundary convention: transfer-penalty cycles are charged to
            # the *departing* region (PC still points at the source here).
            self.sink.count("machine.cycles", penalty)
            self.sink.count("machine.transfer_penalty_cycles", penalty)
            self.sink.count(
                f"region.cycles/"
                f"{self._region_label(self._region_of_bundle[self.pc])}",
                penalty,
            )
        self.pc = destination

    def _drain_at_halt(self) -> None:
        self._flush_in_flight()
        rf_events = self.regfile.tick(self.ccr)
        sb_events = self.store_buffer.tick(self.ccr, self.memory, self.output)
        if self._forensics:
            self._forensic_tick(rf_events, sb_events)
        self.regfile.invalidate_speculative()
        self.store_buffer.invalidate_speculative()
        drained = self.store_buffer.drain(self.memory, self.output)
        if self._forensics:
            self._forensic_tick(CommitEvents(), drained)
            if self.flight.enabled:
                self.flight.record(
                    self.cycle,
                    self.pc,
                    self._region_name(),
                    "halt",
                    "store buffer drained",
                )
