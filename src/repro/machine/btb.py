"""Branch target buffer model.

The paper's Section 4 assumption: "The latency of branch instructions is
assumed to be reduced using a branch target buffer (BTB). [...] We
optimistically assume the branches which are predictable using BTB impose
no penalty while other branches such as register indirect jumps impose a
one-cycle penalty. This optimistic assumption increases the evaluated
performance a few percent according to our cycle-by-cycle simulation."

Three BTB fidelities are therefore available through
:class:`~repro.machine.config.MachineConfig`:

* ``btb_entries=None`` (default) -- the paper's optimistic model: every
  direct taken transfer is free;
* ``btb_entries=N`` -- this module: a direct-mapped N-entry buffer; a
  taken transfer whose slot does not hold its own tag pays the one-cycle
  redirect and installs itself (steady-state loops hit; the cost is the
  compulsory/conflict misses, which is the paper's "few percent");
* ``taken_penalty_btb=1`` -- fully pessimistic: every taken transfer pays.

Both the cycle-level machine and the trace-driven analytic counter use
the same model, keyed by the identity of the transferring control point.
"""

from __future__ import annotations

from collections.abc import Hashable

from repro.obs.metrics import NULL_SINK, MetricsSink


class BranchTargetBuffer:
    """A direct-mapped BTB over abstract control-point keys."""

    def __init__(self, entries: int, *, sink: MetricsSink = NULL_SINK):
        if entries < 1:
            raise ValueError("BTB needs at least one entry")
        self.entries = entries
        self.sink = sink
        self._slots: list[Hashable | None] = [None] * entries
        self.hits = 0
        self.misses = 0

    def access(self, key: Hashable) -> bool:
        """Look up *key*; install on miss.  Returns True on a hit."""
        slot = hash(key) % self.entries
        if self._slots[slot] == key:
            self.hits += 1
            if self.sink.enabled:
                self.sink.count("btb.hits")
            return True
        self._slots[slot] = key
        self.misses += 1
        if self.sink.enabled:
            self.sink.count("btb.misses")
        return False

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 1.0

    def to_counters(self) -> dict[str, int]:
        """The resolved statistics, in sink counter naming."""
        return {"btb.hits": self.hits, "btb.misses": self.misses}

    # ------------------------------------------------------------------
    # Checkpoint state extraction (JSON-native).
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Slot tags plus statistics (machine keys are bundle indices)."""
        return {
            "slots": list(self._slots),
            "hits": self.hits,
            "misses": self.misses,
        }

    def load_state(self, state: dict) -> None:
        """Restore contents captured by :meth:`state_dict`."""
        slots = state["slots"]
        if len(slots) != self.entries:
            raise ValueError(
                f"BTB size mismatch: snapshot has {len(slots)} slots, "
                f"buffer has {self.entries}"
            )
        self._slots = list(slots)
        self.hits = state["hits"]
        self.misses = state["misses"]
