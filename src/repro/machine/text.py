"""Textual VLIW programs: parse the listing :meth:`VLIWProgram.format` emits.

The compilers build :class:`VLIWProgram` objects directly; this module
exists for the *hand-scheduled* path -- security gadgets, fuzz campaign
programs, and shrunk leak cases are stored as plain text so they are
readable in a finding file and line-deletable by ddmin.  The grammar is
exactly the ``format()`` listing::

    entry:
       0: addi r1, r0, 20
       1: [c0] ld r2, r1, 100 ; clti c0, r1, 16
       2: nop
       3: out r4

* ``label:`` lines attach to the next bundle;
* a bundle line is ops joined by `` ; `` with an optional ``NNNN:``
  index prefix (ignored -- bundles are re-indexed sequentially);
* a bare ``nop`` bundle is an empty issue slot;
* ``#`` starts a comment.

Parsed programs are a single region covering every bundle (the paper's
hand-scheduled examples are single-region too); an ``entry`` label is
injected at bundle 0 when the text defines none there.  Branch targets
may point anywhere inside the region -- the machine treats non-region
targets as local transfers.
"""

from __future__ import annotations

import re

from repro.isa.parser import ParseError, parse_instruction
from repro.machine.program import Bundle, RegionSpan, VLIWProgram

_LABEL_LINE_RE = re.compile(r"^([A-Za-z_.$][A-Za-z0-9_.$]*):$")
_INDEX_PREFIX_RE = re.compile(r"^\d+:\s*")


def parse_vliw(text: str, name: str = "vliw") -> VLIWProgram:
    """Parse a ``format()``-style listing into a validated program."""
    bundles: list[Bundle] = []
    labels: dict[str, int] = {}

    for line_number, raw_line in enumerate(text.splitlines(), start=1):
        comment = raw_line.find("#")
        line = (raw_line if comment < 0 else raw_line[:comment]).strip()
        if not line:
            continue
        label = _LABEL_LINE_RE.match(line)
        if label:
            head = label.group(1)
            if head in labels:
                raise ParseError(f"duplicate label {head!r}", line_number)
            labels[head] = len(bundles)
            continue
        line = _INDEX_PREFIX_RE.sub("", line)
        if line == "nop":
            bundles.append(Bundle())
            continue
        try:
            ops = tuple(
                parse_instruction(part)
                for part in line.split(" ; ")
                if part.strip()
            )
        except ParseError as error:
            raise ParseError(str(error), line_number) from error
        bundles.append(Bundle(ops=ops))

    if not bundles:
        raise ParseError("program has no bundles")
    entry = next(
        (label for label, index in labels.items() if index == 0), None
    )
    if entry is None:
        entry = "entry"
        if entry in labels:
            raise ParseError(
                "label 'entry' does not point at bundle 0; "
                "give bundle 0 an explicit label"
            )
        labels[entry] = 0
    program = VLIWProgram(
        bundles=bundles,
        labels=labels,
        regions=[RegionSpan(label=entry, start=0, end=len(bundles))],
        name=name,
    )
    program.validate()
    return program
