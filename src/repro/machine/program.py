"""The VLIW program form.

A :class:`VLIWProgram` is a sequence of :class:`Bundle`\\ s (one per issue
cycle) partitioned into *regions*.  Regions are contiguous bundle ranges;
every region entry is a labelled bundle, every dynamic path through a
region leaves via an explicitly predicated jump (the schedulers guarantee
this), and the machine resets the CCR and records the RPC on each transfer.

The form is deliberately explicit about region boundaries because the
paper's execution model keys hardware actions to them: CCR reset,
speculative-state closure, and the RPC roll-back point.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.instruction import Instruction
from repro.isa.printer import format_instruction


@dataclass(frozen=True, slots=True)
class Bundle:
    """Operations issued together in one cycle."""

    ops: tuple[Instruction, ...] = ()

    def __iter__(self):
        return iter(self.ops)

    def __len__(self) -> int:
        return len(self.ops)


@dataclass
class RegionSpan:
    """One region's bundle range [start, end) and entry label."""

    label: str
    start: int
    end: int


@dataclass
class VLIWProgram:
    """A scheduled predicating program."""

    bundles: list[Bundle] = field(default_factory=list)
    labels: dict[str, int] = field(default_factory=dict)
    regions: list[RegionSpan] = field(default_factory=list)
    name: str = "vliw"
    # Optional scheduler provenance: for each bundle, the original CFG
    # block id each op was scheduled out of (parallel to ``bundles``).
    # Hand-written programs leave it None; the code emitter fills it so
    # the observability layer can attribute issued ops to source blocks.
    provenance: list[tuple[int, ...]] | None = None

    def resolve(self, label: str) -> int:
        return self.labels[label]

    def region_starts(self) -> set[int]:
        return {span.start for span in self.regions}

    def region_end_of(self, start: int) -> int:
        for span in self.regions:
            if span.start == start:
                return span.end
        raise KeyError(f"no region starts at bundle {start}")

    def validate(self) -> None:
        """Structural checks the schedulers must satisfy."""
        for label, index in self.labels.items():
            if not 0 <= index < len(self.bundles):
                raise ValueError(f"label {label!r} out of range: {index}")
        covered: set[int] = set()
        for span in self.regions:
            if span.label not in self.labels or self.labels[span.label] != span.start:
                raise ValueError(f"region {span.label!r} label/start mismatch")
            if not 0 <= span.start < span.end <= len(self.bundles):
                raise ValueError(f"region {span.label!r} bad span")
            overlap = covered & set(range(span.start, span.end))
            if overlap:
                raise ValueError(f"region {span.label!r} overlaps bundles {overlap}")
            covered |= set(range(span.start, span.end))
        if covered != set(range(len(self.bundles))):
            raise ValueError("regions do not cover the whole program")
        for bundle in self.bundles:
            for op in bundle:
                target = op.target
                if target is not None and target not in self.labels:
                    raise ValueError(f"undefined bundle target {target!r}")
        if self.provenance is not None:
            if len(self.provenance) != len(self.bundles):
                raise ValueError("provenance does not cover every bundle")
            for index, origins in enumerate(self.provenance):
                if len(origins) != len(self.bundles[index]):
                    raise ValueError(
                        f"bundle {index}: provenance/op count mismatch"
                    )

    def total_slots(self) -> int:
        return sum(len(bundle) for bundle in self.bundles)

    def format(self) -> str:
        """Human-readable listing (one bundle per line)."""
        start_labels: dict[int, list[str]] = {}
        for label, index in self.labels.items():
            start_labels.setdefault(index, []).append(label)
        lines = []
        for index, bundle in enumerate(self.bundles):
            for label in start_labels.get(index, []):
                lines.append(f"{label}:")
            ops = " ; ".join(format_instruction(op) for op in bundle) or "nop"
            lines.append(f"  {index:4d}: {ops}")
        return "\n".join(lines) + "\n"
