"""Parallel, cached experiment runner.

The evaluation decomposes into *cells*: independent (workload, policy,
machine-config) measurements -- a speedup, a static-expansion ratio, a
prediction-accuracy vector, a hardware-cost report.  A
:class:`CellSpec` names one such measurement declaratively, so it can be

* **hashed** -- :func:`cell_cache_key` derives a content key from the
  workload's program text, its train/eval seeds, the resolved policy
  fields, the machine configuration and the cell kind, backing a durable
  on-disk cache (any change to any ingredient is a miss);
* **shipped** -- specs are plain frozen dataclasses, so cache misses fan
  out over a :class:`concurrent.futures.ProcessPoolExecutor`; and
* **merged deterministically** -- results come back in spec order
  regardless of which worker finished first, so a ``--jobs 4`` run
  produces byte-identical artifacts to a serial one.

:class:`ExperimentContext` (shared by every driver in
:mod:`repro.eval.experiments`) owns the workload set, the in-process
scalar-baseline cache, and a :class:`CellRunner` carrying the
parallelism/caching knobs plus hit/miss and per-cell wall-time
telemetry.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import os
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

from repro.analysis.branch_prediction import StaticPredictor, successive_accuracy
from repro.ckpt.engine import (
    CheckpointWriter,
    latest_snapshot,
    run_vliw as run_vliw_checkpointed,
)
from repro.ckpt.journal import Journal
from repro.ckpt.signals import SignalSupervisor
from repro.ckpt.state import CheckpointError, restore_vliw
from repro.compiler.models import MODELS, REGION_PRED
from repro.compiler.pipeline import compile_program
from repro.compiler.policy import ModelPolicy
from repro.eval import hwcost as hwcost_model
from repro.ir.cfg import CFG, build_cfg
from repro.isa.printer import format_program
from repro.machine.config import MachineConfig
from repro.machine.scalar import ScalarRun, run_scalar
from repro.machine.vliw import VLIWMachine
from repro.obs.metrics import NULL_SINK, MetricsSink
from repro.obs.runlog import NULL_RUN_LOG, RunLog
from repro.serve.backoff import backoff_delay
from repro.workloads import Workload, all_workloads

#: Bump to invalidate every cached cell (evaluator semantics changed).
#: v2: speedup cells additionally carry finite-BTB hit/miss statistics.
CACHE_VERSION = 2


# ----------------------------------------------------------------------
# Cell specification.
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class CellSpec:
    """One independent measurement of the evaluation.

    Kinds:

    * ``baseline`` -- scalar cycles / static size of a workload;
    * ``accuracy`` -- Table 3 successive-branch prediction accuracy
      (``extras``: ``max_run``);
    * ``speedup`` -- speedup of ``model``/``policy`` over the scalar
      baseline on ``config`` (optionally validated on the VLIW machine);
    * ``compile_stats`` -- analytic speedup plus static code expansion;
    * ``profile`` -- region predicating with a cross- or self-trained
      predictor (``extras``: ``mode``);
    * ``unroll`` -- region predicating after loop unrolling
      (``extras``: ``factor``);
    * ``hwcost`` -- the Section 4.2.1 transistor/gate-delay report
      (``extras``: optional ``params``).
    """

    kind: str
    workload: str | None = None
    model: str | None = None
    policy: ModelPolicy | None = None
    config: MachineConfig | None = None
    run_machine: bool = False
    extras: tuple[tuple[str, object], ...] = ()

    def extra(self, key: str, default=None):
        return dict(self.extras).get(key, default)

    def resolved_policy(self) -> ModelPolicy | None:
        if self.policy is not None:
            return self.policy
        if self.model is not None:
            return MODELS[self.model]
        return None

    def label(self) -> str:
        """Short human-readable identity for telemetry lines."""
        parts = [self.kind]
        if self.workload:
            parts.append(self.workload)
        policy = self.resolved_policy()
        if policy is not None:
            parts.append(policy.name)
        parts.extend(f"{k}={v}" for k, v in self.extras)
        return "/".join(str(p) for p in parts)


def _canonical(obj):
    """Reduce dataclasses/enums/tuples to stable JSON-ready structures."""
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            f.name: _canonical(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
        }
    if isinstance(obj, enum.Enum):
        return obj.value
    if isinstance(obj, dict):
        return {str(k): _canonical(v) for k, v in sorted(obj.items())}
    if isinstance(obj, (list, tuple)):
        return [_canonical(item) for item in obj]
    return obj


def cell_cache_key(spec: CellSpec, workload: Workload | None) -> str:
    """Content hash identifying a cell's result.

    Covers everything the measurement depends on: the program *text* (not
    just the workload name), the train/eval seeds (memory contents derive
    from them), every field of the resolved policy and machine config,
    the cell kind with its extras, and a cache version for evaluator
    changes.  Changing any ingredient changes the key.
    """
    payload = {
        "version": CACHE_VERSION,
        "kind": spec.kind,
        "run_machine": spec.run_machine,
        "policy": _canonical(spec.resolved_policy()),
        "config": _canonical(spec.config),
        "extras": _canonical(dict(spec.extras)),
    }
    if workload is not None:
        payload["workload"] = workload.name
        payload["program"] = format_program(workload.program)
        payload["train_seed"] = workload.train_seed
        payload["eval_seed"] = workload.eval_seed
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
# Baselines and the shared context.
# ----------------------------------------------------------------------
@dataclass
class WorkloadBaseline:
    """Cached scalar behaviour of one workload."""

    workload: Workload
    cfg: CFG
    predictor: StaticPredictor
    evaluation: ScalarRun


class ExperimentContext:
    """Shared workload set + scalar-run cache for all experiments.

    Also carries the :class:`CellRunner` (parallelism, on-disk cache,
    telemetry) the drivers in :mod:`repro.eval.experiments` fan their
    cells out through.
    """

    #: In-flight machine snapshot period (cycles) for journalled sweeps.
    DEFAULT_CHECKPOINT_EVERY = 5_000

    def __init__(
        self,
        workloads: list[Workload] | None = None,
        *,
        jobs: int = 1,
        cache_dir: str | Path | None = None,
        use_cache: bool = True,
        cell_timeout: float | None = None,
        max_retries: int = 2,
        retry_backoff: float = 0.1,
        fail_fast: bool = False,
        sink: MetricsSink = NULL_SINK,
        journal: Journal | None = None,
        checkpoint_every: int | None = None,
        supervisor: SignalSupervisor | None = None,
        run_log: RunLog = NULL_RUN_LOG,
        progress: Callable[[int, int, "RunnerStats"], None] | None = None,
    ):
        self.workloads = workloads if workloads is not None else all_workloads()
        self._baselines: dict[str, WorkloadBaseline] = {}
        self.sink = sink
        self.journal = journal
        self.checkpoint_every = (
            checkpoint_every
            if checkpoint_every is not None
            else self.DEFAULT_CHECKPOINT_EVERY
        )
        self.runner = CellRunner(
            self, jobs=jobs, cache_dir=cache_dir, use_cache=use_cache,
            cell_timeout=cell_timeout, max_retries=max_retries,
            retry_backoff=retry_backoff, fail_fast=fail_fast,
            sink=sink, journal=journal, supervisor=supervisor,
            run_log=run_log, progress=progress,
        )

    def workload(self, name: str) -> Workload:
        for workload in self.workloads:
            if workload.name == name:
                return workload
        from repro.workloads import get_workload

        return get_workload(name)

    def baseline(self, workload: Workload) -> WorkloadBaseline:
        if workload.name not in self._baselines:
            cfg = build_cfg(workload.program)
            train = run_scalar(workload.program, cfg, workload.train_memory())
            predictor = StaticPredictor.from_trace(train.trace)
            evaluation = run_scalar(
                workload.program, cfg, workload.eval_memory()
            )
            self._baselines[workload.name] = WorkloadBaseline(
                workload=workload,
                cfg=cfg,
                predictor=predictor,
                evaluation=evaluation,
            )
        return self._baselines[workload.name]

    def speedup(
        self,
        workload: Workload,
        model: str | ModelPolicy,
        config: MachineConfig,
        *,
        run_machine: bool = False,
    ) -> float:
        """Speedup of *model* over the scalar baseline on *workload*."""
        return self.measure(
            workload, model, config, run_machine=run_machine
        )["speedup"]

    def measure(
        self,
        workload: Workload,
        model: str | ModelPolicy,
        config: MachineConfig,
        *,
        run_machine: bool = False,
        cell_key: str | None = None,
    ) -> dict:
        """Speedup plus BTB statistics of *model* on *workload*.

        Under the paper's optimistic infinite-BTB assumption
        (``config.btb_entries is None``) the BTB counts are zero; with a
        finite BTB they come from the cycle-level machine when it ran,
        otherwise from the trace-driven analytic counter.

        With a journal and a *cell_key*, the machine run is checkpointed
        in flight (periodic snapshots under the journal's cell
        directory) and resumes from the newest valid snapshot -- the
        restored continuation is bit-identical, so the measured cycle
        count is unaffected.
        """
        baseline = self.baseline(workload)
        compiled = compile_program(
            workload.program, model, config, baseline.predictor
        )
        analytic = compiled.code.count_cycles(baseline.evaluation.trace, config)
        cycles = analytic.cycles
        btb_hits, btb_misses = analytic.btb_hits, analytic.btb_misses
        if run_machine and compiled.vliw is not None:
            machine, writer = self._machine_for_cell(
                compiled.vliw, config, workload, cell_key
            )
            result = run_vliw_checkpointed(
                machine, checkpoint_every=self.checkpoint_every, writer=writer
            )
            if result.architectural_output != tuple(baseline.evaluation.output):
                raise AssertionError(
                    f"{workload.name}/{compiled.policy.name}: scheduled code "
                    "diverged from scalar semantics"
                )
            cycles = result.cycles
            if machine.btb is not None:
                btb_hits = machine.btb.hits
                btb_misses = machine.btb.misses
        return {
            "speedup": baseline.evaluation.cycles / cycles,
            "btb_hits": btb_hits,
            "btb_misses": btb_misses,
        }

    def _machine_for_cell(
        self,
        vliw,
        config: MachineConfig,
        workload: Workload,
        cell_key: str | None,
    ) -> tuple[VLIWMachine, CheckpointWriter | None]:
        """A machine for one measured cell, resumed mid-run when a
        journalled snapshot for it validates (a stale or corrupt snapshot
        falls back to a fresh machine, never an abort)."""
        if self.journal is None or cell_key is None:
            return VLIWMachine(vliw, config, workload.eval_memory()), None
        cell_dir = self.journal.cell_dir(cell_key)
        latest = latest_snapshot(cell_dir)
        machine = None
        if latest.found:
            try:
                machine = restore_vliw(
                    latest.document, vliw, config, path=latest.path
                )
            except CheckpointError:
                machine = None  # wrong program/config generation: recompute
        if machine is None:
            machine = VLIWMachine(vliw, config, workload.eval_memory())
        return machine, CheckpointWriter(cell_dir)

    def run_cells(self, specs: list[CellSpec]) -> list[dict]:
        """Evaluate *specs* (cached, possibly in parallel), in order."""
        return self.runner.run(specs)


# ----------------------------------------------------------------------
# Cell evaluation (runs in-process or inside pool workers).
# ----------------------------------------------------------------------
def evaluate_cell(spec: CellSpec, ctx: ExperimentContext) -> dict:
    """Compute one cell.  Pure: output depends only on the spec."""
    if spec.kind == "chaos":
        # Deliberate misbehaviour, for exercising the runner's failure
        # paths (tests and the CI runner-timeout job).
        mode = spec.extra("mode", "ok")
        if mode == "ok":
            return {"value": spec.extra("value", 1)}
        if mode == "raise":
            raise RuntimeError("chaos cell asked to raise")
        if mode == "hang":
            time.sleep(float(spec.extra("seconds", 3600.0)))
            return {"value": "woke up"}
        if mode == "kill":
            os._exit(17)
        if mode == "wait_for":
            # Block until a sentinel file appears.  The kill-and-resume
            # tests use this to park a sweep mid-cell deterministically:
            # the first run is killed while waiting; the resume run
            # pre-creates the sentinel, so the same spec completes.
            sentinel = Path(str(spec.extra("path")))
            # Same clock as the runner's telemetry (perf_counter), so
            # every duration in this module is measured consistently.
            deadline = time.perf_counter() + float(spec.extra("timeout", 60.0))
            while not sentinel.exists():
                if time.perf_counter() > deadline:
                    raise TimeoutError(f"sentinel {sentinel} never appeared")
                time.sleep(0.02)
            return {"value": spec.extra("value", 1)}
        raise ValueError(f"unknown chaos mode {mode!r}")

    if spec.kind == "hwcost":
        params = spec.extra("params") or hwcost_model.RegFileParams()
        report = hwcost_model.analyze(params)
        return {
            "normal_regfile": report.normal_regfile,
            "shadow_storage": report.shadow_storage,
            "commit_hardware": report.commit_hardware,
            "predicate_eval_gate_delay": report.predicate_eval_gate_delay,
            "read_path_extra_gates": report.read_path_extra_gates,
        }

    assert spec.workload is not None, f"cell {spec.kind} needs a workload"
    workload = ctx.workload(spec.workload)
    baseline = ctx.baseline(workload)

    if spec.kind == "baseline":
        return {
            "lines": workload.program.static_line_count(),
            "cycles": baseline.evaluation.cycles,
            "instructions": baseline.evaluation.instructions,
        }

    if spec.kind == "accuracy":
        return {
            "accuracy": successive_accuracy(
                baseline.predictor,
                baseline.evaluation.trace,
                spec.extra("max_run", 8),
            )
        }

    if spec.kind == "speedup":
        assert spec.config is not None
        return ctx.measure(
            workload,
            spec.resolved_policy(),
            spec.config,
            run_machine=spec.run_machine,
            cell_key=(
                cell_cache_key(spec, workload)
                if ctx.journal is not None and spec.run_machine
                else None
            ),
        )

    if spec.kind == "compile_stats":
        assert spec.config is not None
        compiled = compile_program(
            workload.program, spec.resolved_policy(), spec.config,
            baseline.predictor,
        )
        cycles = compiled.code.count_cycles(
            baseline.evaluation.trace, spec.config
        ).cycles
        scheduled_ops = sum(
            len(unit.region.items) for unit in compiled.code.units.values()
        )
        source_ops = len(workload.program.instructions)
        return {
            "speedup": baseline.evaluation.cycles / cycles,
            "expansion": scheduled_ops / source_ops,
        }

    if spec.kind == "profile":
        assert spec.config is not None
        mode = spec.extra("mode", "cross")
        if mode == "self":
            predictor = StaticPredictor.from_trace(baseline.evaluation.trace)
        else:
            predictor = baseline.predictor
        compiled = compile_program(
            workload.program, "region_pred", spec.config, predictor
        )
        cycles = compiled.code.count_cycles(
            baseline.evaluation.trace, spec.config
        ).cycles
        return {"speedup": baseline.evaluation.cycles / cycles}

    if spec.kind == "unroll":
        assert spec.config is not None
        from repro.compiler.unroll import unroll_loops

        factor = spec.extra("factor", 1)
        if factor == 1:
            program = workload.program
        else:
            program = unroll_loops(
                build_cfg(workload.program), factor
            ).to_program()
        cfg = build_cfg(program)
        train = run_scalar(program, cfg, workload.train_memory())
        predictor = StaticPredictor.from_trace(train.trace)
        policy = dataclasses.replace(
            spec.resolved_policy() or REGION_PRED, window_blocks=16 * factor
        )
        compiled = compile_program(program, policy, spec.config, predictor)
        evaluation = run_scalar(program, cfg, workload.eval_memory())
        if evaluation.output != baseline.evaluation.output:
            raise AssertionError(
                f"{workload.name}: unrolling changed semantics"
            )
        cycles = compiled.code.count_cycles(
            evaluation.trace, spec.config
        ).cycles
        return {"speedup": baseline.evaluation.cycles / cycles}

    raise ValueError(f"unknown cell kind {spec.kind!r}")


# Per-process context for pool workers.  The parent sets this (with
# baselines pre-warmed) before creating the pool, so fork-started
# workers inherit the scalar runs for free; under a spawn start method
# the module reloads to None and each worker lazily builds its own.
_worker_ctx: ExperimentContext | None = None


def _set_worker_ctx(ctx: ExperimentContext | None) -> None:
    global _worker_ctx
    _worker_ctx = ctx


def _pool_evaluate(spec: CellSpec) -> tuple[dict, int]:
    global _worker_ctx
    if _worker_ctx is None:
        _worker_ctx = ExperimentContext()
    start = time.perf_counter_ns()
    values = evaluate_cell(spec, _worker_ctx)
    return values, time.perf_counter_ns() - start


# ----------------------------------------------------------------------
# The runner: cache + fan-out + telemetry.
# ----------------------------------------------------------------------
def error_entry(spec: CellSpec, error: BaseException, attempts: int) -> dict:
    """The structured result recorded for a cell that failed for good.

    Error entries flow through ``run_cells`` like values (so a partial
    sweep still merges deterministically and the artifact survives), but
    are never written to the cache.  Drivers read them through
    :func:`repro.eval.experiments.cell_value`.
    """
    return {
        "error": {
            "label": spec.label(),
            "type": type(error).__name__,
            "message": str(error) or type(error).__name__,
            "attempts": attempts,
        }
    }


def is_error_cell(cell: dict) -> bool:
    return isinstance(cell, dict) and "error" in cell


@dataclass
class RunnerStats:
    """Cache and wall-time telemetry for one runner's lifetime."""

    hits: int = 0
    misses: int = 0
    ledger_hits: int = 0
    cell_times: list[tuple[str, int]] = field(default_factory=list)  # (label, ns)
    wall_ns: int = 0
    timeouts: int = 0
    crashes: int = 0
    retries: int = 0
    serial_fallbacks: int = 0
    errors: list[dict] = field(default_factory=list)  # error entries

    @property
    def total(self) -> int:
        return self.hits + self.misses + self.ledger_hits

    @property
    def hit_rate(self) -> float:
        return self.hits / self.total if self.total else 0.0

    @property
    def wall_seconds(self) -> float:
        """Derived view of :attr:`wall_ns` for human-facing output.

        Durations are measured and stored as ``perf_counter_ns`` integers
        (the same units the bench harness uses); seconds exist only at
        the display/metrics edge.
        """
        return self.wall_ns / 1e9

    def report(self) -> str:
        ledger = (
            f", ledger hits {self.ledger_hits}" if self.ledger_hits else ""
        )
        lines = [
            f"cells: {self.total} "
            f"(cache hits {self.hits}, misses {self.misses}{ledger}, "
            f"hit rate {self.hit_rate:.0%}); "
            f"wall {self.wall_seconds:.2f}s"
        ]
        if self.errors or self.timeouts or self.crashes or self.retries:
            lines.append(
                f"failures: {len(self.errors)} cells errored "
                f"({self.timeouts} timeouts, {self.crashes} worker crashes, "
                f"{self.retries} retries, "
                f"{self.serial_fallbacks} serial fallbacks)"
            )
            for entry in self.errors:
                error = entry["error"]
                lines.append(
                    f"  {error['label']}: {error['type']}: "
                    f"{error['message']} (after {error['attempts']} attempts)"
                )
        if self.cell_times:
            slowest = sorted(
                self.cell_times, key=lambda item: item[1], reverse=True
            )[:5]
            lines.append(
                "slowest cells: "
                + ", ".join(f"{label} {ns / 1e9:.3f}s" for label, ns in slowest)
            )
        return "\n".join(lines)

    def to_metrics(self) -> dict:
        """JSON-native telemetry, shaped like a CounterSink export so it
        can ride the artifact ``metrics`` section."""
        counters = {
            "runner.cells": self.total,
            "runner.cache_hits": self.hits,
            "runner.cache_misses": self.misses,
        }
        # Conditional counters appear only when the feature fired, so a
        # clean run's telemetry is unchanged by the hardening.
        if self.ledger_hits:
            counters["runner.ledger_hits"] = self.ledger_hits
        if self.errors:
            counters["runner.failed_cells"] = len(self.errors)
        if self.timeouts:
            counters["runner.cell_timeouts"] = self.timeouts
        if self.crashes:
            counters["runner.worker_crashes"] = self.crashes
        if self.retries:
            counters["runner.retries"] = self.retries
        if self.serial_fallbacks:
            counters["runner.serial_fallbacks"] = self.serial_fallbacks
        return {
            "counters": counters,
            "wall_ns": self.wall_ns,
            "wall_seconds": round(self.wall_seconds, 6),
        }


class CellRunner:
    """Evaluates cell batches against a content-keyed disk cache,
    fanning cache misses out over a process pool when ``jobs > 1``.

    Crash tolerance: each pooled cell is one future, collected with an
    optional per-cell *cell_timeout*.  A cell that hangs or takes its
    worker down (the pool breaks) is retried up to *max_retries* times in
    an isolated single-worker pool with exponential backoff starting at
    *retry_backoff* seconds; if pools cannot be created at all, the cell
    falls back to serial in-process evaluation.  A cell that still fails
    becomes a structured :func:`error_entry` in the results (never
    cached), so one bad cell costs one cell, not the sweep.  With
    *fail_fast* the first failure raises instead -- the pre-hardening
    behaviour.

    Resumability: with a *journal*, every completed cell is appended to
    the journal ledger the moment its result is collected, and a later
    run replays ledgered cells verbatim *before* consulting the cache
    (counted in ``ledger_hits``) -- a killed sweep re-executes only the
    cells that never finished.  With a *supervisor*, a pending
    SIGINT/SIGTERM stops the sweep at the next cell boundary by raising
    :class:`~repro.ckpt.signals.ShutdownRequested`; everything already
    collected is safe in the ledger.
    """

    def __init__(
        self,
        ctx: ExperimentContext,
        *,
        jobs: int = 1,
        cache_dir: str | Path | None = None,
        use_cache: bool = True,
        cell_timeout: float | None = None,
        max_retries: int = 2,
        retry_backoff: float = 0.1,
        fail_fast: bool = False,
        sink: MetricsSink = NULL_SINK,
        journal: Journal | None = None,
        supervisor: SignalSupervisor | None = None,
        run_log: RunLog = NULL_RUN_LOG,
        progress: Callable[[int, int, RunnerStats], None] | None = None,
    ):
        self.ctx = ctx
        self.jobs = max(1, jobs)
        self.cache_dir = Path(cache_dir) if cache_dir else None
        self.use_cache = use_cache and self.cache_dir is not None
        self.cell_timeout = cell_timeout
        self.max_retries = max(0, max_retries)
        self.retry_backoff = retry_backoff
        self.fail_fast = fail_fast
        self.sink = sink
        self.journal = journal
        self.supervisor = supervisor
        self.run_log = run_log
        self.progress = progress
        self.stats = RunnerStats()
        self._ledgered: set[str] = set()
        # Cumulative across run() batches, so one --progress line spans
        # a whole experiment even when it fans cells out in stages.
        self._cells_done = 0
        self._cells_total = 0

    def _cell_resolved(self, spec: CellSpec, outcome_kind: str) -> None:
        """One cell reached a final state: log it and advance the meter."""
        self._cells_done += 1
        if self.run_log.enabled:
            self.run_log.event(
                "experiment.cell", label=spec.label(), outcome=outcome_kind
            )
        if self.progress is not None:
            self.progress(self._cells_done, self._cells_total, self.stats)

    # -- cache ---------------------------------------------------------
    def _cache_path(self, key: str) -> Path:
        assert self.cache_dir is not None
        return self.cache_dir / f"{key}.json"

    def _cache_load(self, key: str) -> dict | None:
        if not self.use_cache:
            return None
        path = self._cache_path(key)
        try:
            document = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            return None
        if document.get("version") != CACHE_VERSION:
            return None
        values = document.get("values")
        return values if isinstance(values, dict) else None

    def _cache_store(self, key: str, spec: CellSpec, values: dict) -> None:
        if not self.use_cache:
            return
        assert self.cache_dir is not None
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        path = self._cache_path(key)
        document = {
            "version": CACHE_VERSION,
            "label": spec.label(),
            "values": values,
        }
        temp = path.with_suffix(f".tmp.{os.getpid()}")
        temp.write_text(json.dumps(document, sort_keys=True))
        os.replace(temp, path)  # atomic vs concurrent runs

    # -- evaluation ----------------------------------------------------
    def _can_pool(self, specs: list[CellSpec]) -> bool:
        """Pool workers resolve workloads from the global registry; a
        context built around ad-hoc workloads must stay in-process."""
        if self.jobs <= 1 or len(specs) <= 1:
            return False
        from repro.workloads import get_workload

        for spec in specs:
            if spec.workload is None:
                continue
            try:
                registered = get_workload(spec.workload)
            except KeyError:
                return False
            if registered.program is not self.ctx.workload(spec.workload).program:
                # Same name, different program: registry lookup would
                # silently measure the wrong thing.
                if format_program(registered.program) != format_program(
                    self.ctx.workload(spec.workload).program
                ):
                    return False
        return True

    def run(self, specs: list[CellSpec]) -> list[dict]:
        started = time.perf_counter_ns()
        self._cells_total += len(specs)
        keys = [
            cell_cache_key(
                spec,
                self.ctx.workload(spec.workload) if spec.workload else None,
            )
            for spec in specs
        ]
        results: list[dict | None] = [None] * len(specs)

        # Ledger pass: a journalled sweep replays durably completed
        # cells verbatim, before the cache is even consulted -- this is
        # what makes a ``--resume`` artifact byte-identical with zero
        # re-execution of finished work.
        ledger = (
            self.journal.completed() if self.journal is not None else {}
        )
        self._ledgered.update(ledger)

        # Cache pass; duplicate keys within a batch compute once.
        pending: dict[str, list[int]] = {}
        for index, key in enumerate(keys):
            if key in ledger:
                results[index] = ledger[key]
                self.stats.ledger_hits += 1
                if self.sink.enabled:
                    self.sink.count("runner.ledger_hits")
                self._cell_resolved(specs[index], "ledger")
                continue
            cached = self._cache_load(key)
            if cached is not None:
                results[index] = cached
                self.stats.hits += 1
                if self.sink.enabled:
                    self.sink.count("runner.cache_hits")
                # A cache hit completes the cell for resume purposes too.
                self._journal_record(key, cached)
                self._cell_resolved(specs[index], "cache")
            else:
                pending.setdefault(key, []).append(index)

        if pending:
            order = list(pending.items())  # deterministic batch order
            todo = [specs[indices[0]] for _, indices in order]
            outcomes = self._evaluate_misses(todo, [key for key, _ in order])
            for (key, indices), spec, outcome in zip(order, todo, outcomes):
                self.stats.misses += len(indices)
                if self.sink.enabled:
                    self.sink.count("runner.cache_misses", len(indices))
                if is_error_cell(outcome):
                    # A failed cell rides the results as a structured
                    # error entry; never cached, so a re-run retries it.
                    self.stats.errors.append(outcome)
                    if self.sink.enabled:
                        self.sink.count("runner.failed_cells")
                    values = outcome
                else:
                    values, elapsed_ns = outcome
                    self.stats.cell_times.append((spec.label(), elapsed_ns))
                    self._cache_store(key, spec, values)
                for index in indices:
                    results[index] = values
                # The first index was resolved live inside
                # _evaluate_misses; duplicates of the same key resolve
                # here, for free.
                for _ in indices[1:]:
                    self._cell_resolved(spec, "dedup")

        self.stats.wall_ns += time.perf_counter_ns() - started
        assert all(value is not None for value in results)
        return results  # type: ignore[return-value]

    def _journal_record(self, key: str, values: dict) -> None:
        """Ledger one durably completed cell (error entries never are)."""
        if (
            self.journal is None
            or key in self._ledgered
            or is_error_cell(values)
        ):
            return
        self.journal.record(key, values)
        self._ledgered.add(key)

    def _note_outcome(self, key: str, outcome) -> None:
        """Ledger a collected outcome the moment it exists, so a kill or
        shutdown between cells loses nothing already computed."""
        if outcome is not None and not is_error_cell(outcome):
            values, _seconds = outcome
            self._journal_record(key, values)

    def _check_shutdown(self, pool: ProcessPoolExecutor | None = None) -> None:
        if self.supervisor is None or self.supervisor.pending is None:
            return
        if pool is not None:
            self._terminate(pool)
        raise self.supervisor.shutdown()

    def _evaluate_misses(self, todo: list[CellSpec], keys: list[str]) -> list:
        """Evaluate cache misses; one outcome per spec, in spec order.

        An outcome is either ``(values, elapsed_ns)`` or an error entry.
        """
        if not self._can_pool(todo):
            outcomes = []
            for spec, key in zip(todo, keys):
                outcome = self._in_process(spec)
                self._note_outcome(key, outcome)
                outcomes.append(outcome)
                self._cell_resolved(
                    spec, "error" if is_error_cell(outcome) else "computed"
                )
                self._check_shutdown()
            return outcomes
        # Pre-warm every needed baseline in the parent: workers started
        # by fork inherit the scalar runs copy-on-write instead of
        # re-interpreting each workload per process.
        for spec in todo:
            if spec.workload is not None:
                self.ctx.baseline(self.ctx.workload(spec.workload))
        _set_worker_ctx(self.ctx)
        try:
            return self._pooled(todo, keys)
        finally:
            _set_worker_ctx(None)

    def _in_process(self, spec: CellSpec):
        """Serial evaluation; the last-resort path has no hang/crash
        protection but still degrades exceptions into error entries."""
        start = time.perf_counter_ns()
        try:
            values = evaluate_cell(spec, self.ctx)
        except Exception as error:
            if self.fail_fast:
                raise
            return error_entry(spec, error, attempts=1)
        return values, time.perf_counter_ns() - start

    def _pooled(self, todo: list[CellSpec], keys: list[str]) -> list:
        try:
            pool = ProcessPoolExecutor(max_workers=self.jobs)
            futures = [pool.submit(_pool_evaluate, spec) for spec in todo]
        except Exception:
            # Cannot create a pool at all (e.g. no usable start method):
            # fall back to serial in-process evaluation.
            self.stats.serial_fallbacks += 1
            if self.sink.enabled:
                self.sink.count("runner.serial_fallbacks")
            outcomes = []
            for spec, key in zip(todo, keys):
                outcome = self._in_process(spec)
                self._note_outcome(key, outcome)
                outcomes.append(outcome)
                self._cell_resolved(
                    spec, "error" if is_error_cell(outcome) else "computed"
                )
                self._check_shutdown()
            return outcomes

        outcomes: list = [None] * len(todo)
        needs_isolation: list[int] = []
        hung = False
        broken = False
        for index, future in enumerate(futures):
            if broken and not future.done():
                needs_isolation.append(index)
                continue
            try:
                outcomes[index] = future.result(timeout=self.cell_timeout)
                self._note_outcome(keys[index], outcomes[index])
                self._cell_resolved(
                    todo[index],
                    "error" if is_error_cell(outcomes[index]) else "computed",
                )
            except TimeoutError:
                # The worker is hung on this cell; healthy workers keep
                # draining the queue, so keep collecting and terminate
                # the stragglers at the end.
                self.stats.timeouts += 1
                if self.sink.enabled:
                    self.sink.count("runner.cell_timeouts")
                if self.fail_fast:
                    self._terminate(pool)
                    raise
                needs_isolation.append(index)
                hung = True
            except BrokenProcessPool:
                # A worker died; the executor fails every outstanding
                # future, so everything not yet collected retries
                # isolated.
                if not broken:
                    self.stats.crashes += 1
                    if self.sink.enabled:
                        self.sink.count("runner.worker_crashes")
                broken = True
                if self.fail_fast:
                    self._terminate(pool)
                    raise
                needs_isolation.append(index)
            except Exception as error:
                # The cell itself raised: deterministic, not worth
                # retrying.
                if self.fail_fast:
                    self._terminate(pool)
                    raise
                outcomes[index] = error_entry(todo[index], error, 1)
                self._cell_resolved(todo[index], "error")
            self._check_shutdown(pool)
        if hung or broken:
            self._terminate(pool)
        else:
            pool.shutdown(wait=True)

        for index in needs_isolation:
            outcomes[index] = self._isolated(todo[index])
            self._note_outcome(keys[index], outcomes[index])
            self._cell_resolved(
                todo[index],
                "error" if is_error_cell(outcomes[index]) else "computed",
            )
            self._check_shutdown()
        return outcomes

    def _isolated(self, spec: CellSpec):
        """Retry one suspect cell in its own single-worker pool.

        Backoff between attempts is exponential with *keyed jitter*
        (:func:`repro.serve.backoff.backoff_delay`): deterministic per
        cell, but different cells spread out instead of retrying a
        broken pool in lockstep.
        """
        last_error: BaseException = RuntimeError("cell never ran")
        attempts = 0
        while attempts <= self.max_retries:
            if attempts > 0:
                self.stats.retries += 1
                if self.sink.enabled:
                    self.sink.count("runner.retries")
                if self.run_log.enabled:
                    self.run_log.event(
                        "experiment.retry",
                        label=spec.label(),
                        attempt=attempts,
                    )
                time.sleep(
                    backoff_delay(
                        attempts, base=self.retry_backoff, key=spec.label()
                    )
                )
            attempts += 1
            try:
                pool = ProcessPoolExecutor(max_workers=1)
            except Exception:
                self.stats.serial_fallbacks += 1
                if self.sink.enabled:
                    self.sink.count("runner.serial_fallbacks")
                return self._in_process(spec)
            try:
                outcome = pool.submit(_pool_evaluate, spec).result(
                    timeout=self.cell_timeout
                )
                pool.shutdown(wait=True)
                return outcome
            except TimeoutError as error:
                self.stats.timeouts += 1
                if self.sink.enabled:
                    self.sink.count("runner.cell_timeouts")
                last_error = error
                self._terminate(pool)
            except BrokenProcessPool as error:
                self.stats.crashes += 1
                if self.sink.enabled:
                    self.sink.count("runner.worker_crashes")
                last_error = error
                self._terminate(pool)
            except Exception as error:
                self._terminate(pool)
                if self.fail_fast:
                    raise
                return error_entry(spec, error, attempts)
        if self.fail_fast:
            raise last_error
        return error_entry(spec, last_error, attempts)

    @staticmethod
    def _terminate(pool: ProcessPoolExecutor) -> None:
        """Tear a pool down even when a worker is hung or dead."""
        for process in list(pool._processes.values()):
            if process.is_alive():
                process.terminate()
        pool.shutdown(wait=True, cancel_futures=True)
