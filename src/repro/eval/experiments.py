"""Experiment drivers -- one per paper table/figure.

Each ``run_*`` function reproduces one artefact of the paper's evaluation
section and returns a structured result with a ``render()`` method.  An
:class:`ExperimentContext` caches per-workload scalar runs (training
profile + evaluation trace) so sweeps do not re-interpret programs.

Paper artefacts:

* ``run_table2`` -- Table 2: the benchmark programs (static size, scalar
  baseline cycles).
* ``run_table3`` -- Table 3: prediction accuracy of 1..8 successive
  branches per benchmark.
* ``run_fig6``   -- Figure 6: the restricted speculative models.
* ``run_fig7``   -- Figure 7: predicating vs conventional models.
* ``run_fig8``   -- Figure 8: full-issue machines x speculation depth.
* ``run_hwcost`` -- the Section 4.2.1 hardware cost claims.
* ``run_shadow_ablation``  -- footnote 1: single vs infinite shadow
  registers (0-1% in the paper).
* ``run_counter_ablation`` -- Section 4.2.1's vector-form vs counter-type
  predicate argument (condition-set reordering).
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass, field

from repro.analysis.branch_prediction import StaticPredictor, successive_accuracy
from repro.compiler.models import MODELS, REGION_PRED, TRACE_PRED
from repro.compiler.pipeline import compile_program
from repro.compiler.policy import ModelPolicy
from repro.eval import hwcost as hwcost_model
from repro.eval.report import render_bars, render_table
from repro.ir.cfg import CFG, build_cfg
from repro.machine.config import MachineConfig, base_machine, full_issue_machine
from repro.machine.scalar import ScalarRun, run_scalar
from repro.machine.vliw import VLIWMachine
from repro.workloads import Workload, all_workloads


def geomean(values: list[float]) -> float:
    if not values:
        return 0.0
    return math.exp(sum(math.log(v) for v in values) / len(values))


@dataclass
class WorkloadBaseline:
    """Cached scalar behaviour of one workload."""

    workload: Workload
    cfg: CFG
    predictor: StaticPredictor
    evaluation: ScalarRun


class ExperimentContext:
    """Shared workload set + scalar-run cache for all experiments."""

    def __init__(self, workloads: list[Workload] | None = None):
        self.workloads = workloads if workloads is not None else all_workloads()
        self._baselines: dict[str, WorkloadBaseline] = {}

    def baseline(self, workload: Workload) -> WorkloadBaseline:
        if workload.name not in self._baselines:
            cfg = build_cfg(workload.program)
            train = run_scalar(workload.program, cfg, workload.train_memory())
            predictor = StaticPredictor.from_trace(train.trace)
            evaluation = run_scalar(
                workload.program, cfg, workload.eval_memory()
            )
            self._baselines[workload.name] = WorkloadBaseline(
                workload=workload,
                cfg=cfg,
                predictor=predictor,
                evaluation=evaluation,
            )
        return self._baselines[workload.name]

    def speedup(
        self,
        workload: Workload,
        model: str | ModelPolicy,
        config: MachineConfig,
        *,
        run_machine: bool = False,
    ) -> float:
        """Speedup of *model* over the scalar baseline on *workload*."""
        baseline = self.baseline(workload)
        compiled = compile_program(
            workload.program, model, config, baseline.predictor
        )
        analytic = compiled.code.count_cycles(baseline.evaluation.trace, config)
        cycles = analytic.cycles
        if run_machine and compiled.vliw is not None:
            machine = VLIWMachine(compiled.vliw, config, workload.eval_memory())
            result = machine.run()
            if result.architectural_output != tuple(baseline.evaluation.output):
                raise AssertionError(
                    f"{workload.name}/{compiled.policy.name}: scheduled code "
                    "diverged from scalar semantics"
                )
            cycles = result.cycles
        return baseline.evaluation.cycles / cycles


# ----------------------------------------------------------------------
# Table 2.
# ----------------------------------------------------------------------
@dataclass
class Table2Result:
    rows: list[tuple[str, int, int, str]]  # name, lines, cycles, remarks

    def render(self) -> str:
        return render_table(
            ["Program", "Lines", "Scalar cycles", "Remarks"],
            self.rows,
            title="Table 2: benchmark programs",
        )


def run_table2(ctx: ExperimentContext) -> Table2Result:
    rows = []
    for workload in ctx.workloads:
        baseline = ctx.baseline(workload)
        rows.append(
            (
                workload.name,
                workload.program.static_line_count(),
                baseline.evaluation.cycles,
                workload.description,
            )
        )
    return Table2Result(rows=rows)


# ----------------------------------------------------------------------
# Table 3.
# ----------------------------------------------------------------------
@dataclass
class Table3Result:
    max_run: int
    rows: dict[str, list[float]]

    def render(self) -> str:
        headers = ["#branches"] + [str(n) for n in range(1, self.max_run + 1)]
        table_rows = [
            [name] + [f"{value:.2f}" for value in accuracies]
            for name, accuracies in self.rows.items()
        ]
        return render_table(
            headers,
            table_rows,
            title="Table 3: prediction accuracy of successive branches",
        )


def run_table3(ctx: ExperimentContext, max_run: int = 8) -> Table3Result:
    rows = {}
    for workload in ctx.workloads:
        baseline = ctx.baseline(workload)
        rows[workload.name] = successive_accuracy(
            baseline.predictor, baseline.evaluation.trace, max_run
        )
    return Table3Result(max_run=max_run, rows=rows)


# ----------------------------------------------------------------------
# Figures 6 and 7: speedup comparisons.
# ----------------------------------------------------------------------
@dataclass
class SpeedupFigure:
    title: str
    models: list[str]
    per_workload: dict[str, dict[str, float]] = field(default_factory=dict)

    def geomeans(self) -> dict[str, float]:
        return {
            model: geomean(
                [self.per_workload[w][model] for w in self.per_workload]
            )
            for model in self.models
        }

    def render(self) -> str:
        headers = ["Program"] + self.models
        rows = [
            [name] + [f"{values[m]:.2f}" for m in self.models]
            for name, values in self.per_workload.items()
        ]
        means = self.geomeans()
        rows.append(["geomean"] + [f"{means[m]:.2f}" for m in self.models])
        table = render_table(headers, rows, title=self.title)
        bars = render_bars(
            self.models,
            [means[m] for m in self.models],
            title="geomean speedup over scalar",
        )
        return table + "\n\n" + bars


FIG6_MODELS = ["global", "squashing", "trace", "region"]
FIG7_MODELS = ["global", "boosting", "trace_pred", "region_pred"]


def _speedup_figure(
    ctx: ExperimentContext,
    title: str,
    models: list[str],
    config: MachineConfig,
    *,
    run_machine: bool = False,
) -> SpeedupFigure:
    figure = SpeedupFigure(title=title, models=models)
    for workload in ctx.workloads:
        figure.per_workload[workload.name] = {
            model: ctx.speedup(
                workload,
                model,
                config,
                run_machine=run_machine and MODELS[model].executable,
            )
            for model in models
        }
    return figure


def run_fig6(
    ctx: ExperimentContext, config: MachineConfig | None = None
) -> SpeedupFigure:
    return _speedup_figure(
        ctx,
        "Figure 6: restricted speculative execution models",
        FIG6_MODELS,
        config or base_machine(),
    )


def run_fig7(
    ctx: ExperimentContext,
    config: MachineConfig | None = None,
    *,
    run_machine: bool = True,
) -> SpeedupFigure:
    return _speedup_figure(
        ctx,
        "Figure 7: predicating vs conventional speculative execution",
        FIG7_MODELS,
        config or base_machine(),
        run_machine=run_machine,
    )


# ----------------------------------------------------------------------
# Figure 8: full-issue machines x speculation depth.
# ----------------------------------------------------------------------
@dataclass
class Fig8Result:
    widths: tuple[int, ...]
    depths: tuple[int, ...]
    # (width, depth) -> geomean speedup of region predicating.
    geomeans: dict[tuple[int, int], float] = field(default_factory=dict)
    per_workload: dict[tuple[int, int], dict[str, float]] = field(
        default_factory=dict
    )

    def render(self) -> str:
        headers = ["issue width"] + [f"depth {d}" for d in self.depths]
        rows = [
            [f"{width}-issue"]
            + [f"{self.geomeans[(width, depth)]:.2f}" for depth in self.depths]
            for width in self.widths
        ]
        return render_table(
            headers,
            rows,
            title=(
                "Figure 8: region predicating on full-issue machines "
                "(geomean speedup)"
            ),
        )


def run_fig8(
    ctx: ExperimentContext,
    widths: tuple[int, ...] = (2, 4, 8),
    depths: tuple[int, ...] = (1, 2, 4, 8),
) -> Fig8Result:
    result = Fig8Result(widths=widths, depths=depths)
    for width in widths:
        for depth in depths:
            config = full_issue_machine(width, depth)
            per_workload = {
                workload.name: ctx.speedup(workload, "region_pred", config)
                for workload in ctx.workloads
            }
            result.per_workload[(width, depth)] = per_workload
            result.geomeans[(width, depth)] = geomean(
                list(per_workload.values())
            )
    return result


# ----------------------------------------------------------------------
# Code expansion (static code growth from tail duplication).
# ----------------------------------------------------------------------
@dataclass
class CodeExpansionResult:
    """Static code growth per model (the cost of duplication)."""

    models: list[str]
    # workload -> model -> static scheduled ops / source instructions.
    rows: dict[str, dict[str, float]] = field(default_factory=dict)

    def geomeans(self) -> dict[str, float]:
        return {
            model: geomean([self.rows[w][model] for w in self.rows])
            for model in self.models
        }

    def render(self) -> str:
        headers = ["Program"] + self.models
        table_rows = [
            [name] + [f"{values[m]:.2f}" for m in self.models]
            for name, values in self.rows.items()
        ]
        means = self.geomeans()
        table_rows.append(
            ["geomean"] + [f"{means[m]:.2f}" for m in self.models]
        )
        return render_table(
            headers,
            table_rows,
            title="Static code expansion (scheduled ops / source ops)",
        )


def run_code_expansion(
    ctx: ExperimentContext,
    models: list[str] | None = None,
    config: MachineConfig | None = None,
) -> CodeExpansionResult:
    """Static code-size cost of each model's duplication.

    The paper flags code growth as the price of boosting's recovery-code
    scheme ("the recovery code and the jump table double the size of the
    original code") and of region formation's join duplication; this
    experiment measures the duplication cost of our windowed schedulers
    directly: total scheduled operations over source instructions.
    """
    config = config or base_machine()
    models = models or ["global", "trace", "trace_pred", "region_pred"]
    result = CodeExpansionResult(models=models)
    for workload in ctx.workloads:
        baseline = ctx.baseline(workload)
        source_ops = len(workload.program.instructions)
        row = {}
        for model in models:
            compiled = compile_program(
                workload.program, model, config, baseline.predictor
            )
            scheduled_ops = sum(
                len(unit.region.items)
                for unit in compiled.code.units.values()
            )
            row[model] = scheduled_ops / source_ops
        result.rows[workload.name] = row
    return result


# ----------------------------------------------------------------------
# Loop unrolling (the paper's future-work experiment).
# ----------------------------------------------------------------------
@dataclass
class UnrollingResult:
    """Region predicating with unrolled loops on wide machines."""

    factors: tuple[int, ...]
    machines: tuple[tuple[int, int], ...]  # (width, depth)
    geomeans: dict[tuple[int, int, int], float] = field(default_factory=dict)

    def render(self) -> str:
        headers = ["machine"] + [f"unroll x{f}" for f in self.factors]
        rows = []
        for width, depth in self.machines:
            rows.append(
                [f"{width}-issue/depth {depth}"]
                + [
                    f"{self.geomeans[(width, depth, f)]:.2f}"
                    for f in self.factors
                ]
            )
        return render_table(
            headers,
            rows,
            title=(
                "Future-work experiment: loop unrolling under region "
                "predicating (geomean speedup vs the original scalar run)"
            ),
        )


def run_unrolling(
    ctx: ExperimentContext,
    factors: tuple[int, ...] = (1, 2, 4),
    machines: tuple[tuple[int, int], ...] = ((4, 4), (8, 8)),
) -> UnrollingResult:
    """Section 4.2.2's closing conjecture, tested.

    The paper: "speculative execution past eight conditions or eight
    duplications of resources produces little impact [...] loop unrolling
    may be required to exploit more parallelism."  We unroll every
    workload's loops and re-measure region predicating on the 4- and
    8-issue full machines; speedups stay relative to the *original*
    program's scalar cycles.  The scheduling window scales with the
    unroll factor so the region former can actually span the unrolled
    iterations.
    """
    from repro.compiler.unroll import unroll_loops
    from repro.ir.cfg import build_cfg as _build_cfg

    result = UnrollingResult(factors=factors, machines=machines)
    for width, depth in machines:
        config = full_issue_machine(width, depth)
        for factor in factors:
            speedups = []
            for workload in ctx.workloads:
                baseline = ctx.baseline(workload)
                if factor == 1:
                    program = workload.program
                else:
                    program = unroll_loops(
                        _build_cfg(workload.program), factor
                    ).to_program()
                cfg = _build_cfg(program)
                train = run_scalar(program, cfg, workload.train_memory())
                predictor = StaticPredictor.from_trace(train.trace)
                policy = dataclasses.replace(
                    REGION_PRED, window_blocks=16 * factor
                )
                compiled = compile_program(program, policy, config, predictor)
                evaluation = run_scalar(program, cfg, workload.eval_memory())
                if evaluation.output != baseline.evaluation.output:
                    raise AssertionError(
                        f"{workload.name}: unrolling changed semantics"
                    )
                cycles = compiled.code.count_cycles(
                    evaluation.trace, config
                ).cycles
                speedups.append(baseline.evaluation.cycles / cycles)
            result.geomeans[(width, depth, factor)] = geomean(speedups)
    return result


# ----------------------------------------------------------------------
# Equivalent-join sharing (footnote 2).
# ----------------------------------------------------------------------
@dataclass
class JoinSharingResult:
    """Duplicating vs sharing equivalent join blocks."""

    rows: list[tuple[str, float, float, float, float]] = field(
        default_factory=list
    )  # name, dup speedup, shared speedup, dup expansion, shared expansion

    def render(self) -> str:
        table_rows = [
            (name, f"{sd:.2f}", f"{ss:.2f}", f"{ed:.2f}", f"{es:.2f}")
            for name, sd, ss, ed, es in self.rows
        ]
        return render_table(
            ["Program", "dup speedup", "shared speedup",
             "dup code x", "shared code x"],
            table_rows,
            title=(
                "Footnote-2 experiment: duplicating vs sharing equivalent "
                "joins under region predicating"
            ),
        )


def run_join_sharing(
    ctx: ExperimentContext, config: MachineConfig | None = None
) -> JoinSharingResult:
    """The paper's join-block trade-off, measured.

    Section 3.3: a join with an *equivalent block* need not be duplicated
    -- its control dependence equals the equivalent block's.  Section
    4.2.2 explains the cost: instructions in a shared join acquire
    *commit dependences* ("this instruction cannot be scheduled until the
    speculative value is committed or squashed"), which is why the
    compiler "duplicates the join block to avoid this constraint (if
    beneficial)".  This experiment measures both sides of that trade for
    every kernel: speedup and static code expansion under pure
    duplication versus equivalent-join sharing.
    """
    config = config or base_machine()
    shared_policy = dataclasses.replace(
        REGION_PRED, share_equivalent_joins=True
    )
    result = JoinSharingResult()
    for workload in ctx.workloads:
        baseline = ctx.baseline(workload)
        source_ops = len(workload.program.instructions)
        stats = []
        for policy in (REGION_PRED, shared_policy):
            compiled = compile_program(
                workload.program, policy, config, baseline.predictor
            )
            cycles = compiled.code.count_cycles(
                baseline.evaluation.trace, config
            ).cycles
            ops = sum(
                len(unit.region.items)
                for unit in compiled.code.units.values()
            )
            stats.append(
                (baseline.evaluation.cycles / cycles, ops / source_ops)
            )
        (dup_speed, dup_x), (shared_speed, shared_x) = stats
        result.rows.append(
            (workload.name, dup_speed, shared_speed, dup_x, shared_x)
        )
    return result


# ----------------------------------------------------------------------
# Profile sensitivity.
# ----------------------------------------------------------------------
@dataclass
class ProfileSensitivityResult:
    """Self-trained vs cross-trained region predicating."""

    rows: list[tuple[str, float, float]] = field(default_factory=list)

    def render(self) -> str:
        table_rows = [
            (name, f"{cross:.2f}", f"{self_trained:.2f}",
             f"{(self_trained / cross - 1) * 100:+.1f}%")
            for name, cross, self_trained in self.rows
        ]
        return render_table(
            ["Program", "cross-trained", "self-trained", "inflation"],
            table_rows,
            title=(
                "Profile sensitivity: training input != evaluation input "
                "(the honest setup, used everywhere else) vs training on "
                "the evaluation input itself"
            ),
        )


def run_profile_sensitivity(
    ctx: ExperimentContext, config: MachineConfig | None = None
) -> ProfileSensitivityResult:
    """How much does profile-driven region formation depend on the input?

    The harness always trains the static predictor on a *different* input
    seed than it evaluates on (as the paper's methodology implies).  This
    experiment quantifies the alternative: self-training inflates
    region predicating's speedups only mildly when branch behaviour is a
    property of the program rather than of the particular input -- which
    is what makes profile-guided region formation deployable.
    """
    config = config or base_machine()
    result = ProfileSensitivityResult()
    for workload in ctx.workloads:
        baseline = ctx.baseline(workload)
        cross = baseline.evaluation.cycles / compile_program(
            workload.program, "region_pred", config, baseline.predictor
        ).code.count_cycles(baseline.evaluation.trace, config).cycles
        self_predictor = StaticPredictor.from_trace(baseline.evaluation.trace)
        self_trained = baseline.evaluation.cycles / compile_program(
            workload.program, "region_pred", config, self_predictor
        ).code.count_cycles(baseline.evaluation.trace, config).cycles
        result.rows.append((workload.name, cross, self_trained))
    return result


# ----------------------------------------------------------------------
# Hardware cost.
# ----------------------------------------------------------------------
@dataclass
class HwCostResult:
    report: hwcost_model.HwCostReport

    def render(self) -> str:
        r = self.report
        rows = [
            ("normal register file (T)", r.normal_regfile, "--"),
            ("speculative storage (T)", r.shadow_storage, "paper: +76%"),
            ("commit hardware (T)", r.commit_hardware, "paper: +31%"),
            ("shadow ratio", f"{r.shadow_ratio:.2f}", "paper: 0.76"),
            ("commit ratio", f"{r.commit_ratio:.2f}", "paper: 0.31"),
            ("total overhead", f"{r.total_overhead_ratio:.2f}", "paper: 1.07"),
            ("predicate eval delay", f"{r.predicate_eval_gate_delay} gates",
             "paper: 3 gates"),
            ("read-path extra gates", r.read_path_extra_gates, "paper: 1"),
        ]
        return render_table(
            ["Quantity", "Model", "Reference"],
            rows,
            title="Section 4.2.1: hardware cost of predicating",
        )


def run_hwcost(
    params: hwcost_model.RegFileParams | None = None,
) -> HwCostResult:
    return HwCostResult(report=hwcost_model.analyze(params))


# ----------------------------------------------------------------------
# Ablations.
# ----------------------------------------------------------------------
@dataclass
class AblationResult:
    title: str
    rows: list[tuple[str, float, float, float]]  # name, base, variant, loss %

    def render(self) -> str:
        table_rows = [
            (name, f"{base:.2f}", f"{variant:.2f}", f"{loss:+.1f}%")
            for name, base, variant, loss in self.rows
        ]
        return render_table(
            ["Program", "base", "variant", "delta"],
            table_rows,
            title=self.title,
        )


def run_shadow_ablation(
    ctx: ExperimentContext, config: MachineConfig | None = None
) -> AblationResult:
    """Footnote 1: single vs infinite shadow registers (paper: 0-1%)."""
    config = config or base_machine()
    infinite = dataclasses.replace(config, shadow_capacity=None)
    rows = []
    for workload in ctx.workloads:
        single = ctx.speedup(workload, "region_pred", config)
        unlimited = ctx.speedup(workload, "region_pred", infinite)
        loss = (unlimited - single) / unlimited * 100 if unlimited else 0.0
        rows.append((workload.name, unlimited, single, -loss))
    return AblationResult(
        title=(
            "Footnote 1 ablation: single shadow register vs infinite "
            "(speedup, delta = cost of the single-shadow design)"
        ),
        rows=rows,
    )


@dataclass
class BtbAblationResult:
    """Optimistic vs finite-BTB vs fully-charged transfer penalties."""

    rows: list[tuple[str, float, float, float]] = field(default_factory=list)

    def render(self) -> str:
        table_rows = [
            (name, f"{opt:.2f}", f"{finite:.2f}", f"{charged:.2f}",
             f"{(opt / finite - 1) * 100:+.1f}%")
            for name, opt, finite, charged in self.rows
        ]
        return render_table(
            ["Program", "optimistic", "64-entry BTB", "all charged",
             "optimism vs BTB"],
            table_rows,
            title=(
                "BTB ablation: the paper's optimistic assumption vs a "
                "finite BTB vs charging every taken transfer"
            ),
        )


def run_btb_ablation(
    ctx: ExperimentContext, config: MachineConfig | None = None
) -> BtbAblationResult:
    """Section 4's BTB assumption: "We optimistically assume the branches
    which are predictable using BTB impose no penalty [...] This
    optimistic assumption increases the evaluated performance a few
    percent according to our cycle-by-cycle simulation."

    Three fidelities: the paper's optimistic model (taken transfers are
    free), a 64-entry direct-mapped BTB (compulsory/conflict misses pay
    one cycle -- the realistic point; the delta against the optimistic
    model reproduces the paper's "few percent"), and the fully-pessimistic
    bracket (every taken transfer pays).
    """
    config = config or base_machine()
    finite = dataclasses.replace(config, btb_entries=64)
    pessimistic = dataclasses.replace(config, taken_penalty_btb=1)
    result = BtbAblationResult()
    for workload in ctx.workloads:
        result.rows.append(
            (
                workload.name,
                ctx.speedup(workload, "region_pred", config),
                ctx.speedup(workload, "region_pred", finite),
                ctx.speedup(workload, "region_pred", pessimistic),
            )
        )
    return result


def run_counter_ablation(
    ctx: ExperimentContext, config: MachineConfig | None = None
) -> AblationResult:
    """Section 4.2.1: vector-form vs counter-type predicates.

    Counter predicates cannot tell which condition was set, so
    condition-resolving instructions must stay in program order; the
    ablation forces that ordering onto the trace predicating model.
    """
    config = config or base_machine()
    ordered = dataclasses.replace(TRACE_PRED, ordered_cond_sets=True)
    rows = []
    for workload in ctx.workloads:
        vector = ctx.speedup(workload, TRACE_PRED, config)
        counter = ctx.speedup(workload, ordered, config)
        loss = (vector - counter) / vector * 100 if vector else 0.0
        rows.append((workload.name, vector, counter, -loss))
    return AblationResult(
        title=(
            "Predicate-representation ablation: vector form vs counter "
            "type (speedup, delta = cost of in-order condition sets)"
        ),
        rows=rows,
    )
