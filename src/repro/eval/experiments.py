"""Experiment drivers -- one per paper table/figure.

Each ``run_*`` function reproduces one artefact of the paper's evaluation
section.  Drivers share a uniform ``(ctx, options)`` signature: *ctx* is
an :class:`~repro.eval.runner.ExperimentContext` (workloads, scalar
baselines, and the parallel/cached :class:`~repro.eval.runner.CellRunner`),
*options* an :class:`ExperimentOptions` bundle of the knobs the CLI
exposes.  Every driver decomposes its sweep into independent
:class:`~repro.eval.runner.CellSpec` cells, fans them out through
``ctx.run_cells`` (process pool + on-disk cache), and merges the results
deterministically.  Results render as ASCII (``render()``) and serialize
to versioned JSON artifacts (``to_dict()`` +
:mod:`repro.eval.artifact`).

Paper artefacts:

* ``run_table2`` -- Table 2: the benchmark programs (static size, scalar
  baseline cycles).
* ``run_table3`` -- Table 3: prediction accuracy of 1..8 successive
  branches per benchmark.
* ``run_fig6``   -- Figure 6: the restricted speculative models.
* ``run_fig7``   -- Figure 7: predicating vs conventional models.
* ``run_fig8``   -- Figure 8: full-issue machines x speculation depth.
* ``run_hwcost`` -- the Section 4.2.1 hardware cost claims.
* ``run_shadow_ablation``  -- footnote 1: single vs infinite shadow
  registers (0-1% in the paper).
* ``run_counter_ablation`` -- Section 4.2.1's vector-form vs counter-type
  predicate argument (condition-set reordering).
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass, field

from repro.compiler.models import MODELS, REGION_PRED, TRACE_PRED
from repro.eval import hwcost as hwcost_model
from repro.eval.report import render_bars, render_table
from repro.eval.runner import (
    CellSpec,
    ExperimentContext,
    WorkloadBaseline,
)
from repro.machine.config import MachineConfig, base_machine, full_issue_machine

__all__ = [
    "ExperimentContext",
    "ExperimentOptions",
    "WorkloadBaseline",
    "EXPERIMENTS",
    "cell_value",
    "geomean",
]


def geomean(values: list[float]) -> float:
    """Geometric mean over the finite values; NaN if none are usable.

    Error cells surface as NaN through :func:`cell_value`, so a partial
    sweep still aggregates over the cells that did complete.
    """
    finite = [v for v in values if isinstance(v, (int, float))
              and math.isfinite(v) and v > 0]
    if not finite:
        return 0.0 if not values else math.nan
    return math.exp(sum(math.log(v) for v in finite) / len(finite))


def cell_value(cell: dict, key: str, default: float = math.nan):
    """*key* from one ``run_cells`` result, tolerating error cells.

    A cell the hardened runner could not evaluate comes back as a
    structured ``{"error": ...}`` entry instead of values; drivers read
    through this helper so a failed cell degrades to *default* (NaN,
    scrubbed to ``null`` in artifacts) rather than a KeyError that loses
    the rest of the sweep.
    """
    if "error" in cell:
        return default
    return cell.get(key, default)


def _fmt(value, spec: str = ".2f") -> str:
    """Render a possibly-missing measurement for an ASCII table."""
    if isinstance(value, (int, float)) and math.isfinite(value):
        return format(value, spec)
    return "err"


@dataclass(frozen=True)
class ExperimentOptions:
    """CLI-facing knobs, shared by every driver.

    Drivers read only the fields they understand; the defaults reproduce
    the paper's setup exactly, so ``run_x(ctx)`` with no options is
    always the paper configuration.
    """

    config: MachineConfig | None = None  # None = the paper's base machine
    run_machine: bool = True  # Figure 7: validate on the VLIW machine
    max_run: int = 8  # Table 3 branch-run depth
    widths: tuple[int, ...] = (2, 4, 8)  # Figure 8 issue widths
    depths: tuple[int, ...] = (1, 2, 4, 8)  # Figure 8 speculation depths
    factors: tuple[int, ...] = (1, 2, 4)  # unrolling factors
    machines: tuple[tuple[int, int], ...] = ((4, 4), (8, 8))  # unroll targets
    models: tuple[str, ...] | None = None  # code-expansion model list
    hw_params: hwcost_model.RegFileParams | None = None

    def machine(self) -> MachineConfig:
        return self.config or base_machine()


_DEFAULTS = ExperimentOptions()


# ----------------------------------------------------------------------
# Table 2.
# ----------------------------------------------------------------------
@dataclass
class Table2Result:
    rows: list[tuple[str, int, int, str]]  # name, lines, cycles, remarks

    def to_dict(self) -> dict:
        return {
            "rows": [
                {
                    "program": name,
                    "lines": lines,
                    "scalar_cycles": cycles,
                    "remarks": remarks,
                }
                for name, lines, cycles, remarks in self.rows
            ]
        }

    def render(self) -> str:
        return render_table(
            ["Program", "Lines", "Scalar cycles", "Remarks"],
            self.rows,
            title="Table 2: benchmark programs",
        )


def run_table2(
    ctx: ExperimentContext, options: ExperimentOptions | None = None
) -> Table2Result:
    del options  # Table 2 has no knobs; uniform signature only.
    specs = [
        CellSpec(kind="baseline", workload=w.name) for w in ctx.workloads
    ]
    cells = ctx.run_cells(specs)
    rows = [
        (
            w.name,
            cell_value(cell, "lines"),
            cell_value(cell, "cycles"),
            w.description,
        )
        for w, cell in zip(ctx.workloads, cells)
    ]
    return Table2Result(rows=rows)


# ----------------------------------------------------------------------
# Table 3.
# ----------------------------------------------------------------------
@dataclass
class Table3Result:
    max_run: int
    rows: dict[str, list[float]]

    def to_dict(self) -> dict:
        return {"max_run": self.max_run, "rows": dict(self.rows)}

    def render(self) -> str:
        headers = ["#branches"] + [str(n) for n in range(1, self.max_run + 1)]
        table_rows = [
            [name] + [_fmt(value) for value in accuracies]
            for name, accuracies in self.rows.items()
        ]
        return render_table(
            headers,
            table_rows,
            title="Table 3: prediction accuracy of successive branches",
        )


def run_table3(
    ctx: ExperimentContext, options: ExperimentOptions | None = None
) -> Table3Result:
    options = options or _DEFAULTS
    specs = [
        CellSpec(
            kind="accuracy",
            workload=w.name,
            extras=(("max_run", options.max_run),),
        )
        for w in ctx.workloads
    ]
    cells = ctx.run_cells(specs)
    rows = {
        w.name: cell_value(cell, "accuracy", [])
        for w, cell in zip(ctx.workloads, cells)
    }
    return Table3Result(max_run=options.max_run, rows=rows)


# ----------------------------------------------------------------------
# Figures 6 and 7: speedup comparisons.
# ----------------------------------------------------------------------
@dataclass
class SpeedupFigure:
    title: str
    models: list[str]
    per_workload: dict[str, dict[str, float]] = field(default_factory=dict)

    def geomeans(self) -> dict[str, float]:
        return {
            model: geomean(
                [self.per_workload[w][model] for w in self.per_workload]
            )
            for model in self.models
        }

    def to_dict(self) -> dict:
        return {
            "title": self.title,
            "models": list(self.models),
            "per_workload": {
                name: dict(values)
                for name, values in self.per_workload.items()
            },
            "geomeans": self.geomeans(),
        }

    def render(self) -> str:
        headers = ["Program"] + self.models
        rows = [
            [name] + [_fmt(values[m]) for m in self.models]
            for name, values in self.per_workload.items()
        ]
        means = self.geomeans()
        rows.append(["geomean"] + [_fmt(means[m]) for m in self.models])
        table = render_table(headers, rows, title=self.title)
        bars = render_bars(
            self.models,
            [means[m] if math.isfinite(means[m]) else 0.0
             for m in self.models],
            title="geomean speedup over scalar",
        )
        return table + "\n\n" + bars


FIG6_MODELS = ["global", "squashing", "trace", "region"]
FIG7_MODELS = ["global", "boosting", "trace_pred", "region_pred"]


def _speedup_figure(
    ctx: ExperimentContext,
    title: str,
    models: list[str],
    config: MachineConfig,
    *,
    run_machine: bool = False,
) -> SpeedupFigure:
    specs = [
        CellSpec(
            kind="speedup",
            workload=workload.name,
            model=model,
            config=config,
            run_machine=run_machine and MODELS[model].executable,
        )
        for workload in ctx.workloads
        for model in models
    ]
    cells = ctx.run_cells(specs)
    figure = SpeedupFigure(title=title, models=models)
    index = 0
    for workload in ctx.workloads:
        figure.per_workload[workload.name] = {
            model: cell_value(cells[index + offset], "speedup")
            for offset, model in enumerate(models)
        }
        index += len(models)
    return figure


def run_fig6(
    ctx: ExperimentContext, options: ExperimentOptions | None = None
) -> SpeedupFigure:
    options = options or _DEFAULTS
    return _speedup_figure(
        ctx,
        "Figure 6: restricted speculative execution models",
        FIG6_MODELS,
        options.machine(),
    )


def run_fig7(
    ctx: ExperimentContext, options: ExperimentOptions | None = None
) -> SpeedupFigure:
    options = options or _DEFAULTS
    return _speedup_figure(
        ctx,
        "Figure 7: predicating vs conventional speculative execution",
        FIG7_MODELS,
        options.machine(),
        run_machine=options.run_machine,
    )


# ----------------------------------------------------------------------
# Figure 8: full-issue machines x speculation depth.
# ----------------------------------------------------------------------
@dataclass
class Fig8Result:
    widths: tuple[int, ...]
    depths: tuple[int, ...]
    # (width, depth) -> geomean speedup of region predicating.
    geomeans: dict[tuple[int, int], float] = field(default_factory=dict)
    per_workload: dict[tuple[int, int], dict[str, float]] = field(
        default_factory=dict
    )

    def to_dict(self) -> dict:
        return {
            "widths": list(self.widths),
            "depths": list(self.depths),
            "cells": [
                {
                    "width": width,
                    "depth": depth,
                    "geomean": self.geomeans[(width, depth)],
                    "per_workload": dict(self.per_workload[(width, depth)]),
                }
                for width in self.widths
                for depth in self.depths
            ],
        }

    def render(self) -> str:
        headers = ["issue width"] + [f"depth {d}" for d in self.depths]
        rows = [
            [f"{width}-issue"]
            + [_fmt(self.geomeans[(width, depth)]) for depth in self.depths]
            for width in self.widths
        ]
        return render_table(
            headers,
            rows,
            title=(
                "Figure 8: region predicating on full-issue machines "
                "(geomean speedup)"
            ),
        )


def run_fig8(
    ctx: ExperimentContext, options: ExperimentOptions | None = None
) -> Fig8Result:
    options = options or _DEFAULTS
    widths, depths = options.widths, options.depths
    grid = [(width, depth) for width in widths for depth in depths]
    specs = [
        CellSpec(
            kind="speedup",
            workload=workload.name,
            model="region_pred",
            config=full_issue_machine(width, depth),
        )
        for width, depth in grid
        for workload in ctx.workloads
    ]
    cells = ctx.run_cells(specs)
    result = Fig8Result(widths=widths, depths=depths)
    index = 0
    for width, depth in grid:
        per_workload = {
            workload.name: cell_value(cells[index + offset], "speedup")
            for offset, workload in enumerate(ctx.workloads)
        }
        index += len(ctx.workloads)
        result.per_workload[(width, depth)] = per_workload
        result.geomeans[(width, depth)] = geomean(list(per_workload.values()))
    return result


# ----------------------------------------------------------------------
# Code expansion (static code growth from tail duplication).
# ----------------------------------------------------------------------
@dataclass
class CodeExpansionResult:
    """Static code growth per model (the cost of duplication)."""

    models: list[str]
    # workload -> model -> static scheduled ops / source instructions.
    rows: dict[str, dict[str, float]] = field(default_factory=dict)

    def geomeans(self) -> dict[str, float]:
        return {
            model: geomean([self.rows[w][model] for w in self.rows])
            for model in self.models
        }

    def to_dict(self) -> dict:
        return {
            "models": list(self.models),
            "rows": {name: dict(values) for name, values in self.rows.items()},
            "geomeans": self.geomeans(),
        }

    def render(self) -> str:
        headers = ["Program"] + self.models
        table_rows = [
            [name] + [_fmt(values[m]) for m in self.models]
            for name, values in self.rows.items()
        ]
        means = self.geomeans()
        table_rows.append(
            ["geomean"] + [_fmt(means[m]) for m in self.models]
        )
        return render_table(
            headers,
            table_rows,
            title="Static code expansion (scheduled ops / source ops)",
        )


def run_code_expansion(
    ctx: ExperimentContext, options: ExperimentOptions | None = None
) -> CodeExpansionResult:
    """Static code-size cost of each model's duplication.

    The paper flags code growth as the price of boosting's recovery-code
    scheme ("the recovery code and the jump table double the size of the
    original code") and of region formation's join duplication; this
    experiment measures the duplication cost of our windowed schedulers
    directly: total scheduled operations over source instructions.
    """
    options = options or _DEFAULTS
    config = options.machine()
    models = list(
        options.models or ("global", "trace", "trace_pred", "region_pred")
    )
    specs = [
        CellSpec(
            kind="compile_stats",
            workload=workload.name,
            model=model,
            config=config,
        )
        for workload in ctx.workloads
        for model in models
    ]
    cells = ctx.run_cells(specs)
    result = CodeExpansionResult(models=models)
    index = 0
    for workload in ctx.workloads:
        result.rows[workload.name] = {
            model: cell_value(cells[index + offset], "expansion")
            for offset, model in enumerate(models)
        }
        index += len(models)
    return result


# ----------------------------------------------------------------------
# Loop unrolling (the paper's future-work experiment).
# ----------------------------------------------------------------------
@dataclass
class UnrollingResult:
    """Region predicating with unrolled loops on wide machines."""

    factors: tuple[int, ...]
    machines: tuple[tuple[int, int], ...]  # (width, depth)
    geomeans: dict[tuple[int, int, int], float] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "factors": list(self.factors),
            "machines": [list(machine) for machine in self.machines],
            "cells": [
                {
                    "width": width,
                    "depth": depth,
                    "factor": factor,
                    "geomean": self.geomeans[(width, depth, factor)],
                }
                for width, depth in self.machines
                for factor in self.factors
            ],
        }

    def render(self) -> str:
        headers = ["machine"] + [f"unroll x{f}" for f in self.factors]
        rows = []
        for width, depth in self.machines:
            rows.append(
                [f"{width}-issue/depth {depth}"]
                + [
                    _fmt(self.geomeans[(width, depth, f)])
                    for f in self.factors
                ]
            )
        return render_table(
            headers,
            rows,
            title=(
                "Future-work experiment: loop unrolling under region "
                "predicating (geomean speedup vs the original scalar run)"
            ),
        )


def run_unrolling(
    ctx: ExperimentContext, options: ExperimentOptions | None = None
) -> UnrollingResult:
    """Section 4.2.2's closing conjecture, tested.

    The paper: "speculative execution past eight conditions or eight
    duplications of resources produces little impact [...] loop unrolling
    may be required to exploit more parallelism."  We unroll every
    workload's loops and re-measure region predicating on the 4- and
    8-issue full machines; speedups stay relative to the *original*
    program's scalar cycles.  The scheduling window scales with the
    unroll factor so the region former can actually span the unrolled
    iterations.
    """
    options = options or _DEFAULTS
    factors, machines = options.factors, options.machines
    grid = [
        (width, depth, factor)
        for width, depth in machines
        for factor in factors
    ]
    specs = [
        CellSpec(
            kind="unroll",
            workload=workload.name,
            model="region_pred",
            config=full_issue_machine(width, depth),
            extras=(("factor", factor),),
        )
        for width, depth, factor in grid
        for workload in ctx.workloads
    ]
    cells = ctx.run_cells(specs)
    result = UnrollingResult(factors=factors, machines=machines)
    index = 0
    for width, depth, factor in grid:
        speedups = [
            cell_value(cells[index + offset], "speedup")
            for offset in range(len(ctx.workloads))
        ]
        index += len(ctx.workloads)
        result.geomeans[(width, depth, factor)] = geomean(speedups)
    return result


# ----------------------------------------------------------------------
# Equivalent-join sharing (footnote 2).
# ----------------------------------------------------------------------
@dataclass
class JoinSharingResult:
    """Duplicating vs sharing equivalent join blocks."""

    rows: list[tuple[str, float, float, float, float]] = field(
        default_factory=list
    )  # name, dup speedup, shared speedup, dup expansion, shared expansion

    def to_dict(self) -> dict:
        return {
            "rows": [
                {
                    "program": name,
                    "dup_speedup": dup_speed,
                    "shared_speedup": shared_speed,
                    "dup_expansion": dup_x,
                    "shared_expansion": shared_x,
                }
                for name, dup_speed, shared_speed, dup_x, shared_x in self.rows
            ]
        }

    def render(self) -> str:
        table_rows = [
            (name, _fmt(sd), _fmt(ss), _fmt(ed), _fmt(es))
            for name, sd, ss, ed, es in self.rows
        ]
        return render_table(
            ["Program", "dup speedup", "shared speedup",
             "dup code x", "shared code x"],
            table_rows,
            title=(
                "Footnote-2 experiment: duplicating vs sharing equivalent "
                "joins under region predicating"
            ),
        )


def run_join_sharing(
    ctx: ExperimentContext, options: ExperimentOptions | None = None
) -> JoinSharingResult:
    """The paper's join-block trade-off, measured.

    Section 3.3: a join with an *equivalent block* need not be duplicated
    -- its control dependence equals the equivalent block's.  Section
    4.2.2 explains the cost: instructions in a shared join acquire
    *commit dependences* ("this instruction cannot be scheduled until the
    speculative value is committed or squashed"), which is why the
    compiler "duplicates the join block to avoid this constraint (if
    beneficial)".  This experiment measures both sides of that trade for
    every kernel: speedup and static code expansion under pure
    duplication versus equivalent-join sharing.
    """
    options = options or _DEFAULTS
    config = options.machine()
    shared_policy = dataclasses.replace(
        REGION_PRED, share_equivalent_joins=True
    )
    specs = [
        CellSpec(
            kind="compile_stats",
            workload=workload.name,
            policy=policy,
            config=config,
        )
        for workload in ctx.workloads
        for policy in (REGION_PRED, shared_policy)
    ]
    cells = ctx.run_cells(specs)
    result = JoinSharingResult()
    for index, workload in enumerate(ctx.workloads):
        dup, shared = cells[2 * index], cells[2 * index + 1]
        result.rows.append(
            (
                workload.name,
                cell_value(dup, "speedup"),
                cell_value(shared, "speedup"),
                cell_value(dup, "expansion"),
                cell_value(shared, "expansion"),
            )
        )
    return result


# ----------------------------------------------------------------------
# Profile sensitivity.
# ----------------------------------------------------------------------
@dataclass
class ProfileSensitivityResult:
    """Self-trained vs cross-trained region predicating."""

    rows: list[tuple[str, float, float]] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "rows": [
                {
                    "program": name,
                    "cross_trained": cross,
                    "self_trained": self_trained,
                }
                for name, cross, self_trained in self.rows
            ]
        }

    def render(self) -> str:
        table_rows = [
            (name, f"{cross:.2f}", f"{self_trained:.2f}",
             f"{(self_trained / cross - 1) * 100:+.1f}%")
            for name, cross, self_trained in self.rows
        ]
        return render_table(
            ["Program", "cross-trained", "self-trained", "inflation"],
            table_rows,
            title=(
                "Profile sensitivity: training input != evaluation input "
                "(the honest setup, used everywhere else) vs training on "
                "the evaluation input itself"
            ),
        )


def run_profile_sensitivity(
    ctx: ExperimentContext, options: ExperimentOptions | None = None
) -> ProfileSensitivityResult:
    """How much does profile-driven region formation depend on the input?

    The harness always trains the static predictor on a *different* input
    seed than it evaluates on (as the paper's methodology implies).  This
    experiment quantifies the alternative: self-training inflates
    region predicating's speedups only mildly when branch behaviour is a
    property of the program rather than of the particular input -- which
    is what makes profile-guided region formation deployable.
    """
    options = options or _DEFAULTS
    config = options.machine()
    specs = [
        CellSpec(
            kind="profile",
            workload=workload.name,
            model="region_pred",
            config=config,
            extras=(("mode", mode),),
        )
        for workload in ctx.workloads
        for mode in ("cross", "self")
    ]
    cells = ctx.run_cells(specs)
    result = ProfileSensitivityResult()
    for index, workload in enumerate(ctx.workloads):
        cross, self_trained = cells[2 * index], cells[2 * index + 1]
        result.rows.append(
            (
                workload.name,
                cell_value(cross, "speedup"),
                cell_value(self_trained, "speedup"),
            )
        )
    return result


# ----------------------------------------------------------------------
# Hardware cost.
# ----------------------------------------------------------------------
@dataclass
class HwCostResult:
    report: hwcost_model.HwCostReport

    def to_dict(self) -> dict:
        r = self.report
        return {
            "normal_regfile": r.normal_regfile,
            "shadow_storage": r.shadow_storage,
            "commit_hardware": r.commit_hardware,
            "shadow_ratio": r.shadow_ratio,
            "commit_ratio": r.commit_ratio,
            "total_overhead_ratio": r.total_overhead_ratio,
            "predicate_eval_gate_delay": r.predicate_eval_gate_delay,
            "read_path_extra_gates": r.read_path_extra_gates,
        }

    def render(self) -> str:
        r = self.report
        rows = [
            ("normal register file (T)", r.normal_regfile, "--"),
            ("speculative storage (T)", r.shadow_storage, "paper: +76%"),
            ("commit hardware (T)", r.commit_hardware, "paper: +31%"),
            ("shadow ratio", f"{r.shadow_ratio:.2f}", "paper: 0.76"),
            ("commit ratio", f"{r.commit_ratio:.2f}", "paper: 0.31"),
            ("total overhead", f"{r.total_overhead_ratio:.2f}", "paper: 1.07"),
            ("predicate eval delay", f"{r.predicate_eval_gate_delay} gates",
             "paper: 3 gates"),
            ("read-path extra gates", r.read_path_extra_gates, "paper: 1"),
        ]
        return render_table(
            ["Quantity", "Model", "Reference"],
            rows,
            title="Section 4.2.1: hardware cost of predicating",
        )


def run_hwcost(
    ctx: ExperimentContext | None = None,
    options: ExperimentOptions | None = None,
) -> HwCostResult:
    options = options or _DEFAULTS
    extras = (
        (("params", options.hw_params),) if options.hw_params is not None else ()
    )
    spec = CellSpec(kind="hwcost", extras=extras)
    if ctx is None:
        ctx = ExperimentContext(workloads=[])
    (cell,) = ctx.run_cells([spec])
    report = hwcost_model.HwCostReport(
        normal_regfile=cell_value(cell, "normal_regfile"),
        shadow_storage=cell_value(cell, "shadow_storage"),
        commit_hardware=cell_value(cell, "commit_hardware"),
        predicate_eval_gate_delay=cell_value(cell, "predicate_eval_gate_delay"),
        read_path_extra_gates=cell_value(cell, "read_path_extra_gates"),
    )
    return HwCostResult(report=report)


# ----------------------------------------------------------------------
# Ablations.
# ----------------------------------------------------------------------
@dataclass
class AblationResult:
    title: str
    rows: list[tuple[str, float, float, float]]  # name, base, variant, loss %

    def to_dict(self) -> dict:
        return {
            "title": self.title,
            "rows": [
                {
                    "program": name,
                    "base": base,
                    "variant": variant,
                    "delta_pct": loss,
                }
                for name, base, variant, loss in self.rows
            ],
        }

    def render(self) -> str:
        table_rows = [
            (name, f"{base:.2f}", f"{variant:.2f}", f"{loss:+.1f}%")
            for name, base, variant, loss in self.rows
        ]
        return render_table(
            ["Program", "base", "variant", "delta"],
            table_rows,
            title=self.title,
        )


def _paired_speedups(
    ctx: ExperimentContext,
    variants: list[tuple[str | None, object, MachineConfig]],
) -> list[list[float]]:
    """Speedups for each workload under each (model, policy, config)."""
    specs = [
        CellSpec(
            kind="speedup",
            workload=workload.name,
            model=model,
            policy=policy,  # type: ignore[arg-type]
            config=config,
        )
        for workload in ctx.workloads
        for model, policy, config in variants
    ]
    cells = ctx.run_cells(specs)
    stride = len(variants)
    return [
        [
            cell_value(cells[index * stride + offset], "speedup")
            for offset in range(stride)
        ]
        for index in range(len(ctx.workloads))
    ]


def run_shadow_ablation(
    ctx: ExperimentContext, options: ExperimentOptions | None = None
) -> AblationResult:
    """Footnote 1: single vs infinite shadow registers (paper: 0-1%)."""
    options = options or _DEFAULTS
    config = options.machine()
    infinite = dataclasses.replace(config, shadow_capacity=None)
    speedups = _paired_speedups(
        ctx,
        [("region_pred", None, config), ("region_pred", None, infinite)],
    )
    rows = []
    for workload, (single, unlimited) in zip(ctx.workloads, speedups):
        loss = (unlimited - single) / unlimited * 100 if unlimited else 0.0
        rows.append((workload.name, unlimited, single, -loss))
    return AblationResult(
        title=(
            "Footnote 1 ablation: single shadow register vs infinite "
            "(speedup, delta = cost of the single-shadow design)"
        ),
        rows=rows,
    )


@dataclass
class BtbAblationResult:
    """Optimistic vs finite-BTB vs fully-charged transfer penalties."""

    rows: list[tuple[str, float, float, float]] = field(default_factory=list)
    # workload -> finite-BTB hit rate (hits / (hits + misses)).
    hit_rates: dict[str, float] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "rows": [
                {
                    "program": name,
                    "optimistic": optimistic,
                    "finite_btb": finite,
                    "all_charged": charged,
                    "btb_hit_rate": self.hit_rates.get(name),
                }
                for name, optimistic, finite, charged in self.rows
            ]
        }

    def render(self) -> str:
        table_rows = [
            (name, f"{opt:.2f}", f"{finite:.2f}", f"{charged:.2f}",
             f"{(opt / finite - 1) * 100:+.1f}%",
             f"{self.hit_rates.get(name, 0.0):.1%}")
            for name, opt, finite, charged in self.rows
        ]
        return render_table(
            ["Program", "optimistic", "64-entry BTB", "all charged",
             "optimism vs BTB", "BTB hit rate"],
            table_rows,
            title=(
                "BTB ablation: the paper's optimistic assumption vs a "
                "finite BTB vs charging every taken transfer"
            ),
        )


def run_btb_ablation(
    ctx: ExperimentContext, options: ExperimentOptions | None = None
) -> BtbAblationResult:
    """Section 4's BTB assumption: "We optimistically assume the branches
    which are predictable using BTB impose no penalty [...] This
    optimistic assumption increases the evaluated performance a few
    percent according to our cycle-by-cycle simulation."

    Three fidelities: the paper's optimistic model (taken transfers are
    free), a 64-entry direct-mapped BTB (compulsory/conflict misses pay
    one cycle -- the realistic point; the delta against the optimistic
    model reproduces the paper's "few percent"), and the fully-pessimistic
    bracket (every taken transfer pays).
    """
    options = options or _DEFAULTS
    config = options.machine()
    finite = dataclasses.replace(config, btb_entries=64)
    pessimistic = dataclasses.replace(config, taken_penalty_btb=1)
    variants = [
        ("region_pred", None, config),
        ("region_pred", None, finite),
        ("region_pred", None, pessimistic),
    ]
    specs = [
        CellSpec(
            kind="speedup",
            workload=workload.name,
            model=model,
            policy=policy,  # type: ignore[arg-type]
            config=variant_config,
        )
        for workload in ctx.workloads
        for model, policy, variant_config in variants
    ]
    cells = ctx.run_cells(specs)
    result = BtbAblationResult()
    for index, workload in enumerate(ctx.workloads):
        base = index * len(variants)
        row = [
            cell_value(cells[base + offset], "speedup")
            for offset in range(len(variants))
        ]
        result.rows.append((workload.name, *row))
        finite_cell = cells[base + 1]
        hits = cell_value(finite_cell, "btb_hits", 0)
        accesses = hits + cell_value(finite_cell, "btb_misses", 0)
        result.hit_rates[workload.name] = hits / accesses if accesses else 1.0
    return result


def run_counter_ablation(
    ctx: ExperimentContext, options: ExperimentOptions | None = None
) -> AblationResult:
    """Section 4.2.1: vector-form vs counter-type predicates.

    Counter predicates cannot tell which condition was set, so
    condition-resolving instructions must stay in program order; the
    ablation forces that ordering onto the trace predicating model.
    """
    options = options or _DEFAULTS
    config = options.machine()
    ordered = dataclasses.replace(TRACE_PRED, ordered_cond_sets=True)
    speedups = _paired_speedups(
        ctx,
        [(None, TRACE_PRED, config), (None, ordered, config)],
    )
    rows = []
    for workload, (vector, counter) in zip(ctx.workloads, speedups):
        loss = (vector - counter) / vector * 100 if vector else 0.0
        rows.append((workload.name, vector, counter, -loss))
    return AblationResult(
        title=(
            "Predicate-representation ablation: vector form vs counter "
            "type (speedup, delta = cost of in-order condition sets)"
        ),
        rows=rows,
    )


# ----------------------------------------------------------------------
# Registry: every experiment, uniformly callable as fn(ctx, options).
# ----------------------------------------------------------------------
EXPERIMENTS = {
    "table2": run_table2,
    "table3": run_table3,
    "fig6": run_fig6,
    "fig7": run_fig7,
    "fig8": run_fig8,
    "hwcost": run_hwcost,
    "shadow": run_shadow_ablation,
    "counter": run_counter_ablation,
    "btb": run_btb_ablation,
    "codesize": run_code_expansion,
    "unroll": run_unrolling,
    "joins": run_join_sharing,
    "profile": run_profile_sensitivity,
}
