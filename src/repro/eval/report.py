"""ASCII rendering of experiment results (tables and bar charts)."""

from __future__ import annotations

from collections.abc import Sequence


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Fixed-width table with a header rule.

    Handles an empty row set (headers and rule only) and never emits
    trailing whitespace, so rendered tables diff cleanly.
    """
    columns = [
        [str(header)] + [str(row[i]) for row in rows]
        for i, header in enumerate(headers)
    ]
    widths = [max(len(cell) for cell in column) for column in columns]
    lines = []
    if title:
        lines.append(title)
    lines.append(
        "  ".join(header.ljust(width) for header, width in zip(headers, widths))
    )
    lines.append("  ".join("-" * width for width in widths))
    for row in rows:
        lines.append(
            "  ".join(
                str(cell).ljust(width) for cell, width in zip(row, widths)
            )
        )
    return "\n".join(line.rstrip() for line in lines)


def render_bars(
    labels: Sequence[str],
    values: Sequence[float],
    *,
    title: str | None = None,
    width: int = 50,
    fmt: str = "{:.2f}",
) -> str:
    """Horizontal bar chart (the Figures 6-8 view).

    The longest bar is clamped to *width* characters; non-positive peaks
    render value columns without bars rather than dividing by zero.
    """
    if not values:
        return title or ""
    width = max(1, width)
    peak = max(values)
    label_width = max(len(label) for label in labels)
    lines = []
    if title:
        lines.append(title)
    for label, value in zip(labels, values):
        bar = "#" * max(1, round(width * value / peak)) if peak > 0 else ""
        lines.append(
            f"{label.ljust(label_width)}  {fmt.format(value):>6}  {bar}".rstrip()
        )
    return "\n".join(lines)
