"""ASCII rendering of experiment results (tables and bar charts)."""

from __future__ import annotations

from collections.abc import Sequence


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Fixed-width table with a header rule."""
    columns = [
        [str(header)] + [str(row[i]) for row in rows]
        for i, header in enumerate(headers)
    ]
    widths = [max(len(cell) for cell in column) for column in columns]
    lines = []
    if title:
        lines.append(title)
    lines.append(
        "  ".join(header.ljust(width) for header, width in zip(headers, widths))
    )
    lines.append("  ".join("-" * width for width in widths))
    for row in rows:
        lines.append(
            "  ".join(
                str(cell).ljust(width) for cell, width in zip(row, widths)
            )
        )
    return "\n".join(lines)


def render_bars(
    labels: Sequence[str],
    values: Sequence[float],
    *,
    title: str | None = None,
    width: int = 50,
    fmt: str = "{:.2f}",
) -> str:
    """Horizontal bar chart (the Figures 6-8 view)."""
    if not values:
        return title or ""
    peak = max(values)
    label_width = max(len(label) for label in labels)
    lines = []
    if title:
        lines.append(title)
    for label, value in zip(labels, values):
        bar = "#" * max(1, round(width * value / peak)) if peak > 0 else ""
        lines.append(
            f"{label.ljust(label_width)}  {fmt.format(value):>6}  {bar}"
        )
    return "\n".join(lines)
